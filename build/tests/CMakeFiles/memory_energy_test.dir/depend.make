# Empty dependencies file for memory_energy_test.
# This may be replaced when dependencies are built.
