file(REMOVE_RECURSE
  "CMakeFiles/memory_energy_test.dir/tech/memory_energy_test.cpp.o"
  "CMakeFiles/memory_energy_test.dir/tech/memory_energy_test.cpp.o.d"
  "memory_energy_test"
  "memory_energy_test.pdb"
  "memory_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
