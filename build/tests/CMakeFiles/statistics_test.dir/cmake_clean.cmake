file(REMOVE_RECURSE
  "CMakeFiles/statistics_test.dir/sim/statistics_test.cpp.o"
  "CMakeFiles/statistics_test.dir/sim/statistics_test.cpp.o.d"
  "statistics_test"
  "statistics_test.pdb"
  "statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
