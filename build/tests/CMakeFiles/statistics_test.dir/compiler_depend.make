# Empty compiler generated dependencies file for statistics_test.
# This may be replaced when dependencies are built.
