file(REMOVE_RECURSE
  "CMakeFiles/assembler_fuzz_test.dir/isa/assembler_fuzz_test.cpp.o"
  "CMakeFiles/assembler_fuzz_test.dir/isa/assembler_fuzz_test.cpp.o.d"
  "assembler_fuzz_test"
  "assembler_fuzz_test.pdb"
  "assembler_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
