# Empty compiler generated dependencies file for roadmap_test.
# This may be replaced when dependencies are built.
