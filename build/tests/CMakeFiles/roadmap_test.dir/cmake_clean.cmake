file(REMOVE_RECURSE
  "CMakeFiles/roadmap_test.dir/core/roadmap_test.cpp.o"
  "CMakeFiles/roadmap_test.dir/core/roadmap_test.cpp.o.d"
  "roadmap_test"
  "roadmap_test.pdb"
  "roadmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
