# Empty compiler generated dependencies file for interconnect_test.
# This may be replaced when dependencies are built.
