file(REMOVE_RECURSE
  "CMakeFiles/interconnect_test.dir/arch/interconnect_test.cpp.o"
  "CMakeFiles/interconnect_test.dir/arch/interconnect_test.cpp.o.d"
  "interconnect_test"
  "interconnect_test.pdb"
  "interconnect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
