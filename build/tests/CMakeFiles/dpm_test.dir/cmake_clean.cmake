file(REMOVE_RECURSE
  "CMakeFiles/dpm_test.dir/energy/dpm_test.cpp.o"
  "CMakeFiles/dpm_test.dir/energy/dpm_test.cpp.o.d"
  "dpm_test"
  "dpm_test.pdb"
  "dpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
