# Empty dependencies file for dpm_test.
# This may be replaced when dependencies are built.
