file(REMOVE_RECURSE
  "CMakeFiles/soc_test.dir/arch/soc_test.cpp.o"
  "CMakeFiles/soc_test.dir/arch/soc_test.cpp.o.d"
  "soc_test"
  "soc_test.pdb"
  "soc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
