file(REMOVE_RECURSE
  "CMakeFiles/case_studies_test.dir/integration/case_studies_test.cpp.o"
  "CMakeFiles/case_studies_test.dir/integration/case_studies_test.cpp.o.d"
  "case_studies_test"
  "case_studies_test.pdb"
  "case_studies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_studies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
