# Empty compiler generated dependencies file for case_studies_test.
# This may be replaced when dependencies are built.
