# Empty dependencies file for subthreshold_test.
# This may be replaced when dependencies are built.
