file(REMOVE_RECURSE
  "CMakeFiles/subthreshold_test.dir/tech/subthreshold_test.cpp.o"
  "CMakeFiles/subthreshold_test.dir/tech/subthreshold_test.cpp.o.d"
  "subthreshold_test"
  "subthreshold_test.pdb"
  "subthreshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subthreshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
