# Empty compiler generated dependencies file for battery_test.
# This may be replaced when dependencies are built.
