file(REMOVE_RECURSE
  "CMakeFiles/battery_test.dir/energy/battery_test.cpp.o"
  "CMakeFiles/battery_test.dir/energy/battery_test.cpp.o.d"
  "battery_test"
  "battery_test.pdb"
  "battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
