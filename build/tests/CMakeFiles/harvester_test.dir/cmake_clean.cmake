file(REMOVE_RECURSE
  "CMakeFiles/harvester_test.dir/energy/harvester_test.cpp.o"
  "CMakeFiles/harvester_test.dir/energy/harvester_test.cpp.o.d"
  "harvester_test"
  "harvester_test.pdb"
  "harvester_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvester_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
