# Empty compiler generated dependencies file for harvester_test.
# This may be replaced when dependencies are built.
