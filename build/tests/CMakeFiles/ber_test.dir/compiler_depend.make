# Empty compiler generated dependencies file for ber_test.
# This may be replaced when dependencies are built.
