file(REMOVE_RECURSE
  "CMakeFiles/ber_test.dir/radio/ber_test.cpp.o"
  "CMakeFiles/ber_test.dir/radio/ber_test.cpp.o.d"
  "ber_test"
  "ber_test.pdb"
  "ber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
