# Empty dependencies file for isa_machine_test.
# This may be replaced when dependencies are built.
