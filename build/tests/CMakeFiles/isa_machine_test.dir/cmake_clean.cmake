file(REMOVE_RECURSE
  "CMakeFiles/isa_machine_test.dir/isa/machine_test.cpp.o"
  "CMakeFiles/isa_machine_test.dir/isa/machine_test.cpp.o.d"
  "isa_machine_test"
  "isa_machine_test.pdb"
  "isa_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
