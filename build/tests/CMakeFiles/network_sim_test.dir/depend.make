# Empty dependencies file for network_sim_test.
# This may be replaced when dependencies are built.
