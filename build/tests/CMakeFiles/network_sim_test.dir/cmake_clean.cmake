file(REMOVE_RECURSE
  "CMakeFiles/network_sim_test.dir/net/network_sim_test.cpp.o"
  "CMakeFiles/network_sim_test.dir/net/network_sim_test.cpp.o.d"
  "network_sim_test"
  "network_sim_test.pdb"
  "network_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
