file(REMOVE_RECURSE
  "CMakeFiles/power_info_test.dir/core/power_info_test.cpp.o"
  "CMakeFiles/power_info_test.dir/core/power_info_test.cpp.o.d"
  "power_info_test"
  "power_info_test.pdb"
  "power_info_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
