# Empty compiler generated dependencies file for power_info_test.
# This may be replaced when dependencies are built.
