file(REMOVE_RECURSE
  "CMakeFiles/pareto_test.dir/dse/pareto_test.cpp.o"
  "CMakeFiles/pareto_test.dir/dse/pareto_test.cpp.o.d"
  "pareto_test"
  "pareto_test.pdb"
  "pareto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
