
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dse/pareto_test.cpp" "tests/CMakeFiles/pareto_test.dir/dse/pareto_test.cpp.o" "gcc" "tests/CMakeFiles/pareto_test.dir/dse/pareto_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ambisim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/ambisim_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ambisim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ambisim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ambisim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/ambisim_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ambisim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ambisim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ambisim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
