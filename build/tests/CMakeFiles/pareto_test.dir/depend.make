# Empty dependencies file for pareto_test.
# This may be replaced when dependencies are built.
