file(REMOVE_RECURSE
  "CMakeFiles/device_class_test.dir/core/device_class_test.cpp.o"
  "CMakeFiles/device_class_test.dir/core/device_class_test.cpp.o.d"
  "device_class_test"
  "device_class_test.pdb"
  "device_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
