# Empty compiler generated dependencies file for device_class_test.
# This may be replaced when dependencies are built.
