file(REMOVE_RECURSE
  "CMakeFiles/contention_test.dir/net/contention_test.cpp.o"
  "CMakeFiles/contention_test.dir/net/contention_test.cpp.o.d"
  "contention_test"
  "contention_test.pdb"
  "contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
