file(REMOVE_RECURSE
  "CMakeFiles/ascii_plot_test.dir/sim/ascii_plot_test.cpp.o"
  "CMakeFiles/ascii_plot_test.dir/sim/ascii_plot_test.cpp.o.d"
  "ascii_plot_test"
  "ascii_plot_test.pdb"
  "ascii_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascii_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
