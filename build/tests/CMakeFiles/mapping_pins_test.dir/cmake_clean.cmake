file(REMOVE_RECURSE
  "CMakeFiles/mapping_pins_test.dir/dse/mapping_pins_test.cpp.o"
  "CMakeFiles/mapping_pins_test.dir/dse/mapping_pins_test.cpp.o.d"
  "mapping_pins_test"
  "mapping_pins_test.pdb"
  "mapping_pins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_pins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
