# Empty compiler generated dependencies file for mapping_pins_test.
# This may be replaced when dependencies are built.
