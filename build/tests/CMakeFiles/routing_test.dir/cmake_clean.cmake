file(REMOVE_RECURSE
  "CMakeFiles/routing_test.dir/net/routing_test.cpp.o"
  "CMakeFiles/routing_test.dir/net/routing_test.cpp.o.d"
  "routing_test"
  "routing_test.pdb"
  "routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
