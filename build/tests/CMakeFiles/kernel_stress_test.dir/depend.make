# Empty dependencies file for kernel_stress_test.
# This may be replaced when dependencies are built.
