file(REMOVE_RECURSE
  "CMakeFiles/kernel_stress_test.dir/sim/kernel_stress_test.cpp.o"
  "CMakeFiles/kernel_stress_test.dir/sim/kernel_stress_test.cpp.o.d"
  "kernel_stress_test"
  "kernel_stress_test.pdb"
  "kernel_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
