# Empty compiler generated dependencies file for processor_test.
# This may be replaced when dependencies are built.
