file(REMOVE_RECURSE
  "CMakeFiles/processor_test.dir/arch/processor_test.cpp.o"
  "CMakeFiles/processor_test.dir/arch/processor_test.cpp.o.d"
  "processor_test"
  "processor_test.pdb"
  "processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
