file(REMOVE_RECURSE
  "CMakeFiles/streams_test.dir/workload/streams_test.cpp.o"
  "CMakeFiles/streams_test.dir/workload/streams_test.cpp.o.d"
  "streams_test"
  "streams_test.pdb"
  "streams_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streams_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
