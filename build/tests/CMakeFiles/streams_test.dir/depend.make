# Empty dependencies file for streams_test.
# This may be replaced when dependencies are built.
