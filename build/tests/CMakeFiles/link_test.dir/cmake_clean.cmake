file(REMOVE_RECURSE
  "CMakeFiles/link_test.dir/radio/link_test.cpp.o"
  "CMakeFiles/link_test.dir/radio/link_test.cpp.o.d"
  "link_test"
  "link_test.pdb"
  "link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
