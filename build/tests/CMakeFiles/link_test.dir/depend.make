# Empty dependencies file for link_test.
# This may be replaced when dependencies are built.
