# Empty dependencies file for dvs_test.
# This may be replaced when dependencies are built.
