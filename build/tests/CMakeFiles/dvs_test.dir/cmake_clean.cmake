file(REMOVE_RECURSE
  "CMakeFiles/dvs_test.dir/tech/dvs_test.cpp.o"
  "CMakeFiles/dvs_test.dir/tech/dvs_test.cpp.o.d"
  "dvs_test"
  "dvs_test.pdb"
  "dvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
