file(REMOVE_RECURSE
  "CMakeFiles/dvs_schedule_test.dir/dse/dvs_schedule_test.cpp.o"
  "CMakeFiles/dvs_schedule_test.dir/dse/dvs_schedule_test.cpp.o.d"
  "dvs_schedule_test"
  "dvs_schedule_test.pdb"
  "dvs_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
