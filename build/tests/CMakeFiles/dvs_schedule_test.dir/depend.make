# Empty dependencies file for dvs_schedule_test.
# This may be replaced when dependencies are built.
