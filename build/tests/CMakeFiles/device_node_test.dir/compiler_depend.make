# Empty compiler generated dependencies file for device_node_test.
# This may be replaced when dependencies are built.
