file(REMOVE_RECURSE
  "CMakeFiles/device_node_test.dir/core/device_node_test.cpp.o"
  "CMakeFiles/device_node_test.dir/core/device_node_test.cpp.o.d"
  "device_node_test"
  "device_node_test.pdb"
  "device_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
