# Empty compiler generated dependencies file for technology_test.
# This may be replaced when dependencies are built.
