file(REMOVE_RECURSE
  "CMakeFiles/technology_test.dir/tech/technology_test.cpp.o"
  "CMakeFiles/technology_test.dir/tech/technology_test.cpp.o.d"
  "technology_test"
  "technology_test.pdb"
  "technology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
