file(REMOVE_RECURSE
  "CMakeFiles/ledger_test.dir/energy/ledger_test.cpp.o"
  "CMakeFiles/ledger_test.dir/energy/ledger_test.cpp.o.d"
  "ledger_test"
  "ledger_test.pdb"
  "ledger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
