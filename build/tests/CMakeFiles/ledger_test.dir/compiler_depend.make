# Empty compiler generated dependencies file for ledger_test.
# This may be replaced when dependencies are built.
