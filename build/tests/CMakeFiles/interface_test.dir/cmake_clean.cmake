file(REMOVE_RECURSE
  "CMakeFiles/interface_test.dir/arch/interface_test.cpp.o"
  "CMakeFiles/interface_test.dir/arch/interface_test.cpp.o.d"
  "interface_test"
  "interface_test.pdb"
  "interface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
