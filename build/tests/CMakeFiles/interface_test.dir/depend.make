# Empty dependencies file for interface_test.
# This may be replaced when dependencies are built.
