# Empty dependencies file for buffer_sim_test.
# This may be replaced when dependencies are built.
