file(REMOVE_RECURSE
  "CMakeFiles/buffer_sim_test.dir/energy/buffer_sim_test.cpp.o"
  "CMakeFiles/buffer_sim_test.dir/energy/buffer_sim_test.cpp.o.d"
  "buffer_sim_test"
  "buffer_sim_test.pdb"
  "buffer_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
