file(REMOVE_RECURSE
  "CMakeFiles/transceiver_test.dir/radio/transceiver_test.cpp.o"
  "CMakeFiles/transceiver_test.dir/radio/transceiver_test.cpp.o.d"
  "transceiver_test"
  "transceiver_test.pdb"
  "transceiver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transceiver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
