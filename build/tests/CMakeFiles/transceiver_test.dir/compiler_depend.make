# Empty compiler generated dependencies file for transceiver_test.
# This may be replaced when dependencies are built.
