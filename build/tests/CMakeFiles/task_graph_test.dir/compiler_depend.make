# Empty compiler generated dependencies file for task_graph_test.
# This may be replaced when dependencies are built.
