file(REMOVE_RECURSE
  "CMakeFiles/task_graph_test.dir/workload/task_graph_test.cpp.o"
  "CMakeFiles/task_graph_test.dir/workload/task_graph_test.cpp.o.d"
  "task_graph_test"
  "task_graph_test.pdb"
  "task_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
