file(REMOVE_RECURSE
  "CMakeFiles/packet_sim_test.dir/net/packet_sim_test.cpp.o"
  "CMakeFiles/packet_sim_test.dir/net/packet_sim_test.cpp.o.d"
  "packet_sim_test"
  "packet_sim_test.pdb"
  "packet_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
