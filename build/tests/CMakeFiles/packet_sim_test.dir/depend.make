# Empty dependencies file for packet_sim_test.
# This may be replaced when dependencies are built.
