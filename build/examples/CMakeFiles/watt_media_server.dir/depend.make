# Empty dependencies file for watt_media_server.
# This may be replaced when dependencies are built.
