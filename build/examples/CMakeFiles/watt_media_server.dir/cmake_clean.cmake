file(REMOVE_RECURSE
  "CMakeFiles/watt_media_server.dir/watt_media_server.cpp.o"
  "CMakeFiles/watt_media_server.dir/watt_media_server.cpp.o.d"
  "watt_media_server"
  "watt_media_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watt_media_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
