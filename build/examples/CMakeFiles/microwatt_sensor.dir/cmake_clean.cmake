file(REMOVE_RECURSE
  "CMakeFiles/microwatt_sensor.dir/microwatt_sensor.cpp.o"
  "CMakeFiles/microwatt_sensor.dir/microwatt_sensor.cpp.o.d"
  "microwatt_sensor"
  "microwatt_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microwatt_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
