# Empty dependencies file for microwatt_sensor.
# This may be replaced when dependencies are built.
