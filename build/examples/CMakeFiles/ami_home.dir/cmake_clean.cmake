file(REMOVE_RECURSE
  "CMakeFiles/ami_home.dir/ami_home.cpp.o"
  "CMakeFiles/ami_home.dir/ami_home.cpp.o.d"
  "ami_home"
  "ami_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ami_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
