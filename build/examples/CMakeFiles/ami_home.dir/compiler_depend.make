# Empty compiler generated dependencies file for ami_home.
# This may be replaced when dependencies are built.
