# Empty dependencies file for power_management.
# This may be replaced when dependencies are built.
