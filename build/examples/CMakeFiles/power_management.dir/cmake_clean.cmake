file(REMOVE_RECURSE
  "CMakeFiles/power_management.dir/power_management.cpp.o"
  "CMakeFiles/power_management.dir/power_management.cpp.o.d"
  "power_management"
  "power_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
