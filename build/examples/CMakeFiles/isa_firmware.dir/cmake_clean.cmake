file(REMOVE_RECURSE
  "CMakeFiles/isa_firmware.dir/isa_firmware.cpp.o"
  "CMakeFiles/isa_firmware.dir/isa_firmware.cpp.o.d"
  "isa_firmware"
  "isa_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
