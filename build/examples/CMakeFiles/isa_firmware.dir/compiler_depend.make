# Empty compiler generated dependencies file for isa_firmware.
# This may be replaced when dependencies are built.
