# Empty compiler generated dependencies file for milliwatt_personal.
# This may be replaced when dependencies are built.
