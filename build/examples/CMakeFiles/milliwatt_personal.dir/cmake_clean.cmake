file(REMOVE_RECURSE
  "CMakeFiles/milliwatt_personal.dir/milliwatt_personal.cpp.o"
  "CMakeFiles/milliwatt_personal.dir/milliwatt_personal.cpp.o.d"
  "milliwatt_personal"
  "milliwatt_personal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milliwatt_personal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
