# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_microwatt_sensor "/root/repo/build/examples/microwatt_sensor")
set_tests_properties(example_microwatt_sensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_milliwatt_personal "/root/repo/build/examples/milliwatt_personal")
set_tests_properties(example_milliwatt_personal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_watt_media_server "/root/repo/build/examples/watt_media_server")
set_tests_properties(example_watt_media_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ami_home "/root/repo/build/examples/ami_home")
set_tests_properties(example_ami_home PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isa_firmware "/root/repo/build/examples/isa_firmware")
set_tests_properties(example_isa_firmware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_management "/root/repo/build/examples/power_management")
set_tests_properties(example_power_management PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
