file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_watt_soc.dir/bench_f7_watt_soc.cpp.o"
  "CMakeFiles/bench_f7_watt_soc.dir/bench_f7_watt_soc.cpp.o.d"
  "bench_f7_watt_soc"
  "bench_f7_watt_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_watt_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
