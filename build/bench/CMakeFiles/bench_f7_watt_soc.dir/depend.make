# Empty dependencies file for bench_f7_watt_soc.
# This may be replaced when dependencies are built.
