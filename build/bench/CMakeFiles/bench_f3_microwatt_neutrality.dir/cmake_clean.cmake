file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_microwatt_neutrality.dir/bench_f3_microwatt_neutrality.cpp.o"
  "CMakeFiles/bench_f3_microwatt_neutrality.dir/bench_f3_microwatt_neutrality.cpp.o.d"
  "bench_f3_microwatt_neutrality"
  "bench_f3_microwatt_neutrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_microwatt_neutrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
