# Empty dependencies file for bench_f3_microwatt_neutrality.
# This may be replaced when dependencies are built.
