# Empty compiler generated dependencies file for bench_t2_function_mapping.
# This may be replaced when dependencies are built.
