file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_function_mapping.dir/bench_t2_function_mapping.cpp.o"
  "CMakeFiles/bench_t2_function_mapping.dir/bench_t2_function_mapping.cpp.o.d"
  "bench_t2_function_mapping"
  "bench_t2_function_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_function_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
