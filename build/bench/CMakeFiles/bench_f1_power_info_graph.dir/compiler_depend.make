# Empty compiler generated dependencies file for bench_f1_power_info_graph.
# This may be replaced when dependencies are built.
