file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_power_info_graph.dir/bench_f1_power_info_graph.cpp.o"
  "CMakeFiles/bench_f1_power_info_graph.dir/bench_f1_power_info_graph.cpp.o.d"
  "bench_f1_power_info_graph"
  "bench_f1_power_info_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_power_info_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
