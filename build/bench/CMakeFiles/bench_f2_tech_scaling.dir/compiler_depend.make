# Empty compiler generated dependencies file for bench_f2_tech_scaling.
# This may be replaced when dependencies are built.
