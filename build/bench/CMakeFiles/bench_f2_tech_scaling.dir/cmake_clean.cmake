file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_tech_scaling.dir/bench_f2_tech_scaling.cpp.o"
  "CMakeFiles/bench_f2_tech_scaling.dir/bench_f2_tech_scaling.cpp.o.d"
  "bench_f2_tech_scaling"
  "bench_f2_tech_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_tech_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
