file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_contention.dir/bench_f10_contention.cpp.o"
  "CMakeFiles/bench_f10_contention.dir/bench_f10_contention.cpp.o.d"
  "bench_f10_contention"
  "bench_f10_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
