# Empty dependencies file for bench_f10_contention.
# This may be replaced when dependencies are built.
