file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_network_lifetime.dir/bench_f4_network_lifetime.cpp.o"
  "CMakeFiles/bench_f4_network_lifetime.dir/bench_f4_network_lifetime.cpp.o.d"
  "bench_f4_network_lifetime"
  "bench_f4_network_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_network_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
