# Empty compiler generated dependencies file for bench_f4_network_lifetime.
# This may be replaced when dependencies are built.
