file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_device_classes.dir/bench_t1_device_classes.cpp.o"
  "CMakeFiles/bench_t1_device_classes.dir/bench_t1_device_classes.cpp.o.d"
  "bench_t1_device_classes"
  "bench_t1_device_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_device_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
