# Empty compiler generated dependencies file for bench_t1_device_classes.
# This may be replaced when dependencies are built.
