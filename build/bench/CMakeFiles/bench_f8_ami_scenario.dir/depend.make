# Empty dependencies file for bench_f8_ami_scenario.
# This may be replaced when dependencies are built.
