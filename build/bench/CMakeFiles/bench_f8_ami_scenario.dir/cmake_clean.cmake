file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_ami_scenario.dir/bench_f8_ami_scenario.cpp.o"
  "CMakeFiles/bench_f8_ami_scenario.dir/bench_f8_ami_scenario.cpp.o.d"
  "bench_f8_ami_scenario"
  "bench_f8_ami_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_ami_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
