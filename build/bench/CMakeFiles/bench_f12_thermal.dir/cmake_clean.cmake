file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_thermal.dir/bench_f12_thermal.cpp.o"
  "CMakeFiles/bench_f12_thermal.dir/bench_f12_thermal.cpp.o.d"
  "bench_f12_thermal"
  "bench_f12_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
