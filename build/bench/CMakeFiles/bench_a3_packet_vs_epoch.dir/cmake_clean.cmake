file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_packet_vs_epoch.dir/bench_a3_packet_vs_epoch.cpp.o"
  "CMakeFiles/bench_a3_packet_vs_epoch.dir/bench_a3_packet_vs_epoch.cpp.o.d"
  "bench_a3_packet_vs_epoch"
  "bench_a3_packet_vs_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_packet_vs_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
