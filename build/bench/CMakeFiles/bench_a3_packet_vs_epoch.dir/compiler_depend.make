# Empty compiler generated dependencies file for bench_a3_packet_vs_epoch.
# This may be replaced when dependencies are built.
