# Empty compiler generated dependencies file for bench_f11_subthreshold.
# This may be replaced when dependencies are built.
