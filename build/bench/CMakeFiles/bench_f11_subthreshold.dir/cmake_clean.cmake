file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_subthreshold.dir/bench_f11_subthreshold.cpp.o"
  "CMakeFiles/bench_f11_subthreshold.dir/bench_f11_subthreshold.cpp.o.d"
  "bench_f11_subthreshold"
  "bench_f11_subthreshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_subthreshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
