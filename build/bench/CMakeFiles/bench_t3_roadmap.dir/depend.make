# Empty dependencies file for bench_t3_roadmap.
# This may be replaced when dependencies are built.
