file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_roadmap.dir/bench_t3_roadmap.cpp.o"
  "CMakeFiles/bench_t3_roadmap.dir/bench_t3_roadmap.cpp.o.d"
  "bench_t3_roadmap"
  "bench_t3_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
