# Empty dependencies file for bench_a1_isa_validation.
# This may be replaced when dependencies are built.
