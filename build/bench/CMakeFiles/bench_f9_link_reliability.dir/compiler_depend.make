# Empty compiler generated dependencies file for bench_f9_link_reliability.
# This may be replaced when dependencies are built.
