file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_link_reliability.dir/bench_f9_link_reliability.cpp.o"
  "CMakeFiles/bench_f9_link_reliability.dir/bench_f9_link_reliability.cpp.o.d"
  "bench_f9_link_reliability"
  "bench_f9_link_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_link_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
