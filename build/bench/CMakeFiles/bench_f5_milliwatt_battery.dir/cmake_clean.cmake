file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_milliwatt_battery.dir/bench_f5_milliwatt_battery.cpp.o"
  "CMakeFiles/bench_f5_milliwatt_battery.dir/bench_f5_milliwatt_battery.cpp.o.d"
  "bench_f5_milliwatt_battery"
  "bench_f5_milliwatt_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_milliwatt_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
