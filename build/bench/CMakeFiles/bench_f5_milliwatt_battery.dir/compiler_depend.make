# Empty compiler generated dependencies file for bench_f5_milliwatt_battery.
# This may be replaced when dependencies are built.
