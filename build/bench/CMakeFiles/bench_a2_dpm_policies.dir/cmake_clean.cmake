file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_dpm_policies.dir/bench_a2_dpm_policies.cpp.o"
  "CMakeFiles/bench_a2_dpm_policies.dir/bench_a2_dpm_policies.cpp.o.d"
  "bench_a2_dpm_policies"
  "bench_a2_dpm_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_dpm_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
