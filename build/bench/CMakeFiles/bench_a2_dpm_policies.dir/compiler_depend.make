# Empty compiler generated dependencies file for bench_a2_dpm_policies.
# This may be replaced when dependencies are built.
