file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_dvs.dir/bench_f6_dvs.cpp.o"
  "CMakeFiles/bench_f6_dvs.dir/bench_f6_dvs.cpp.o.d"
  "bench_f6_dvs"
  "bench_f6_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
