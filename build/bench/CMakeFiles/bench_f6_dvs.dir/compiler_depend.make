# Empty compiler generated dependencies file for bench_f6_dvs.
# This may be replaced when dependencies are built.
