file(REMOVE_RECURSE
  "CMakeFiles/ambisim_sim.dir/ascii_plot.cpp.o"
  "CMakeFiles/ambisim_sim.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/ambisim_sim.dir/random.cpp.o"
  "CMakeFiles/ambisim_sim.dir/random.cpp.o.d"
  "CMakeFiles/ambisim_sim.dir/simulator.cpp.o"
  "CMakeFiles/ambisim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ambisim_sim.dir/statistics.cpp.o"
  "CMakeFiles/ambisim_sim.dir/statistics.cpp.o.d"
  "CMakeFiles/ambisim_sim.dir/table.cpp.o"
  "CMakeFiles/ambisim_sim.dir/table.cpp.o.d"
  "CMakeFiles/ambisim_sim.dir/units.cpp.o"
  "CMakeFiles/ambisim_sim.dir/units.cpp.o.d"
  "libambisim_sim.a"
  "libambisim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
