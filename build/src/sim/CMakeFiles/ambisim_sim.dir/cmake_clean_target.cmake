file(REMOVE_RECURSE
  "libambisim_sim.a"
)
