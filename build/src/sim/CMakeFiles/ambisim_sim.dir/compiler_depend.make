# Empty compiler generated dependencies file for ambisim_sim.
# This may be replaced when dependencies are built.
