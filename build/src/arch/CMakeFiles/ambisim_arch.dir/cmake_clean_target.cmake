file(REMOVE_RECURSE
  "libambisim_arch.a"
)
