file(REMOVE_RECURSE
  "CMakeFiles/ambisim_arch.dir/interconnect.cpp.o"
  "CMakeFiles/ambisim_arch.dir/interconnect.cpp.o.d"
  "CMakeFiles/ambisim_arch.dir/interface.cpp.o"
  "CMakeFiles/ambisim_arch.dir/interface.cpp.o.d"
  "CMakeFiles/ambisim_arch.dir/memory.cpp.o"
  "CMakeFiles/ambisim_arch.dir/memory.cpp.o.d"
  "CMakeFiles/ambisim_arch.dir/processor.cpp.o"
  "CMakeFiles/ambisim_arch.dir/processor.cpp.o.d"
  "CMakeFiles/ambisim_arch.dir/soc.cpp.o"
  "CMakeFiles/ambisim_arch.dir/soc.cpp.o.d"
  "libambisim_arch.a"
  "libambisim_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
