
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/interconnect.cpp" "src/arch/CMakeFiles/ambisim_arch.dir/interconnect.cpp.o" "gcc" "src/arch/CMakeFiles/ambisim_arch.dir/interconnect.cpp.o.d"
  "/root/repo/src/arch/interface.cpp" "src/arch/CMakeFiles/ambisim_arch.dir/interface.cpp.o" "gcc" "src/arch/CMakeFiles/ambisim_arch.dir/interface.cpp.o.d"
  "/root/repo/src/arch/memory.cpp" "src/arch/CMakeFiles/ambisim_arch.dir/memory.cpp.o" "gcc" "src/arch/CMakeFiles/ambisim_arch.dir/memory.cpp.o.d"
  "/root/repo/src/arch/processor.cpp" "src/arch/CMakeFiles/ambisim_arch.dir/processor.cpp.o" "gcc" "src/arch/CMakeFiles/ambisim_arch.dir/processor.cpp.o.d"
  "/root/repo/src/arch/soc.cpp" "src/arch/CMakeFiles/ambisim_arch.dir/soc.cpp.o" "gcc" "src/arch/CMakeFiles/ambisim_arch.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/ambisim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
