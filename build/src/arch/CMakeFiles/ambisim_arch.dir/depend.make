# Empty dependencies file for ambisim_arch.
# This may be replaced when dependencies are built.
