# Empty dependencies file for ambisim_radio.
# This may be replaced when dependencies are built.
