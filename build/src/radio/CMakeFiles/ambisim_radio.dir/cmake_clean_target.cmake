file(REMOVE_RECURSE
  "libambisim_radio.a"
)
