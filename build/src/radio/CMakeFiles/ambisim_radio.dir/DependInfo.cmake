
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/ber.cpp" "src/radio/CMakeFiles/ambisim_radio.dir/ber.cpp.o" "gcc" "src/radio/CMakeFiles/ambisim_radio.dir/ber.cpp.o.d"
  "/root/repo/src/radio/link.cpp" "src/radio/CMakeFiles/ambisim_radio.dir/link.cpp.o" "gcc" "src/radio/CMakeFiles/ambisim_radio.dir/link.cpp.o.d"
  "/root/repo/src/radio/transceiver.cpp" "src/radio/CMakeFiles/ambisim_radio.dir/transceiver.cpp.o" "gcc" "src/radio/CMakeFiles/ambisim_radio.dir/transceiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
