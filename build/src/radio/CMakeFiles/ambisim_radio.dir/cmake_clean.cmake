file(REMOVE_RECURSE
  "CMakeFiles/ambisim_radio.dir/ber.cpp.o"
  "CMakeFiles/ambisim_radio.dir/ber.cpp.o.d"
  "CMakeFiles/ambisim_radio.dir/link.cpp.o"
  "CMakeFiles/ambisim_radio.dir/link.cpp.o.d"
  "CMakeFiles/ambisim_radio.dir/transceiver.cpp.o"
  "CMakeFiles/ambisim_radio.dir/transceiver.cpp.o.d"
  "libambisim_radio.a"
  "libambisim_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
