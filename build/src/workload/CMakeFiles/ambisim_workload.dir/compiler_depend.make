# Empty compiler generated dependencies file for ambisim_workload.
# This may be replaced when dependencies are built.
