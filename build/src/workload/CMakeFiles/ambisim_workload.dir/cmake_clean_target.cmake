file(REMOVE_RECURSE
  "libambisim_workload.a"
)
