
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/streams.cpp" "src/workload/CMakeFiles/ambisim_workload.dir/streams.cpp.o" "gcc" "src/workload/CMakeFiles/ambisim_workload.dir/streams.cpp.o.d"
  "/root/repo/src/workload/task_graph.cpp" "src/workload/CMakeFiles/ambisim_workload.dir/task_graph.cpp.o" "gcc" "src/workload/CMakeFiles/ambisim_workload.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ambisim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ambisim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
