file(REMOVE_RECURSE
  "CMakeFiles/ambisim_workload.dir/streams.cpp.o"
  "CMakeFiles/ambisim_workload.dir/streams.cpp.o.d"
  "CMakeFiles/ambisim_workload.dir/task_graph.cpp.o"
  "CMakeFiles/ambisim_workload.dir/task_graph.cpp.o.d"
  "libambisim_workload.a"
  "libambisim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
