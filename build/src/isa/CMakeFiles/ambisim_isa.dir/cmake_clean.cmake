file(REMOVE_RECURSE
  "CMakeFiles/ambisim_isa.dir/assembler.cpp.o"
  "CMakeFiles/ambisim_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/ambisim_isa.dir/isa.cpp.o"
  "CMakeFiles/ambisim_isa.dir/isa.cpp.o.d"
  "CMakeFiles/ambisim_isa.dir/machine.cpp.o"
  "CMakeFiles/ambisim_isa.dir/machine.cpp.o.d"
  "libambisim_isa.a"
  "libambisim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
