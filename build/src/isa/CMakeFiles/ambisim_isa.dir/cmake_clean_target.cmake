file(REMOVE_RECURSE
  "libambisim_isa.a"
)
