# Empty compiler generated dependencies file for ambisim_isa.
# This may be replaced when dependencies are built.
