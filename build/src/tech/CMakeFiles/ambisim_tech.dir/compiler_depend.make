# Empty compiler generated dependencies file for ambisim_tech.
# This may be replaced when dependencies are built.
