file(REMOVE_RECURSE
  "CMakeFiles/ambisim_tech.dir/dvs.cpp.o"
  "CMakeFiles/ambisim_tech.dir/dvs.cpp.o.d"
  "CMakeFiles/ambisim_tech.dir/memory_energy.cpp.o"
  "CMakeFiles/ambisim_tech.dir/memory_energy.cpp.o.d"
  "CMakeFiles/ambisim_tech.dir/subthreshold.cpp.o"
  "CMakeFiles/ambisim_tech.dir/subthreshold.cpp.o.d"
  "CMakeFiles/ambisim_tech.dir/technology.cpp.o"
  "CMakeFiles/ambisim_tech.dir/technology.cpp.o.d"
  "CMakeFiles/ambisim_tech.dir/thermal.cpp.o"
  "CMakeFiles/ambisim_tech.dir/thermal.cpp.o.d"
  "libambisim_tech.a"
  "libambisim_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
