
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/dvs.cpp" "src/tech/CMakeFiles/ambisim_tech.dir/dvs.cpp.o" "gcc" "src/tech/CMakeFiles/ambisim_tech.dir/dvs.cpp.o.d"
  "/root/repo/src/tech/memory_energy.cpp" "src/tech/CMakeFiles/ambisim_tech.dir/memory_energy.cpp.o" "gcc" "src/tech/CMakeFiles/ambisim_tech.dir/memory_energy.cpp.o.d"
  "/root/repo/src/tech/subthreshold.cpp" "src/tech/CMakeFiles/ambisim_tech.dir/subthreshold.cpp.o" "gcc" "src/tech/CMakeFiles/ambisim_tech.dir/subthreshold.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/tech/CMakeFiles/ambisim_tech.dir/technology.cpp.o" "gcc" "src/tech/CMakeFiles/ambisim_tech.dir/technology.cpp.o.d"
  "/root/repo/src/tech/thermal.cpp" "src/tech/CMakeFiles/ambisim_tech.dir/thermal.cpp.o" "gcc" "src/tech/CMakeFiles/ambisim_tech.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
