file(REMOVE_RECURSE
  "libambisim_tech.a"
)
