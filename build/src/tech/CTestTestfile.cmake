# CMake generated Testfile for 
# Source directory: /root/repo/src/tech
# Build directory: /root/repo/build/src/tech
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
