# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("tech")
subdirs("isa")
subdirs("energy")
subdirs("arch")
subdirs("radio")
subdirs("net")
subdirs("workload")
subdirs("core")
subdirs("dse")
