file(REMOVE_RECURSE
  "CMakeFiles/ambisim_dse.dir/dvs_schedule.cpp.o"
  "CMakeFiles/ambisim_dse.dir/dvs_schedule.cpp.o.d"
  "CMakeFiles/ambisim_dse.dir/mapping.cpp.o"
  "CMakeFiles/ambisim_dse.dir/mapping.cpp.o.d"
  "CMakeFiles/ambisim_dse.dir/pareto.cpp.o"
  "CMakeFiles/ambisim_dse.dir/pareto.cpp.o.d"
  "CMakeFiles/ambisim_dse.dir/sweep.cpp.o"
  "CMakeFiles/ambisim_dse.dir/sweep.cpp.o.d"
  "libambisim_dse.a"
  "libambisim_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
