file(REMOVE_RECURSE
  "libambisim_dse.a"
)
