# Empty dependencies file for ambisim_dse.
# This may be replaced when dependencies are built.
