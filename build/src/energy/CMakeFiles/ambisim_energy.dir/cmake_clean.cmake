file(REMOVE_RECURSE
  "CMakeFiles/ambisim_energy.dir/battery.cpp.o"
  "CMakeFiles/ambisim_energy.dir/battery.cpp.o.d"
  "CMakeFiles/ambisim_energy.dir/buffer_sim.cpp.o"
  "CMakeFiles/ambisim_energy.dir/buffer_sim.cpp.o.d"
  "CMakeFiles/ambisim_energy.dir/dpm.cpp.o"
  "CMakeFiles/ambisim_energy.dir/dpm.cpp.o.d"
  "CMakeFiles/ambisim_energy.dir/harvester.cpp.o"
  "CMakeFiles/ambisim_energy.dir/harvester.cpp.o.d"
  "CMakeFiles/ambisim_energy.dir/ledger.cpp.o"
  "CMakeFiles/ambisim_energy.dir/ledger.cpp.o.d"
  "libambisim_energy.a"
  "libambisim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
