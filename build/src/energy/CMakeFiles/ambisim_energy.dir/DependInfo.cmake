
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/battery.cpp" "src/energy/CMakeFiles/ambisim_energy.dir/battery.cpp.o" "gcc" "src/energy/CMakeFiles/ambisim_energy.dir/battery.cpp.o.d"
  "/root/repo/src/energy/buffer_sim.cpp" "src/energy/CMakeFiles/ambisim_energy.dir/buffer_sim.cpp.o" "gcc" "src/energy/CMakeFiles/ambisim_energy.dir/buffer_sim.cpp.o.d"
  "/root/repo/src/energy/dpm.cpp" "src/energy/CMakeFiles/ambisim_energy.dir/dpm.cpp.o" "gcc" "src/energy/CMakeFiles/ambisim_energy.dir/dpm.cpp.o.d"
  "/root/repo/src/energy/harvester.cpp" "src/energy/CMakeFiles/ambisim_energy.dir/harvester.cpp.o" "gcc" "src/energy/CMakeFiles/ambisim_energy.dir/harvester.cpp.o.d"
  "/root/repo/src/energy/ledger.cpp" "src/energy/CMakeFiles/ambisim_energy.dir/ledger.cpp.o" "gcc" "src/energy/CMakeFiles/ambisim_energy.dir/ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
