file(REMOVE_RECURSE
  "libambisim_energy.a"
)
