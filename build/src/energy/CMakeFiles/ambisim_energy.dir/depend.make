# Empty dependencies file for ambisim_energy.
# This may be replaced when dependencies are built.
