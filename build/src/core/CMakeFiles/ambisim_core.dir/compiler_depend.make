# Empty compiler generated dependencies file for ambisim_core.
# This may be replaced when dependencies are built.
