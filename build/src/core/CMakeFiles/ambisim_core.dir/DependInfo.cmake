
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/device_class.cpp" "src/core/CMakeFiles/ambisim_core.dir/device_class.cpp.o" "gcc" "src/core/CMakeFiles/ambisim_core.dir/device_class.cpp.o.d"
  "/root/repo/src/core/device_node.cpp" "src/core/CMakeFiles/ambisim_core.dir/device_node.cpp.o" "gcc" "src/core/CMakeFiles/ambisim_core.dir/device_node.cpp.o.d"
  "/root/repo/src/core/power_info.cpp" "src/core/CMakeFiles/ambisim_core.dir/power_info.cpp.o" "gcc" "src/core/CMakeFiles/ambisim_core.dir/power_info.cpp.o.d"
  "/root/repo/src/core/roadmap.cpp" "src/core/CMakeFiles/ambisim_core.dir/roadmap.cpp.o" "gcc" "src/core/CMakeFiles/ambisim_core.dir/roadmap.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/ambisim_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/ambisim_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ambisim_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/ambisim_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ambisim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ambisim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ambisim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ambisim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
