file(REMOVE_RECURSE
  "CMakeFiles/ambisim_core.dir/device_class.cpp.o"
  "CMakeFiles/ambisim_core.dir/device_class.cpp.o.d"
  "CMakeFiles/ambisim_core.dir/device_node.cpp.o"
  "CMakeFiles/ambisim_core.dir/device_node.cpp.o.d"
  "CMakeFiles/ambisim_core.dir/power_info.cpp.o"
  "CMakeFiles/ambisim_core.dir/power_info.cpp.o.d"
  "CMakeFiles/ambisim_core.dir/roadmap.cpp.o"
  "CMakeFiles/ambisim_core.dir/roadmap.cpp.o.d"
  "CMakeFiles/ambisim_core.dir/scenario.cpp.o"
  "CMakeFiles/ambisim_core.dir/scenario.cpp.o.d"
  "libambisim_core.a"
  "libambisim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
