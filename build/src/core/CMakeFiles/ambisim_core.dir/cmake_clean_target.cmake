file(REMOVE_RECURSE
  "libambisim_core.a"
)
