file(REMOVE_RECURSE
  "CMakeFiles/ambisim_net.dir/contention.cpp.o"
  "CMakeFiles/ambisim_net.dir/contention.cpp.o.d"
  "CMakeFiles/ambisim_net.dir/mac.cpp.o"
  "CMakeFiles/ambisim_net.dir/mac.cpp.o.d"
  "CMakeFiles/ambisim_net.dir/network_sim.cpp.o"
  "CMakeFiles/ambisim_net.dir/network_sim.cpp.o.d"
  "CMakeFiles/ambisim_net.dir/packet_sim.cpp.o"
  "CMakeFiles/ambisim_net.dir/packet_sim.cpp.o.d"
  "CMakeFiles/ambisim_net.dir/routing.cpp.o"
  "CMakeFiles/ambisim_net.dir/routing.cpp.o.d"
  "CMakeFiles/ambisim_net.dir/topology.cpp.o"
  "CMakeFiles/ambisim_net.dir/topology.cpp.o.d"
  "libambisim_net.a"
  "libambisim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambisim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
