
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/contention.cpp" "src/net/CMakeFiles/ambisim_net.dir/contention.cpp.o" "gcc" "src/net/CMakeFiles/ambisim_net.dir/contention.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/ambisim_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/ambisim_net.dir/mac.cpp.o.d"
  "/root/repo/src/net/network_sim.cpp" "src/net/CMakeFiles/ambisim_net.dir/network_sim.cpp.o" "gcc" "src/net/CMakeFiles/ambisim_net.dir/network_sim.cpp.o.d"
  "/root/repo/src/net/packet_sim.cpp" "src/net/CMakeFiles/ambisim_net.dir/packet_sim.cpp.o" "gcc" "src/net/CMakeFiles/ambisim_net.dir/packet_sim.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/ambisim_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/ambisim_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/ambisim_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/ambisim_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radio/CMakeFiles/ambisim_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ambisim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ambisim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
