# Empty compiler generated dependencies file for ambisim_net.
# This may be replaced when dependencies are built.
