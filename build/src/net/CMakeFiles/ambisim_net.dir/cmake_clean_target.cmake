file(REMOVE_RECURSE
  "libambisim_net.a"
)
