// Extension figure F11: ultra-low-voltage operation — energy per operation
// versus supply voltage, the minimum-energy point (MEP), and its shift
// with leakage population.  The keynote's microWatt node design challenge.
//
// Expected shape: energy/op falls quadratically with voltage until the
// exponentially growing cycle time makes leakage dominate; the MEP sits
// near/below Vth and moves up for leakier designs; newer process nodes
// reach lower absolute MEP energy but their MEP voltage stops scaling.
#include <iostream>

#include "ambisim/sim/ascii_plot.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/subthreshold.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

constexpr double kGatesPerOp = 1'000.0;
constexpr double kIdleGates = 100'000.0;

void print_figure() {
  const auto& n130 = tech::TechnologyLibrary::standard().node("130nm");
  const tech::SubthresholdModel model(n130);

  sim::Table a("F11a: energy per op vs supply (130 nm, 100k idle gates)",
               {"vdd_V", "fmax_kHz", "dynamic_fJ", "leakage_fJ",
                "total_fJ"});
  for (double v = 0.15; v <= n130.vdd_nominal.value() + 1e-9; v += 0.05) {
    const u::Voltage vv{v};
    const double dyn =
        kGatesPerOp * n130.gate_cap.value() * v * v * 1e15;
    const double total =
        model.energy_per_op(vv, kGatesPerOp, kIdleGates).value() * 1e15;
    a.add_row({v, model.max_frequency(vv).value() / 1e3, dyn, total - dyn,
               total});
  }
  std::cout << a << '\n';

  // The minimum-energy-point curve itself (linear V, log E).
  sim::AsciiScatter curve("F11: energy per op vs supply voltage", 64, 18,
                          /*log_x=*/false, /*log_y=*/true);
  curve.set_labels("Vdd [V]", "energy/op [J]");
  for (double v = 0.16; v <= n130.vdd_nominal.value() + 1e-9; v += 0.02) {
    const double e =
        model.energy_per_op(u::Voltage(v), kGatesPerOp, kIdleGates).value();
    curve.add(v, e, '*');
  }
  std::cout << curve << '\n';

  sim::Table b("F11b: minimum-energy point vs leakage population (130 nm)",
               {"idle_gates", "mep_V", "mep_fJ_per_op",
                "vs_nominal_ratio"});
  for (double idle : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    const auto mep = model.minimum_energy_voltage(kGatesPerOp, idle);
    const double e_mep =
        model.energy_per_op(mep, kGatesPerOp, idle).value();
    const double e_nom =
        model.energy_per_op(n130.vdd_nominal, kGatesPerOp, idle).value();
    b.add_row({idle, mep.value(), e_mep * 1e15, e_nom / e_mep});
  }
  std::cout << b << '\n';

  sim::Table c("F11c: MEP across the roadmap (100k idle gates)",
               {"node", "vth_V", "mep_V", "mep_fJ_per_op",
                "fmax_at_mep_kHz"});
  for (const auto& n : tech::TechnologyLibrary::standard().all()) {
    const tech::SubthresholdModel m(n);
    const auto mep = m.minimum_energy_voltage(kGatesPerOp, kIdleGates);
    c.add_row({n.name, n.vth.value(), mep.value(),
               m.energy_per_op(mep, kGatesPerOp, kIdleGates).value() * 1e15,
               m.max_frequency(mep).value() / 1e3});
  }
  std::cout << c << '\n';
}

void BM_mep_search(benchmark::State& state) {
  const auto& n = tech::TechnologyLibrary::standard().node("130nm");
  const tech::SubthresholdModel m(n);
  for (auto _ : state) {
    auto v = m.minimum_energy_voltage(kGatesPerOp, kIdleGates);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_mep_search);

void BM_subthreshold_energy(benchmark::State& state) {
  const auto& n = tech::TechnologyLibrary::standard().node("130nm");
  const tech::SubthresholdModel m(n);
  for (auto _ : state) {
    auto e = m.energy_per_op(u::Voltage(0.3), kGatesPerOp, kIdleGates);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_subthreshold_energy);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
