// Reproduction of Figure F6 (case study 2b): DVS energy savings versus
// available slack, and the chosen voltage trajectory along the audio task
// chain.
//
// Expected shape: savings grow steeply with slack (V^2 law) and saturate
// once every task reaches Vdd_min; beyond that extra slack buys nothing
// (and with leakage included, racing at Vdd_min then sleeping would win).
#include <iostream>

#include "ambisim/dse/dvs_schedule.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/technology.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

constexpr double kGatesPerCycle = 40e3;
constexpr double kIdleGates = 360e3;

void print_figure() {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const tech::DvsModel dvs(node, 16, 28.0);
  const auto graph = workload::audio_pipeline_graph();

  // Minimum chain latency at the fastest operating point.
  double cycles = 0.0;
  for (int t = 0; t < graph.task_count(); ++t) cycles += graph.task(t).ops;
  const u::Time t_min{cycles / dvs.fastest().frequency.value()};

  sim::Table a("F6a: DVS energy savings vs slack (audio chain, 130 nm)",
               {"slack_factor", "deadline_us", "energy_nominal_uJ",
                "energy_dvs_uJ", "savings_pct", "makespan_us"});
  for (double slack : {1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0}) {
    const u::Time deadline = t_min * slack;
    const auto r = dse::schedule_with_dvs(graph, dvs, deadline,
                                          kGatesPerCycle, kIdleGates);
    a.add_row({slack, deadline.value() * 1e6,
               r.energy_nominal.value() * 1e6, r.energy_dvs.value() * 1e6,
               r.savings * 100.0, r.makespan.value() * 1e6});
  }
  std::cout << a << '\n';

  sim::Table b("F6b: per-task operating points at slack 3.0",
               {"task", "ops", "voltage_V", "frequency_MHz"});
  const auto r3 = dse::schedule_with_dvs(graph, dvs, t_min * 3.0,
                                         kGatesPerCycle, kIdleGates);
  for (int t = 0; t < graph.task_count(); ++t) {
    b.add_row({graph.task(t).name, graph.task(t).ops,
               r3.points[static_cast<std::size_t>(t)].voltage.value(),
               r3.points[static_cast<std::size_t>(t)].frequency.value() /
                   1e6});
  }
  std::cout << b << '\n';

  sim::Table c("F6c: voltage-scaling trajectory of the DVS model",
               {"voltage_V", "frequency_MHz", "energy_per_cycle_pJ"});
  for (const auto& p : dvs.points()) {
    const u::Energy e = dvs.energy(p, 1.0, kGatesPerCycle, kIdleGates);
    c.add_row({p.voltage.value(), p.frequency.value() / 1e6,
               e.value() * 1e12});
  }
  std::cout << c << '\n';
}

void BM_dvs_schedule(benchmark::State& state) {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const tech::DvsModel dvs(node, 16, 28.0);
  const auto graph = workload::audio_pipeline_graph();
  double cycles = 0.0;
  for (int t = 0; t < graph.task_count(); ++t) cycles += graph.task(t).ops;
  const u::Time deadline{3.0 * cycles / dvs.fastest().frequency.value()};
  for (auto _ : state) {
    auto r = dse::schedule_with_dvs(graph, dvs, deadline, kGatesPerCycle,
                                    kIdleGates);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_dvs_schedule);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
