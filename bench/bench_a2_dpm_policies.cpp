// Ablation A2: dynamic power management policies for the personal node's
// radio — always-on vs timeout (swept) vs the clairvoyant oracle, on
// memoryless and bursty idle traces.
//
// Expected shape: energy falls steeply as the timeout approaches the
// break-even time and is flat/slightly rising beyond it; the break-even
// timeout stays within 2x of the oracle (competitive bound); heavy-tailed
// (bursty) traffic rewards sleeping much more than memoryless traffic at
// equal mean idleness.
#include <iostream>

#include "ambisim/energy/dpm.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
using namespace ambisim::energy;
namespace u = ambisim::units;

void print_figure() {
  const auto spec = PowerStateSpec::bluetooth_radio();
  std::cout << "bluetooth radio break-even: "
            << u::to_string(spec.break_even()) << "\n\n";

  sim::Table a("A2a: energy vs timeout (exponential idle, mean 2 s)",
               {"timeout_over_breakeven", "energy_vs_always_on",
                "energy_vs_oracle", "wakeups_per_100_periods"});
  sim::Rng rng(23);
  const auto trace = exponential_idle_trace(rng, 20'000, 2.0);
  const auto always = dpm_always_on(spec, trace);
  const auto oracle = dpm_oracle(spec, trace);
  for (double f : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 1e6}) {
    const auto r = dpm_timeout(spec, trace, spec.break_even() * f);
    a.add_row({f, r.energy_ratio_vs(always), r.energy_ratio_vs(oracle),
               100.0 * r.sleep_transitions /
                   static_cast<double>(trace.size())});
  }
  std::cout << a << '\n';

  // Traffic shape only matters when idle periods are comparable to the
  // break-even time: use mean idle ~= 1.5x break-even.
  const double be = spec.break_even().value();
  sim::Table b("A2b: traffic shape (mean idle ~= 1.5x break-even)",
               {"trace", "always_on_J", "timeout_at_breakeven_J",
                "oracle_J", "savings_pct"});
  sim::Rng rng2(29);
  const auto exp_trace = exponential_idle_trace(rng2, 20'000, 1.5 * be);
  const auto pareto =
      pareto_idle_trace(rng2, 20'000, 1.5 * be * 4.0 / 9.0, 1.8);
  for (const auto& [name, tr] :
       {std::pair<const char*, const std::vector<double>&>{"exponential",
                                                           exp_trace},
        {"pareto-1.8", pareto}}) {
    const auto aon = dpm_always_on(spec, tr);
    const auto to = dpm_timeout(spec, tr, spec.break_even());
    const auto orc = dpm_oracle(spec, tr);
    b.add_row({name, aon.energy.value(), to.energy.value(),
               orc.energy.value(),
               100.0 * (1.0 - to.energy.value() / aon.energy.value())});
  }
  std::cout << b << '\n';

  sim::Table c("A2c: per-radio break-even and savings (exp idle, mean 2 s)",
               {"radio", "break_even_ms", "timeout_savings_pct",
                "added_latency_ms_per_period"});
  for (const auto& [name, s] :
       {std::pair<const char*, PowerStateSpec>{"ulp",
                                               PowerStateSpec::ulp_radio()},
        {"bluetooth", PowerStateSpec::bluetooth_radio()},
        {"wlan", PowerStateSpec::wlan_radio()}}) {
    sim::Rng r3(31);
    const auto tr = exponential_idle_trace(r3, 10'000, 2.0);
    const auto aon = dpm_always_on(s, tr);
    const auto to = dpm_timeout(s, tr, s.break_even());
    c.add_row({name, s.break_even().value() * 1e3,
               100.0 * (1.0 - to.energy.value() / aon.energy.value()),
               to.added_latency.value() * 1e3 /
                   static_cast<double>(tr.size())});
  }
  std::cout << c << '\n';
}

void BM_dpm_timeout(benchmark::State& state) {
  const auto spec = PowerStateSpec::bluetooth_radio();
  sim::Rng rng(1);
  const auto trace = exponential_idle_trace(rng, 10'000, 2.0);
  for (auto _ : state) {
    auto r = dpm_timeout(spec, trace, spec.break_even());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_dpm_timeout);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
