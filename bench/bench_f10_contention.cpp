// Extension figure F10: channel contention in a dense ambient cell —
// ALOHA/CSMA throughput curves (analytic + Monte-Carlo) and the usable
// per-node report rate as the cell fills up.
//
// Expected shape: slotted ALOHA peaks at 1/e at G = 1, pure ALOHA at
// 1/(2e) at G = 0.5, CSMA approaches 1 for small propagation delay; the
// per-node report rate falls as 1/N.
#include <iostream>

#include "ambisim/net/contention.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
using namespace ambisim::net;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

void print_figure() {
  sim::Table a("F10a: throughput vs offered load",
               {"G", "slotted_aloha", "slotted_sim", "pure_aloha",
                "csma_a0.01"});
  sim::Rng rng(7);
  for (double g : {0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0}) {
    a.add_row({g, slotted_aloha_throughput(g),
               simulate_slotted_aloha(g, 200, 20'000, rng),
               pure_aloha_throughput(g), csma_throughput(g, 0.01)});
  }
  std::cout << a << '\n';

  sim::Table b("F10b: protocol optima",
               {"protocol", "optimal_G", "peak_throughput"});
  b.add_row({"slotted-aloha", optimal_load_slotted_aloha(),
             slotted_aloha_throughput(optimal_load_slotted_aloha())});
  b.add_row({"pure-aloha", optimal_load_pure_aloha(),
             pure_aloha_throughput(optimal_load_pure_aloha())});
  for (double prop : {0.001, 0.01, 0.1}) {
    const double g = optimal_load_csma(prop);
    b.add_row({"csma a=" + std::to_string(prop), g,
               csma_throughput(g, prop)});
  }
  std::cout << b << '\n';

  sim::Table c("F10c: usable report rate per node (100 kbps cell, 512-bit "
               "packets, slotted ALOHA)",
               {"nodes", "reports_per_node_per_s", "period_s"});
  for (int n : {5, 10, 20, 50, 100, 200}) {
    const auto r = max_report_rate_per_node(n, 100_kbps, 512_bit);
    c.add_row({static_cast<long long>(n), r.value(), 1.0 / r.value()});
  }
  std::cout << c << '\n';
}

void BM_aloha_simulation(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    auto s = simulate_slotted_aloha(1.0, static_cast<int>(state.range(0)),
                                    10'000, rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_aloha_simulation)->Arg(50)->Arg(200);

void BM_csma_optimum(benchmark::State& state) {
  for (auto _ : state) {
    auto g = optimal_load_csma(0.01);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_csma_optimum);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
