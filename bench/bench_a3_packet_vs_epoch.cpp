// Ablation A3: cross-validation of the two network simulators.
//
// The epoch-level simulator (multi-year lifetime questions) and the
// packet-level discrete-event simulator (per-packet latency/queueing) model
// the same MAC and radio; their per-packet radio energy must agree, and
// the packet simulator exposes what the epoch model abstracts away:
// latency distributions and relay queueing under load.
#include <iostream>

#include "ambisim/net/network_sim.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

void print_figure() {
  net::PacketSimConfig pcfg;
  pcfg.node_count = 40;
  pcfg.field_side = u::Length(45.0);
  pcfg.radio_range = u::Length(16.0);
  pcfg.report_period = 10_s;
  pcfg.duration = u::Time(3600.0);
  pcfg.seed = 9;

  const auto p = net::simulate_packets(pcfg);
  const radio::RadioModel radio(pcfg.radio);
  const u::Energy analytic_hop =
      pcfg.mac.tx_packet_energy(radio, pcfg.packet_bits) +
      pcfg.mac.rx_packet_energy(radio, pcfg.packet_bits);

  sim::Table a("A3a: per-delivered-packet radio energy, DES vs analytic",
               {"quantity", "value"});
  a.add_row({"delivered packets", static_cast<long long>(p.delivered)});
  a.add_row({"mean hops", p.mean_hops});
  a.add_row({"DES energy/packet (mJ)",
             p.energy_per_delivered.value() * 1e3});
  a.add_row({"analytic hop cost x mean hops (mJ)",
             analytic_hop.value() * p.mean_hops * 1e3});
  a.add_row({"ratio", p.energy_per_delivered.value() /
                          (analytic_hop.value() * p.mean_hops)});
  std::cout << a << '\n';

  sim::Table b("A3b: end-to-end latency distribution (DES only)",
               {"metric", "seconds"});
  if (!p.end_to_end_latency.empty()) {
    b.add_row({"p10", p.end_to_end_latency.percentile(10.0)});
    b.add_row({"p50", p.end_to_end_latency.median()});
    b.add_row({"p90", p.end_to_end_latency.percentile(90.0)});
    b.add_row({"p99", p.end_to_end_latency.percentile(99.0)});
    b.add_row({"max", p.end_to_end_latency.max()});
  }
  std::cout << b << '\n';

  sim::Table c("A3c: queueing under load (mean queueing delay per packet)",
               {"report_period_s", "mean_queue_s", "p99_latency_s",
                "delivery_pct"});
  for (double period : {30.0, 10.0, 5.0, 2.0, 1.0}) {
    auto cfg = pcfg;
    cfg.report_period = u::Time(period);
    cfg.duration = u::Time(1200.0);
    const auto r = net::simulate_packets(cfg);
    c.add_row({period,
               r.queueing_delay.empty() ? 0.0 : r.queueing_delay.mean(),
               r.end_to_end_latency.empty()
                   ? 0.0
                   : r.end_to_end_latency.percentile(99.0),
               100.0 * r.delivered /
                   std::max(1.0, static_cast<double>(r.generated -
                                                     r.undeliverable))});
  }
  std::cout << c << '\n';
}

void BM_packet_sim(benchmark::State& state) {
  net::PacketSimConfig cfg;
  cfg.node_count = static_cast<int>(state.range(0));
  cfg.duration = u::Time(600.0);
  for (auto _ : state) {
    auto r = net::simulate_packets(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_packet_sim)->Arg(20)->Arg(50);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
