// AIOT: wireless-power coverage vs gateway TX power.
//
// A field of battery-free backscatter tags is swept across gateway
// illuminator powers {0.5, 1, 2, 4, 8} W.  Every point runs a paired
// replication study (replication i redraws the same field layout at every
// power, so the sweep is a common-random-numbers comparison) and records
// the delivered fraction, tag coverage, charge latency, and brown-out
// availability of the charge-then-burst MAC.
//
// Emits BENCH_aiot.json and exits non-zero unless (a) the delivered
// fraction increases strictly monotonically with gateway power — more
// incident microwatts mean faster charging and a better monostatic uplink,
// so a non-monotone curve means the power-transfer plumbing is broken, not
// noisy — and (b) the replication study is checksum-identical at worker
// pools {1, 2, 8} (the exec determinism contract for the aiot engine).
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "ambisim/aiot/wpt_sim.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

constexpr std::size_t kReplications = 8;
constexpr std::uint64_t kRootSeed = 2003;
const double kGatewayWatts[] = {0.5, 1.0, 2.0, 4.0, 8.0};

aiot::WptSimConfig base_config(double tx_w) {
  aiot::WptSimConfig cfg;
  cfg.tag_count = 32;
  cfg.field_side = u::Length(30.0);
  cfg.seed = 100;  // replication 0; the study reseeds i > 0 from kRootSeed
  cfg.gateway_tx_w = tx_w;
  cfg.duration_s = 1800.0;
  return cfg;
}

struct SweepPoint {
  double tx_w = 0.0;
  double delivered_fraction = 0.0;
  double coverage_fraction = 0.0;
  double charge_latency_s = 0.0;
  double availability = 0.0;
  std::uint64_t checksum = 0;
};

SweepPoint run_point(double tx_w) {
  const auto study = aiot::run_wpt_study(base_config(tx_w), kReplications,
                                         kRootSeed);
  SweepPoint pt;
  pt.tx_w = tx_w;
  pt.delivered_fraction = study.delivered_fraction.mean();
  pt.coverage_fraction = study.coverage_fraction.mean();
  pt.charge_latency_s = study.mean_charge_latency_s.mean();
  pt.availability = study.availability.mean();
  pt.checksum = study.checksum;
  return pt;
}

void print_aiot() {
  std::vector<SweepPoint> sweep;
  sweep.reserve(std::size(kGatewayWatts));
  for (const double tx : kGatewayWatts) sweep.push_back(run_point(tx));

  sim::Table t("AIOT: coverage vs gateway TX power (32 tags, 30 m field, " +
                   std::to_string(kReplications) + " replications)",
               {"gateway_w", "delivered_frac", "coverage_frac",
                "charge_latency_s", "availability"});
  bool monotone = true;
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const SweepPoint& pt = sweep[k];
    t.add_row({pt.tx_w, pt.delivered_fraction, pt.coverage_fraction,
               pt.charge_latency_s, pt.availability});
    if (k > 0 && pt.delivered_fraction <= sweep[k - 1].delivered_fraction)
      monotone = false;
  }
  std::cout << t << "delivered fraction monotone increasing: "
            << (monotone ? "YES" : "NO") << "\n\n";

  // Determinism gate: the 2 W study must be bit-identical at pools 1/2/8.
  bool pool_identical = true;
  std::uint64_t pool1 = 0;
  for (const unsigned pool : {1u, 2u, 8u}) {
    exec::ExecConfig ec;
    ec.threads = pool;
    const auto study =
        aiot::run_wpt_study(base_config(2.0), kReplications, kRootSeed, ec);
    if (pool == 1u)
      pool1 = study.checksum;
    else if (study.checksum != pool1)
      pool_identical = false;
  }
  std::cout << "replication study checksum-identical at pools {1,2,8}: "
            << (pool_identical ? "YES" : "NO") << "\n\n";

  std::ofstream json("BENCH_aiot.json");
  json << "{\n";
  bench_util::manifest_field(json,
                             bench_util::run_manifest("aiot", kRootSeed));
  json << "  \"bench\": \"aiot\",\n"
       << "  \"replications\": " << kReplications << ",\n"
       << "  \"root_seed\": " << kRootSeed << ",\n"
       << "  \"tags\": 32,\n"
       << "  \"points\": [\n";
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const SweepPoint& pt = sweep[k];
    json << "    {\"gateway_tx_w\": " << pt.tx_w
         << ", \"delivered_fraction\": " << pt.delivered_fraction
         << ", \"coverage_fraction\": " << pt.coverage_fraction
         << ", \"charge_latency_s\": " << pt.charge_latency_s
         << ", \"availability\": " << pt.availability
         << ", \"checksum\": " << pt.checksum << "}"
         << (k + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"delivered_fraction_monotone\": "
       << (monotone ? "true" : "false") << ",\n"
       << "  \"pool_checksum_identical\": "
       << (pool_identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_aiot.json\n\n";

  if (!monotone) {
    std::cerr << "FATAL: delivered fraction did not increase monotonically "
                 "with gateway TX power\n";
    std::exit(1);
  }
  if (!pool_identical) {
    std::cerr << "FATAL: aiot replication study is pool-size dependent\n";
    std::exit(1);
  }
}

/// Microbenchmark: one wireless-power replication end to end (placement,
/// rectenna chain, link table, charge-then-burst lifecycle, stats).
void BM_wpt_sim(benchmark::State& state) {
  long long bursts = 0;
  for (auto _ : state) {
    const auto r = aiot::simulate_wpt(base_config(2.0));
    bursts += r.bursts;
  }
  benchmark::DoNotOptimize(bursts);
}
BENCHMARK(BM_wpt_sim)->Unit(benchmark::kMillisecond);

}  // namespace

AMBISIM_BENCH_MAIN(print_aiot)
