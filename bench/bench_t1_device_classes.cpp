// Reproduction of Table T1: characteristics of the three device classes —
// the canonical band/energy-source/autonomy rows plus the *measured*
// figures of the composed case-study device of each class.
#include <iostream>

#include "ambisim/core/device_node.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

void print_table() {
  sim::Table t1("T1: device-class characteristics",
                {"class", "role", "power_band", "energy_source",
                 "example", "autonomy_target"});
  for (auto cls : {core::DeviceClass::MicroWatt, core::DeviceClass::MilliWatt,
                   core::DeviceClass::Watt}) {
    const auto p = core::class_profile(cls);
    t1.add_row({to_string(cls), p.label,
                u::to_string(p.budget_low) + " .. " +
                    u::to_string(p.budget_high),
                p.energy_source, p.example_device,
                p.expected_autonomy.value() >= 1e17
                    ? std::string("continuous")
                    : u::to_string(p.expected_autonomy)});
  }
  std::cout << t1 << '\n';

  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  sim::Table t1b("T1b: measured figures of the composed devices (130 nm)",
                 {"device", "class", "avg_power", "info_rate",
                  "energy_per_bit", "autonomy", "energy_neutral"});
  for (const auto& d :
       {core::autonomous_sensor_node(node), core::personal_audio_node(node),
        core::home_media_server(node)}) {
    t1b.add_row({d.name(), to_string(d.device_class()),
                 u::to_string(d.average_power()),
                 u::to_string(d.information_rate()),
                 u::to_string(d.to_point().energy_per_bit()),
                 d.autonomy().value() >= 1e17
                     ? std::string("unlimited")
                     : u::to_string(d.autonomy()),
                 d.energy_neutral() ? std::string("yes") : std::string("no")});
  }
  std::cout << t1b << '\n';
}

void BM_classify_power(benchmark::State& state) {
  double w = 1e-7;
  for (auto _ : state) {
    auto c = core::classify_power(u::Power(w));
    benchmark::DoNotOptimize(c);
    w = w < 10.0 ? w * 1.5 : 1e-7;
  }
}
BENCHMARK(BM_classify_power);

void BM_compose_device(benchmark::State& state) {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  for (auto _ : state) {
    auto d = core::autonomous_sensor_node(node);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_compose_device);

}  // namespace

AMBISIM_BENCH_MAIN(print_table)
