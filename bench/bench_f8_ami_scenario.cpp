// Reproduction of Figure F8: the end-to-end ambient-intelligence scenario —
// a day in a home where microWatt sensors, a milliWatt personal device and
// a Watt-class server cooperate.
//
// Expected shape: the Watt-node holds the overwhelming share (>90 %) of the
// daily energy, yet feasibility is decided at the microWatt node (energy
// neutrality) and the milliWatt node (days of battery); end-to-end latency
// is dominated by the duty-cycled first hop.
#include <iostream>

#include "ambisim/core/scenario.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

void print_figure() {
  core::AmiScenarioConfig cfg;
  const auto res = core::run_ami_scenario(cfg);

  std::cout << "F8: ambient-home scenario, " << res.events
            << " context events over 24 h\n\n";

  sim::Table a("F8a: daily energy by device class",
               {"class", "energy_J", "share_pct"});
  for (const auto& [name, e] : res.class_energy.breakdown()) {
    a.add_row({name, e.value(), 100.0 * res.class_energy.share(name)});
  }
  std::cout << a << '\n';

  sim::Table b("F8b: daily energy by pipeline stage",
               {"stage", "energy_J", "share_pct"});
  for (const auto& [name, e] : res.stage_energy.breakdown()) {
    b.add_row({name, e.value(), 100.0 * res.stage_energy.share(name)});
  }
  std::cout << b << '\n';

  sim::Table c("F8c: end-to-end latency (event -> response rendering)",
               {"metric", "seconds"});
  if (!res.end_to_end_latency.empty()) {
    c.add_row({"p50", res.end_to_end_latency.median()});
    c.add_row({"p95", res.end_to_end_latency.percentile(95.0)});
    c.add_row({"max", res.end_to_end_latency.max()});
  }
  std::cout << c << '\n';

  sim::Table d("F8d: feasibility verdicts", {"check", "value"});
  d.add_row({"system average power",
             u::si_format(res.system_power.value(), "W")});
  d.add_row({"sensor avg power",
             u::si_format(res.sensor_average_power, "W")});
  d.add_row({"sensors energy-neutral",
             res.sensors_energy_neutral ? std::string("yes")
                                        : std::string("no")});
  d.add_row({"personal battery",
             std::to_string(res.personal_battery_days) + " days"});
  std::cout << d << '\n';

  sim::Table e("F8e: scaling the sensor web (events tracked per day)",
               {"sensors", "events_per_hour", "system_power_W",
                "uW_share_pct"});
  for (int sensors : {4, 8, 16, 32, 64}) {
    core::AmiScenarioConfig c2;
    c2.sensor_count = sensors;
    c2.events_per_hour = 1.5 * sensors;
    const auto r2 = core::run_ami_scenario(c2);
    e.add_row({static_cast<long long>(sensors), c2.events_per_hour,
               r2.system_power.value(),
               100.0 * r2.class_energy.share("microWatt-node")});
  }
  std::cout << e << '\n';
}

void BM_ami_scenario_day(benchmark::State& state) {
  core::AmiScenarioConfig cfg;
  cfg.sensor_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = core::run_ami_scenario(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ami_scenario_day)->Arg(8)->Arg(32);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
