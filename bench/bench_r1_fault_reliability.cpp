// R1: reliability under deterministic fault injection, per device class.
//
// For each keynote device class (microWatt autonomous, milliWatt personal,
// Watt static) the packet network is swept across a fault-intensity scale:
// every scripted fault process of the class profile — node crashes, radio
// outages, packet corruption — is intensified by the sweep factor, and the
// delivered fraction / goodput / availability are averaged over paired
// Monte-Carlo replications (replication i reuses the same seeds at every
// intensity, so the sweep is a common-random-numbers comparison).
//
// Emits BENCH_fault.json and exits non-zero if the delivered fraction
// fails to degrade monotonically with the fault rate for any class — the
// accounting ties delivered fraction to node availability, so a
// non-monotone sweep means the fault plumbing is broken, not noisy.
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <iostream>
#include <string>
#include <vector>

#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

constexpr std::size_t kReplications = 8;
constexpr std::uint64_t kRootSeed = 2003;
const double kRateScale[] = {0.0, 1.0, 2.0, 4.0, 8.0};

/// Fault environment of one device class at unit intensity.
struct ClassProfile {
  const char* label;
  int node_count;
  double crash_mttf_s;   ///< scaled down by the sweep factor
  double crash_mttr_s;
  double link_mtbf_s;    ///< scaled down by the sweep factor
  double link_mttr_s;
  double corruption;     ///< scaled up by the sweep factor
  bool energy_coupled;   ///< microWatt nodes also live off a harvester
};

// The autonomous node crashes most (marginal energy, no maintenance), the
// personal node sits in the middle, the mains-powered static node fails
// rarely but still loses its radio to the shared spectrum.
const ClassProfile kClasses[] = {
    {"microwatt-autonomous", 40, 1800.0, 150.0, 1600.0, 45.0, 0.010, true},
    {"milliwatt-personal", 30, 2400.0, 180.0, 2400.0, 60.0, 0.005, false},
    {"watt-static", 20, 4800.0, 240.0, 3200.0, 90.0, 0.002, false},
};

net::PacketSimConfig make_config(const ClassProfile& p, double scale,
                                 std::size_t rep) {
  net::PacketSimConfig cfg;
  cfg.node_count = p.node_count;
  cfg.field_side = u::Length(10.0 + 5.5 * p.node_count / 5.0);
  cfg.radio_range = u::Length(16.0);
  cfg.report_period = u::Time(10.0);
  cfg.duration = u::Time(1800.0);
  cfg.seed = static_cast<unsigned>(100 + rep);  // paired across intensities

  net::PacketFaultConfig f;
  f.schedule.seed = 7000 + rep;
  if (scale > 0.0) {
    f.schedule.crash_mttf_s = p.crash_mttf_s / scale;
    f.schedule.crash_mttr_s = p.crash_mttr_s;
    f.schedule.link_mtbf_s = p.link_mtbf_s / scale;
    f.schedule.link_mttr_s = p.link_mttr_s;
    f.schedule.corruption_rate = p.corruption * scale;
  }
  if (p.energy_coupled) {
    f.energy = fault::EnergyCouplingConfig{};
    f.energy->battery = energy::Battery::thin_film_1mAh();
    f.energy->harvest_avg_watt = 40e-6;
    f.energy->baseline_watt = 30e-6;
    f.energy->initial_soc = 0.5;
    f.energy->update_period_s = 5.0;
  }
  cfg.faults = f;
  return cfg;
}

struct SweepPoint {
  double scale = 0.0;
  double delivered_fraction = 0.0;
  double goodput_fraction = 0.0;
  double availability = 0.0;
  double mttf_s = 0.0;
  double mttr_s = 0.0;
};

SweepPoint run_point(const ClassProfile& p, double scale) {
  const auto study = fault::run_availability_study(
      kReplications, kRootSeed,
      [&p, scale](sim::Rng&, std::size_t rep) {
        const auto r = net::simulate_packets(make_config(p, scale, rep));
        fault::ReliabilitySample s;
        s.delivered_fraction = r.delivered_fraction();
        s.goodput_fraction = r.goodput_fraction();
        s.availability = r.availability;
        s.mttf_s = r.mttf_s;
        s.mttr_s = r.mttr_s;
        s.generated = r.generated;
        s.delivered = r.delivered;
        s.lost = r.lost();
        s.delayed = r.delayed;
        s.retries = r.retries;
        return s;
      });
  SweepPoint pt;
  pt.scale = scale;
  pt.delivered_fraction = study.delivered_fraction.mean();
  pt.goodput_fraction = study.goodput_fraction.mean();
  pt.availability = study.availability.mean();
  pt.mttf_s = study.mttf_s.mean();
  pt.mttr_s = study.mttr_s.mean();
  return pt;
}

void print_r1() {
  std::vector<std::vector<SweepPoint>> sweeps;
  bool all_monotone = true;

  for (const ClassProfile& p : kClasses) {
    std::vector<SweepPoint> sweep;
    sweep.reserve(std::size(kRateScale));
    for (double scale : kRateScale) sweep.push_back(run_point(p, scale));

    sim::Table t(std::string("R1: reliability vs fault intensity — ") +
                     p.label + " (" + std::to_string(kReplications) +
                     " replications)",
                 {"fault_scale", "delivered_frac", "goodput_frac",
                  "availability", "mttf_s", "mttr_s"});
    bool monotone = true;
    for (std::size_t k = 0; k < sweep.size(); ++k) {
      const SweepPoint& pt = sweep[k];
      t.add_row({pt.scale, pt.delivered_fraction, pt.goodput_fraction,
                 pt.availability, pt.mttf_s, pt.mttr_s});
      if (k > 0 &&
          pt.delivered_fraction >= sweep[k - 1].delivered_fraction)
        monotone = false;
    }
    std::cout << t << "delivered fraction monotone decreasing: "
              << (monotone ? "YES" : "NO") << "\n\n";
    all_monotone = all_monotone && monotone;
    sweeps.push_back(std::move(sweep));
  }

  std::ofstream json("BENCH_fault.json");
  json << "{\n";
  bench_util::manifest_field(json,
                             bench_util::run_manifest("fault", kRootSeed));
  json << "  \"bench\": \"fault\",\n"
       << "  \"replications\": " << kReplications << ",\n"
       << "  \"root_seed\": " << kRootSeed << ",\n"
       << "  \"classes\": [\n";
  for (std::size_t c = 0; c < sweeps.size(); ++c) {
    json << "    {\n      \"label\": \"" << kClasses[c].label << "\",\n"
         << "      \"nodes\": " << kClasses[c].node_count << ",\n"
         << "      \"points\": [\n";
    for (std::size_t k = 0; k < sweeps[c].size(); ++k) {
      const SweepPoint& pt = sweeps[c][k];
      json << "        {\"fault_scale\": " << pt.scale
           << ", \"delivered_fraction\": " << pt.delivered_fraction
           << ", \"goodput_fraction\": " << pt.goodput_fraction
           << ", \"availability\": " << pt.availability
           << ", \"mttf_s\": " << pt.mttf_s
           << ", \"mttr_s\": " << pt.mttr_s << "}"
           << (k + 1 < sweeps[c].size() ? "," : "") << "\n";
    }
    json << "      ]\n    }" << (c + 1 < sweeps.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"delivered_fraction_monotone\": "
       << (all_monotone ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_fault.json\n\n";

  if (!all_monotone) {
    std::cerr << "FATAL: delivered fraction did not degrade monotonically "
                 "with fault intensity\n";
    std::exit(1);
  }
}

/// Microbenchmark: one faulty replication end to end (schedule generation,
/// injection, retries, re-routing, stats) at unit intensity.
void BM_faulty_packet_sim(benchmark::State& state) {
  const ClassProfile& p = kClasses[1];
  long long delivered = 0;
  for (auto _ : state) {
    const auto r = net::simulate_packets(make_config(p, 1.0, 0));
    delivered += r.delivered;
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_faulty_packet_sim)->Unit(benchmark::kMillisecond);

}  // namespace

AMBISIM_BENCH_MAIN(print_r1)
