// Event-kernel characterization: serial events/second of the slab-pooled
// SBO kernel versus the preserved pre-pool reference kernel (shared_ptr
// flag + std::function + copy-on-top priority_queue), on an identical
// schedule/fire/cancel workload with self-extending event chains.
//
// Emits BENCH_kernel.json with both throughputs, the speedup, and a
// bit-identity verdict: an order-sensitive checksum over the firing
// sequence must match between the two kernels — the rewrite is only a
// rewrite if the observable schedule is untouched.  A packet-level macro
// run (one simulated hour of the A3 network) is timed on the production
// kernel as the end-to-end sanity figure.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "../tests/support/reference_kernel.hpp"
#include "ambisim/exec/seed.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/sim/random.hpp"
#include "ambisim/sim/simulator.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

// A few hundred concurrent events with self-extending chains: the
// steady-state population of the packet/network simulators (a handful of
// pending timers per node across 28-100 node fields), where per-event
// bookkeeping — not heap depth — is the cost that separates the kernels.
constexpr int kRoots = 256;          ///< events seeded up front per rep
constexpr std::int64_t kMaxChain = 240;  ///< follow-up events per root
constexpr double kCancelFrac = 0.2;  ///< roots cancelled before running
constexpr int kReps = 16;            ///< fresh-simulator repetitions

/// A self-extending event: fires, folds its id into the order-sensitive
/// checksum, and schedules its successor until the chain runs out.  40
/// bytes of state — inside the pooled kernel's inline budget, a heap
/// allocation per event on the reference kernel.
template <typename Sim>
struct Chain {
  Sim* s;
  std::uint64_t* h;
  std::uint64_t* fired;
  std::int64_t id;
  std::int64_t remaining;
  void operator()() const {
    ++*fired;
    *h = exec::splitmix64(*h ^ static_cast<std::uint64_t>(id));
    if (remaining > 0)
      s->schedule_in(u::Time(0.0625),
                     Chain{s, h, fired, id + 1000000, remaining - 1});
  }
};

struct WorkloadResult {
  std::uint64_t fired = 0;
  std::uint64_t checksum = 0;
  double wall_s = 0.0;
};

/// One repetition's script, drawn before the clock starts so the timed
/// region contains only kernel operations (schedule, cancel, fire), not
/// the RNG that generated the workload.
struct Plan {
  std::vector<double> time;
  std::vector<std::int64_t> chain;
  std::vector<char> cancel;
};

Plan make_plan(unsigned seed) {
  sim::Rng rng(seed);
  Plan p;
  p.time.reserve(kRoots);
  p.chain.reserve(kRoots);
  p.cancel.reserve(kRoots);
  for (int i = 0; i < kRoots; ++i) {
    // Quantized times: heavy (time, seq) tie-breaking in the heap.
    p.time.push_back(static_cast<double>(rng.uniform_int(0, 999)) * 0.001);
    p.chain.push_back(rng.uniform_int(0, kMaxChain));
  }
  for (int i = 0; i < kRoots; ++i)
    p.cancel.push_back(rng.bernoulli(kCancelFrac) ? 1 : 0);
  return p;
}

/// One full repetition on a fresh kernel: seed kRoots events, cancel the
/// scripted subset, then drain.  Identical script for both kernels.
template <typename Sim>
WorkloadResult run_workload(const Plan& plan) {
  WorkloadResult res;
  std::vector<decltype(std::declval<Sim&>().schedule_at(
      u::Time(0.0), Chain<Sim>{}))> handles;
  handles.reserve(plan.time.size());
  const auto t0 = std::chrono::steady_clock::now();
  Sim s;
  for (std::size_t i = 0; i < plan.time.size(); ++i) {
    handles.push_back(s.schedule_at(
        u::Time(plan.time[i]),
        Chain<Sim>{&s, &res.checksum, &res.fired,
                   static_cast<std::int64_t>(i), plan.chain[i]}));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (plan.cancel[i]) handles[i].cancel();
  }
  s.run();
  res.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  return res;
}

struct Measurement {
  std::uint64_t fired = 0;      ///< events fired across all reps
  std::uint64_t checksum = 0;   ///< reps folded in order
  double best_events_per_s = 0; ///< best single rep (noise-immune)
  double total_wall_s = 0;
};

template <typename Sim>
Measurement measure() {
  Measurement m;
  for (int rep = 0; rep < kReps; ++rep) {
    const WorkloadResult r = run_workload<Sim>(make_plan(1000u + rep));
    m.fired += r.fired;
    m.total_wall_s += r.wall_s;
    // Best rep, not the sum: on a shared single-core host any rep can eat
    // a scheduling hiccup, and one quiet rep per kernel is the honest
    // throughput of the code itself.
    const double eps = static_cast<double>(r.fired) / r.wall_s;
    if (eps > m.best_events_per_s) m.best_events_per_s = eps;
    // Fold the per-rep checksum in sequence so reps must match pairwise.
    m.checksum = exec::splitmix64(m.checksum ^ r.checksum);
  }
  return m;
}

void print_figure() {
  const Measurement legacy = measure<sim::reference::ReferenceSimulator>();
  const Measurement pooled = measure<sim::Simulator>();

  const double legacy_eps = legacy.best_events_per_s;
  const double pooled_eps = pooled.best_events_per_s;
  const double speedup = pooled_eps / legacy_eps;
  const bool match =
      legacy.checksum == pooled.checksum && legacy.fired == pooled.fired;

  // Macro case: one simulated hour of the A3 packet network on the
  // production kernel (the reference kernel no longer backs packet_sim).
  net::PacketSimConfig macro;
  macro.node_count = 28;
  macro.field_side = u::Length(40.0);
  macro.radio_range = u::Length(16.0);
  macro.report_period = u::Time(10.0);
  macro.duration = u::Time(3600.0);
  macro.seed = 11;
  const auto m0 = std::chrono::steady_clock::now();
  const net::PacketSimResult mres = net::simulate_packets(macro);
  const double macro_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - m0)
                             .count();

  sim::Table t("K1: event kernel throughput (serial, best of " +
                   std::to_string(kReps) + " reps)",
               {"kernel", "events", "wall_s", "events_per_s", "speedup"});
  t.add_row({std::string("reference"),
             static_cast<long long>(legacy.fired), legacy.total_wall_s,
             legacy_eps, 1.0});
  t.add_row({std::string("pooled"), static_cast<long long>(pooled.fired),
             pooled.total_wall_s, pooled_eps, speedup});
  std::cout << t << '\n';
  std::cout << "firing-order checksum: "
            << (match ? "IDENTICAL" : "MISMATCH") << '\n';
  std::cout << "macro packet_sim (1 h, " << macro.node_count
            << " nodes): " << macro_s << " s, " << mres.generated
            << " packets generated, " << mres.delivered << " delivered\n";

  std::ofstream json("BENCH_kernel.json");
  json << "{\n";
  bench_util::manifest_field(json,
                             bench_util::run_manifest("kernel", 1000));
  json << "  \"bench\": \"kernel\",\n"
       << "  \"roots_per_rep\": " << kRoots << ",\n"
       << "  \"cancel_fraction\": " << kCancelFrac << ",\n"
       << "  \"reps\": " << kReps << ",\n"
       << "  \"legacy_events\": " << legacy.fired << ",\n"
       << "  \"legacy_wall_s\": " << legacy.total_wall_s << ",\n"
       << "  \"legacy_events_per_s\": " << legacy_eps << ",\n"
       << "  \"new_events\": " << pooled.fired << ",\n"
       << "  \"new_wall_s\": " << pooled.total_wall_s << ",\n"
       << "  \"new_events_per_s\": " << pooled_eps << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"checksum_match\": " << (match ? "true" : "false") << ",\n"
       << "  \"macro_packet_sim_wall_s\": " << macro_s << ",\n"
       << "  \"macro_packets_generated\": " << mres.generated << ",\n"
       << "  \"macro_packets_delivered\": " << mres.delivered << "\n"
       << "}\n";
  std::cout << "wrote BENCH_kernel.json\n\n";

  if (!match) {
    std::cerr << "FATAL: kernel firing order diverged from reference\n";
    std::exit(1);
  }
}

template <typename Sim>
void run_micro(benchmark::State& state) {
  const int roots = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    Sim s;
    std::uint64_t h = 0;
    std::uint64_t fired = 0;
    for (int i = 0; i < roots; ++i)
      s.schedule_at(u::Time((i % 1000) * 0.001),
                    Chain<Sim>{&s, &h, &fired, i, i % 4});
    s.run();
    benchmark::DoNotOptimize(h);
    events += fired;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_kernel_pooled(benchmark::State& state) {
  run_micro<sim::Simulator>(state);
}
void BM_kernel_reference(benchmark::State& state) {
  run_micro<sim::reference::ReferenceSimulator>(state);
}
BENCHMARK(BM_kernel_pooled)->Arg(1000)->Arg(10000);
BENCHMARK(BM_kernel_reference)->Arg(1000)->Arg(10000);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
