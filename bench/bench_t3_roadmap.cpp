// Reproduction table T3: the ambient-intelligence feasibility roadmap —
// the first process generation in which each function fits each device
// class.
//
// Expected shape: functions cascade downward through the classes over the
// years (what needs a Watt-node in 1995 fits a milliWatt-node by the early
// 2000s); video never reaches the microWatt class on this roadmap (its
// stream alone exceeds the ULP radio); sensing is microWatt-feasible from
// the very first generation.
#include <iostream>
#include <vector>

#include "ambisim/core/roadmap.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

std::vector<workload::StreamingWorkload> functions() {
  return {workload::sensing(u::Frequency(1.0)),
          workload::speech_frontend(),
          workload::audio_playback(128_kbps),
          workload::video_decode_sd(),
          workload::video_decode_hd()};
}

void print_table() {
  const auto fns = functions();
  const auto roadmap = core::feasibility_roadmap(fns);

  sim::Table a("T3a: first feasible generation per (function, class)",
               {"function", "microWatt-node", "milliWatt-node",
                "Watt-node"});
  for (const auto& wl : fns) {
    std::vector<std::string> cells;
    for (auto cls : {core::DeviceClass::MicroWatt,
                     core::DeviceClass::MilliWatt, core::DeviceClass::Watt}) {
      for (const auto& e : roadmap) {
        if (e.function == wl.name && e.cls == cls) {
          cells.push_back(e.first_year
                              ? e.first_node + " (" +
                                    std::to_string(*e.first_year) + ")"
                              : std::string("never"));
        }
      }
    }
    a.add_row({wl.name, cells.at(0), cells.at(1), cells.at(2)});
  }
  std::cout << a << '\n';

  sim::Table b("T3b: why speech fails the microWatt class (per node)",
               {"node", "compute_ok", "radio_ok", "power_uW", "power_ok"});
  const auto speech = workload::speech_frontend();
  for (const auto& n : tech::TechnologyLibrary::standard().all()) {
    const auto v = core::function_feasibility(
        speech, core::DeviceClass::MicroWatt, n);
    b.add_row({n.name, v.compute_ok ? "yes" : "no",
               v.radio_ok ? "yes" : "no",
               v.feasible || v.power.value() > 0.0 ? v.power.value() * 1e6
                                                   : 0.0,
               v.power_ok ? "yes" : "no"});
  }
  std::cout << b << '\n';
}

void BM_roadmap(benchmark::State& state) {
  const auto fns = functions();
  for (auto _ : state) {
    auto r = core::feasibility_roadmap(fns);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_roadmap);

}  // namespace

AMBISIM_BENCH_MAIN(print_table)
