// exec speedup characterization: wall-clock for one fixed sweep of 256
// independent packet-level network design points (the discrete-event
// simulator, ~5 ms each), run serially and on the ParallelSweepRunner at
// pool sizes {1, 2, hardware_concurrency}.
//
// Emits BENCH_exec_speedup.json with the measured wall times, the speedup
// relative to the serial loop, and a bit-identity verdict (a checksum over
// every result's raw double bits must match the serial run exactly —
// determinism is part of what this bench certifies, not just speed).
// Acceptance target: >= 2x at 4+ hardware threads; on narrower hosts the
// JSON still records the (necessarily ~1x) measurement.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "ambisim/exec/runner.hpp"
#include "ambisim/exec/seed.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

constexpr std::size_t kDesignPoints = 256;

std::vector<net::PacketSimConfig> fixed_sweep() {
  std::vector<net::PacketSimConfig> cfgs;
  cfgs.reserve(kDesignPoints);
  for (std::size_t i = 0; i < kDesignPoints; ++i) {
    net::PacketSimConfig cfg;
    cfg.node_count = 24 + static_cast<int>(i % 8);
    cfg.field_side = u::Length(40.0);
    cfg.radio_range = u::Length(16.0);
    cfg.report_period = u::Time(10.0);
    cfg.duration = u::Time(3600.0);  // one simulated hour per point
    cfg.seed = static_cast<unsigned>(exec::derive_seed(11, i));
    cfgs.push_back(cfg);
  }
  return cfgs;
}

net::PacketSimResult eval(const net::PacketSimConfig& cfg) {
  return net::simulate_packets(cfg);
}

/// Order-sensitive checksum over the raw bits of every result's key
/// doubles: any deviation from the serial run — value or order — changes it.
std::uint64_t checksum(const std::vector<net::PacketSimResult>& results) {
  std::uint64_t h = 0;
  auto fold = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    h = exec::splitmix64(h ^ bits);
  };
  for (const auto& r : results) {
    fold(static_cast<double>(r.generated));
    fold(static_cast<double>(r.delivered));
    fold(r.mean_hops);
    fold(r.end_to_end_latency.empty() ? 0.0 : r.end_to_end_latency.mean());
    fold(r.energy_per_delivered.value());
  }
  return h;
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_figure() {
  const auto cfgs = fixed_sweep();

  std::vector<net::PacketSimResult> serial_results;
  const double serial_s = wall_seconds([&] {
    serial_results.resize(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
      serial_results[i] = eval(cfgs[i]);
  });
  const std::uint64_t serial_sum = checksum(serial_results);

  std::vector<unsigned> pool_sizes{1, 2};
  const unsigned hw = exec::ThreadPool::hardware_threads();
  if (hw != 1 && hw != 2) pool_sizes.push_back(hw);

  struct Measurement {
    unsigned threads = 0;
    double wall_s = 0.0;
    bool bit_identical = false;
  };
  std::vector<Measurement> measurements;
  for (unsigned threads : pool_sizes) {
    exec::ParallelSweepRunner runner({.threads = threads});
    std::vector<net::PacketSimResult> results;
    const double secs = wall_seconds([&] { results = runner.run(cfgs, eval); });
    measurements.push_back({threads, secs, checksum(results) == serial_sum});
  }

  sim::Table t("EX1: parallel sweep speedup (256 design points)",
               {"threads", "wall_s", "speedup", "bit_identical"});
  t.add_row({std::string("serial"), serial_s, 1.0, std::string("yes")});
  for (const auto& m : measurements)
    t.add_row({static_cast<long long>(m.threads), m.wall_s,
               serial_s / m.wall_s,
               std::string(m.bit_identical ? "yes" : "NO")});
  std::cout << t << '\n';

  std::ofstream json("BENCH_exec_speedup.json");
  json << "{\n";
  bench_util::manifest_field(json,
                             bench_util::run_manifest("exec_speedup", 11, hw));
  json << "  \"bench\": \"exec_speedup\",\n"
       << "  \"design_points\": " << kDesignPoints << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"serial_wall_s\": " << serial_s << ",\n"
       << "  \"pools\": [";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const auto& m = measurements[i];
    json << (i ? "," : "") << "\n    {\"threads\": " << m.threads
         << ", \"wall_s\": " << m.wall_s
         << ", \"speedup\": " << serial_s / m.wall_s
         << ", \"bit_identical\": " << (m.bit_identical ? "true" : "false")
         << "}";
  }
  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_exec_speedup.json\n\n";
}

void BM_pool_fanout_overhead(benchmark::State& state) {
  exec::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    exec::parallel_for(pool, 1024, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_pool_fanout_overhead)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
