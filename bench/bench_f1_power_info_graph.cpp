// Reproduction of Figure F1: the power-information graph.
//
// Series 1: the standard technology catalogue (components at full rate).
// Series 2: the three composed case-study devices across process nodes.
// Summary: per-device-class cluster statistics (three bands separated by
// orders of magnitude in power) and the global log-log power~rate fit.
#include <cmath>
#include <iostream>

#include "ambisim/core/device_node.hpp"
#include "ambisim/core/power_info.hpp"
#include "ambisim/dse/sweep.hpp"
#include "ambisim/sim/ascii_plot.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;

void print_figure() {
  const auto graph = core::PowerInfoGraph::standard_catalogue();
  std::cout << graph.to_table("F1a: technology catalogue on the power-information plane")
            << '\n';

  sim::Table devices("F1b: composed ambient devices (per process node)",
                     {"device", "process", "power_W", "info_rate_bps",
                      "energy_per_bit_J", "device_class"});
  // Composing a device per (process node, device template) pair is an
  // embarrassingly parallel 3x3 sweep: fan it out, then add the points to
  // the table and graph serially in input order.
  struct Combo {
    const char* process;
    int device;
  };
  std::vector<Combo> combos;
  for (const auto* name : {"180nm", "130nm", "90nm"})
    for (int d = 0; d < 3; ++d) combos.push_back({name, d});
  const auto device_points =
      dse::parallel_sweep(combos, [](const Combo& combo) {
        const auto& node =
            tech::TechnologyLibrary::standard().node(combo.process);
        switch (combo.device) {
          case 0: return core::autonomous_sensor_node(node).to_point();
          case 1: return core::personal_audio_node(node).to_point();
          default: return core::home_media_server(node).to_point();
        }
      });
  core::PowerInfoGraph device_graph;
  for (const auto& p : device_points) {
    devices.add_row({p.name, p.process, p.power.value(),
                     p.info_rate.value(), p.energy_per_bit().value(),
                     to_string(p.device_class())});
    device_graph.add(p);
  }
  std::cout << devices << '\n';

  sim::Table clusters("F1c: device-class clusters (composed devices)",
                      {"class", "count", "centroid_log10_P",
                       "centroid_log10_R", "min_J_per_bit", "max_J_per_bit"});
  for (auto cls : {core::DeviceClass::MicroWatt, core::DeviceClass::MilliWatt,
                   core::DeviceClass::Watt}) {
    const auto s = device_graph.cluster(cls);
    clusters.add_row({to_string(cls), static_cast<long long>(s.count),
                      s.mean_log10_power, s.mean_log10_rate,
                      s.min_epb.value(), s.max_epb.value()});
  }
  std::cout << clusters << '\n';

  // The figure itself: the log-log power-information plane.  Glyphs:
  // c = compute, r = radio, i = interface, s = storage; u/m/W = the three
  // composed device classes.
  sim::AsciiScatter plot(
      "F1: the power-information graph (log-log)", 72, 26);
  plot.set_labels("information rate [bit/s]", "power [W]");
  for (const auto& p : graph.points()) {
    char g = '?';
    switch (p.kind) {
      case core::TechnologyKind::Compute: g = 'c'; break;
      case core::TechnologyKind::Communication: g = 'r'; break;
      case core::TechnologyKind::Interface: g = 'i'; break;
      case core::TechnologyKind::Storage: g = 's'; break;
    }
    plot.add(p.info_rate.value(), p.power.value(), g);
  }
  for (const auto& p : device_graph.points()) {
    char g = 'u';
    if (p.device_class() == core::DeviceClass::MilliWatt) g = 'm';
    if (p.device_class() == core::DeviceClass::Watt) g = 'W';
    plot.add(p.info_rate.value(), p.power.value(), g);
  }
  std::cout << plot << '\n';

  const auto fit = graph.loglog_fit();
  std::cout << "F1d: catalogue log-log fit  log10(P) = " << fit.intercept
            << " + " << fit.slope << " * log10(R), R^2 = " << fit.r2
            << "\n\n";
}

void BM_catalogue_build(benchmark::State& state) {
  for (auto _ : state) {
    auto g = core::PowerInfoGraph::standard_catalogue();
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_catalogue_build);

void BM_cluster_stats(benchmark::State& state) {
  const auto g = core::PowerInfoGraph::standard_catalogue();
  for (auto _ : state) {
    auto s = g.cluster(core::DeviceClass::MilliWatt);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_cluster_stats);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
