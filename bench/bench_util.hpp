// Shared helper for the reproduction benches: every bench binary first
// prints the figure/table it regenerates (rows/series exactly as recorded in
// EXPERIMENTS.md), then runs its google-benchmark microbenchmarks.
#pragma once

#include <benchmark/benchmark.h>

#define AMBISIM_BENCH_MAIN(print_fn)                          \
  int main(int argc, char** argv) {                           \
    print_fn();                                               \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    return 0;                                                 \
  }
