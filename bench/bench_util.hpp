// Shared helper for the reproduction benches: every bench binary first
// prints the figure/table it regenerates (rows/series exactly as recorded in
// EXPERIMENTS.md), then runs its google-benchmark microbenchmarks.
//
// Observability hooks (all opt-in via the environment):
//  * AMBISIM_OBS=1 arms the probes for the whole binary; the metrics
//    registry is dumped as CSV on stderr after the benchmarks finish.
//  * AMBISIM_OBS_JSON=<path> additionally dumps the whole flight recorder
//    as one JSON object — run manifest, metrics, per-node timeline series,
//    and the trace ring (Chrome trace_event array, flow links included).
//
// Every BENCH_*.json artifact embeds a RunManifest (via manifest_field) so
// a stray artifact can always be traced back to the source revision, build
// flags, seed, and pool size that produced it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "ambisim/obs/manifest.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/obs/profiler.hpp"

namespace ambisim::bench_util {

inline void obs_setup_from_env() {
  const char* v = std::getenv("AMBISIM_OBS");
  if (v != nullptr && *v != '\0' && *v != '0') ::ambisim::obs::set_enabled(true);
}

/// Build-side manifest plus the run-side fields every bench knows.
inline ::ambisim::obs::RunManifest run_manifest(const char* label,
                                                std::uint64_t seed = 0,
                                                unsigned pool_size = 0) {
  auto m = ::ambisim::obs::RunManifest::collect();
  m.label = label;
  m.seed = seed;
  m.pool_size = pool_size;
  return m;
}

/// Emit `  "manifest": {...},` — the provenance stanza every BENCH_*.json
/// carries right after its opening brace.
inline void manifest_field(std::ostream& json,
                           const ::ambisim::obs::RunManifest& m) {
  json << "  \"manifest\": ";
  m.write_json(json, 2);
  json << ",\n";
}

/// Emit `  "profile": {...},` — the wall-clock execution profile stanza.
/// tools/bench_compare.py quarantines the whole "profile" subtree from
/// baseline gating, so a bench can embed timing attribution next to its
/// gated fields without destabilizing the baseline.
inline void profile_field(std::ostream& json,
                          const ::ambisim::obs::Profiler& prof,
                          const ::ambisim::obs::RunManifest* m = nullptr) {
  json << "  \"profile\": ";
  prof.write_json(json, 2, m);
  json << ",\n";
}

/// One JSON object with everything the flight recorder holds.  Timeline
/// series are exported as [t, value] pair arrays keyed by (name, node);
/// the trace ring uses the Chrome trace_event format so the "trace" value
/// can be pasted straight into Perfetto.
inline void write_obs_json(std::ostream& os,
                           const ::ambisim::obs::RunManifest& m) {
  const auto& ctx = ::ambisim::obs::context();
  os << "{\n  \"manifest\": ";
  m.write_json(os, 2);
  os << ",\n  \"metrics\": ";
  ctx.metrics.write_json(os, 2);
  os << ",\n  \"timeline\": [";
  const auto entries = ctx.timeline.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << *e.name
       << "\", \"node\": " << e.node << ", \"samples\": [";
    const auto& samples = e.series->samples();
    for (std::size_t k = 0; k < samples.size(); ++k)
      os << (k ? "," : "") << '[' << samples[k].t_s << ','
         << samples[k].value << ']';
    os << "]}";
  }
  os << "\n  ],\n  \"trace\": ";
  ctx.tracer.write_chrome_json(os);
  os << "\n}\n";
}

inline void obs_report(const char* label = "bench") {
  if (!::ambisim::obs::enabled()) return;
  std::cerr << "\n--- ambisim obs metrics ---\n";
  ::ambisim::obs::context().metrics.write_csv(std::cerr);
  const auto& tracer = ::ambisim::obs::context().tracer;
  std::cerr << "--- trace: " << tracer.size() << " events kept, "
            << tracer.dropped() << " dropped ---\n";
  const auto& timeline = ::ambisim::obs::context().timeline;
  std::cerr << "--- timeline: " << timeline.series_count() << " series, "
            << timeline.sample_count() << " samples ---\n";

  const char* path = std::getenv("AMBISIM_OBS_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not open AMBISIM_OBS_JSON path: " << path << '\n';
    return;
  }
  write_obs_json(os, run_manifest(label));
  std::cerr << "wrote obs dump: " << path << '\n';
}

}  // namespace ambisim::bench_util

#define AMBISIM_BENCH_MAIN(print_fn)                          \
  int main(int argc, char** argv) {                           \
    ::ambisim::bench_util::obs_setup_from_env();              \
    print_fn();                                               \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    ::ambisim::bench_util::obs_report(#print_fn);             \
    return 0;                                                 \
  }
