// Shared helper for the reproduction benches: every bench binary first
// prints the figure/table it regenerates (rows/series exactly as recorded in
// EXPERIMENTS.md), then runs its google-benchmark microbenchmarks.
//
// Set AMBISIM_OBS=1 in the environment to arm the observability probes for
// the whole binary; the metrics registry is then dumped as CSV on stderr
// after the benchmarks finish.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "ambisim/obs/obs.hpp"

namespace ambisim::bench_util {

inline void obs_setup_from_env() {
  const char* v = std::getenv("AMBISIM_OBS");
  if (v != nullptr && *v != '\0' && *v != '0') ::ambisim::obs::set_enabled(true);
}

inline void obs_report() {
  if (!::ambisim::obs::enabled()) return;
  std::cerr << "\n--- ambisim obs metrics ---\n";
  ::ambisim::obs::context().metrics.write_csv(std::cerr);
  const auto& tracer = ::ambisim::obs::context().tracer;
  std::cerr << "--- trace: " << tracer.size() << " events kept, "
            << tracer.dropped() << " dropped ---\n";
}

}  // namespace ambisim::bench_util

#define AMBISIM_BENCH_MAIN(print_fn)                          \
  int main(int argc, char** argv) {                           \
    ::ambisim::bench_util::obs_setup_from_env();              \
    print_fn();                                               \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    ::ambisim::bench_util::obs_report();                      \
    return 0;                                                 \
  }
