// PROFILE: the obs::Profiler purity and structure gates, plus paired A/B
// microbenchmarks for its overhead.
//
// Two claims are enforced, both load-bearing for the profiling layer:
//
//  1. Purity — attaching a Profiler to a sharded packet run changes
//     nothing: at shards {1, 4} the profiled run's checksum equals the
//     unprofiled run's checksum equals the serial oracle's.  Any
//     divergence exits non-zero before a baseline is written.
//
//  2. Structure — the profile is internally consistent with the engine's
//     own counters: windows recorded == result windows, boundary packets
//     rescheduled == result boundary messages, per-shard executed events
//     sum to the result total, the pool reports exactly `pool` workers,
//     and (grain 1) their task counts sum to windows x shards.  These
//     equalities are machine-independent, so BENCH_profile.json gates
//     them; every wall-clock quantity lives under `profile` / `*_wall_s`
//     / `imbalance` and is ignored by tools/bench_compare.py.
//
// The structural fields written to JSON are computed from the engine
// result (identical whether observability is compiled in or out); the
// profiler-side equalities are asserted only when AMBISIM_OBS_COMPILED,
// so a -DAMBISIM_OBS_DISABLED build emits byte-compatible gated fields.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string_view>
#include <vector>

#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/shard/engine.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"
#include "benchmark/benchmark.h"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

constexpr std::uint64_t kSeed = 2010;
constexpr int kNodes = 512;
constexpr int kPool = 4;
const int kShardCounts[] = {1, 4};

/// Same shape as bench_city's packet phase: one 2 s collection burst,
/// multi-hop to the sink, sparse expected-ARQ link errors.
net::PacketSimConfig workload(int n) {
  net::PacketSimConfig cfg;
  cfg.node_count = n;
  cfg.field_side = u::Length(6.0 * 22.7);  // ~constant city density at 512
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = u::Time(20.0);
  cfg.duration = u::Time(2.0);
  cfg.mac = net::DutyCycledMac{u::Time(0.02), u::Time(0.001)};
  cfg.model_link_errors = true;
  cfg.sparse_links = true;
  cfg.seed = kSeed;
  return cfg;
}

struct ProfilePoint {
  int shards = 0;
  std::uint64_t checksum = 0;
  long long windows = 0;
  long long boundary_msgs = 0;
  std::uint64_t events = 0;
  // Structural invariants, computed from the result so they are identical
  // with observability compiled out (the profiler must agree when it is
  // compiled in; assert_profile checks that).
  long long expected_tasks = 0;  ///< windows x shards (grain 1)
  int worker_count = kPool;
  // Wall-clock (ignored by the baseline compare).
  double advance_wall_s = 0.0;
  double barrier_wall_s = 0.0;
  double imbalance = 1.0;
};

#if AMBISIM_OBS_COMPILED
bool assert_profile(const obs::Profiler& prof,
                    const shard::ShardRunResult& res, int shards) {
  bool ok = true;
  const auto fail = [&](const char* what) {
    std::cerr << "FATAL: profile inconsistent with the engine (shards="
              << shards << "): " << what << "\n";
    ok = false;
  };
  if (prof.windows_total() != res.windows)
    fail("windows_total != result windows");
  if (prof.boundary_rescheduled() != res.boundary_messages)
    fail("boundary_rescheduled != result boundary_messages");
  std::uint64_t events = 0;
  for (const obs::Profiler::Shard& s : prof.shards()) events += s.events;
  if (events != res.events_executed)
    fail("sum of shard events != result events_executed");
  if (static_cast<int>(prof.workers().size()) != kPool)
    fail("worker count != pool size");
  std::uint64_t tasks = 0;
  for (const obs::Profiler::Worker& w : prof.workers()) tasks += w.tasks;
  if (tasks != static_cast<std::uint64_t>(res.windows) *
                   static_cast<std::uint64_t>(shards))
    fail("sum of worker tasks != windows x shards");
  for (const std::string_view name :
       {"net.placement", "net.adjacency_build", "net.routing_build",
        "net.link_pricing", "net.event_loop"})
    if (prof.find_phase(name) == nullptr) fail("missing phase");
  return ok;
}
#endif

void print_profile() {
  const net::PacketSimConfig cfg = workload(kNodes);
  const std::uint64_t oracle =
      shard::digest_packets(shard::run_serial_oracle(cfg));

  bool ok = true;
  std::vector<ProfilePoint> points;
  obs::Profiler keep;  ///< shards == 4 profile, embedded in the JSON
  for (const int shards : kShardCounts) {
    const shard::ShardRunResult plain =
        shard::simulate_packets_sharded(cfg, {shards, kPool});

    obs::Profiler local;
    obs::Profiler& prof = shards == 4 ? keep : local;
    shard::ShardRunConfig rc{shards, kPool};
    rc.profiler = &prof;
    const shard::ShardRunResult profiled =
        shard::simulate_packets_sharded(cfg, rc);

    if (plain.checksum != oracle || profiled.checksum != oracle) {
      std::cerr << "FATAL: profiling is not a pure observer (shards="
                << shards << "): plain=" << plain.checksum
                << " profiled=" << profiled.checksum << " oracle=" << oracle
                << "\n";
      ok = false;
    }
#if AMBISIM_OBS_COMPILED
    ok = assert_profile(prof, profiled, shards) && ok;
#endif

    ProfilePoint pt;
    pt.shards = shards;
    pt.checksum = profiled.checksum;
    pt.windows = profiled.windows;
    pt.boundary_msgs = profiled.boundary_messages;
    pt.events = profiled.events_executed;
    pt.expected_tasks = profiled.windows * shards;
    pt.advance_wall_s = prof.advance_wall_s();
    pt.barrier_wall_s = prof.barrier_wall_s();
    pt.imbalance = prof.aggregate_imbalance();
    points.push_back(pt);
  }
  std::cout << "profiled vs unprofiled vs oracle checksums: "
            << (ok ? "IDENTICAL" : "DIVERGED") << "\n\n";
  if (!ok) std::exit(1);

  sim::Table t("PROFILE: sharded packet run under obs::Profiler "
               "(512 nodes, pool 4, checksum-gated)",
               {"shards", "windows", "boundary", "advance_s", "barrier_s",
                "imbalance"});
  for (const ProfilePoint& pt : points)
    t.add_row({static_cast<double>(pt.shards),
               static_cast<double>(pt.windows),
               static_cast<double>(pt.boundary_msgs), pt.advance_wall_s,
               pt.barrier_wall_s, pt.imbalance});
  std::cout << t << '\n';

  const auto manifest = bench_util::run_manifest("profile", kSeed, kPool);
  std::ofstream json("BENCH_profile.json");
  json << "{\n";
  bench_util::manifest_field(json, manifest);
  bench_util::profile_field(json, keep, &manifest);
  json << "  \"bench\": \"profile\",\n"
       << "  \"nodes\": " << kNodes << ",\n"
       << "  \"purity_ok\": " << (ok ? "true" : "false") << ",\n"
       << "  \"points\": [\n";
  for (std::size_t k = 0; k < points.size(); ++k) {
    const ProfilePoint& pt = points[k];
    json << "    {\"shards\": " << pt.shards
         << ", \"checksum\": " << pt.checksum
         << ", \"windows\": " << pt.windows
         << ", \"boundary_msgs\": " << pt.boundary_msgs
         << ", \"events\": " << pt.events
         << ", \"expected_tasks\": " << pt.expected_tasks
         << ", \"worker_count\": " << pt.worker_count
         << ", \"advance_wall_s\": " << pt.advance_wall_s
         << ", \"barrier_wall_s\": " << pt.barrier_wall_s
         << ", \"imbalance\": " << pt.imbalance << "}"
         << (k + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_profile.json\n\n";
}

// --- microbenchmarks: the observer's own cost ------------------------------

void BM_sharded_unprofiled(benchmark::State& state) {
  const net::PacketSimConfig cfg = workload(256);
  for (auto _ : state) {
    auto res = shard::simulate_packets_sharded(cfg, {4, kPool});
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_sharded_unprofiled)->Unit(benchmark::kMillisecond);

void BM_sharded_profiled(benchmark::State& state) {
  const net::PacketSimConfig cfg = workload(256);
  obs::Profiler prof;
  for (auto _ : state) {
    prof.clear();
    shard::ShardRunConfig rc{4, kPool};
    rc.profiler = &prof;
    auto res = shard::simulate_packets_sharded(cfg, rc);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_sharded_profiled)->Unit(benchmark::kMillisecond);

}  // namespace

AMBISIM_BENCH_MAIN(print_profile)
