// Ablation/validation A1: does the abstract ProcessorModel's
// microcontroller preset agree with the instruction-accurate AmbiCore-32
// interpreter running real firmware?
//
// Expected shape: energy per operation agrees within a small factor across
// process nodes and supply voltages, and the instruction-class mix explains
// the residual (mul/mem-heavy firmware costs more than the ALU-only
// abstraction assumes).
#include <iostream>

#include "ambisim/arch/processor.hpp"
#include "ambisim/isa/assembler.hpp"
#include "ambisim/isa/machine.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

struct FirmwareRun {
  std::string name;
  isa::MachineStats stats;
  u::Energy per_instr{0.0};
};

FirmwareRun run_firmware(const std::string& name, const std::string& src,
                         const tech::TechnologyNode& node, u::Voltage v) {
  isa::Machine m(node, v, 1_MHz);
  m.load_program(isa::assemble(src));
  if (name == "fibonacci") m.set_reg(1, 40);
  if (name == "fir16") {
    for (int i = 0; i < 16; ++i) m.store_word(0x100 + 4 * i, i);
    for (int i = 0; i < 32; ++i) m.store_word(0x200 + 4 * i, 100 - i);
    m.set_reg(1, 16);
  }
  if (name == "sensing") {
    int t = 0;
    m.set_input_port([&t](int) { return 100 + (t++ % 50); });
    m.set_output_port([](int, std::int32_t) {});
    m.set_reg(1, 500);
    m.set_reg(2, 110);
  }
  m.run();
  return {name, m.stats(), m.energy_per_instruction()};
}

void print_figure() {
  sim::Table a("A1a: instruction-accurate vs abstract MCU energy/op",
               {"node", "voltage_V", "firmware", "isa_pJ_per_instr",
                "abstract_pJ_per_op", "ratio"});
  for (const auto* nn : {"180nm", "130nm", "90nm"}) {
    const auto& node = tech::TechnologyLibrary::standard().node(nn);
    for (const u::Voltage v : {node.vdd_min, node.vdd_nominal}) {
      const auto abstract = arch::ProcessorModel(
          arch::microcontroller_core(), node, v, 1_MHz);
      for (const auto& [name, src] :
           {std::pair<const char*, std::string>{
                "fibonacci", isa::firmware::fibonacci()},
            {"fir16", isa::firmware::fir16()},
            {"sensing", isa::firmware::sensing_filter()}}) {
        const auto run = run_firmware(name, src, node, v);
        const double isa_pj = run.per_instr.value() * 1e12;
        // The abstract preset's energy/op at the same 1 MHz operating point
        // (0.5 ops/cycle -> 2 cycles/op).
        const double abs_pj = abstract.energy_per_op().value() * 1e12;
        a.add_row({nn, v.value(), name, isa_pj, abs_pj,
                   isa_pj / abs_pj});
      }
    }
  }
  std::cout << a << '\n';

  sim::Table b("A1b: instruction-class mix per firmware (130 nm, vdd_min)",
               {"firmware", "alu_pct", "mul_pct", "mem_pct", "branch_pct",
                "io_pct", "cpi"});
  const auto& n130 = tech::TechnologyLibrary::standard().node("130nm");
  for (const auto& [name, src] :
       {std::pair<const char*, std::string>{"fibonacci",
                                            isa::firmware::fibonacci()},
        {"fir16", isa::firmware::fir16()},
        {"sensing", isa::firmware::sensing_filter()}}) {
    const auto run = run_firmware(name, src, n130, n130.vdd_min);
    const double total = static_cast<double>(run.stats.instructions);
    auto pct = [&](isa::InstrClass c) {
      return 100.0 * run.stats.by_class[static_cast<int>(c)] / total;
    };
    b.add_row({name, pct(isa::InstrClass::Alu), pct(isa::InstrClass::Mul),
               pct(isa::InstrClass::Mem), pct(isa::InstrClass::Branch),
               pct(isa::InstrClass::Io), run.stats.cpi()});
  }
  std::cout << b << '\n';
}

void BM_machine_fibonacci(benchmark::State& state) {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const auto program = isa::assemble(isa::firmware::fibonacci());
  for (auto _ : state) {
    isa::Machine m(node, node.vdd_min, 1_MHz);
    m.load_program(program);
    m.set_reg(1, 40);
    m.run();
    benchmark::DoNotOptimize(m.stats().instructions);
  }
}
BENCHMARK(BM_machine_fibonacci);

void BM_machine_fir(benchmark::State& state) {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const auto program = isa::assemble(isa::firmware::fir16());
  for (auto _ : state) {
    isa::Machine m(node, node.vdd_min, 1_MHz);
    m.load_program(program);
    for (int i = 0; i < 16; ++i) m.store_word(0x100 + 4 * i, i);
    m.set_reg(1, 16);
    m.run();
    benchmark::DoNotOptimize(m.stats().cycles);
  }
}
BENCHMARK(BM_machine_fir);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
