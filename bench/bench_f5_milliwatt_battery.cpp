// Reproduction of Figure F5 (case study 2, milliWatt personal node):
// battery life of the wireless-audio appliance versus streaming bit-rate,
// with and without voltage scaling, and the compute/radio/interface energy
// split.
//
// Expected shape: at low bit-rates the platform floor (display, leakage,
// amplifier) dominates; radio cost grows linearly with rate; DVS helps most
// when the DSP is lightly utilized (slack exists) and saves a large
// fraction of *compute* energy but a smaller fraction of node energy.
#include <iostream>

#include "ambisim/arch/interface.hpp"
#include "ambisim/arch/processor.hpp"
#include "ambisim/energy/battery.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/dvs.hpp"
#include "ambisim/tech/technology.hpp"
#include "ambisim/workload/streams.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

struct NodePower {
  u::Power compute;
  u::Power radio;
  u::Power interface;
  [[nodiscard]] u::Power total() const { return compute + radio + interface; }
};

NodePower node_power(u::BitRate stream_rate, bool dvs) {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const auto wl = workload::audio_playback(stream_rate);
  // Decode effort scales mildly with compressed rate.
  const double ops_rate =
      wl.ops_rate().value() * (0.6 + 0.4 * stream_rate.value() / 128e3);

  u::Power compute{0.0};
  if (dvs) {
    // Run the DSP at the slowest operating point that sustains the decode.
    const tech::DvsModel model(node, 16, arch::dsp_core().logic_depth);
    const auto params = arch::dsp_core();
    tech::OperatingPoint chosen = model.fastest();
    for (const auto& p : model.points()) {
      if (p.frequency.value() * params.ops_per_cycle >= ops_rate) {
        chosen = p;
        break;
      }
    }
    const arch::ProcessorModel cpu(params, node, chosen.voltage,
                                   chosen.frequency);
    compute = cpu.power(std::min(1.0, ops_rate / cpu.throughput().value()));
  } else {
    const auto cpu = arch::ProcessorModel::at_max_clock(arch::dsp_core(),
                                                        node,
                                                        node.vdd_nominal);
    compute = cpu.power(std::min(1.0, ops_rate / cpu.throughput().value()));
  }

  const radio::RadioModel bt(radio::bluetooth_like());
  const double rx_duty = stream_rate.value() / bt.params().bit_rate.value();
  const u::Power radio_p = bt.rx_power() * rx_duty +
                           bt.idle_power() * 0.05 +
                           bt.sleep_power() * (0.95 - rx_duty);

  const auto ear = arch::AudioOutput::earpiece();
  const auto lcd = arch::DisplayModel::mobile_lcd();
  const u::Power iface = ear.amplifier_power + lcd.power() * 0.1;

  return {compute, radio_p, iface};
}

void print_figure() {
  energy::Battery battery(energy::Battery::li_ion_1000mAh());

  sim::Table a("F5a: battery life vs streaming bit-rate (Li-ion 1000 mAh)",
               {"bitrate_kbps", "power_mW_nominal", "life_h_nominal",
                "power_mW_dvs", "life_h_dvs", "dvs_gain_pct"});
  for (double kbps : {32.0, 64.0, 96.0, 128.0, 192.0, 256.0, 320.0}) {
    const auto fixed = node_power(u::BitRate(kbps * 1e3), false);
    const auto dvs = node_power(u::BitRate(kbps * 1e3), true);
    const double life_fixed =
        battery.lifetime_at(fixed.total()).value() / 3600.0;
    const double life_dvs = battery.lifetime_at(dvs.total()).value() / 3600.0;
    a.add_row({kbps, fixed.total().value() * 1e3, life_fixed,
               dvs.total().value() * 1e3, life_dvs,
               100.0 * (life_dvs / life_fixed - 1.0)});
  }
  std::cout << a << '\n';

  sim::Table b("F5b: node energy split at 128 kbps",
               {"config", "compute_mW", "radio_mW", "interface_mW",
                "compute_share_pct"});
  for (bool dvs : {false, true}) {
    const auto p = node_power(128_kbps, dvs);
    b.add_row({dvs ? "dvs" : "nominal", p.compute.value() * 1e3,
               p.radio.value() * 1e3, p.interface.value() * 1e3,
               100.0 * p.compute.value() / p.total().value()});
  }
  std::cout << b << '\n';

  sim::Table c("F5c: battery technology comparison at 128 kbps (nominal)",
               {"battery", "capacity_Wh", "life_h"});
  const auto p128 = node_power(128_kbps, false).total();
  for (const auto& spec :
       {energy::Battery::li_ion_1000mAh(), energy::Battery::alkaline_aa(),
        energy::Battery::coin_cell_cr2032()}) {
    energy::Battery bb(spec);
    c.add_row({spec.name, bb.capacity().value() / 3600.0,
               bb.lifetime_at(p128).value() / 3600.0});
  }
  std::cout << c << '\n';
}

void BM_node_power(benchmark::State& state) {
  for (auto _ : state) {
    auto p = node_power(128_kbps, state.range(0) != 0);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_node_power)->Arg(0)->Arg(1);

void BM_battery_lifetime(benchmark::State& state) {
  energy::Battery battery(energy::Battery::li_ion_1000mAh());
  for (auto _ : state) {
    auto t = battery.lifetime_at(20_mW);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_battery_lifetime);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
