// CITY: city-scale hot paths — spatial-grid adjacency, sparse CSR link
// state, batched link evaluation, and routing over the cached neighbor
// table.
//
// Two halves, both load-bearing:
//
//  1. Verification gate (<= 512-node topologies, where the O(N^2) oracle
//     is cheap): the grid-backed Topology::adjacency must be *byte-
//     identical* to adjacency_bruteforce, and every edge the sparse
//     LinkTable materializes must carry bitwise the stats of the dense
//     table.  Any divergence exits non-zero — the fast paths are indexes,
//     not approximations.
//
//  2. Scale sweep (1k / 10k / 50k / 100k nodes on random_field at constant
//     density: side grows with sqrt(n), so the mean degree stays fixed
//     while the dense-table footprint would grow with n^2).  Each point
//     records the adjacency build time, sparse link build time and
//     evaluation throughput, routing time over the cached table, exact
//     edge counts, O(edges) bytes-per-node, and an order-sensitive digest
//     of the whole adjacency + link state.  Wall-clock fields end in
//     `_wall_s` / `_events_per_s` so the baseline compare ignores them;
//     everything else is deterministic and gated.
//
//  3. Sharded packet engine (ambisim::shard): a short packet workload at
//     every sweep size, run through the single-kernel serial oracle and
//     the region-sharded engine at 1 / 2 / 8 regions.  A startup gate on
//     small topologies (and the checksum at every sweep size) enforces the
//     engine's contract — sharded runs are *bit-identical* to the oracle,
//     so the events/s and speedup columns compare equal computations.
//     Digests and packet counts are gated; `_wall_s` / `_events_per_s` /
//     `_speedup` fields are ignored by the baseline compare.
//
// Emits BENCH_city.json.  The dense table at 100k nodes would hold 1e10
// rows (~400 GB) — the sweep is only runnable because of the sparse path,
// which is the point.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/link_table.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/net/routing.hpp"
#include "ambisim/net/sparse_link_table.hpp"
#include "ambisim/net/spatial_grid.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/shard/engine.hpp"
#include "ambisim/sim/random.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"
#include "benchmark/benchmark.h"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using net::Adjacency;
using net::SparseLinkTable;
using net::Topology;

constexpr std::uint64_t kSeed = 2008;
const int kSweepNodes[] = {1000, 10000, 50000, 100000};
constexpr double kRangeM = 15.0;
/// side = kDensitySide * sqrt(n): ~0.028 nodes/m^2, mean degree ~20.
constexpr double kDensitySide = 6.0;

double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- half 1: the differential oracle ---------------------------------------

bool verify_adjacency(const Topology& topo, double range_m) {
  const u::Length range(range_m);
  if (topo.adjacency(range) != topo.adjacency_bruteforce(range)) {
    std::cerr << "FATAL: grid adjacency diverged from brute force (n="
              << topo.size() << ", range=" << range_m << ")\n";
    return false;
  }
  return true;
}

bool verify_topology(const Topology& topo, double range_m) {
  if (!verify_adjacency(topo, range_m)) return false;
  const u::Length range(range_m);
  const radio::RadioModel radio(radio::ulp_radio());
  const u::Information bits(512.0);
  const radio::ArqModel arq;
  const net::LinkTable dense(topo, radio, bits, arq);
  const SparseLinkTable sparse(topo, radio, bits, range, arq);
  for (int from = 0; from < topo.size(); ++from)
    for (int to = 0; to < topo.size(); ++to) {
      if (from == to) continue;
      const bool within =
          topo.node_distance(from, to).value() <= range_m;
      if (sparse.has_edge(from, to) != within) {
        std::cerr << "FATAL: sparse edge set disagrees with the range "
                  << "cutoff at (" << from << ", " << to << ")\n";
        return false;
      }
      if (!within) continue;
      const net::LinkStats& d = dense.edge(from, to);
      const net::LinkStats s = sparse.edge(from, to);
      if (s.distance_m != d.distance_m || s.ber != d.ber ||
          s.per != d.per || s.expected_attempts != d.expected_attempts ||
          s.delivery_probability != d.delivery_probability) {
        std::cerr << "FATAL: sparse stats diverged from dense at ("
                  << from << ", " << to << ")\n";
        return false;
      }
    }
  return true;
}

int verify_all(bool& ok) {
  int checked = 0;
  sim::Rng rng(kSeed);
  // Random fields across sizes, densities, and range/cell ratios.
  for (const int n : {1, 2, 33, 128, 512})
    for (const double side : {8.0, 60.0, 400.0}) {
      sim::Rng field(rng.engine()());
      const Topology topo = Topology::random_field(n, u::Length(side), field);
      for (const double range : {side * 0.05, 15.0, side * 1.5}) {
        ok = ok && verify_topology(topo, range);
        ++checked;
      }
    }
  // Structured layouts and the degenerate all-coincident cloud.
  ok = ok && verify_topology(Topology::grid(256, u::Length(10.0)), 14.2);
  ok = ok && verify_topology(Topology::star(64, u::Length(20.0)), 25.0);
  // All-coincident cloud: zero-length edges are unpriceable by the radio
  // chain (both tables reject them), so this one gates adjacency only.
  ok = ok && verify_adjacency(
                 Topology(std::vector<net::Point>(65, net::Point{1.0, 2.0})),
                 5.0);
  return checked + 3;
}

/// Sharded-engine identity gate: on topologies small enough that the
/// single-kernel oracle is cheap, every (shard count, pool size) pairing
/// must reproduce the oracle's checksum bit-for-bit.  Runs before the
/// sweep so a broken sync protocol can never publish speedup numbers.
int verify_sharded(bool& ok) {
  int checked = 0;
  for (const bool errors : {false, true}) {
    net::PacketSimConfig cfg;
    cfg.node_count = 48;
    cfg.field_side = u::Length(50.0);
    cfg.radio_range = u::Length(kRangeM);
    cfg.report_period = u::Time(3.0);
    cfg.duration = u::Time(12.0);
    cfg.model_link_errors = errors;
    cfg.sparse_links = errors;
    cfg.seed = kSeed;
    const std::uint64_t want =
        shard::digest_packets(shard::run_serial_oracle(cfg));
    for (const int shards : {1, 2, 4})
      for (const int pool : {1, 4}) {
        const shard::ShardRunResult got =
            shard::simulate_packets_sharded(cfg, {shards, pool});
        if (got.checksum != want) {
          std::cerr << "FATAL: sharded run diverged from the serial oracle "
                    << "(shards=" << shards << ", pool=" << pool
                    << ", link_errors=" << errors << ")\n";
          ok = false;
        }
        ++checked;
      }
  }
  return checked;
}

// --- half 2: the scale sweep -----------------------------------------------

struct CityPoint {
  int nodes = 0;
  double side_m = 0.0;
  std::size_t edges = 0;
  double adjacency_bytes_per_node = 0.0;
  double links_bytes_per_node = 0.0;
  std::uint64_t checksum = 0;
  bool sink_connected = false;
  // Wall-clock (ignored by the baseline compare).
  double adjacency_build_wall_s = 0.0;
  double links_build_wall_s = 0.0;
  double routing_wall_s = 0.0;
  double link_eval_events_per_s = 0.0;
};

CityPoint run_point(int n) {
  CityPoint pt;
  pt.nodes = n;
  pt.side_m = kDensitySide * std::sqrt(static_cast<double>(n));
  sim::Rng rng(kSeed + static_cast<std::uint64_t>(n));
  const Topology topo =
      Topology::random_field(n, u::Length(pt.side_m), rng);

  auto t0 = std::chrono::steady_clock::now();
  const Adjacency adj = topo.neighbor_table(u::Length(kRangeM));
  pt.adjacency_build_wall_s = now_minus(t0);
  pt.edges = adj.edge_count();

  const radio::RadioModel radio(radio::ulp_radio());
  t0 = std::chrono::steady_clock::now();
  const SparseLinkTable links(topo, adj, radio, u::Information(512.0));
  pt.links_build_wall_s = now_minus(t0);
  pt.link_eval_events_per_s =
      pt.links_build_wall_s > 0.0
          ? static_cast<double>(links.edge_count()) / pt.links_build_wall_s
          : 0.0;

  t0 = std::chrono::steady_clock::now();
  const net::RoutingTree tree =
      net::min_energy_routes(topo, adj, net::LinkEnergyModel{});
  pt.routing_wall_s = now_minus(t0);
  pt.sink_connected = topo.connected(adj);

  // Exact-size footprint (counts, not vector capacity, so the figure is
  // reproducible across allocators): CSR offsets + per-edge columns.
  const double nd = static_cast<double>(n);
  const double e = static_cast<double>(pt.edges);
  pt.adjacency_bytes_per_node =
      ((nd + 1.0) * sizeof(std::int64_t) +
       e * (sizeof(int) + sizeof(double))) / nd;
  pt.links_bytes_per_node =
      ((nd + 1.0) * sizeof(std::int64_t) +
       e * (sizeof(int) + 5.0 * sizeof(double))) / nd;

  // Order-sensitive digest over the whole adjacency, the sparse link
  // state, and the routing tree: any reordering or value drift in the
  // fast paths moves this checksum, and the baseline compare gates it.
  fault::Digest digest;
  digest.fold(n);
  digest.fold(static_cast<long long>(pt.edges));
  for (int i = 0; i < adj.size(); ++i) {
    const Adjacency::Row row = adj.row(i);
    const SparseLinkTable::Row lrow = links.row(i);
    for (std::size_t k = 0; k < row.count; ++k) {
      digest.fold(row.ids[k]);
      digest.fold(row.dist[k]);
      digest.fold(lrow.delivery_probability[k]);
      digest.fold(lrow.expected_attempts[k]);
    }
    digest.fold(tree.next_hop[static_cast<std::size_t>(i)]);
    digest.fold(tree.cost[static_cast<std::size_t>(i)]);
  }
  pt.checksum = digest.value();
  return pt;
}

// --- half 3: the sharded packet engine at scale ----------------------------

struct PacketPoint {
  int nodes = 0;
  std::uint64_t checksum = 0;  ///< identical across every run below
  long long generated = 0;
  long long delivered = 0;
  double lookahead_s = 0.0;
  std::uint64_t events = 0;  ///< executed events, single-region run
  long long serial_windows = 0;
  long long shard2_windows = 0, shard2_boundary_msgs = 0;
  long long shard8_windows = 0, shard8_boundary_msgs = 0;
  // Wall-clock (ignored by the baseline compare).
  double serial_wall_s = 0.0, serial_events_per_s = 0.0;
  double shard2_wall_s = 0.0, shard2_events_per_s = 0.0, shard2_speedup = 0.0;
  double shard8_wall_s = 0.0, shard8_events_per_s = 0.0, shard8_speedup = 0.0;
  // obs::Profiler attribution: where each run's wall-clock went — shard
  // advance vs window barrier — and how unevenly the shards advanced
  // (imbalance = sum of per-window max advance / sum of per-window mean;
  // 1 = perfectly balanced).  All ignored by the baseline compare.
  double serial_advance_wall_s = 0.0, serial_barrier_wall_s = 0.0;
  double shard2_advance_wall_s = 0.0, shard2_barrier_wall_s = 0.0;
  double shard2_imbalance = 1.0;
  double shard8_advance_wall_s = 0.0, shard8_barrier_wall_s = 0.0;
  double shard8_imbalance = 1.0;
};

/// Short collection burst at the sweep's density: every source reports
/// once, multi-hop to the sink, expected-ARQ link errors over the sparse
/// table.  The 20 ms wake interval keeps the hop latency dominated by
/// airtime rather than preamble alignment so packets actually cross the
/// field within the 2 s horizon.
net::PacketSimConfig packet_config(int n) {
  net::PacketSimConfig cfg;
  cfg.node_count = n;
  cfg.field_side =
      u::Length(kDensitySide * std::sqrt(static_cast<double>(n)));
  cfg.radio_range = u::Length(kRangeM);
  cfg.report_period = u::Time(20.0);
  cfg.duration = u::Time(2.0);
  cfg.mac = net::DutyCycledMac{u::Time(0.02), u::Time(0.001)};
  cfg.model_link_errors = true;
  cfg.sparse_links = true;
  cfg.seed = static_cast<unsigned>(kSeed) + static_cast<unsigned>(n);
  return cfg;
}

double rate(std::uint64_t events, double wall_s) {
  return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
}

/// When `shard8_profile` is non-null the shard-8 run records into it (the
/// caller keeps the largest size's full profile for PROFILE_city.json);
/// every other run uses a local profiler just for its aggregates.
PacketPoint run_packet_point(int n, bool& ok,
                             obs::Profiler* shard8_profile) {
  PacketPoint pt;
  pt.nodes = n;
  const net::PacketSimConfig cfg = packet_config(n);

  const net::PacketSimResult oracle = shard::run_serial_oracle(cfg);
  pt.checksum = shard::digest_packets(oracle);
  pt.generated = oracle.generated;
  pt.delivered = oracle.delivered;

  // Serial baseline for the speedup column: the sharded engine at one
  // region and one worker, so window overhead is charged to both sides.
  obs::Profiler serial_prof;
  shard::ShardRunConfig serial_rc{1, 1};
  serial_rc.profiler = &serial_prof;
  auto t0 = std::chrono::steady_clock::now();
  const shard::ShardRunResult one =
      shard::simulate_packets_sharded(cfg, serial_rc);
  pt.serial_wall_s = now_minus(t0);
  pt.events = one.events_executed;
  pt.lookahead_s = one.lookahead_s;
  pt.serial_windows = one.windows;
  pt.serial_events_per_s = rate(one.events_executed, pt.serial_wall_s);
  pt.serial_advance_wall_s = serial_prof.advance_wall_s();
  pt.serial_barrier_wall_s = serial_prof.barrier_wall_s();
  if (one.checksum != pt.checksum) {
    std::cerr << "FATAL: single-region run diverged from the oracle (n="
              << n << ")\n";
    ok = false;
  }

  for (const int shards : {2, 8}) {
    obs::Profiler local_prof;
    obs::Profiler* prof = shards == 8 && shard8_profile != nullptr
                              ? shard8_profile
                              : &local_prof;
    shard::ShardRunConfig rc{shards, 0};
    rc.profiler = prof;
    t0 = std::chrono::steady_clock::now();
    const shard::ShardRunResult got = shard::simulate_packets_sharded(cfg, rc);
    const double wall = now_minus(t0);
    if (got.checksum != pt.checksum) {
      std::cerr << "FATAL: sharded run diverged from the oracle (n=" << n
                << ", shards=" << shards << ")\n";
      ok = false;
    }
    if (shards == 2) {
      pt.shard2_windows = got.windows;
      pt.shard2_boundary_msgs = got.boundary_messages;
      pt.shard2_wall_s = wall;
      pt.shard2_events_per_s = rate(got.events_executed, wall);
      pt.shard2_speedup = wall > 0.0 ? pt.serial_wall_s / wall : 0.0;
      pt.shard2_advance_wall_s = prof->advance_wall_s();
      pt.shard2_barrier_wall_s = prof->barrier_wall_s();
      pt.shard2_imbalance = prof->aggregate_imbalance();
    } else {
      pt.shard8_windows = got.windows;
      pt.shard8_boundary_msgs = got.boundary_messages;
      pt.shard8_wall_s = wall;
      pt.shard8_events_per_s = rate(got.events_executed, wall);
      pt.shard8_speedup = wall > 0.0 ? pt.serial_wall_s / wall : 0.0;
      pt.shard8_advance_wall_s = prof->advance_wall_s();
      pt.shard8_barrier_wall_s = prof->barrier_wall_s();
      pt.shard8_imbalance = prof->aggregate_imbalance();
    }
  }
  return pt;
}

void print_city() {
  bool ok = true;
  const int verified = verify_all(ok);
  std::cout << "verification topologies (<=512 nodes): " << verified
            << ", grid == brute force and sparse == dense: "
            << (ok ? "YES" : "NO") << "\n";
  if (!ok) std::exit(1);
  const int sharded_checked = verify_sharded(ok);
  std::cout << "sharded-engine identity runs: " << sharded_checked
            << ", every (shards, pool) == serial oracle: "
            << (ok ? "YES" : "NO") << "\n\n";
  if (!ok) std::exit(1);

  std::vector<CityPoint> sweep;
  sweep.reserve(std::size(kSweepNodes));
  for (const int n : kSweepNodes) sweep.push_back(run_point(n));

  sim::Table t("CITY: adjacency + sparse link state at constant density "
               "(range 15 m, ~20 neighbors/node)",
               {"nodes", "edges", "adj_build_s", "links_build_s",
                "routing_s", "links_B_per_node"});
  for (const CityPoint& pt : sweep)
    t.add_row({static_cast<double>(pt.nodes),
               static_cast<double>(pt.edges), pt.adjacency_build_wall_s,
               pt.links_build_wall_s, pt.routing_wall_s,
               pt.links_bytes_per_node});
  std::cout << t << '\n';

  // The largest size's shard-8 run records its full per-window profile
  // here; it becomes PROFILE_city.json (the CI artifact perf_report reads).
  obs::Profiler city_profile;
  std::vector<PacketPoint> packets;
  packets.reserve(std::size(kSweepNodes));
  for (std::size_t k = 0; k < std::size(kSweepNodes); ++k)
    packets.push_back(run_packet_point(
        kSweepNodes[k], ok,
        k + 1 == std::size(kSweepNodes) ? &city_profile : nullptr));
  if (!ok) std::exit(1);

  sim::Table pk("CITY: sharded packet engine (2 s burst, checksum-gated "
                "against the serial oracle)",
                {"nodes", "generated", "delivered", "serial_ev_s",
                 "shard2_ev_s", "shard8_ev_s", "shard8_speedup"});
  for (const PacketPoint& pt : packets)
    pk.add_row({static_cast<double>(pt.nodes),
                static_cast<double>(pt.generated),
                static_cast<double>(pt.delivered), pt.serial_events_per_s,
                pt.shard2_events_per_s, pt.shard8_events_per_s,
                pt.shard8_speedup});
  std::cout << pk << '\n';

  sim::Table at("CITY: packet-phase wall-clock attribution "
                "(advance = shard event kernels, barrier = window sync; "
                "imbalance = max/mean shard advance)",
                {"nodes", "shards", "windows", "advance_s", "barrier_s",
                 "imbalance"});
  for (const PacketPoint& pt : packets) {
    at.add_row({static_cast<double>(pt.nodes), 1.0,
                static_cast<double>(pt.serial_windows),
                pt.serial_advance_wall_s, pt.serial_barrier_wall_s, 1.0});
    at.add_row({static_cast<double>(pt.nodes), 2.0,
                static_cast<double>(pt.shard2_windows),
                pt.shard2_advance_wall_s, pt.shard2_barrier_wall_s,
                pt.shard2_imbalance});
    at.add_row({static_cast<double>(pt.nodes), 8.0,
                static_cast<double>(pt.shard8_windows),
                pt.shard8_advance_wall_s, pt.shard8_barrier_wall_s,
                pt.shard8_imbalance});
  }
  std::cout << at << '\n';

  std::ofstream json("BENCH_city.json");
  json << "{\n";
  bench_util::manifest_field(json, bench_util::run_manifest("city", kSeed));
  json << "  \"bench\": \"city\",\n"
       << "  \"range_m\": " << kRangeM << ",\n"
       << "  \"verification_topologies\": " << verified << ",\n"
       << "  \"grid_matches_bruteforce\": " << (ok ? "true" : "false")
       << ",\n"
       << "  \"sparse_matches_dense\": " << (ok ? "true" : "false") << ",\n"
       << "  \"sharded_identity_runs\": " << sharded_checked << ",\n"
       << "  \"sharded_matches_oracle\": " << (ok ? "true" : "false")
       << ",\n"
       << "  \"points\": [\n";
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const CityPoint& pt = sweep[k];
    json << "    {\"nodes\": " << pt.nodes << ", \"side_m\": " << pt.side_m
         << ", \"edges\": " << pt.edges
         << ", \"adjacency_bytes_per_node\": " << pt.adjacency_bytes_per_node
         << ", \"links_bytes_per_node\": " << pt.links_bytes_per_node
         << ", \"sink_connected\": "
         << (pt.sink_connected ? "true" : "false")
         << ", \"checksum\": " << pt.checksum
         << ", \"adjacency_build_wall_s\": " << pt.adjacency_build_wall_s
         << ", \"links_build_wall_s\": " << pt.links_build_wall_s
         << ", \"routing_wall_s\": " << pt.routing_wall_s
         << ", \"link_eval_events_per_s\": " << pt.link_eval_events_per_s
         << "}" << (k + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"packet_points\": [\n";
  for (std::size_t k = 0; k < packets.size(); ++k) {
    const PacketPoint& pt = packets[k];
    json << "    {\"nodes\": " << pt.nodes
         << ", \"packets_checksum\": " << pt.checksum
         << ", \"generated\": " << pt.generated
         << ", \"delivered\": " << pt.delivered
         << ", \"lookahead_s\": " << pt.lookahead_s
         << ", \"events\": " << pt.events
         << ", \"serial_windows\": " << pt.serial_windows
         << ", \"shard2_windows\": " << pt.shard2_windows
         << ", \"shard2_boundary_msgs\": " << pt.shard2_boundary_msgs
         << ", \"shard8_windows\": " << pt.shard8_windows
         << ", \"shard8_boundary_msgs\": " << pt.shard8_boundary_msgs
         << ", \"serial_wall_s\": " << pt.serial_wall_s
         << ", \"serial_events_per_s\": " << pt.serial_events_per_s
         << ", \"serial_advance_wall_s\": " << pt.serial_advance_wall_s
         << ", \"serial_barrier_wall_s\": " << pt.serial_barrier_wall_s
         << ", \"shard2_wall_s\": " << pt.shard2_wall_s
         << ", \"shard2_events_per_s\": " << pt.shard2_events_per_s
         << ", \"shard2_speedup\": " << pt.shard2_speedup
         << ", \"shard2_advance_wall_s\": " << pt.shard2_advance_wall_s
         << ", \"shard2_barrier_wall_s\": " << pt.shard2_barrier_wall_s
         << ", \"shard2_imbalance\": " << pt.shard2_imbalance
         << ", \"shard8_wall_s\": " << pt.shard8_wall_s
         << ", \"shard8_events_per_s\": " << pt.shard8_events_per_s
         << ", \"shard8_speedup\": " << pt.shard8_speedup
         << ", \"shard8_advance_wall_s\": " << pt.shard8_advance_wall_s
         << ", \"shard8_barrier_wall_s\": " << pt.shard8_barrier_wall_s
         << ", \"shard8_imbalance\": " << pt.shard8_imbalance
         << "}" << (k + 1 < packets.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  bench_util::profile_field(json, city_profile);
  json << "  \"profiled_nodes\": "
       << kSweepNodes[std::size(kSweepNodes) - 1] << "\n}\n";
  std::cout << "wrote BENCH_city.json\n";

  // Standalone profile artifact (shard-8 run at the largest sweep size)
  // for perf_report and the CI artifact upload.
  const auto pm = bench_util::run_manifest("city-profile-shard8", kSeed);
  std::ofstream pf("PROFILE_city.json");
  city_profile.write_json(pf, 0, &pm);
  pf << "\n";
  std::cout << "wrote PROFILE_city.json\n\n";
}

// --- microbenchmarks: the fast paths against the oracles they replace ------

Topology micro_field(int n) {
  sim::Rng rng(kSeed);
  return Topology::random_field(
      n, u::Length(kDensitySide * std::sqrt(static_cast<double>(n))), rng);
}

void BM_adjacency_grid(benchmark::State& state) {
  const Topology topo = micro_field(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto adj = topo.adjacency(u::Length(kRangeM));
    benchmark::DoNotOptimize(adj);
  }
}
BENCHMARK(BM_adjacency_grid)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_adjacency_bruteforce(benchmark::State& state) {
  const Topology topo = micro_field(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto adj = topo.adjacency_bruteforce(u::Length(kRangeM));
    benchmark::DoNotOptimize(adj);
  }
}
BENCHMARK(BM_adjacency_bruteforce)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_sparse_links_build(benchmark::State& state) {
  const Topology topo = micro_field(static_cast<int>(state.range(0)));
  const Adjacency adj = topo.neighbor_table(u::Length(kRangeM));
  const radio::RadioModel radio(radio::ulp_radio());
  for (auto _ : state) {
    SparseLinkTable links(topo, adj, radio, u::Information(512.0));
    benchmark::DoNotOptimize(links);
  }
}
BENCHMARK(BM_sparse_links_build)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_dense_links_build(benchmark::State& state) {
  const Topology topo = micro_field(static_cast<int>(state.range(0)));
  const radio::RadioModel radio(radio::ulp_radio());
  for (auto _ : state) {
    net::LinkTable links(topo, radio, u::Information(512.0));
    benchmark::DoNotOptimize(links);
  }
}
BENCHMARK(BM_dense_links_build)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_min_energy_over_adjacency(benchmark::State& state) {
  const Topology topo = micro_field(static_cast<int>(state.range(0)));
  const Adjacency adj = topo.neighbor_table(u::Length(kRangeM));
  for (auto _ : state) {
    auto tree = net::min_energy_routes(topo, adj, net::LinkEnergyModel{});
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_min_energy_over_adjacency)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

AMBISIM_BENCH_MAIN(print_city)
