// Extension figure F12: thermal feedback in the Watt node — junction
// temperature and total power vs utilization, the stable/runaway boundary
// vs package thermal resistance, and the generational trend (leakier nodes
// need better packages).
//
// Expected shape: total power exceeds the naive dyn+leak(25C) sum and
// curves upward with utilization; beyond a critical thermal resistance the
// die runs away; the critical resistance falls steeply for leakier
// (newer) technology generations.
#include <iostream>

#include "ambisim/arch/processor.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/thermal.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

void print_figure() {
  const auto& n90 = tech::TechnologyLibrary::standard().node("90nm");
  // A media SoC's compute fabric: VLIW + accelerators worth of gates.
  const auto cpu = arch::ProcessorModel::at_max_clock(arch::vliw_core(), n90,
                                                      n90.vdd_nominal);
  // Scale the leakage population up to SoC size (20x the core).
  const double soc_factor = 20.0;
  const u::Power leak25 = cpu.leakage_power() * soc_factor;

  sim::Table a("F12a: equilibrium vs utilization (90 nm SoC, 5 K/W package)",
               {"utilization", "dyn_W", "naive_total_W", "equilibrium_W",
                "junction_C", "stable"});
  const tech::ThermalModel pkg(5.0);
  for (double util : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const u::Power dyn = cpu.dynamic_power(util) * soc_factor;
    const auto eq = pkg.solve(dyn, leak25);
    a.add_row({util, dyn.value(), (dyn + leak25).value(),
               eq.total_power.value(), eq.temperature_c,
               eq.stable ? "yes" : "RUNAWAY"});
  }
  std::cout << a << '\n';

  sim::Table b("F12b: package quality boundary (90 nm SoC at 60 % load)",
               {"theta_ja_K_per_W", "junction_C", "total_W", "stable"});
  const u::Power dyn60 = cpu.dynamic_power(0.6) * soc_factor;
  for (double r : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    const tech::ThermalModel m(r);
    const auto eq = m.solve(dyn60, leak25);
    b.add_row({r, eq.temperature_c, eq.total_power.value(),
               eq.stable ? "yes" : "RUNAWAY"});
  }
  const double rc = tech::ThermalModel::critical_resistance(dyn60, leak25);
  std::cout << b << '\n';
  std::cout << "critical resistance at this load: " << rc << " K/W\n\n";

  sim::Table c("F12c: critical package resistance across generations "
               "(same SoC re-targeted, 60 % load)",
               {"node", "dyn_W", "leak25_W", "critical_K_per_W"});
  for (const auto* name : {"180nm", "130nm", "90nm", "65nm", "45nm"}) {
    const auto& n = tech::TechnologyLibrary::standard().node(name);
    const auto c2 = arch::ProcessorModel::at_max_clock(arch::vliw_core(), n,
                                                       n.vdd_nominal);
    const u::Power d = c2.dynamic_power(0.6) * soc_factor;
    const u::Power l = c2.leakage_power() * soc_factor;
    c.add_row({name, d.value(), l.value(),
               tech::ThermalModel::critical_resistance(d, l)});
  }
  std::cout << c << '\n';
}

void BM_thermal_solve(benchmark::State& state) {
  const tech::ThermalModel m(5.0);
  for (auto _ : state) {
    auto eq = m.solve(3_W, 0.5_W);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_thermal_solve);

void BM_critical_resistance(benchmark::State& state) {
  for (auto _ : state) {
    auto r = tech::ThermalModel::critical_resistance(3_W, 0.5_W);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_critical_resistance);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
