// Reproduction of Table T2: placement of ambient-intelligence functions
// onto the device network by the DSE mapper — energy-optimal versus naive
// (everything on the server) and greedy.
//
// Expected shape: light front-end tasks stay near the sensor (shipping raw
// samples costs more than filtering them locally); heavy recognition lands
// on the Watt node; the annealer matches or beats greedy, and both beat
// all-on-server by a wide margin because radio bits are expensive.
#include <iostream>

#include "ambisim/dse/mapping.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

dse::MappingProblem build_problem() {
  const auto& lib = tech::TechnologyLibrary::standard();
  const auto& n130 = lib.node("130nm");

  // The AmI function: sensing front-end feeding a recognition + response
  // pipeline (per 1 s activation).
  workload::TaskGraph g("ami-function");
  const int sample = g.add_task({"sample", 2e3, 400, 96_bit});
  const int filter = g.add_task({"filter", 2e4, 4e3, 96_bit});
  const int feature = g.add_task({"feature-extract", 3e5, 6e4, 416_bit});
  const int classify = g.add_task({"classify", 2e7, 4e6, 64_bit});
  const int decide = g.add_task({"decide", 5e5, 1e5, 256_bit});
  const int render = g.add_task({"render-response", 8e6, 2e6, 16384_bit});
  g.add_edge(sample, filter, 96_bit);
  g.add_edge(filter, feature, 96_bit);
  g.add_edge(feature, classify, 416_bit);
  g.add_edge(classify, decide, 64_bit);
  g.add_edge(decide, render, 256_bit);
  g.set_period(1_s);

  dse::MappingProblem prob{std::move(g), 1_s, {}};

  const radio::RadioModel ulp(radio::ulp_radio());
  const radio::RadioModel bt(radio::bluetooth_like());
  const radio::RadioModel wlan(radio::wlan_80211b());

  // ops_scale: the 8-bit MCU spends ~10 native ops per abstract 32-bit op.
  prob.targets.push_back(
      {"sensor-mcu",
       arch::ProcessorModel::at_max_clock(arch::microcontroller_core(), n130,
                                          n130.vdd_min),
       core::DeviceClass::MicroWatt,
       u::EnergyPerBit(ulp.energy_per_bit_tx().value() +
                       ulp.energy_per_bit_rx().value()),
       0.5, 10.0, 1000.0});  // harvested joules: most precious
  prob.targets.push_back(
      {"personal-dsp",
       arch::ProcessorModel::at_max_clock(
           arch::dsp_core(), n130,
           u::Voltage((n130.vdd_min.value() + n130.vdd_nominal.value()) /
                      2.0)),
       core::DeviceClass::MilliWatt,
       u::EnergyPerBit(bt.energy_per_bit_tx().value() +
                       bt.energy_per_bit_rx().value()),
       0.8, 1.0, 10.0});     // battery joules
  prob.targets.push_back(
      {"server-vliw",
       arch::ProcessorModel::at_max_clock(arch::vliw_core(), n130,
                                          n130.vdd_nominal),
       core::DeviceClass::Watt,
       u::EnergyPerBit(wlan.energy_per_bit_tx().value() +
                       wlan.energy_per_bit_rx().value()),
       1.0, 1.0, 1.0});      // mains joules: cheap
  // Physical constraints: sampling happens at the sensor; the response is
  // rendered on the personal device.
  prob.pinned.push_back({sample, 0});
  prob.pinned.push_back({render, 1});
  return prob;
}

void print_table() {
  const auto prob = build_problem();
  dse::MappingOptimizer opt(prob);
  sim::Rng rng(17);

  const auto naive = opt.all_on(2);
  const auto greedy = opt.greedy();
  const auto best = opt.anneal(rng, 30'000);

  sim::Table a("T2a: mapping strategies (energy per 1 s activation)",
               {"strategy", "feasible", "compute_uJ", "comm_uJ", "total_uJ",
                "scarcity_weighted_uJ"});
  for (const auto& [name, m] :
       {std::pair<const char*, const dse::Mapping&>{"all-on-server", naive},
        {"greedy", greedy},
        {"annealed", best}}) {
    a.add_row({name, m.feasible ? "yes" : "no",
               m.compute_energy.value() * 1e6, m.comm_energy.value() * 1e6,
               m.energy_per_period.value() * 1e6, m.weighted_cost * 1e6});
  }
  std::cout << a << '\n';

  sim::Table b("T2b: annealed placement of each function",
               {"function", "ops", "target", "device_class"});
  for (int t = 0; t < prob.graph.task_count(); ++t) {
    const int tgt = best.assignment[static_cast<std::size_t>(t)];
    b.add_row({prob.graph.task(t).name, prob.graph.task(t).ops,
               prob.targets[static_cast<std::size_t>(tgt)].name,
               to_string(prob.targets[static_cast<std::size_t>(tgt)].cls)});
  }
  std::cout << b << '\n';

  sim::Table c("T2c: target utilization under the annealed mapping",
               {"target", "utilization", "limit"});
  for (std::size_t k = 0; k < prob.targets.size(); ++k) {
    c.add_row({prob.targets[k].name, best.utilization[k],
               prob.targets[k].utilization_limit});
  }
  std::cout << c << '\n';
}

void BM_mapping_greedy(benchmark::State& state) {
  const auto prob = build_problem();
  dse::MappingOptimizer opt(prob);
  for (auto _ : state) {
    auto m = opt.greedy();
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_mapping_greedy);

void BM_mapping_anneal(benchmark::State& state) {
  const auto prob = build_problem();
  dse::MappingOptimizer opt(prob);
  for (auto _ : state) {
    sim::Rng rng(17);
    auto m = opt.anneal(rng, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_mapping_anneal)->Arg(1000)->Arg(10000);

}  // namespace

AMBISIM_BENCH_MAIN(print_table)
