// Reproduction of Figure F3 (case study 1, microWatt autonomous node):
// harvested versus consumed power and the energy-neutral duty-cycle
// threshold.
//
// Expected shape: the maximum energy-neutral duty cycle grows linearly with
// harvester area; below the threshold the node runs forever, above it the
// buffer battery drains in days.
#include <iostream>
#include <memory>
#include <vector>

#include "ambisim/arch/interface.hpp"
#include "ambisim/arch/processor.hpp"
#include "ambisim/dse/sweep.hpp"
#include "ambisim/energy/battery.hpp"
#include "ambisim/energy/buffer_sim.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/energy/ledger.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/technology.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

struct NodePowers {
  u::Power active;
  u::Power sleep;
};

NodePowers sensor_node_powers() {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const auto cpu = arch::ProcessorModel::at_max_clock(
      arch::microcontroller_core(), node, node.vdd_min);
  const radio::RadioModel radio(radio::ulp_radio());
  const auto fe = arch::SensorFrontEnd::temperature();
  // Active: MCU computing + radio idle-listening + sensor biased.
  const u::Power active =
      cpu.power(1.0) + radio.idle_power() + fe.active_power;
  const u::Power sleep =
      cpu.sleep_power() + radio.sleep_power() + fe.standby_power;
  return {active, sleep};
}

void print_figure() {
  const auto p = sensor_node_powers();
  std::cout << "microWatt node: active = " << u::to_string(p.active)
            << ", sleep = " << u::to_string(p.sleep) << "\n\n";

  sim::Table a("F3a: energy-neutral duty cycle vs harvester size (indoor PV)",
               {"area_cm2", "harvest_avg_uW", "max_neutral_duty",
                "sustainable"});
  for (double cm2 : dse::linspace(0.5, 8.0, 8)) {
    const energy::SolarHarvester h(u::Area(cm2 * 1e-4), 0.15,
                                   /*indoor=*/true);
    const double duty =
        energy::max_neutral_duty(h.average_power(), p.active, p.sleep);
    a.add_row({cm2, h.average_power().value() * 1e6, duty,
               duty > 0.0 ? std::string("yes") : std::string("no")});
  }
  std::cout << a << '\n';

  sim::Table b("F3b: autonomy vs duty cycle (2 cm2 indoor PV + 1 mAh film)",
               {"duty_pct", "avg_power_uW", "neutral",
                "autonomy_days"});
  const energy::SolarHarvester h(2_cm2, 0.15, /*indoor=*/true);
  for (double duty : {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    const energy::DutyCycleLoad load{p.active, p.sleep, 1_s,
                                     u::Time(duty)};
    const u::Power avg = load.average_power();
    const bool neutral = h.average_power() >= avg;
    double days;
    if (neutral) {
      days = -1.0;  // unlimited
    } else {
      energy::Battery buf(energy::Battery::thin_film_1mAh());
      days = buf.lifetime_at(avg - h.average_power()).value() / 86400.0;
    }
    b.add_row({duty * 100.0, avg.value() * 1e6,
               neutral ? std::string("yes") : std::string("no"),
               days < 0 ? std::string("unlimited") : std::to_string(days)});
  }
  std::cout << b << '\n';

  sim::Table c("F3c: harvester technologies (average power)",
               {"harvester", "avg_power_uW"});
  const energy::VibrationHarvester vib(1.0);
  const energy::ThermalHarvester teg(4_cm2, 5.0);
  const energy::SolarHarvester outdoor(2_cm2, 0.15, /*indoor=*/false);
  const std::vector<const energy::Harvester*> harvesters{&h, &vib, &teg,
                                                         &outdoor};
  for (const energy::Harvester* hv : harvesters) {
    c.add_row({hv->name(), hv->average_power().value() * 1e6});
  }
  std::cout << c << '\n';

  // Outdoor deployment: the buffer must carry the node through the night.
  sim::Table d("F3d: outdoor day/night buffer cycling (2 cm2 PV, 5 days)",
               {"load_uW", "survived", "sustainable", "min_soc_pct",
                "min_buffer_J"});
  for (double load_uw : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    energy::BufferSimConfig bc;
    bc.harvester = std::make_shared<energy::SolarHarvester>(
        2_cm2, 0.15, /*indoor=*/false);
    bc.load = u::Power(load_uw * 1e-6);
    bc.duration = u::Time(86400.0 * 5);
    bc.step = u::Time(120.0);
    const auto r = energy::simulate_energy_buffer(bc);
    double min_buffer = -1.0;
    try {
      min_buffer = energy::minimum_buffer_energy(bc, 1e3, 25).value();
    } catch (const std::domain_error&) {
      // load above the average harvest: no buffer size helps
    }
    d.add_row({load_uw, r.survived ? "yes" : "no",
               r.sustainable ? "yes" : "no", r.min_soc * 100.0,
               min_buffer < 0 ? std::string("n/a")
                              : std::to_string(min_buffer)});
  }
  std::cout << d << '\n';
}

void BM_max_neutral_duty(benchmark::State& state) {
  const auto p = sensor_node_powers();
  const energy::SolarHarvester h(2_cm2, 0.15, true);
  for (auto _ : state) {
    auto d = energy::max_neutral_duty(h.average_power(), p.active, p.sleep);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_max_neutral_duty);

void BM_harvester_integral(benchmark::State& state) {
  const energy::SolarHarvester h(2_cm2, 0.15, false);
  for (auto _ : state) {
    auto e = h.energy_between(u::Time(0.0), u::Time(86400.0));
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_harvester_integral);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
