// Reproduction of Figure F4 (case study 1b): sensor-network lifetime versus
// MAC duty cycle and node density, min-hop vs min-energy routing.
//
// Expected shape: lifetime falls roughly inversely with listen duty cycle
// (idle listening dominates); relaying creates hot spots (hotspot factor
// > 1) that first-death long before mean death; min-energy routing spends
// slightly more hops but relieves long-link senders.
//
// Every table row is an independent network simulation, so each table
// builds its config vector and fans the rows across workers with
// dse::parallel_sweep — results come back in row order and bit-identical
// to the former serial loops.
#include <iostream>

#include "ambisim/dse/sweep.hpp"
#include "ambisim/net/network_sim.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

net::SensorNetworkConfig base_config() {
  net::SensorNetworkConfig cfg;
  cfg.node_count = 50;
  cfg.field_side = u::Length(50.0);
  cfg.radio_range = u::Length(18.0);
  cfg.report_period = 60_s;
  cfg.seed = 3;
  return cfg;
}

std::vector<net::SensorNetworkResult> simulate_all(
    const std::vector<net::SensorNetworkConfig>& cfgs) {
  return dse::parallel_sweep(
      cfgs, [](const net::SensorNetworkConfig& c) {
        return net::simulate_sensor_network(c);
      });
}

void print_figure() {
  // The B-MAC trade-off: short wake intervals burn idle listening, long
  // ones burn sender preambles -> lifetime has an interior maximum.
  sim::Table a("F4a: lifetime vs MAC wake interval (50 nodes, 5 ms listen)",
               {"wake_interval_s", "listen_duty_pct", "first_death_days",
                "half_death_days", "delivery_ratio", "hotspot_factor"});
  const std::vector<double> wakes{0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<net::SensorNetworkConfig> a_cfgs;
  for (double wake : wakes) {
    auto cfg = base_config();
    cfg.mac = {u::Time(wake), u::Time(0.005)};
    a_cfgs.push_back(cfg);
  }
  const auto a_res = simulate_all(a_cfgs);
  for (std::size_t i = 0; i < wakes.size(); ++i) {
    const auto& r = a_res[i];
    a.add_row({wakes[i], 100.0 * 0.005 / wakes[i],
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.delivery_ratio,
               r.hotspot_factor});
  }
  std::cout << a << '\n';

  sim::Table b("F4b: lifetime vs node count (1% duty, min-hop)",
               {"nodes", "first_death_days", "half_death_days", "mean_hops",
                "hotspot_factor", "unreachable"});
  const std::vector<int> counts{20, 35, 50, 80, 120};
  std::vector<net::SensorNetworkConfig> b_cfgs;
  for (int n : counts) {
    auto cfg = base_config();
    cfg.node_count = n;
    b_cfgs.push_back(cfg);
  }
  const auto b_res = simulate_all(b_cfgs);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto& r = b_res[i];
    b.add_row({static_cast<long long>(counts[i]),
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.mean_hops,
               r.hotspot_factor, static_cast<long long>(r.unreachable_nodes)});
  }
  std::cout << b << '\n';

  sim::Table c("F4c: routing policy comparison (50 nodes, 1% duty)",
               {"routing", "first_death_days", "half_death_days",
                "mean_hops", "hotspot_factor"});
  const std::vector<net::RoutingPolicy> policies{net::RoutingPolicy::MinHop,
                                                 net::RoutingPolicy::MinEnergy};
  std::vector<net::SensorNetworkConfig> c_cfgs;
  for (auto policy : policies) {
    auto cfg = base_config();
    cfg.routing = policy;
    c_cfgs.push_back(cfg);
  }
  const auto c_res = simulate_all(c_cfgs);
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = c_res[i];
    c.add_row({policies[i] == net::RoutingPolicy::MinHop ? "min-hop"
                                                         : "min-energy",
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.mean_hops,
               r.hotspot_factor});
  }
  std::cout << c << '\n';

  sim::Table d("F4d: harvesting rescues the network (20 uW/node avg)",
               {"harvest_uW", "first_death_days", "delivery_ratio"});
  const std::vector<double> harvests{0.0, 5.0, 10.0, 20.0, 40.0};
  std::vector<net::SensorNetworkConfig> d_cfgs;
  for (double uw : harvests) {
    auto cfg = base_config();
    if (uw > 0.0) cfg.harvest_avg_watt = uw * 1e-6;
    cfg.max_sim_time = u::Time(86400.0 * 3650);  // cap at 10 years
    d_cfgs.push_back(cfg);
  }
  const auto d_res = simulate_all(d_cfgs);
  for (std::size_t i = 0; i < harvests.size(); ++i) {
    const auto& r = d_res[i];
    const double fd = r.first_node_death.value();
    d.add_row({harvests[i],
               fd > 0.0 ? fd / 86400.0 : r.simulated.value() / 86400.0,
               r.delivery_ratio});
  }
  std::cout << d << '\n';

  sim::Table e("F4e: in-network aggregation ablation (50 nodes, 1% duty)",
               {"aggregation", "first_death_days", "half_death_days",
                "hotspot_factor"});
  const std::vector<bool> aggs{false, true};
  std::vector<net::SensorNetworkConfig> e_cfgs;
  for (bool agg : aggs) {
    auto cfg = base_config();
    cfg.field_side = u::Length(70.0);
    cfg.radio_range = u::Length(16.0);
    cfg.aggregate_at_relays = agg;
    e_cfgs.push_back(cfg);
  }
  const auto e_res = simulate_all(e_cfgs);
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const auto& r = e_res[i];
    e.add_row({aggs[i] ? "merge-at-relay" : "store-and-forward",
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.hotspot_factor});
  }
  std::cout << e << '\n';

  sim::Table f("F4f: optimal hop count vs distance (first-order radio)",
               {"distance_m", "optimal_hops", "energy_vs_direct"});
  const net::LinkEnergyModel radio_model{100e-9, 0.1e-9, 3.0};
  for (double dist : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    const u::Length d(dist);
    const int k = net::optimal_hop_count(radio_model, d);
    f.add_row({dist, static_cast<long long>(k),
               net::multihop_energy(radio_model, d, k) /
                   net::multihop_energy(radio_model, d, 1)});
  }
  std::cout << f << '\n';
}

void BM_network_lifetime(benchmark::State& state) {
  auto cfg = base_config();
  cfg.node_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = net::simulate_sensor_network(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_network_lifetime)->Arg(25)->Arg(50)->Arg(100);

// The parallel fan-out itself: 8 independent 25-node networks per
// iteration, serial loop vs the sweep runner at hardware width.
void BM_lifetime_sweep_serial(benchmark::State& state) {
  std::vector<net::SensorNetworkConfig> cfgs(8, base_config());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].node_count = 25;
    cfgs[i].seed = static_cast<unsigned>(i + 1);
  }
  for (auto _ : state) {
    for (const auto& c : cfgs) {
      auto r = net::simulate_sensor_network(c);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_lifetime_sweep_serial);

void BM_lifetime_sweep_parallel(benchmark::State& state) {
  std::vector<net::SensorNetworkConfig> cfgs(8, base_config());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].node_count = 25;
    cfgs[i].seed = static_cast<unsigned>(i + 1);
  }
  exec::ParallelSweepRunner runner;
  for (auto _ : state) {
    auto r = runner.run(cfgs, [](const net::SensorNetworkConfig& c) {
      return net::simulate_sensor_network(c);
    });
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_lifetime_sweep_parallel);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
