// Reproduction of Figure F4 (case study 1b): sensor-network lifetime versus
// MAC duty cycle and node density, min-hop vs min-energy routing.
//
// Expected shape: lifetime falls roughly inversely with listen duty cycle
// (idle listening dominates); relaying creates hot spots (hotspot factor
// > 1) that first-death long before mean death; min-energy routing spends
// slightly more hops but relieves long-link senders.
#include <iostream>

#include "ambisim/net/network_sim.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

net::SensorNetworkConfig base_config() {
  net::SensorNetworkConfig cfg;
  cfg.node_count = 50;
  cfg.field_side = u::Length(50.0);
  cfg.radio_range = u::Length(18.0);
  cfg.report_period = 60_s;
  cfg.seed = 3;
  return cfg;
}

void print_figure() {
  // The B-MAC trade-off: short wake intervals burn idle listening, long
  // ones burn sender preambles -> lifetime has an interior maximum.
  sim::Table a("F4a: lifetime vs MAC wake interval (50 nodes, 5 ms listen)",
               {"wake_interval_s", "listen_duty_pct", "first_death_days",
                "half_death_days", "delivery_ratio", "hotspot_factor"});
  for (double wake : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    auto cfg = base_config();
    cfg.mac = {u::Time(wake), u::Time(0.005)};
    const auto r = net::simulate_sensor_network(cfg);
    a.add_row({wake, 100.0 * 0.005 / wake,
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.delivery_ratio,
               r.hotspot_factor});
  }
  std::cout << a << '\n';

  sim::Table b("F4b: lifetime vs node count (1% duty, min-hop)",
               {"nodes", "first_death_days", "half_death_days", "mean_hops",
                "hotspot_factor", "unreachable"});
  for (int n : {20, 35, 50, 80, 120}) {
    auto cfg = base_config();
    cfg.node_count = n;
    const auto r = net::simulate_sensor_network(cfg);
    b.add_row({static_cast<long long>(n),
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.mean_hops,
               r.hotspot_factor, static_cast<long long>(r.unreachable_nodes)});
  }
  std::cout << b << '\n';

  sim::Table c("F4c: routing policy comparison (50 nodes, 1% duty)",
               {"routing", "first_death_days", "half_death_days",
                "mean_hops", "hotspot_factor"});
  for (auto policy : {net::RoutingPolicy::MinHop,
                      net::RoutingPolicy::MinEnergy}) {
    auto cfg = base_config();
    cfg.routing = policy;
    const auto r = net::simulate_sensor_network(cfg);
    c.add_row({policy == net::RoutingPolicy::MinHop ? "min-hop"
                                                    : "min-energy",
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.mean_hops,
               r.hotspot_factor});
  }
  std::cout << c << '\n';

  sim::Table d("F4d: harvesting rescues the network (20 uW/node avg)",
               {"harvest_uW", "first_death_days", "delivery_ratio"});
  for (double uw : {0.0, 5.0, 10.0, 20.0, 40.0}) {
    auto cfg = base_config();
    if (uw > 0.0) cfg.harvest_avg_watt = uw * 1e-6;
    cfg.max_sim_time = u::Time(86400.0 * 3650);  // cap at 10 years
    const auto r = net::simulate_sensor_network(cfg);
    const double fd = r.first_node_death.value();
    d.add_row({uw, fd > 0.0 ? fd / 86400.0 : r.simulated.value() / 86400.0,
               r.delivery_ratio});
  }
  std::cout << d << '\n';

  sim::Table e("F4e: in-network aggregation ablation (50 nodes, 1% duty)",
               {"aggregation", "first_death_days", "half_death_days",
                "hotspot_factor"});
  for (bool agg : {false, true}) {
    auto cfg = base_config();
    cfg.field_side = u::Length(70.0);
    cfg.radio_range = u::Length(16.0);
    cfg.aggregate_at_relays = agg;
    const auto r = net::simulate_sensor_network(cfg);
    e.add_row({agg ? "merge-at-relay" : "store-and-forward",
               r.first_node_death.value() / 86400.0,
               r.half_network_death.value() / 86400.0, r.hotspot_factor});
  }
  std::cout << e << '\n';

  sim::Table f("F4f: optimal hop count vs distance (first-order radio)",
               {"distance_m", "optimal_hops", "energy_vs_direct"});
  const net::LinkEnergyModel radio_model{100e-9, 0.1e-9, 3.0};
  for (double dist : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    const u::Length d(dist);
    const int k = net::optimal_hop_count(radio_model, d);
    f.add_row({dist, static_cast<long long>(k),
               net::multihop_energy(radio_model, d, k) /
                   net::multihop_energy(radio_model, d, 1)});
  }
  std::cout << f << '\n';
}

void BM_network_lifetime(benchmark::State& state) {
  auto cfg = base_config();
  cfg.node_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = net::simulate_sensor_network(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_network_lifetime)->Arg(25)->Arg(50)->Arg(100);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
