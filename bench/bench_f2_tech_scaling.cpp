// Reproduction of Figure F2: CMOS technology scaling of energy per
// operation and leakage, 350 nm -> 45 nm.
//
// Expected shape: switching energy per gate falls superlinearly with feature
// size (C*V^2); leakage per gate rises steeply as Vth scales; consequently
// the leakage *fraction* of a lightly-loaded core grows toward newer nodes.
#include <iostream>

#include "ambisim/arch/processor.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/memory_energy.hpp"
#include "ambisim/tech/technology.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;

void print_figure() {
  const auto& lib = tech::TechnologyLibrary::standard();
  sim::Table t("F2: technology scaling (reference gate and RISC core)",
               {"node", "year", "vdd_V", "fo4_ps", "fmax_MHz",
                "E_switch_fJ", "leak_nW_per_gate", "risc_E_per_op_pJ",
                "risc_leak_fraction_10pct_util", "sram32k_access_pJ"});
  for (const auto& n : lib.all()) {
    const u::Voltage v = n.vdd_nominal;
    const auto cpu =
        arch::ProcessorModel::at_max_clock(arch::risc_core(), n, v);
    const double leak_frac =
        cpu.leakage_power().value() /
        (cpu.dynamic_power(0.1) + cpu.leakage_power()).value();
    t.add_row({n.name, static_cast<long long>(n.year), v.value(),
               tech::gate_delay(n, v).value() * 1e12,
               tech::max_frequency(n, v, 20.0).value() / 1e6,
               tech::switching_energy(n, v).value() * 1e15,
               tech::leakage_power_per_gate(n, v).value() * 1e9,
               cpu.energy_per_op().value() * 1e12, leak_frac,
               tech::SramModel::access_energy(n, v, 32.0 * 8192.0 * 8.0)
                       .value() *
                   1e12});
  }
  std::cout << t << '\n';
}

void BM_energy_per_op(benchmark::State& state) {
  const auto& n = tech::TechnologyLibrary::standard().node("130nm");
  for (auto _ : state) {
    auto e = tech::energy_per_op(n, 1e5, n.vdd_nominal,
                                 tech::max_frequency(n, n.vdd_nominal), 1e6);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_energy_per_op);

void BM_gate_delay_sweep(benchmark::State& state) {
  const auto& n = tech::TechnologyLibrary::standard().node("90nm");
  for (auto _ : state) {
    for (double v = n.vdd_min.value(); v <= n.vdd_nominal.value();
         v += 0.01) {
      auto d = tech::gate_delay(n, u::Voltage(v));
      benchmark::DoNotOptimize(d);
    }
  }
}
BENCHMARK(BM_gate_delay_sweep);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
