// Extension figure F9: delivered-information energetics of the wireless
// link — PER vs distance per modulation, energy per *delivered* bit vs
// distance under ARQ, and the distance-dependent optimal radiated power.
//
// Expected shape: PER is a near-step function of distance; energy per
// delivered bit is flat inside range and cliffs at the edge; the optimal
// radiated power grows ~d^n once the link leaves the electronics-dominated
// regime.
//
// Each table's rows are independent design points, evaluated through
// dse::parallel_sweep and printed in input order.
#include <iostream>

#include "ambisim/dse/sweep.hpp"
#include "ambisim/radio/ber.hpp"
#include "ambisim/sim/table.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
using namespace ambisim::radio;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

void print_figure() {
  const RadioModel ulp{ulp_radio()};
  const u::Length reach = ulp.max_range();
  std::cout << "ULP radio nominal range (1e-3 BER): "
            << u::to_string(reach) << "\n\n";

  sim::Table a("F9a: packet error rate vs distance (512-bit packets)",
               {"distance_m", "ber_fsk", "per_fsk", "per_bpsk_equiv"});
  const std::vector<double> a_fracs{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1,
                                    1.2, 1.4};
  struct RowA {
    double distance = 0.0, ber = 0.0, per = 0.0, per_bpsk = 0.0;
  };
  const auto a_rows = dse::parallel_sweep(a_fracs, [&](double frac) {
    const u::Length d = reach * frac;
    const double ber =
        bit_error_rate_at(ulp.link_budget(), Modulation::fsk(), d);
    const double ber_bpsk =
        bit_error_rate_at(ulp.link_budget(), Modulation::bpsk(), d);
    return RowA{d.value(), ber, packet_error_rate(ber, 512.0),
                packet_error_rate(ber_bpsk, 512.0)};
  });
  for (const RowA& r : a_rows)
    a.add_row({r.distance, r.ber, r.per, r.per_bpsk});
  std::cout << a << '\n';

  sim::Table b("F9b: energy per delivered bit vs distance (ARQ, 8 tries)",
               {"distance_m", "nJ_per_delivered_bit", "expected_attempts"});
  const ArqModel arq;
  const std::vector<double> b_fracs{0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3};
  struct RowB {
    double distance = 0.0, nj_per_bit = 0.0, attempts = 0.0;
  };
  const auto b_rows = dse::parallel_sweep(b_fracs, [&](double frac) {
    const u::Length d = reach * frac;
    const double ber =
        bit_error_rate_at(ulp.link_budget(), Modulation::fsk(), d);
    const double per = packet_error_rate(ber, 512.0);
    return RowB{d.value(),
                energy_per_delivered_bit(ulp, d, 512_bit).value() * 1e9,
                arq.expected_attempts(per)};
  });
  for (const RowB& r : b_rows)
    b.add_row({r.distance, r.nj_per_bit, r.attempts});
  std::cout << b << '\n';

  sim::Table c("F9c: optimal radiated power vs distance",
               {"distance_m", "optimal_dbm", "resulting_nJ_per_bit"});
  const std::vector<double> c_dists{2.0, 5.0, 10.0, 20.0, 40.0, 80.0};
  struct RowC {
    double distance = 0.0, dbm = 0.0, nj_per_bit = 0.0;
  };
  const auto c_rows = dse::parallel_sweep(c_dists, [](double dist) {
    const u::Length d{dist};
    const u::Power p = optimal_radiated_power(ulp_radio(), d, 512_bit);
    RadioParams tuned = ulp_radio();
    tuned.tx_radiated = p;
    const RadioModel r(tuned);
    return RowC{dist, watt_to_dbm(p),
                energy_per_delivered_bit(r, d, 512_bit).value() * 1e9};
  });
  for (const RowC& r : c_rows)
    c.add_row({r.distance, r.dbm, r.nj_per_bit});
  std::cout << c << '\n';
}

void BM_ber_sweep(benchmark::State& state) {
  const RadioModel ulp{ulp_radio()};
  for (auto _ : state) {
    double acc = 0.0;
    for (double d = 1.0; d < 60.0; d += 1.0) {
      acc += bit_error_rate_at(ulp.link_budget(), Modulation::fsk(),
                               u::Length(d));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ber_sweep);

void BM_optimal_power(benchmark::State& state) {
  for (auto _ : state) {
    auto p = optimal_radiated_power(ulp_radio(), u::Length(20.0), 512_bit);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_optimal_power);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
