// Reproduction of Figure F7 (case study 3, Watt static node): media-SoC
// architecture alternatives on the throughput/power plane under SD and HD
// video decode.
//
// Expected shape: the general-purpose RISC is cheapest at low throughput
// but cannot reach video rates; multi-DSP and VLIW reach SD; only the
// accelerator-assisted SoC reaches HD, and the Pareto front at high
// throughput is owned by the least flexible (hardwired) fabric — the
// flexibility-vs-efficiency trade-off of the keynote.
#include <iostream>
#include <vector>

#include "ambisim/arch/soc.hpp"
#include "ambisim/dse/pareto.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/workload/streams.hpp"
#include "bench_util.hpp"

namespace {

using namespace ambisim;
namespace u = ambisim::units;
using namespace ambisim::units::literals;

std::vector<arch::SocModel> build_alternatives() {
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const u::Voltage v = node.vdd_nominal;
  std::vector<arch::CacheLevelSpec> caches{
      {"L1", 32.0 * 1024.0 * 8.0, 32.0, 2_ns},
      {"L2", 256.0 * 1024.0 * 8.0, 64.0, 8_ns}};

  std::vector<arch::SocModel> socs;
  {
    arch::SocModel s("risc", node, v);
    s.add_core(arch::risc_core());
    s.set_memory(caches, true).set_bus(4.0, 32.0);
    socs.push_back(std::move(s));
  }
  {
    arch::SocModel s("dual-risc", node, v);
    s.add_core(arch::risc_core()).add_core(arch::risc_core());
    s.set_memory(caches, true).set_bus(5.0, 64.0);
    socs.push_back(std::move(s));
  }
  {
    arch::SocModel s("quad-dsp", node, v);
    for (int i = 0; i < 4; ++i) s.add_core(arch::dsp_core());
    s.set_memory(caches, true).set_bus(6.0, 64.0);
    socs.push_back(std::move(s));
  }
  {
    arch::SocModel s("vliw", node, v);
    s.add_core(arch::vliw_core());
    s.set_memory(caches, true).set_bus(5.0, 64.0);
    socs.push_back(std::move(s));
  }
  {
    arch::SocModel s("vliw+accel", node, v);
    s.add_core(arch::vliw_core())
        .add_core(arch::accelerator_core("mc"))
        .add_core(arch::accelerator_core("dct"));
    s.set_memory(caches, true).set_bus(6.0, 128.0);
    socs.push_back(std::move(s));
  }
  return socs;
}

void print_figure() {
  const auto socs = build_alternatives();

  for (const auto& wl : {workload::video_decode_sd(),
                         workload::video_decode_hd()}) {
    sim::Table t("F7: " + wl.name + " on SoC alternatives (130 nm)",
                 {"soc", "capacity_GOPS", "max_fps", "meets_rate",
                  "power_W_at_rate", "energy_per_frame_mJ"});
    std::vector<dse::ParetoPoint> points;
    for (const auto& s : socs) {
      const u::Frequency fmax = s.max_rate(wl.demand);
      const bool ok = fmax >= wl.unit_rate;
      const u::Frequency rate = ok ? wl.unit_rate : fmax;
      const auto ev = s.evaluate(wl.demand, rate);
      t.add_row({s.name(), s.compute_capacity().value() / 1e9,
                 fmax.value(), ok ? "yes" : "no", ev.power.value(),
                 ev.energy_per_unit.value() * 1e3});
      points.push_back({ev.power.value(), fmax.value(), s.name()});
    }
    std::cout << t << '\n';

    const auto front = dse::pareto_front(points);
    std::cout << "Pareto front (" << wl.name << "): ";
    for (const auto& p : front) std::cout << p.label << ' ';
    std::cout << "\n\n";
  }

  // Technology scaling of the winning SoC: the same architecture re-targeted.
  sim::Table s("F7c: vliw+accel across process nodes (SD decode at 25 fps)",
               {"node", "power_W", "energy_per_frame_mJ", "feasible"});
  const auto wl = workload::video_decode_sd();
  for (const auto* name : {"250nm", "180nm", "130nm", "90nm", "65nm"}) {
    const auto& node = tech::TechnologyLibrary::standard().node(name);
    arch::SocModel soc("vliw+accel", node, node.vdd_nominal);
    soc.add_core(arch::vliw_core())
        .add_core(arch::accelerator_core("mc"))
        .add_core(arch::accelerator_core("dct"));
    soc.set_memory({{"L1", 32.0 * 1024.0 * 8.0, 32.0, 2_ns},
                    {"L2", 256.0 * 1024.0 * 8.0, 64.0, 8_ns}},
                   true);
    soc.set_bus(6.0, 128.0);
    const auto ev = soc.evaluate(wl.demand, wl.unit_rate);
    s.add_row({name, ev.power.value(), ev.energy_per_unit.value() * 1e3,
               ev.feasible ? "yes" : "no"});
  }
  std::cout << s << '\n';
}

void BM_soc_evaluate(benchmark::State& state) {
  const auto socs = build_alternatives();
  const auto wl = workload::video_decode_sd();
  for (auto _ : state) {
    for (const auto& s : socs) {
      auto ev = s.evaluate(wl.demand, u::Frequency(10.0));
      benchmark::DoNotOptimize(ev);
    }
  }
}
BENCHMARK(BM_soc_evaluate);

void BM_pareto_front(benchmark::State& state) {
  std::vector<dse::ParetoPoint> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({static_cast<double>((i * 37) % 997),
                   static_cast<double>((i * 61) % 991), ""});
  }
  for (auto _ : state) {
    auto f = dse::pareto_front(pts);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_pareto_front);

}  // namespace

AMBISIM_BENCH_MAIN(print_figure)
