// Case study 2 — the personal milliWatt node.
//
// A wearable wireless-audio appliance: receives a compressed stream over a
// 1 Mbps short-range radio, decodes it on a DSP, and plays it out.  The
// example sizes the DSP operating point with DVS, splits the power budget
// and reports battery life.
#include <algorithm>
#include <iostream>

#include "ambisim/arch/interface.hpp"
#include "ambisim/arch/processor.hpp"
#include "ambisim/dse/dvs_schedule.hpp"
#include "ambisim/energy/battery.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/tech/dvs.hpp"
#include "ambisim/workload/streams.hpp"
#include "ambisim/workload/task_graph.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;
  using namespace ambisim::units::literals;

  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const auto wl = workload::audio_playback(128_kbps);
  std::cout << "workload: " << wl.name << ", "
            << wl.ops_rate().value() / 1e6 << " MOPS sustained\n";

  // 1. DVS: pick the slowest DSP operating point that sustains the decode.
  const tech::DvsModel dvs(node, 16, arch::dsp_core().logic_depth);
  tech::OperatingPoint op = dvs.fastest();
  for (const auto& p : dvs.points()) {
    if (p.frequency.value() * arch::dsp_core().ops_per_cycle >=
        wl.ops_rate().value()) {
      op = p;
      break;
    }
  }
  const arch::ProcessorModel dsp(arch::dsp_core(), node, op.voltage,
                                 op.frequency);
  std::cout << "DSP operating point: " << op.voltage.value() << " V, "
            << op.frequency.value() / 1e6 << " MHz\n";

  // 2. Power budget.
  const radio::RadioModel bt(radio::bluetooth_like());
  const double rx_duty = 128e3 / bt.params().bit_rate.value();
  const double util =
      std::min(1.0, wl.ops_rate().value() / dsp.throughput().value());
  const u::Power p_dsp = dsp.power(util);
  const u::Power p_radio = bt.rx_power() * rx_duty + bt.idle_power() * 0.05 +
                           bt.sleep_power() * (0.95 - rx_duty);
  const auto ear = arch::AudioOutput::earpiece();
  const u::Power total = p_dsp + p_radio + ear.amplifier_power;
  std::cout << "power: dsp " << u::to_string(p_dsp) << ", radio "
            << u::to_string(p_radio) << ", audio "
            << u::to_string(ear.amplifier_power) << " -> total "
            << u::to_string(total) << '\n';

  // 3. Battery life.
  energy::Battery battery(energy::Battery::li_ion_1000mAh());
  std::cout << "battery life: "
            << battery.lifetime_at(total).value() / 3600.0 << " hours\n\n";

  // 4. Per-task DVS schedule of the decode pipeline within its deadline.
  const auto graph = workload::audio_pipeline_graph();
  const auto sched = dse::schedule_with_dvs(graph, dvs, graph.deadline(),
                                            40e3, 360e3);
  std::cout << "pipeline DVS schedule (" << graph.name() << "):\n"
            << "  feasible : " << (sched.feasible ? "yes" : "no") << '\n'
            << "  nominal  : " << u::to_string(sched.energy_nominal)
            << " per period\n"
            << "  with DVS : " << u::to_string(sched.energy_dvs) << " ("
            << sched.savings * 100.0 << " % saved)\n";
  return 0;
}
