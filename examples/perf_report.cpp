// Execution-profile CLI: render an obs::Profiler JSON dump as an ASCII
// breakdown — top phases, per-worker utilization bars, and per-window
// advance-vs-barrier attribution.
//
//   perf_report                  run a small sharded packet workload under
//                                a Profiler, write perf_profile.json, then
//                                report on it
//   perf_report <profile.json>   report on an existing profile (e.g. the
//                                PROFILE_city.json bench_city emits, or a
//                                scenario_runner --profile dump)
//
// Like timeline_report, the report is built *only* from the JSON file —
// the self-run mode re-parses what it just wrote — so the tool doubles as
// an end-to-end check that Profiler::write_json carries everything needed
// to explain where a run's wall-clock went.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/manifest.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/scen/json.hpp"
#include "ambisim/shard/engine.hpp"

using namespace ambisim;
namespace u = ambisim::units;
namespace js = ambisim::scen::json;

namespace {

constexpr int kTopPhases = 8;
constexpr int kWindowRows = 12;
constexpr int kBarWidth = 40;

double num_or(const js::Value& obj, const char* key, double fallback = 0.0) {
  const js::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string str_or(const js::Value& obj, const char* key) {
  const js::Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

/// `####----` bar: `frac` of `width` filled.
std::string bar(double frac, int width, char fill = '#', char rest = '-') {
  frac = std::clamp(frac, 0.0, 1.0);
  const int filled = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<std::size_t>(filled), fill) +
         std::string(static_cast<std::size_t>(width - filled), rest);
}

std::string seconds(double s) {
  std::ostringstream os;
  if (s >= 1.0)
    os << s << " s";
  else if (s >= 1e-3)
    os << s * 1e3 << " ms";
  else
    os << s * 1e6 << " us";
  return os.str();
}

void print_phases(const js::Value& root) {
  const js::Value* phases = root.find("phases");
  if (phases == nullptr || !phases->is_array() || phases->size() == 0) {
    std::cout << "(no phases in this profile)\n\n";
    return;
  }
  struct Row {
    std::string name;
    double wall_s = 0.0;
    double count = 0.0;
  };
  std::vector<Row> rows;
  double total = 0.0;
  for (const js::Value& p : phases->items()) {
    rows.push_back({str_or(p, "name"), num_or(p, "wall_s"),
                    num_or(p, "count")});
    total += rows.back().wall_s;
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.wall_s > b.wall_s; });
  std::cout << "top phases (" << std::min<std::size_t>(rows.size(),
                                                       kTopPhases)
            << " of " << rows.size() << ", total " << seconds(total)
            << "):\n";
  for (std::size_t i = 0;
       i < rows.size() && i < static_cast<std::size_t>(kTopPhases); ++i) {
    const double frac = total > 0.0 ? rows[i].wall_s / total : 0.0;
    std::cout << "  " << bar(frac, kBarWidth) << "  ";
    std::cout.width(22);
    std::cout << std::left << rows[i].name << std::right << "  "
              << seconds(rows[i].wall_s) << " ("
              << static_cast<int>(frac * 100.0 + 0.5) << "%, x"
              << static_cast<long long>(rows[i].count) << ")\n";
  }
  std::cout << '\n';
}

void print_workers(const js::Value& root) {
  const js::Value* workers = root.find("workers");
  if (workers == nullptr || !workers->is_array() || workers->size() == 0) {
    std::cout << "(no worker accounting in this profile)\n\n";
    return;
  }
  std::cout << "pool workers (run / queue-wait / idle share of lifetime):\n";
  for (const js::Value& w : workers->items()) {
    const double life = num_or(w, "lifetime_s");
    const double run = num_or(w, "run_s");
    const double wait = num_or(w, "queue_wait_s");
    const double util = num_or(w, "utilization");
    // Stacked bar: '#' run, '+' queue wait, '-' idle.
    std::string b(kBarWidth, '-');
    if (life > 0.0) {
      const int nrun = static_cast<int>(run / life * kBarWidth + 0.5);
      const int nwait = static_cast<int>(wait / life * kBarWidth + 0.5);
      for (int i = 0; i < kBarWidth; ++i) {
        if (i < nrun)
          b[static_cast<std::size_t>(i)] = '#';
        else if (i < nrun + nwait)
          b[static_cast<std::size_t>(i)] = '+';
      }
    }
    std::cout << "  worker " << static_cast<int>(num_or(w, "index")) << "  "
              << b << "  " << static_cast<int>(util * 100.0 + 0.5)
              << "% busy, " << static_cast<long long>(num_or(w, "tasks"))
              << " tasks, lifetime " << seconds(life) << "\n";
  }
  std::cout << '\n';
}

void print_windows(const js::Value& root) {
  const double adv = num_or(root, "advance_wall_s");
  const double bar_s = num_or(root, "barrier_wall_s");
  const double imb = num_or(root, "imbalance", 1.0);
  const long long total =
      static_cast<long long>(num_or(root, "windows_total"));
  if (total == 0) {
    std::cout << "(no window records — serial run or profiling off)\n";
    return;
  }
  const long long recorded =
      static_cast<long long>(num_or(root, "windows_recorded"));
  std::cout << "windows: " << total << " (" << recorded
            << " recorded), boundary gathered "
            << static_cast<long long>(num_or(root, "boundary_gathered"))
            << " / rescheduled "
            << static_cast<long long>(num_or(root, "boundary_rescheduled"))
            << "\n"
            << "attribution: advance " << seconds(adv) << " vs barrier "
            << seconds(bar_s) << ", time-weighted imbalance " << imb
            << " (max/mean shard advance; 1 = balanced)\n\n";

  const js::Value* windows = root.find("windows");
  if (windows == nullptr || !windows->is_array() || windows->size() == 0)
    return;
  // Stacked per-window bars over the first rows: '#' = the critical
  // shard's advance, '+' = barrier, scaled to the largest window.
  double wmax = 0.0;
  for (const js::Value& w : windows->items())
    wmax = std::max(wmax, num_or(w, "advance_max_s") +
                              num_or(w, "barrier_wall_s"));
  const std::size_t rows =
      std::min<std::size_t>(windows->size(), kWindowRows);
  std::cout << "first " << rows << " windows (# advance, + barrier; bar = "
            << seconds(wmax) << "):\n";
  for (std::size_t i = 0; i < rows; ++i) {
    const js::Value& w = windows->items()[i];
    const double a = num_or(w, "advance_max_s");
    const double b = num_or(w, "barrier_wall_s");
    std::string line(kBarWidth, ' ');
    if (wmax > 0.0) {
      const int na = static_cast<int>(a / wmax * kBarWidth + 0.5);
      const int nb = static_cast<int>(b / wmax * kBarWidth + 0.5);
      for (int k = 0; k < kBarWidth; ++k) {
        if (k < na)
          line[static_cast<std::size_t>(k)] = '#';
        else if (k < na + nb)
          line[static_cast<std::size_t>(k)] = '+';
      }
    }
    std::cout << "  w" << static_cast<long long>(num_or(w, "index")) << "\t"
              << line << "  imb " << num_or(w, "imbalance", 1.0)
              << ", gathered "
              << static_cast<long long>(num_or(w, "gathered")) << "\n";
  }
  if (windows->size() > rows)
    std::cout << "  ... " << windows->size() - rows << " more recorded\n";
  std::cout << '\n';
}

void print_shards(const js::Value& root) {
  const js::Value* shards = root.find("shards");
  if (shards == nullptr || !shards->is_array() || shards->size() < 2) return;
  double amax = 0.0;
  for (const js::Value& s : shards->items())
    amax = std::max(amax, num_or(s, "advance_wall_s"));
  std::cout << "per-shard advance (load balance across regions):\n";
  for (const js::Value& s : shards->items()) {
    const double a = num_or(s, "advance_wall_s");
    std::cout << "  shard " << static_cast<int>(num_or(s, "index")) << "  "
              << bar(amax > 0.0 ? a / amax : 0.0, kBarWidth) << "  "
              << seconds(a) << ", "
              << static_cast<long long>(num_or(s, "events")) << " events\n";
  }
  std::cout << '\n';
}

/// Run a small sharded collection burst under a Profiler and dump the
/// profile; returns the path written.
std::string self_run(const std::string& path) {
  net::PacketSimConfig cfg;
  cfg.node_count = 256;
  cfg.field_side = u::Length(96.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = u::Time(20.0);
  cfg.duration = u::Time(2.0);
  cfg.mac = net::DutyCycledMac{u::Time(0.02), u::Time(0.001)};
  cfg.model_link_errors = true;
  cfg.sparse_links = true;
  cfg.seed = 2026;

  obs::Profiler prof;
  shard::ShardRunConfig rc{4, 4};
  rc.profiler = &prof;
  (void)shard::simulate_packets_sharded(cfg, rc);

  auto manifest = obs::RunManifest::collect();
  manifest.label = "perf_report self-run";
  manifest.seed = cfg.seed;
  manifest.pool_size = 4;

  std::ofstream os(path);
  prof.write_json(os, 0, &manifest);
  os << "\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : self_run("perf_profile.json");
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();

  js::Value root;
  try {
    root = js::parse(buf.str());
  } catch (const js::ParseError& e) {
    std::cerr << path << ": " << e.what() << '\n';
    return 1;
  }
  // Accept both a bare profile and a BENCH_*.json embedding one.
  if (const js::Value* nested = root.find("profile")) root = *nested;
  if (root.find("phases") == nullptr && root.find("windows") == nullptr) {
    std::cerr << path << " has no phases or windows — not a profile?\n";
    return 1;
  }

  std::cout << "execution profile: " << path << '\n';
  if (const js::Value* m = root.find("manifest"))
    std::cout << "  produced by: " << str_or(*m, "label") << " @ "
              << str_or(*m, "git_describe") << " ("
              << str_or(*m, "build_type") << ", pool "
              << static_cast<int>(num_or(*m, "pool_size")) << ")\n";
  std::cout << "  total wall: " << seconds(num_or(root, "total_wall_s"))
            << "\n\n";

  print_phases(root);
  print_workers(root);
  print_shards(root);
  print_windows(root);
  return 0;
}
