// Observability end to end: run the ambient-home scenario plus a short
// packet-level network run with probes armed, then export the combined
// timeline as Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev), a flat CSV of the same events, and the metrics
// registry.
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "ambisim/core/scenario.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace ambisim;
  namespace u = ambisim::units;

  const std::string trace_path =
      argc > 1 ? argv[1] : "ami_home_trace.json";
  const std::string trace_csv_path = "ami_home_trace.csv";
  const std::string metrics_path = "ami_home_metrics.csv";

  obs::set_enabled(true);
  obs::reset();

  // One hour of the ambient home: kernel spans from the event kernel,
  // net/energy spans from the context pipeline.
  core::AmiScenarioConfig cfg;
  cfg.sensor_count = 12;
  cfg.events_per_hour = 20.0;
  cfg.duration = u::Time(3600.0);
  const auto res = core::run_ami_scenario(cfg);

  // A short packet-level run adds per-hop spans and queueing metrics from
  // the collection network to the same timeline.
  net::PacketSimConfig pcfg;
  pcfg.node_count = 20;
  pcfg.duration = u::Time(120.0);
  const auto pres = net::simulate_packets(pcfg);

  const auto& ctx = obs::context();
  {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    ctx.tracer.write_chrome_json(out);
  }
  {
    std::ofstream out(trace_csv_path);
    ctx.tracer.write_csv(out);
  }
  {
    std::ofstream out(metrics_path);
    ctx.metrics.write_csv(out);
  }

  std::map<std::string, int> per_category;
  for (const auto& ev : ctx.tracer.events()) per_category[ev.category] += 1;

  std::cout << "ambient home, 1 h: " << res.events << " context events, "
            << res.responses_rendered << " responses rendered\n"
            << "packet run, 120 s: " << pres.delivered << '/'
            << pres.generated << " packets delivered\n\n"
            << "trace: " << ctx.tracer.size() << " events kept ("
            << ctx.tracer.recorded() << " recorded, "
            << ctx.tracer.dropped() << " dropped)\n";
  for (const auto& [cat, n] : per_category)
    std::cout << "  " << cat << ": " << n << " events\n";

  std::cout << "\nwrote " << trace_path << " (Chrome trace_event JSON), "
            << trace_csv_path << ", " << metrics_path << "\n\nmetrics:\n";
  ctx.metrics.write_csv(std::cout);
  return 0;
}
