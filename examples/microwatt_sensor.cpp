// Case study 1 — the autonomous microWatt node.
//
// Designs a harvesting-powered sensor node: picks a duty cycle that is
// energy-neutral under an indoor photovoltaic cell, verifies the radio link
// closes over a room, and deploys 40 such nodes as a multi-hop network to
// check collection lifetime.
#include <iostream>

#include "ambisim/arch/interface.hpp"
#include "ambisim/arch/processor.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/energy/ledger.hpp"
#include "ambisim/net/network_sim.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/tech/technology.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;
  using namespace ambisim::units::literals;

  const auto& node = tech::TechnologyLibrary::standard().node("130nm");

  // 1. Component powers at the lowest reliable supply voltage.
  const auto mcu = arch::ProcessorModel::at_max_clock(
      arch::microcontroller_core(), node, node.vdd_min);
  const radio::RadioModel radio(radio::ulp_radio());
  const auto sensor = arch::SensorFrontEnd::temperature();

  const u::Power active = mcu.power(1.0) + radio.idle_power() +
                          sensor.active_power;
  const u::Power sleep = mcu.sleep_power() + radio.sleep_power() +
                         sensor.standby_power;
  std::cout << "active power: " << u::to_string(active)
            << ", sleep power: " << u::to_string(sleep) << '\n';

  // 2. Does the radio link cover a room?
  std::cout << "radio reach at -6 dBm: "
            << u::to_string(radio.max_range()) << " (indoor path loss)\n";

  // 3. Energy-neutral duty cycle under a 2 cm^2 indoor PV cell.
  const energy::SolarHarvester pv(2_cm2, 0.15, /*indoor=*/true);
  const double duty_max =
      energy::max_neutral_duty(pv.average_power(), active, sleep);
  std::cout << "harvest avg: " << u::to_string(pv.average_power())
            << " -> max neutral duty: " << duty_max * 100.0 << " %\n";

  const energy::DutyCycleLoad chosen{active, sleep, 1_s,
                                     u::Time(duty_max * 0.5)};
  std::cout << "chosen duty " << chosen.duty() * 100.0
            << " % -> avg power " << u::to_string(chosen.average_power())
            << " (neutral: "
            << (pv.average_power() >= chosen.average_power() ? "yes" : "no")
            << ")\n\n";

  // 4. Deploy 40 nodes and simulate the collection network.
  net::SensorNetworkConfig cfg;
  cfg.node_count = 40;
  cfg.field_side = u::Length(40.0);
  cfg.radio_range = u::Length(15.0);
  cfg.report_period = 60_s;
  cfg.harvest_avg_watt = pv.average_power().value();
  cfg.max_sim_time = u::Time(86400.0 * 365.0);
  const auto r = net::simulate_sensor_network(cfg);
  std::cout << "network of " << cfg.node_count << " nodes over one year:\n"
            << "  delivery ratio : " << r.delivery_ratio << '\n'
            << "  first death    : "
            << (r.first_node_death.value() > 0.0
                    ? std::to_string(r.first_node_death.value() / 86400.0) +
                          " days"
                    : std::string("none (energy-neutral)"))
            << '\n'
            << "  hotspot factor : " << r.hotspot_factor << '\n';
  return 0;
}
