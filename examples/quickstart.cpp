// Quickstart: the AmbiSim public API in one page.
//
// Builds the keynote's power-information graph from the standard technology
// catalogue, composes the three case-study devices (microWatt / milliWatt /
// Watt node), and prints each device's class, power, information rate and
// autonomy.
#include <iostream>

#include "ambisim/core/device_node.hpp"
#include "ambisim/core/power_info.hpp"
#include "ambisim/tech/technology.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;

  // 1. The power-information graph: every technology as a (rate, power)
  //    point.
  const auto graph = core::PowerInfoGraph::standard_catalogue();
  std::cout << graph.to_table("Power-information graph (standard catalogue)")
            << '\n';

  const auto fit = graph.loglog_fit();
  std::cout << "log-log fit: log10(P) = " << fit.intercept << " + "
            << fit.slope << " * log10(R)   (R^2 = " << fit.r2 << ")\n\n";

  // 2. The three device classes, as composed devices.
  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  for (const auto& device :
       {core::autonomous_sensor_node(node), core::personal_audio_node(node),
        core::home_media_server(node)}) {
    const u::Power p = device.average_power();
    std::cout << device.name() << ":\n"
              << "  class        : " << to_string(device.device_class())
              << '\n'
              << "  avg power    : " << u::to_string(p) << '\n'
              << "  info rate    : " << u::to_string(device.information_rate())
              << '\n'
              << "  energy/bit   : "
              << u::to_string(device.to_point().energy_per_bit()) << '\n'
              << "  autonomy     : "
              << (device.autonomy().value() >= 1e17
                      ? std::string("unlimited")
                      : u::to_string(device.autonomy()))
              << '\n'
              << "  energy-neutral: "
              << (device.energy_neutral() ? "yes" : "no") << "\n\n";
  }
  return 0;
}
