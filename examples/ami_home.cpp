// The full ambient-intelligence scenario: a network of microWatt sensors, a
// milliWatt personal companion and a Watt-class home server realize a
// context-aware function end to end, simulated over one day — then the same
// day replicated across independent seed substreams on the parallel
// replication runner to put confidence intervals on the headline numbers.
#include <cstdint>
#include <iostream>

#include "ambisim/core/scenario.hpp"
#include "ambisim/exec/runner.hpp"
#include "ambisim/sim/statistics.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;

  core::AmiScenarioConfig cfg;
  cfg.sensor_count = 12;
  cfg.events_per_hour = 20.0;

  const auto res = core::run_ami_scenario(cfg);

  std::cout << "ambient home, 24 h: " << res.events << " context events, "
            << res.responses_rendered << " responses rendered\n\n";

  std::cout << "energy by device class:\n";
  for (const auto& [name, e] : res.class_energy.breakdown()) {
    std::cout << "  " << name << ": " << u::to_string(e) << " ("
              << res.class_energy.share(name) * 100.0 << " %)\n";
  }

  std::cout << "\nenergy by pipeline stage:\n";
  for (const auto& [name, e] : res.stage_energy.breakdown()) {
    std::cout << "  " << name << ": " << u::to_string(e) << '\n';
  }

  if (!res.end_to_end_latency.empty()) {
    std::cout << "\nend-to-end latency: p50 "
              << res.end_to_end_latency.median() << " s, p95 "
              << res.end_to_end_latency.percentile(95.0) << " s\n";
  }

  std::cout << "\nfeasibility:\n"
            << "  system power            : "
            << u::to_string(res.system_power) << '\n'
            << "  sensor average power    : "
            << u::si_format(res.sensor_average_power, "W") << '\n'
            << "  sensors energy-neutral  : "
            << (res.sensors_energy_neutral ? "yes" : "no") << '\n'
            << "  personal battery        : " << res.personal_battery_days
            << " days\n";

  // Monte-Carlo replication study: the same home, eight independent days.
  // Each replication draws its scenario seed from a substream derived with
  // SplitMix64 from (root seed, replication index), so the spread below is
  // reproducible bit-for-bit at any worker count.
  constexpr std::size_t kReplications = 8;
  exec::ReplicationRunner runner;
  const auto reps = runner.run(
      kReplications, /*root_seed=*/cfg.seed,
      [&](sim::Rng& rng, std::size_t) {
        core::AmiScenarioConfig c = cfg;
        c.seed = static_cast<unsigned>(rng.engine()());
        return core::run_ami_scenario(c);
      });

  sim::Accumulator p95_latency, battery_days, system_mw;
  for (const auto& r : reps) {
    if (!r.end_to_end_latency.empty())
      p95_latency.add(r.end_to_end_latency.percentile(95.0));
    battery_days.add(r.personal_battery_days);
    system_mw.add(r.system_power.value() * 1e3);
  }

  std::cout << "\nreplication study (" << kReplications
            << " independent days, " << runner.threads() << " workers):\n"
            << "  latency p95             : " << p95_latency.mean()
            << " s +/- " << p95_latency.stddev() << '\n'
            << "  personal battery        : " << battery_days.mean()
            << " days +/- " << battery_days.stddev() << '\n'
            << "  system power            : " << system_mw.mean()
            << " mW +/- " << system_mw.stddev() << '\n';
  return 0;
}
