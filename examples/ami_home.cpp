// The full ambient-intelligence scenario: a network of microWatt sensors, a
// milliWatt personal companion and a Watt-class home server realize a
// context-aware function end to end, simulated over one day.
#include <iostream>

#include "ambisim/core/scenario.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;

  core::AmiScenarioConfig cfg;
  cfg.sensor_count = 12;
  cfg.events_per_hour = 20.0;

  const auto res = core::run_ami_scenario(cfg);

  std::cout << "ambient home, 24 h: " << res.events << " context events, "
            << res.responses_rendered << " responses rendered\n\n";

  std::cout << "energy by device class:\n";
  for (const auto& [name, e] : res.class_energy.breakdown()) {
    std::cout << "  " << name << ": " << u::to_string(e) << " ("
              << res.class_energy.share(name) * 100.0 << " %)\n";
  }

  std::cout << "\nenergy by pipeline stage:\n";
  for (const auto& [name, e] : res.stage_energy.breakdown()) {
    std::cout << "  " << name << ": " << u::to_string(e) << '\n';
  }

  if (!res.end_to_end_latency.empty()) {
    std::cout << "\nend-to-end latency: p50 "
              << res.end_to_end_latency.median() << " s, p95 "
              << res.end_to_end_latency.percentile(95.0) << " s\n";
  }

  std::cout << "\nfeasibility:\n"
            << "  system power            : "
            << u::to_string(res.system_power) << '\n'
            << "  sensor average power    : "
            << u::si_format(res.sensor_average_power, "W") << '\n'
            << "  sensors energy-neutral  : "
            << (res.sensors_energy_neutral ? "yes" : "no") << '\n'
            << "  personal battery        : " << res.personal_battery_days
            << " days\n";
  return 0;
}
