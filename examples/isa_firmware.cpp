// Runs the microWatt node's sensing firmware on the instruction-accurate
// AmbiCore-32 interpreter and derives the node's duty-cycled power budget
// from measured (not assumed) per-sample energy.
#include <iostream>

#include "ambisim/energy/harvester.hpp"
#include "ambisim/energy/ledger.hpp"
#include "ambisim/isa/assembler.hpp"
#include "ambisim/isa/machine.hpp"
#include "ambisim/tech/technology.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;
  using namespace ambisim::units::literals;

  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  isa::Machine mcu(node, node.vdd_min, 1_MHz);
  mcu.load_program(isa::assemble(isa::firmware::sensing_filter()));

  // Synthetic temperature trace: slow drift + steps.
  int t = 0;
  int reports = 0;
  mcu.set_input_port([&t](int) { return 100 + (t++ / 60) % 40; });
  mcu.set_output_port([&reports](int, std::int32_t) { ++reports; });

  const int samples = 3600;  // one hour at 1 Hz
  mcu.set_reg(1, samples);
  mcu.set_reg(2, 115);  // alert threshold
  if (!mcu.run(50'000'000)) {
    std::cerr << "firmware did not halt\n";
    return 1;
  }

  const auto& s = mcu.stats();
  std::cout << "sensing firmware, " << samples << " samples:\n"
            << "  instructions      : " << s.instructions << " ("
            << s.cpi() << " CPI)\n"
            << "  reports emitted   : " << reports << '\n'
            << "  energy            : " << u::to_string(s.total_energy())
            << " (dynamic " << u::to_string(s.dynamic_energy)
            << ", leakage " << u::to_string(s.leakage_energy) << ")\n"
            << "  per instruction   : "
            << u::to_string(mcu.energy_per_instruction()) << '\n'
            << "  busy time         : " << u::to_string(mcu.elapsed())
            << " of 1 h -> duty "
            << mcu.elapsed().value() / 3600.0 * 100.0 << " %\n";

  // Average compute power if this hour repeats forever.
  const u::Power compute_avg{s.total_energy().value() / 3600.0};
  const energy::SolarHarvester pv(2_cm2, 0.15, /*indoor=*/true);
  std::cout << "  average power     : " << u::to_string(compute_avg)
            << " (harvester delivers " << u::to_string(pv.average_power())
            << ")\n"
            << "  compute is "
            << (compute_avg < pv.average_power() ? "well inside"
                                                 : "outside")
            << " the harvest budget -- the radio, not the MCU, bounds the "
               "microWatt node.\n";
  return 0;
}
