// Case study 3 — the static Watt node.
//
// A mains-powered home media hub: compares SoC architectures for
// standard-definition video decode and prints the throughput/power Pareto
// front, then checks the headroom for high definition.
#include <iostream>
#include <vector>

#include "ambisim/arch/soc.hpp"
#include "ambisim/dse/pareto.hpp"
#include "ambisim/workload/streams.hpp"

int main() {
  using namespace ambisim;
  namespace u = ambisim::units;
  using namespace ambisim::units::literals;

  const auto& node = tech::TechnologyLibrary::standard().node("130nm");
  const std::vector<arch::CacheLevelSpec> caches{
      {"L1", 32.0 * 1024 * 8, 32.0, 2_ns},
      {"L2", 256.0 * 1024 * 8, 64.0, 8_ns}};

  std::vector<arch::SocModel> socs;
  {
    arch::SocModel s("risc", node, node.vdd_nominal);
    s.add_core(arch::risc_core()).set_memory(caches, true).set_bus(4.0, 32.0);
    socs.push_back(std::move(s));
  }
  {
    arch::SocModel s("quad-dsp", node, node.vdd_nominal);
    for (int i = 0; i < 4; ++i) s.add_core(arch::dsp_core());
    s.set_memory(caches, true).set_bus(6.0, 64.0);
    socs.push_back(std::move(s));
  }
  {
    arch::SocModel s("vliw+accel", node, node.vdd_nominal);
    s.add_core(arch::vliw_core())
        .add_core(arch::accelerator_core("mc"))
        .add_core(arch::accelerator_core("dct"))
        .set_memory(caches, true)
        .set_bus(6.0, 128.0);
    socs.push_back(std::move(s));
  }

  const auto sd = workload::video_decode_sd();
  std::vector<dse::ParetoPoint> points;
  for (const auto& s : socs) {
    const u::Frequency fmax = s.max_rate(sd.demand);
    const auto ev = s.evaluate(sd.demand,
                               units::min(fmax, sd.unit_rate));
    std::cout << s.name() << ": capacity "
              << s.compute_capacity().value() / 1e9 << " GOPS, max "
              << fmax.value() << " fps, power "
              << u::to_string(ev.power) << " at "
              << units::min(fmax, sd.unit_rate).value() << " fps\n";
    for (const auto& [comp, p] : ev.breakdown)
      std::cout << "    " << comp << ": " << u::to_string(p) << '\n';
    points.push_back({ev.power.value(), fmax.value(), s.name()});
  }

  std::cout << "\nPareto front (power vs attainable fps): ";
  for (const auto& p : dse::pareto_front(points)) std::cout << p.label << ' ';
  std::cout << '\n';

  const auto hd = workload::video_decode_hd();
  for (const auto& s : socs) {
    std::cout << s.name() << " sustains HD: "
              << (s.max_rate(hd.demand) >= hd.unit_rate ? "yes" : "no")
              << '\n';
  }
  return 0;
}
