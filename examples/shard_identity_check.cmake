# Smoke for the --shards override: the committed shard spec must print a
# byte-identical report (checksum included) at --shards 1 and --shards 4.
# This is the conservative-sync determinism contract exercised end to end
# through the CLI; the ShardEngine/ShardScen suites cover the full matrix.
execute_process(COMMAND ${RUNNER} --replications 1 --shards 1 ${SPEC}
                OUTPUT_VARIABLE report_one RESULT_VARIABLE rc_one)
execute_process(COMMAND ${RUNNER} --replications 1 --shards 4 ${SPEC}
                OUTPUT_VARIABLE report_four RESULT_VARIABLE rc_four)
if(NOT rc_one EQUAL 0)
  message(FATAL_ERROR "scenario_runner --shards 1 failed (${rc_one}):\n${report_one}")
endif()
if(NOT rc_four EQUAL 0)
  message(FATAL_ERROR "scenario_runner --shards 4 failed (${rc_four}):\n${report_four}")
endif()
if(NOT report_one STREQUAL report_four)
  message(FATAL_ERROR "sharded report diverged from the unsharded run:\n"
                      "--- shards 1 ---\n${report_one}\n"
                      "--- shards 4 ---\n${report_four}")
endif()
