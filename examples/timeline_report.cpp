// Flight-recorder CLI: render per-node telemetry timelines and one
// packet's causal hop/retry chain from a flight-record JSONL file.
//
//   timeline_report                 run a small fault-armed collection
//                                   network, write flight_record.jsonl,
//                                   then report on it
//   timeline_report <file.jsonl>    report on an existing flight record
//
// The report is built *only* from the JSONL file — the tool re-parses
// what it just wrote — so it doubles as an end-to-end check that the
// export carries everything needed for post-mortem analysis: manifest
// provenance, per-node series (battery SoC, lifecycle, queue depth, duty
// cycle, retries), and the flow-linked trace events.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ambisim/net/packet_sim.hpp"
#include "ambisim/obs/manifest.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/sim/ascii_plot.hpp"

using namespace ambisim;
namespace u = ambisim::units;

namespace {

// ---- minimal JSONL field extraction (flat objects, known keys) ----

bool num_field(const std::string& line, const std::string& key,
               double* out) {
  const std::string tag = "\"" + key + "\":";
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return false;
  *out = std::stod(line.substr(pos + tag.size()));
  return true;
}

std::string str_field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\":\"";
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + tag.size();
  return line.substr(start, line.find('"', start) - start);
}

struct FlightRecord {
  std::string manifest_line;
  // (series name, node) -> samples
  std::map<std::pair<std::string, std::uint32_t>,
           std::vector<obs::Sample>>
      series;
  struct Ev {
    std::string name;
    char ph = '?';
    double ts_us = 0.0;
    std::uint32_t tid = 0;
    double value = 0.0;
  };
  std::map<std::uint64_t, std::vector<Ev>> flows;  // flow id -> events
};

FlightRecord parse(std::istream& is) {
  FlightRecord fr;
  for (std::string line; std::getline(is, line);) {
    if (line.empty()) continue;
    const std::string type = str_field(line, "type");
    if (type == "manifest") {
      fr.manifest_line = line;
    } else if (type == "sample") {
      double node = 0.0, t = 0.0, v = 0.0;
      num_field(line, "node", &node);
      num_field(line, "t_s", &t);
      num_field(line, "value", &v);
      fr.series[{str_field(line, "name"),
                 static_cast<std::uint32_t>(node)}]
          .push_back({t, v});
    } else if (type == "event") {
      const std::string ph = str_field(line, "ph");
      if (ph != "s" && ph != "t" && ph != "f") continue;
      double ts = 0.0, tid = 0.0, value = 0.0, flow = 0.0;
      num_field(line, "ts_us", &ts);
      num_field(line, "tid", &tid);
      num_field(line, "value", &value);
      num_field(line, "flow", &flow);
      fr.flows[static_cast<std::uint64_t>(flow)].push_back(
          {str_field(line, "name"), ph[0], ts,
           static_cast<std::uint32_t>(tid), value});
    }
  }
  return fr;
}

/// Run a small hostile collection network with probes armed and dump the
/// flight record; returns the path written.
std::string self_run(const std::string& path) {
  obs::set_enabled(true);
  obs::reset();
  obs::context().timeline.clear();

  net::PacketSimConfig cfg;
  cfg.node_count = 16;
  cfg.field_side = u::Length(30.0);
  cfg.radio_range = u::Length(14.0);
  cfg.duration = u::Time(400.0);
  cfg.seed = 11;
  net::PacketFaultConfig f;
  f.schedule.seed = 77;
  f.schedule.crash_mttf_s = 500.0;
  f.schedule.crash_mttr_s = 60.0;
  f.schedule.corruption_rate = 0.2;
  f.energy = fault::EnergyCouplingConfig{};
  f.energy->harvest_avg_watt = 40e-6;
  f.energy->baseline_watt = 45e-6;
  f.energy->initial_soc = 0.06;
  cfg.faults = f;
  net::simulate_packets(cfg);
  obs::set_enabled(false);

  auto manifest = obs::RunManifest::collect();
  manifest.label = "timeline_report self-run";
  manifest.seed = cfg.seed;

  std::ofstream os(path);
  obs::write_flight_jsonl(os, obs::context(), manifest);
  return path;
}

void plot_series(const FlightRecord& fr, const std::string& name,
                 const std::string& y_label) {
  // One linear-axis scatter per series name; nodes distinguished by
  // glyph (0-9, then a-z).
  sim::AsciiScatter plot(name, 72, 16, /*log_x=*/false, /*log_y=*/false);
  plot.set_labels("sim time [s]", y_label);
  int series_seen = 0;
  for (const auto& [key, samples] : fr.series) {
    if (key.first != name) continue;
    const char glyph =
        key.second < 10 ? static_cast<char>('0' + key.second)
                        : static_cast<char>('a' + (key.second - 10) % 26);
    for (const obs::Sample& s : samples) plot.add(s.t_s, s.value, glyph);
    ++series_seen;
  }
  if (series_seen == 0) {
    std::cout << "(no \"" << name << "\" series in this record)\n\n";
    return;
  }
  std::cout << plot << '\n';
}

/// Print the full causal history of the first flow that was retried at
/// least once (fall back to the longest flow).
void print_causal_chain(const FlightRecord& fr) {
  const std::vector<FlightRecord::Ev>* best = nullptr;
  std::uint64_t best_id = 0;
  for (const auto& [id, evs] : fr.flows) {
    bool retried = false;
    for (const auto& e : evs) retried = retried || e.name == "hop.retry";
    if (retried) {
      best = &evs;
      best_id = id;
      break;
    }
    if (best == nullptr || evs.size() > best->size()) {
      best = &evs;
      best_id = id;
    }
  }
  if (best == nullptr) {
    std::cout << "no packet flows in this record\n";
    return;
  }
  std::cout << "causal chain of packet flow " << best_id << ":\n";
  for (const auto& e : *best) {
    std::cout << "  t=" << e.ts_us / 1e6 << "s  node " << e.tid << "  "
              << e.name;
    if (e.name == "hop.attempt" || e.name == "hop.corrupted")
      std::cout << " -> node " << static_cast<int>(e.value);
    else if (e.name == "hop.retry")
      std::cout << " (attempt " << static_cast<int>(e.value) << ")";
    else if (e.name == "packet.delivered")
      std::cout << " after " << static_cast<int>(e.value) << " hops";
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : self_run("flight_record.jsonl");
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  const FlightRecord fr = parse(is);
  if (fr.manifest_line.empty()) {
    std::cerr << path << " has no manifest line — not a flight record?\n";
    return 1;
  }

  std::cout << "flight record: " << path << '\n'
            << "  produced by: " << str_field(fr.manifest_line, "label")
            << " @ " << str_field(fr.manifest_line, "git_describe")
            << " (" << str_field(fr.manifest_line, "build_type") << ")\n"
            << "  series: " << fr.series.size()
            << "  packet flows: " << fr.flows.size() << "\n\n";

  plot_series(fr, "energy.soc", "state of charge");
  plot_series(fr, "fault.nodes_in_service", "nodes up");
  plot_series(fr, "net.queue_depth", "queued packets");
  plot_series(fr, "net.radio_duty", "duty cycle");
  plot_series(fr, "net.retry_count", "retries");
  print_causal_chain(fr);
  return 0;
}
