// Power management for ambient devices: when to sleep, and how much storage
// buffers the night.
//
// Part 1 sizes the sleep policy of the personal node's radio (break-even
// analysis, timeout vs oracle).  Part 2 rides an outdoor-harvesting sensor
// node through five day/night cycles and sizes its storage buffer.
#include <iostream>
#include <memory>

#include "ambisim/energy/buffer_sim.hpp"
#include "ambisim/energy/dpm.hpp"

int main() {
  using namespace ambisim;
  using namespace ambisim::energy;
  namespace u = ambisim::units;
  using namespace ambisim::units::literals;

  // --- 1. Sleep policy for the Bluetooth-class radio -------------------
  const auto radio = PowerStateSpec::bluetooth_radio();
  std::cout << "radio break-even idle time: "
            << u::to_string(radio.break_even()) << '\n';

  sim::Rng rng(42);
  const auto trace = exponential_idle_trace(rng, 10'000, 2.0);
  const auto always = dpm_always_on(radio, trace);
  const auto timeout = dpm_timeout(radio, trace, radio.break_even());
  const auto oracle = dpm_oracle(radio, trace);
  std::cout << "idle-time energy over " << trace.size() << " periods:\n"
            << "  always-on : " << u::to_string(always.energy) << '\n'
            << "  timeout   : " << u::to_string(timeout.energy) << " ("
            << timeout.sleep_transitions << " sleeps, "
            << u::to_string(timeout.added_latency) << " total wake delay)\n"
            << "  oracle    : " << u::to_string(oracle.energy) << '\n'
            << "  timeout is "
            << timeout.energy.value() / oracle.energy.value()
            << "x the oracle (2-competitive bound)\n\n";

  // --- 2. Buffering the night on the outdoor sensor --------------------
  BufferSimConfig cfg;
  cfg.harvester =
      std::make_shared<SolarHarvester>(2_cm2, 0.15, /*indoor=*/false);
  cfg.load = 150_uW;
  cfg.duration = u::Time(86400.0 * 5);
  cfg.step = u::Time(120.0);

  const auto r = simulate_energy_buffer(cfg);
  std::cout << "outdoor sensor at " << u::to_string(cfg.load)
            << " constant load, 1 mAh film buffer, 5 days:\n"
            << "  survived    : " << (r.survived ? "yes" : "no") << '\n'
            << "  sustainable : " << (r.sustainable ? "yes" : "no") << '\n'
            << "  deepest dip : " << r.min_soc * 100.0 << " % SoC\n"
            << "  harvested   : " << u::to_string(r.harvested)
            << ", consumed " << u::to_string(r.consumed) << '\n';

  const auto min_buffer = minimum_buffer_energy(cfg);
  std::cout << "  minimum buffer that survives: "
            << u::to_string(min_buffer) << " (the film stores "
            << u::to_string(u::Energy(3.0 * 3.6)) << ")\n";
  return 0;
}
