// scenario_runner: execute declarative .scen.json scenario specs with no
// recompilation.
//
//   scenario_runner spec.scen.json...            run spec(s), print report
//   scenario_runner --validate spec...           parse + validate only
//   scenario_runner --print-spec spec            dump the normalized spec
//   scenario_runner --replications N ...         override run.replications
//   scenario_runner --pool N ...                 override run.pool
//   scenario_runner --shards N ...               override run.shards (net)
//   scenario_runner --obs-json out.json ...      arm probes, dump obs state
//   scenario_runner --profile out.json spec      profile replication 0's
//                                                wall clock (obs::Profiler)
//   scenario_runner --fuzz N [--seed S]          run a fuzz campaign
//                   [--repro-dir DIR]            write shrunken repros there
//
// Exit code: 0 when every spec loads, runs, and passes its assertions
// (or, under --validate, merely loads); 1 otherwise.  A fuzz campaign
// exits 1 when any generated scenario violates an invariant, after
// shrinking the first failure to a minimal repro spec on disk.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ambisim/obs/manifest.hpp"
#include "ambisim/obs/metrics.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/obs/timeline.hpp"
#include "ambisim/obs/trace.hpp"
#include "ambisim/scen/build.hpp"
#include "ambisim/scen/fuzzer.hpp"
#include "ambisim/scen/loader.hpp"

namespace {

using namespace ambisim;

struct Options {
  bool validate = false;
  bool print_spec = false;
  scen::RunOverrides overrides;
  std::string obs_json;
  std::string profile_json;
  long long fuzz = -1;
  std::uint64_t fuzz_seed = 1;
  std::string repro_dir = ".";
  std::vector<std::string> specs;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] spec.scen.json...\n"
      << "       " << argv0 << " --fuzz N [--seed S] [--repro-dir DIR]\n"
      << "  --validate          parse + validate only (exit code reports)\n"
      << "  --print-spec        dump the normalized spec as canonical JSON\n"
      << "  --replications N    override run.replications\n"
      << "  --pool N            override run.pool (0 = serial)\n"
      << "  --shards N          override run.shards (net engine; 0 = "
         "single-kernel)\n"
      << "  --obs-json PATH     arm obs probes and dump metrics/timeline\n"
      << "  --profile PATH      write replication 0's wall-clock execution "
         "profile\n"
      << "  --fuzz N            generate + check N seed-derived scenarios\n"
      << "  --seed S            fuzz campaign root seed (default 1)\n"
      << "  --repro-dir DIR     where to write shrunken fuzz repros\n";
  return 2;
}

bool parse_int(const char* s, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == std::strlen(s);
  } catch (...) {
    return false;
  }
}

void dump_obs_json(const std::string& path, const std::string& label,
                   std::uint64_t seed, unsigned pool) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot open --obs-json path: " << path << '\n';
    return;
  }
  auto manifest = obs::RunManifest::collect();
  manifest.label = label;
  manifest.seed = seed;
  manifest.pool_size = pool;
  const auto& ctx = obs::context();
  os << "{\n  \"manifest\": ";
  manifest.write_json(os, 2);
  os << ",\n  \"metrics\": ";
  ctx.metrics.write_json(os, 2);
  os << ",\n  \"timeline\": [";
  const auto entries = ctx.timeline.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << *e.name
       << "\", \"node\": " << e.node << ", \"samples\": [";
    const auto& samples = e.series->samples();
    for (std::size_t k = 0; k < samples.size(); ++k)
      os << (k ? "," : "") << '[' << samples[k].t_s << ','
         << samples[k].value << ']';
    os << "]}";
  }
  os << "\n  ],\n  \"trace\": ";
  ctx.tracer.write_chrome_json(os);
  os << "\n}\n";
  std::cerr << "wrote obs dump: " << path << '\n';
}

void write_profile_json(const std::string& path, const obs::Profiler& prof,
                        const std::string& label, std::uint64_t seed,
                        unsigned pool) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot open --profile path: " << path << '\n';
    return;
  }
  auto manifest = obs::RunManifest::collect();
  manifest.label = label;
  manifest.seed = seed;
  manifest.pool_size = pool;
  prof.write_json(os, 0, &manifest);
  os << '\n';
  std::cerr << "wrote execution profile: " << path << '\n';
}

int run_fuzz(const Options& opt) {
  scen::FuzzConfig cfg;
  cfg.root_seed = opt.fuzz_seed;
  scen::Fuzzer fuzzer(cfg);
  const auto count = static_cast<std::uint64_t>(opt.fuzz);
  const auto result = fuzzer.run(count);
  std::cout << "fuzz campaign: seed " << cfg.root_seed << ", "
            << result.executed << " scenarios, " << result.failures
            << " failures, generation checksum 0x" << std::hex
            << result.spec_checksum << std::dec << '\n';
  if (result.failures == 0) return 0;

  // Shrink the first failure to a minimal repro and write it to disk so a
  // human (or CI log reader) can re-run it directly.
  const auto [index, reason] = result.failed.front();
  std::cerr << "first failure: scenario #" << index << ": " << reason
            << '\n';
  const auto spec = fuzzer.generate(index);
  const auto minimal = scen::Fuzzer::shrink(
      spec, [&](const scen::ScenarioSpec& s) { return !fuzzer.check(s).ok; });
  const std::string path =
      opt.repro_dir + "/repro_" + std::to_string(cfg.root_seed) + "_" +
      std::to_string(index) + ".scen.json";
  if (scen::Fuzzer::write_repro(minimal, path))
    std::cerr << "wrote minimal repro: " << path << '\n';
  else
    std::cerr << "error: could not write repro to " << path << '\n';
  return 1;
}

int run_one(const std::string& path, const Options& opt) {
  scen::Loader loader;
  const auto loaded = loader.load_file(path);
  if (!loaded.ok()) {
    std::cerr << path << ": invalid scenario:\n"
              << loaded.format_diagnostics();
    return 1;
  }
  const auto& spec = *loaded.spec;
  if (opt.validate) {
    if (spec.engine() == ambisim::scen::Engine::Aiot)
      std::cout << path << ": ok (aiot engine, " << spec.tag_count()
                << " tags)\n";
    else
      std::cout << path << ": ok (" << to_string(spec.engine())
                << " engine, " << spec.sensor_count() << " sensors)\n";
    return 0;
  }
  if (opt.print_spec) {
    std::cout << to_json(spec);
    return 0;
  }

  const bool want_obs = !opt.obs_json.empty();
  const bool want_profile = !opt.profile_json.empty();
  const bool was_enabled = obs::enabled();
  if (want_obs) {
    obs::set_enabled(true);
    obs::reset();
  }

  obs::Profiler profiler;
  scen::RunOverrides overrides = opt.overrides;
  if (want_profile) overrides.profiler = &profiler;

  const auto summary = scen::run_scenario(spec, overrides);
  std::cout << "=== " << (spec.name.empty() ? path : spec.name) << " ===\n";
  summary.write_report(std::cout);

  const unsigned pool = opt.overrides.pool >= 0
                            ? static_cast<unsigned>(opt.overrides.pool)
                            : static_cast<unsigned>(spec.run.pool);
  if (want_profile) {
    // When both dumps are requested, mirror the profile's spans into the
    // obs tracer first so the trace dump shows them alongside the probes.
    if (want_obs) profiler.export_trace(obs::context().tracer);
    write_profile_json(opt.profile_json, profiler,
                       spec.name.empty() ? path : spec.name, spec.run.seed,
                       pool);
  }
  if (want_obs) {
    dump_obs_json(opt.obs_json, spec.name.empty() ? path : spec.name,
                  spec.run.seed, pool);
    obs::set_enabled(was_enabled);
  }
  return summary.assertions_passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long v = 0;
    if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--print-spec") {
      opt.print_spec = true;
    } else if (arg == "--replications" && i + 1 < argc) {
      if (!parse_int(argv[++i], v) || v <= 0) return usage(argv[0]);
      opt.overrides.replications = static_cast<int>(v);
    } else if (arg == "--pool" && i + 1 < argc) {
      if (!parse_int(argv[++i], v) || v < 0) return usage(argv[0]);
      opt.overrides.pool = static_cast<int>(v);
    } else if (arg == "--shards" && i + 1 < argc) {
      if (!parse_int(argv[++i], v) || v < 0) return usage(argv[0]);
      opt.overrides.shards = static_cast<int>(v);
    } else if (arg == "--obs-json" && i + 1 < argc) {
      opt.obs_json = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      opt.profile_json = argv[++i];
    } else if (arg == "--fuzz" && i + 1 < argc) {
      if (!parse_int(argv[++i], v) || v <= 0) return usage(argv[0]);
      opt.fuzz = v;
    } else if (arg == "--seed" && i + 1 < argc) {
      if (!parse_int(argv[++i], v) || v < 0) return usage(argv[0]);
      opt.fuzz_seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--repro-dir" && i + 1 < argc) {
      opt.repro_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      return usage(argv[0]);
    } else {
      opt.specs.push_back(arg);
    }
  }

  if (!opt.profile_json.empty()) {
    if (opt.validate || opt.print_spec) {
      std::cerr << "error: --profile cannot be combined with --validate or "
                   "--print-spec (no simulation runs under those flags)\n";
      return usage(argv[0]);
    }
    if (opt.fuzz > 0) {
      std::cerr << "error: --profile cannot be combined with --fuzz\n";
      return usage(argv[0]);
    }
    if (opt.specs.size() != 1) {
      std::cerr << "error: --profile expects exactly one spec\n";
      return usage(argv[0]);
    }
  }

  if (opt.fuzz > 0) {
    if (!opt.specs.empty()) return usage(argv[0]);
    return run_fuzz(opt);
  }
  if (opt.specs.empty()) return usage(argv[0]);

  int rc = 0;
  for (const auto& path : opt.specs)
    if (run_one(path, opt) != 0) rc = 1;
  return rc;
}
