#include "ambisim/aiot/wpt_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ambisim/energy/battery.hpp"
#include "ambisim/fault/injector.hpp"
#include "ambisim/net/sparse_link_table.hpp"
#include "ambisim/obs/probe.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/sim/simulator.hpp"

namespace ambisim::aiot {

namespace {

void validate(const WptSimConfig& cfg) {
  if (cfg.tag_count < 1)
    throw std::invalid_argument("wpt sim needs at least one tag");
  if (cfg.gateway_tx_w <= 0.0)
    throw std::invalid_argument("gateway TX power must be positive");
  if (cfg.report_period_s <= 0.0 || cfg.duration_s <= 0.0 ||
      cfg.energy_step_s <= 0.0)
    throw std::invalid_argument("periods and duration must be positive");
  if (cfg.cutoff_soc < 0.0 || cfg.wake_soc <= cfg.cutoff_soc ||
      cfg.wake_soc > 1.0)
    throw std::invalid_argument(
        "charge-then-burst needs 0 <= cutoff < wake <= 1");
  if (cfg.burst_energy_j <= 0.0)
    throw std::invalid_argument("burst energy must be positive");
  if (cfg.sleep_watt < 0.0)
    throw std::invalid_argument("sleep draw must be >= 0");
  if (cfg.initial_soc < 0.0 || cfg.initial_soc > 1.0)
    throw std::invalid_argument("initial soc outside [0, 1]");
  if (cfg.packet_bits < 1.0 || cfg.uplink_bandwidth_hz <= 0.0 ||
      cfg.tag_loss_db < 0.0)
    throw std::invalid_argument("bad uplink parameters");
  cfg.rectenna.validate();
  if (cfg.placement && cfg.placement->size() != cfg.tag_count + 1)
    throw std::invalid_argument(
        "pinned placement must hold tag_count + 1 nodes (gateway at 0)");
}

}  // namespace

WptSimResult simulate_wpt(const WptSimConfig& cfg) {
  validate(cfg);
  const int n = cfg.tag_count + 1;

  sim::Rng rng(cfg.seed);
  const net::Topology topo =
      cfg.placement ? *cfg.placement
                    : net::Topology::random_field(n, cfg.field_side, rng);

  WptSimResult out;
  out.tag_count = cfg.tag_count;

  // Downlink: the rectenna's DC output at each tag's distance.  This is
  // the whole wireless-power transfer chain — carrier power through the
  // density falloff through the rectifier curve — evaluated once; the
  // field is static for the run.
  std::vector<double> harvest(static_cast<std::size_t>(n), 0.0);
  double sum_uw = 0.0;
  double min_uw = std::numeric_limits<double>::infinity();
  for (int i = 1; i < n; ++i) {
    const u::PowerDensity density = incident_density(
        u::Power(cfg.gateway_tx_w), cfg.power_path, topo.node_distance(i, 0));
    const double watt =
        cfg.rectenna.harvested_from_density(density).value();
    harvest[static_cast<std::size_t>(i)] = watt;
    sum_uw += watt * 1e6;
    min_uw = std::min(min_uw, watt * 1e6);
  }
  out.mean_harvest_uw = sum_uw / cfg.tag_count;
  out.min_harvest_uw = min_uw;

  // Uplink: monostatic backscatter link table priced at the gateway's
  // illuminator power (the round trip and the tag's reflection loss live
  // in net::LinkModel::MonostaticBackscatter).  Tags talk only to the
  // gateway, so the table is a sparse star — O(N) rows instead of the
  // dense n^2 grid, with bitwise-equal stats on every materialized edge.
  radio::RadioParams rp = radio::backscatter_tag();
  rp.tx_radiated = u::Power(cfg.gateway_tx_w);
  rp.bandwidth = u::Frequency(cfg.uplink_bandwidth_hz);
  rp.environment = cfg.uplink_path;
  const radio::RadioModel tag_radio(rp);
  net::LinkTableOptions lopt;
  lopt.model = net::LinkModel::MonostaticBackscatter;
  lopt.tag_loss_db = cfg.tag_loss_db;
  const net::SparseLinkTable links = net::SparseLinkTable::star(
      topo, tag_radio, u::Information(cfg.packet_bits), radio::ArqModel{},
      lopt, topo.sink());

  // Lifecycle: an empty fault script plus capacitor energy coupling.  The
  // wake threshold IS the brown-out recovery latch, so "charged enough to
  // burst" and "back in service" are the same edge, and a tag in RF shadow
  // is Dead-until-charged through exactly the machinery a browned-out
  // coin-cell node uses.
  fault::FaultScheduleConfig sc;
  sc.seed = cfg.seed;
  sc.horizon_s = cfg.duration_s;
  sc.node_count = n;
  sc.sink_immune = true;  // the gateway is mains powered
  fault::FaultInjector inj(fault::FaultSchedule::generate(sc));

  fault::EnergyCouplingConfig ec;
  ec.battery = energy::Battery::storage_capacitor(
      u::Capacitance(cfg.capacitance_f), u::Voltage(cfg.cap_voltage_v));
  ec.per_node_harvest_watt = harvest;
  ec.baseline_watt = cfg.sleep_watt;
  ec.initial_soc = cfg.initial_soc;
  ec.brownout_cutoff_soc = cfg.cutoff_soc;
  ec.brownout_recovery_soc = cfg.wake_soc;
  ec.update_period_s = cfg.energy_step_s;
  inj.enable_energy(ec);

  // Charge latency off the lifecycle edges: dark -> wake spans.
  std::vector<double> dark_since(static_cast<std::size_t>(n), 0.0);
  sim::Samples latencies;
  inj.on_transition([&](int node, fault::NodeState prev,
                        fault::NodeState now, double t) {
    if (node == 0) return;
    if (now == fault::NodeState::Up && prev == fault::NodeState::BrownOut) {
      const double span = t - dark_since[static_cast<std::size_t>(node)];
      latencies.add(span);
      AMBISIM_OBS_COUNT("aiot.wakes");
      AMBISIM_OBS_OBSERVE("aiot.charge_latency_s", span);
    } else if (now == fault::NodeState::BrownOut) {
      dark_since[static_cast<std::size_t>(node)] = t;
    }
  });

  sim::Simulator sim;
  inj.arm(sim, n);

  // Charge-then-burst MAC: report slots at k * period, offset half an
  // energy step *before* the mark so each slot reads the lifecycle state
  // the preceding tick computed instead of racing the tick at the mark.
  // An awake tag transmits one burst (its expected delivery priced off the
  // link table) and the burst energy drains at the next tick, pulling the
  // capacitor back below the cutoff — the tag goes dark until recharged.
  std::vector<long long> tag_bursts(static_cast<std::size_t>(n), 0);
  const double offset = cfg.energy_step_s * 0.5;
  const long long slot_count =
      static_cast<long long>(std::floor(cfg.duration_s /
                                        cfg.report_period_s));
  for (long long k = 1; k <= slot_count; ++k) {
    const double t = static_cast<double>(k) * cfg.report_period_s - offset;
    if (t < 0.0) continue;
    sim.schedule_at(u::Time(t), [&]() {
      for (int i = 1; i < n; ++i) {
        if (!inj.in_service(i)) continue;
        ++tag_bursts[static_cast<std::size_t>(i)];
        ++out.bursts;
        out.delivered_expect += links.delivery_probability(i, 0);
        inj.account_energy(i, u::Energy(cfg.burst_energy_j));
        AMBISIM_OBS_COUNT("aiot.bursts");
      }
    });
  }

  sim.run_until(u::Time(cfg.duration_s));

  out.offered = slot_count * cfg.tag_count;
  out.delivered_fraction =
      out.offered > 0 ? out.delivered_expect / out.offered : 0.0;
  int covered = 0;
  for (int i = 1; i < n; ++i)
    covered += tag_bursts[static_cast<std::size_t>(i)] > 0 ? 1 : 0;
  out.coverage_fraction =
      static_cast<double>(covered) / cfg.tag_count;
  out.dark_tags = cfg.tag_count - covered;

  if (!latencies.empty()) {
    out.mean_charge_latency_s = latencies.mean();
    out.charge_latency_p50_s = latencies.median();
    out.charge_latency_p95_s = latencies.percentile(95.0);
  }

  const fault::ReliabilityStats stats = inj.stats(cfg.duration_s);
  out.availability = stats.availability;
  out.mttf_s = stats.mttf_s;
  out.mttr_s = stats.mttr_s;

  out.final_soc.assign(static_cast<std::size_t>(n), -1.0);
  for (int i = 0; i < n; ++i)
    if (const energy::Battery* bat = inj.battery(i))
      out.final_soc[static_cast<std::size_t>(i)] = bat->state_of_charge();
  return out;
}

void WptSimResult::fold_into(fault::Digest& d) const {
  d.fold(tag_count);
  d.fold(offered);
  d.fold(bursts);
  d.fold(delivered_expect);
  d.fold(delivered_fraction);
  d.fold(coverage_fraction);
  d.fold(dark_tags);
  d.fold(mean_charge_latency_s);
  d.fold(charge_latency_p50_s);
  d.fold(charge_latency_p95_s);
  d.fold(availability);
  d.fold(mttf_s);
  d.fold(mttr_s);
  d.fold(mean_harvest_uw);
  d.fold(min_harvest_uw);
  for (const double s : final_soc) d.fold(s);
}

WptStudyResult run_wpt_study(const WptSimConfig& base,
                             std::size_t replications,
                             std::uint64_t root_seed,
                             exec::ExecConfig exec_cfg) {
  exec::ReplicationRunner runner(exec_cfg);
  WptStudyResult out;
  out.replications = runner.run(
      replications, root_seed, [&](sim::Rng& rng, std::size_t i) {
        WptSimConfig c = base;
        if (i > 0) {
          // Replication 0 is the base verbatim; later replications redraw
          // the field layout from their own substream.
          c.seed = rng.engine()();
          c.placement.reset();
        }
        return simulate_wpt(c);
      });
  fault::Digest digest;
  for (const WptSimResult& r : out.replications) {
    out.delivered_fraction.add(r.delivered_fraction);
    out.coverage_fraction.add(r.coverage_fraction);
    out.mean_charge_latency_s.add(r.mean_charge_latency_s);
    out.availability.add(r.availability);
    r.fold_into(digest);
  }
  out.checksum = digest.value();
  return out;
}

}  // namespace ambisim::aiot
