#include "ambisim/aiot/rectenna.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ambisim::aiot {

u::PowerDensity incident_density(u::Power tx, const radio::PathLossModel& loss,
                                 u::Length d) {
  if (tx <= u::Power(0.0))
    throw std::invalid_argument("illuminator power must be positive");
  const double d0 = loss.ref_distance.value();
  const double sphere = 4.0 * 3.14159265358979323846 * d0 * d0;
  const double at_ref = tx.value() / sphere;
  const double excess_db = loss.loss_db(d) - loss.loss_at_ref_db;
  return u::PowerDensity(at_ref * std::pow(10.0, -excess_db / 10.0));
}

RectennaModel RectennaModel::printed_tag() {
  return {u::Area(50e-4), u::Power(1e-6), u::Power(10e-3), 0.55};
}

RectennaModel RectennaModel::pcb_module() {
  return {u::Area(120e-4), u::Power(0.5e-6), u::Power(20e-3), 0.70};
}

void RectennaModel::validate() const {
  if (aperture <= u::Area(0.0))
    throw std::invalid_argument("rectenna aperture must be positive");
  if (sensitivity <= u::Power(0.0) || saturation <= sensitivity)
    throw std::invalid_argument(
        "rectenna needs 0 < sensitivity < saturation");
  if (peak_efficiency <= 0.0 || peak_efficiency > 1.0)
    throw std::invalid_argument("rectenna peak efficiency outside (0, 1]");
}

double RectennaModel::efficiency(u::Power incident) const {
  validate();
  if (incident.value() < 0.0)
    throw std::invalid_argument("negative incident power");
  if (incident <= sensitivity) return 0.0;  // diodes never turn on
  const double t = std::log10(incident.value() / sensitivity.value()) /
                   std::log10(saturation.value() / sensitivity.value());
  return peak_efficiency * std::clamp(t, 0.0, 1.0);
}

u::Power RectennaModel::harvested(u::Power incident) const {
  return u::Power(incident.value() * efficiency(incident));
}

u::Power RectennaModel::harvested_from_density(u::PowerDensity s) const {
  validate();
  if (s.value() < 0.0) throw std::invalid_argument("negative power density");
  return harvested(u::incident_power(s, aperture));
}

}  // namespace ambisim::aiot
