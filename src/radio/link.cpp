#include "ambisim/radio/link.hpp"

#include <cmath>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::radio {

double watt_to_dbm(u::Power p) {
  if (p <= u::Power(0.0))
    throw std::invalid_argument("dBm of non-positive power");
  return 10.0 * std::log10(p.value() * 1e3);
}

u::Power dbm_to_watt(double dbm) {
  return u::Power(std::pow(10.0, dbm / 10.0) * 1e-3);
}

PathLossModel PathLossModel::free_space() { return {2.0, u::Length(1.0), 40.0}; }
PathLossModel PathLossModel::indoor() { return {3.0, u::Length(1.0), 40.0}; }
PathLossModel PathLossModel::dense_indoor() {
  return {3.5, u::Length(1.0), 45.0};
}

double PathLossModel::loss_db(u::Length distance) const {
  if (distance <= u::Length(0.0))
    throw std::invalid_argument("non-positive distance");
  const double d = std::max(distance.value(), ref_distance.value());
  return loss_at_ref_db +
         10.0 * exponent * std::log10(d / ref_distance.value());
}

double noise_floor_dbm(u::Frequency bandwidth, double noise_figure_db) {
  if (bandwidth <= u::Frequency(0.0))
    throw std::invalid_argument("non-positive bandwidth");
  return -174.0 + 10.0 * std::log10(bandwidth.value()) + noise_figure_db;
}

Modulation Modulation::ook() { return {"OOK", 1.0, 13.0}; }
Modulation Modulation::fsk() { return {"FSK", 1.0, 11.0}; }
Modulation Modulation::bpsk() { return {"BPSK", 1.0, 7.0}; }
Modulation Modulation::qpsk() { return {"QPSK", 2.0, 7.0}; }
Modulation Modulation::qam16() { return {"16QAM", 4.0, 11.5}; }
Modulation Modulation::qam64() { return {"64QAM", 6.0, 16.5}; }
Modulation Modulation::backscatter() { return {"BACKSCATTER", 1.0, 15.0}; }

double LinkBudget::received_dbm(u::Length distance) const {
  return watt_to_dbm(tx_radiated) - path_loss.loss_db(distance);
}

double LinkBudget::snr_db(u::Length distance) const {
  return received_dbm(distance) - noise_floor_dbm(bandwidth, noise_figure_db);
}

double LinkBudget::required_snr_db(const Modulation& m) {
  // SNR = Eb/N0 * (Rb/B); at symbol rate == bandwidth, Rb/B = bits/symbol.
  return m.required_ebn0_db + 10.0 * std::log10(m.bits_per_symbol);
}

bool LinkBudget::closes(u::Length distance, const Modulation& m) const {
  const bool ok = snr_db(distance) >= required_snr_db(m);
  AMBISIM_OBS_COUNT("radio.link.evaluations");
  if (!ok) AMBISIM_OBS_COUNT("radio.link.failures");
  return ok;
}

u::Length LinkBudget::max_range(const Modulation& m) const {
  AMBISIM_OBS_COUNT("radio.link.range_solves");
  // Solve PL(d) = Ptx_dbm - noise - required_snr for d in the log model.
  const double margin_db = watt_to_dbm(tx_radiated) -
                           noise_floor_dbm(bandwidth, noise_figure_db) -
                           required_snr_db(m);
  const double excess = margin_db - path_loss.loss_at_ref_db;
  if (excess < 0.0) return u::Length(0.0);  // does not even close at d0
  const double d = path_loss.ref_distance.value() *
                   std::pow(10.0, excess / (10.0 * path_loss.exponent));
  return u::Length(d);
}

u::BitRate LinkBudget::shannon_capacity(u::Length distance) const {
  const double snr_linear = std::pow(10.0, snr_db(distance) / 10.0);
  return u::BitRate(bandwidth.value() * std::log2(1.0 + snr_linear));
}

u::BitRate LinkBudget::achievable_rate(u::Length distance,
                                       const Modulation& m) const {
  if (!closes(distance, m)) return u::BitRate(0.0);
  return u::BitRate(bandwidth.value() * m.bits_per_symbol);
}

}  // namespace ambisim::radio
