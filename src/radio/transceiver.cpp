#include "ambisim/radio/transceiver.hpp"

#include <stdexcept>

namespace ambisim::radio {

using namespace ambisim::units::literals;

std::string to_string(RadioState s) {
  switch (s) {
    case RadioState::Sleep: return "sleep";
    case RadioState::Idle: return "idle";
    case RadioState::Rx: return "rx";
    case RadioState::Tx: return "tx";
  }
  return "unknown";
}

RadioParams ulp_radio() {
  return {"ulp-100k",
          100_kbps,
          Modulation::fsk(),
          200_kHz,
          600_uW,
          900_uW,
          300_uW,
          0.5_uW,
          0.25,
          dbm_to_watt(-6.0),
          400_us,
          PathLossModel::indoor()};
}

RadioParams bluetooth_like() {
  return {"bt-1M",
          1.0_Mbps,
          Modulation::fsk(),
          1_MHz,
          26_mW,
          28_mW,
          8_mW,
          30_uW,
          0.30,
          dbm_to_watt(0.0),
          200_us,
          PathLossModel::indoor()};
}

RadioParams wlan_80211b() {
  return {"wlan-11M",
          11.0_Mbps,
          Modulation::qpsk(),
          11_MHz,
          250_mW,
          280_mW,
          120_mW,
          1_mW,
          0.35,
          dbm_to_watt(20.0),
          1_ms,
          PathLossModel::indoor()};
}

RadioParams wlan_80211a() {
  return {"wlan-54M",
          54.0_Mbps,
          Modulation::qam64(),
          20_MHz,
          480_mW,
          450_mW,
          200_mW,
          2_mW,
          0.30,
          dbm_to_watt(17.0),
          1_ms,
          PathLossModel::indoor()};
}

RadioParams backscatter_tag() {
  return {"backscatter-64k",
          64_kbps,
          Modulation::backscatter(),
          1_MHz,
          0.2_uW,  // antenna switch + encoder, not a PA
          1_uW,    // envelope detector for downlink commands
          0.5_uW,
          0.05_uW,
          1.0,     // no PA: tx_radiated is the gateway illuminator
          dbm_to_watt(33.0),
          10_us,
          PathLossModel::free_space()};
}

RadioModel::RadioModel(RadioParams params) : params_(std::move(params)) {
  if (params_.bit_rate <= u::BitRate(0.0))
    throw std::invalid_argument("bit rate must be positive");
  if (params_.pa_efficiency <= 0.0 || params_.pa_efficiency > 1.0)
    throw std::invalid_argument("PA efficiency outside (0, 1]");
  if (params_.tx_radiated <= u::Power(0.0))
    throw std::invalid_argument("radiated power must be positive");
  if (params_.sleep_power < u::Power(0.0) ||
      params_.idle_power < params_.sleep_power ||
      params_.rx_power < params_.idle_power)
    throw std::invalid_argument("radio powers must satisfy sleep<=idle<=rx");
}

u::Power RadioModel::tx_power() const {
  return params_.tx_electronics + params_.tx_radiated / params_.pa_efficiency;
}

u::Power RadioModel::power(RadioState s) const {
  switch (s) {
    case RadioState::Sleep: return params_.sleep_power;
    case RadioState::Idle: return params_.idle_power;
    case RadioState::Rx: return params_.rx_power;
    case RadioState::Tx: return tx_power();
  }
  throw std::logic_error("unknown radio state");
}

u::Time RadioModel::time_on_air(u::Information payload) const {
  if (payload < u::Information(0.0))
    throw std::invalid_argument("negative payload");
  return u::Time(payload.value() / params_.bit_rate.value());
}

u::Energy RadioModel::tx_energy(u::Information payload) const {
  return u::Energy(tx_power().value() * time_on_air(payload).value());
}

u::Energy RadioModel::rx_energy(u::Information payload) const {
  return u::Energy(params_.rx_power.value() * time_on_air(payload).value());
}

u::Energy RadioModel::startup_energy() const {
  // Turnaround spent at idle power (synthesizer lock).
  return u::Energy(params_.idle_power.value() * params_.startup.value());
}

u::EnergyPerBit RadioModel::energy_per_bit_tx() const {
  return u::EnergyPerBit(tx_power().value() / params_.bit_rate.value());
}

u::EnergyPerBit RadioModel::energy_per_bit_rx() const {
  return u::EnergyPerBit(params_.rx_power.value() /
                         params_.bit_rate.value());
}

LinkBudget RadioModel::link_budget() const {
  return LinkBudget{params_.tx_radiated, params_.environment,
                    params_.bandwidth};
}

u::Length RadioModel::max_range() const {
  return link_budget().max_range(params_.modulation);
}

bool RadioModel::reaches(u::Length distance) const {
  return link_budget().closes(distance, params_.modulation);
}

}  // namespace ambisim::radio
