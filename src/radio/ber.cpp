#include "ambisim/radio/ber.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ambisim::radio {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double bit_error_rate(const Modulation& m, double ebn0_linear) {
  if (ebn0_linear < 0.0) throw std::invalid_argument("negative Eb/N0");
  const double e = ebn0_linear;
  if (m.name == "BPSK" || m.name == "QPSK") {
    // Gray-coded QPSK has the same BER as BPSK.
    return q_function(std::sqrt(2.0 * e));
  }
  if (m.name == "FSK") {
    // Noncoherent binary FSK.
    return 0.5 * std::exp(-e / 2.0);
  }
  if (m.name == "OOK" || m.name == "BACKSCATTER") {
    // Noncoherent OOK with optimal threshold (envelope detection); the
    // backscatter entry detects the same way — its penalty lives in the
    // round-trip link budget, not in the detector.
    return 0.5 * std::exp(-e / 4.0);
  }
  // Square M-QAM approximation (Gray coding).
  const double mbits = m.bits_per_symbol;
  const double M = std::exp2(mbits);
  const double arg = std::sqrt(3.0 * mbits / (M - 1.0) * e);
  const double ber =
      4.0 / mbits * (1.0 - 1.0 / std::sqrt(M)) * q_function(arg);
  return std::min(0.5, ber);
}

double bit_error_rate_at(const LinkBudget& budget, const Modulation& m,
                         u::Length d) {
  const double snr_linear = std::pow(10.0, budget.snr_db(d) / 10.0);
  // SNR = (Eb/N0) * (Rb/B); at symbol rate == bandwidth, Rb/B = bits/symbol.
  const double ebn0 = snr_linear / m.bits_per_symbol;
  return bit_error_rate(m, ebn0);
}

double backscatter_bit_error_rate_at(const LinkBudget& budget,
                                     const Modulation& m, u::Length d,
                                     double tag_loss_db) {
  if (tag_loss_db < 0.0)
    throw std::invalid_argument("negative tag loss");
  // Monostatic round trip: illuminator -> tag -> reader pays the one-way
  // path loss twice (distance-to-gateway squared twice in linear terms),
  // plus the tag's reflection loss.
  const double rx_dbm = watt_to_dbm(budget.tx_radiated) -
                        2.0 * budget.path_loss.loss_db(d) - tag_loss_db;
  const double snr_db =
      rx_dbm - noise_floor_dbm(budget.bandwidth, budget.noise_figure_db);
  const double snr_linear = std::pow(10.0, snr_db / 10.0);
  const double ebn0 = snr_linear / m.bits_per_symbol;
  return bit_error_rate(m, ebn0);
}

double packet_error_rate(double ber, double bits) {
  if (ber < 0.0 || ber > 1.0) throw std::invalid_argument("BER range");
  if (bits < 0.0) throw std::invalid_argument("negative packet size");
  return 1.0 - std::pow(1.0 - ber, bits);
}

double ArqModel::delivery_probability(double per) const {
  if (per < 0.0 || per > 1.0) throw std::invalid_argument("PER range");
  if (max_attempts < 1) throw std::logic_error("max_attempts < 1");
  return 1.0 - std::pow(per, max_attempts);
}

double ArqModel::expected_attempts(double per) const {
  if (per < 0.0 || per > 1.0) throw std::invalid_argument("PER range");
  if (max_attempts < 1) throw std::logic_error("max_attempts < 1");
  // Truncated geometric: sum_{k=1..N} k p^{k-1} (1-p) + N p^N.
  double expected = 0.0;
  for (int k = 1; k <= max_attempts; ++k) {
    expected += k * std::pow(per, k - 1) * (1.0 - per);
  }
  expected += max_attempts * std::pow(per, max_attempts);
  return expected;
}

u::Energy ArqModel::energy_per_delivered(const RadioModel& radio,
                                         u::Information payload,
                                         double per) const {
  const double attempts = expected_attempts(per);
  const double delivered = delivery_probability(per);
  if (delivered <= 0.0)
    throw std::domain_error("link never delivers (PER == 1)");
  // Each attempt: sender tx payload + receiver rx payload; on success an
  // ACK flies back (tx at receiver, rx at sender).  Startup per attempt.
  const u::Energy per_attempt =
      radio.tx_energy(payload) + radio.rx_energy(payload) +
      2.0 * radio.startup_energy();
  const u::Energy ack = radio.tx_energy(ack_bits) + radio.rx_energy(ack_bits);
  return u::Energy((per_attempt.value() * attempts + ack.value()) /
                   delivered);
}

u::EnergyPerBit energy_per_delivered_bit(const RadioModel& radio, u::Length d,
                                         u::Information payload,
                                         const ArqModel& arq) {
  if (payload <= u::Information(0.0))
    throw std::invalid_argument("payload must be positive");
  const double ber = bit_error_rate_at(radio.link_budget(),
                                       radio.params().modulation, d);
  const double per = packet_error_rate(ber, payload.value());
  const u::Energy e = arq.energy_per_delivered(radio, payload, per);
  return u::EnergyPerBit(e.value() / payload.value());
}

u::Power optimal_radiated_power(const RadioParams& params, u::Length d,
                                u::Information payload, u::Power p_min,
                                u::Power p_max, int steps) {
  if (steps < 2) throw std::invalid_argument("steps < 2");
  if (p_min <= u::Power(0.0) || p_max <= p_min)
    throw std::invalid_argument("bad power range");
  const ArqModel arq;
  u::Power best = p_min;
  double best_cost = std::numeric_limits<double>::infinity();
  const double lr = std::log(p_max.value() / p_min.value());
  for (int i = 0; i < steps; ++i) {
    RadioParams p = params;
    p.tx_radiated =
        u::Power(p_min.value() * std::exp(lr * i / (steps - 1)));
    const RadioModel radio(p);
    const double ber = bit_error_rate_at(radio.link_budget(),
                                         p.modulation, d);
    const double per = packet_error_rate(ber, payload.value());
    if (per >= 1.0 - 1e-15) continue;  // hopeless at this power
    const double cost =
        arq.energy_per_delivered(radio, payload, per).value();
    if (cost < best_cost) {
      best_cost = cost;
      best = p.tx_radiated;
    }
  }
  if (!std::isfinite(best_cost))
    throw std::domain_error("link unusable across the whole power range");
  return best;
}

}  // namespace ambisim::radio
