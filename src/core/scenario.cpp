#include "ambisim/core/scenario.hpp"

#include <functional>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"
#include "ambisim/sim/random.hpp"

#include "ambisim/arch/interface.hpp"
#include "ambisim/arch/processor.hpp"

namespace ambisim::core {

using namespace ambisim::units::literals;

AmiScenarioResult run_ami_scenario(const AmiScenarioConfig& cfg) {
  if (cfg.sensor_count < 1)
    throw std::invalid_argument("scenario needs at least one sensor");
  if (cfg.duration <= u::Time(0.0))
    throw std::invalid_argument("duration must be positive");
  if (cfg.events_per_hour < 0.0)
    throw std::invalid_argument("negative event rate");

  const auto& node = cfg.technology;

  // --- Device models --------------------------------------------------
  const radio::RadioModel ulp(radio::ulp_radio());
  const radio::RadioModel bt(radio::bluetooth_like());

  const auto sensor_cpu = arch::ProcessorModel::at_max_clock(
      arch::microcontroller_core(), node, node.vdd_min);
  const auto personal_cpu = arch::ProcessorModel::at_max_clock(
      arch::dsp_core(), node,
      u::Voltage((node.vdd_min.value() + node.vdd_nominal.value()) / 2.0));
  const auto server_cpu = arch::ProcessorModel::at_max_clock(
      arch::vliw_core(), node, node.vdd_nominal);

  // --- Standby (baseline) power per device ----------------------------
  const auto sensor_fe = arch::SensorFrontEnd::temperature();
  const u::Power sensor_baseline = cfg.sensor_mac.baseline_power(ulp) +
                                   sensor_cpu.sleep_power() +
                                   sensor_fe.standby_power + 1_uW;  // regs
  const u::Power personal_baseline = personal_cpu.sleep_power() +
                                     bt.idle_power() * 0.05 +
                                     bt.sleep_power() * 0.95 + 0.5_mW;
  const auto tv = arch::DisplayModel::tv_panel();
  const u::Power server_baseline =
      server_cpu.power(0.1) + radio::RadioModel(radio::wlan_80211b())
                                  .idle_power() +
      tv.power() * 0.3;

  // --- Per-event marginal costs ----------------------------------------
  const u::Energy e_sensor_tx =
      cfg.sensor_mac.tx_packet_energy(ulp, cfg.sensor_report) +
      u::Energy(sensor_cpu.power(1.0).value() * 0.003);  // wake + classify
  const u::Energy e_personal_rx =
      cfg.sensor_mac.rx_packet_energy(ulp, cfg.sensor_report);
  const u::Energy e_personal_compute =
      personal_cpu.energy_for(cfg.personal_ops_per_event);
  const u::Energy e_personal_tx = bt.tx_energy(cfg.context_message) +
                                  bt.startup_energy();
  const u::Energy e_server_rx = bt.rx_energy(cfg.context_message);
  const u::Energy e_server_compute =
      server_cpu.energy_for(cfg.server_ops_per_event);
  const u::Information stream_bits{cfg.response_stream_rate.value() *
                                   cfg.response_stream_length.value()};
  const u::Energy e_stream_tx = bt.tx_energy(stream_bits);
  const u::Energy e_stream_rx = bt.rx_energy(stream_bits);

  // --- Per-event latency ------------------------------------------------
  const u::Time t_sensor_hop =
      cfg.sensor_mac.hop_latency(ulp, cfg.sensor_report);
  const u::Time t_personal_compute =
      personal_cpu.time_for(cfg.personal_ops_per_event);
  const u::Time t_context = bt.time_on_air(cfg.context_message) +
                            bt.params().startup;
  const u::Time t_server_compute =
      server_cpu.time_for(cfg.server_ops_per_event);
  const u::Time t_first_response =
      bt.time_on_air(u::Information(4096.0));  // first streamed packet

  // --- Event-driven run -------------------------------------------------
  AmiScenarioResult res;
  sim::Simulator simu;
  sim::Rng rng(cfg.seed);
  const double mean_gap =
      cfg.events_per_hour > 0.0 ? 3600.0 / cfg.events_per_hour : 0.0;
  if (mean_gap > 0.0) {
    // Poisson arrivals average duration/mean_gap events; pad the latency
    // store a little so the event loop almost never reallocates.
    res.end_to_end_latency.reserve(
        static_cast<std::size_t>(cfg.duration.value() / mean_gap * 1.25) +
        16);
  }

  std::function<void()> fire = [&]() {
    ++res.events;
    // The sender waits a random fraction of the receiver's wake interval
    // before the preamble is caught; everything else is deterministic.
    const u::Time preamble_wait{
        rng.uniform(0.0, cfg.sensor_mac.wake_interval.value())};
    const u::Time latency = preamble_wait + t_sensor_hop -
                            cfg.sensor_mac.wake_interval +
                            t_personal_compute + t_context +
                            t_server_compute + t_first_response;
    res.end_to_end_latency.add(latency.value());
    ++res.responses_rendered;

    // Pipeline spans on the simulated timeline, one lane per device class
    // (tid 1 = microWatt sensor, 2 = milliWatt personal, 3 = Watt server).
    {
      const u::Time t_report =
          preamble_wait + t_sensor_hop - cfg.sensor_mac.wake_interval;
      double t = simu.now().value();
      AMBISIM_OBS_COMPLETE("sensor-report", "net", obs::to_us(t),
                           obs::to_us(t_report.value()), 1);
      t += t_report.value();
      AMBISIM_OBS_COMPLETE("context-processing", "energy", obs::to_us(t),
                           obs::to_us(t_personal_compute.value()), 2);
      t += t_personal_compute.value();
      AMBISIM_OBS_COMPLETE("context-uplink", "net", obs::to_us(t),
                           obs::to_us(t_context.value()), 2);
      t += t_context.value();
      AMBISIM_OBS_COMPLETE("recognition", "energy", obs::to_us(t),
                           obs::to_us(t_server_compute.value()), 3);
      t += t_server_compute.value();
      AMBISIM_OBS_COMPLETE("response-stream", "net", obs::to_us(t),
                           obs::to_us(cfg.response_stream_length.value()),
                           3);
      AMBISIM_OBS_COUNTER_EVENT(
          "event-energy_uJ", "energy", obs::to_us(simu.now().value()),
          (e_sensor_tx + e_personal_rx + e_personal_compute + e_personal_tx +
           e_server_rx + e_server_compute + e_stream_tx + e_stream_rx)
                  .value() *
              1e6);
      AMBISIM_OBS_COUNT("core.context_events");
      AMBISIM_OBS_OBSERVE("core.event_latency_s", latency.value());
    }

    res.stage_energy.charge("sense-report", e_sensor_tx);
    res.stage_energy.charge("context-processing",
                            e_personal_rx + e_personal_compute +
                                e_personal_tx);
    res.stage_energy.charge("recognition", e_server_rx + e_server_compute);
    res.stage_energy.charge("response-stream", e_stream_tx + e_stream_rx);

    res.class_energy.charge("microWatt-node", e_sensor_tx);
    res.class_energy.charge("milliWatt-node", e_personal_rx +
                                                  e_personal_compute +
                                                  e_personal_tx +
                                                  e_stream_rx);
    res.class_energy.charge("Watt-node",
                            e_server_rx + e_server_compute + e_stream_tx);

    if (mean_gap > 0.0) {
      const u::Time gap{rng.exponential(mean_gap)};
      if (simu.now() + gap <= cfg.duration)
        simu.schedule_in(gap, fire);
    }
  };

  if (mean_gap > 0.0) {
    const u::Time first{rng.exponential(mean_gap)};
    if (first <= cfg.duration) simu.schedule_in(first, fire);
  }
  simu.run_until(cfg.duration);

  // --- Standby energies over the horizon --------------------------------
  const double dur = cfg.duration.value();
  res.class_energy.charge(
      "microWatt-node",
      u::Energy(sensor_baseline.value() * cfg.sensor_count * dur));
  res.class_energy.charge("milliWatt-node",
                          u::Energy(personal_baseline.value() * dur));
  res.class_energy.charge("Watt-node",
                          u::Energy(server_baseline.value() * dur));
  res.stage_energy.charge("standby",
                          u::Energy((sensor_baseline.value() *
                                         cfg.sensor_count +
                                     personal_baseline.value() +
                                     server_baseline.value()) *
                                    dur));

  // --- Feasibility ------------------------------------------------------
  const double sensor_event_share =
      res.events > 0
          ? res.events * e_sensor_tx.value() / (cfg.sensor_count * dur)
          : 0.0;
  res.sensor_average_power = sensor_baseline.value() + sensor_event_share;

  energy::SolarHarvester harvester(2_cm2, 0.15, /*indoor=*/true);
  res.sensors_energy_neutral =
      harvester.average_power().value() >= res.sensor_average_power;

  // Total milliWatt-class energy (standby + per-event) over the horizon.
  const u::Power personal_avg{res.class_energy.of("milliWatt-node").value() /
                              dur};
  energy::Battery pb(energy::Battery::li_ion_1000mAh());
  res.personal_battery_days =
      pb.lifetime_at(personal_avg).value() / 86400.0;

  res.system_power = u::Power(res.class_energy.total().value() / dur);
  return res;
}

}  // namespace ambisim::core
