#include "ambisim/core/device_class.hpp"

#include <stdexcept>

namespace ambisim::core {

using namespace ambisim::units::literals;

std::string to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::MicroWatt: return "microWatt-node";
    case DeviceClass::MilliWatt: return "milliWatt-node";
    case DeviceClass::Watt: return "Watt-node";
  }
  return "unknown";
}

DeviceClass classify_power(u::Power average) {
  if (average < u::Power(0.0))
    throw std::invalid_argument("negative average power");
  if (average.value() < kMicroMilliBoundaryWatt) return DeviceClass::MicroWatt;
  if (average.value() < kMilliWattBoundaryWatt) return DeviceClass::MilliWatt;
  return DeviceClass::Watt;
}

DeviceClassProfile class_profile(DeviceClass c) {
  switch (c) {
    case DeviceClass::MicroWatt:
      return {DeviceClass::MicroWatt,
              "autonomous",
              1_uW,
              1_mW,
              "energy scavenging + thin-film buffer",
              "wireless sensor tag",
              10_years};
    case DeviceClass::MilliWatt:
      return {DeviceClass::MilliWatt,
              "personal",
              1_mW,
              1_W,
              "rechargeable battery",
              "wearable audio / PDA companion",
              u::Time(86400.0 * 7)};  // a week between charges
    case DeviceClass::Watt:
      return {DeviceClass::Watt,
              "static",
              1_W,
              100_W,
              "mains",
              "home media server / flat-screen hub",
              u::Time(1e18)};
  }
  throw std::logic_error("unknown device class");
}

}  // namespace ambisim::core
