#include "ambisim/core/device_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "ambisim/arch/interface.hpp"

namespace ambisim::core {

using namespace ambisim::units::literals;

std::string to_string(SupplyKind k) {
  switch (k) {
    case SupplyKind::Mains: return "mains";
    case SupplyKind::Battery: return "battery";
    case SupplyKind::Harvested: return "harvested";
  }
  return "unknown";
}

DeviceNode::DeviceNode(std::string name) : name_(std::move(name)) {}

DeviceNode& DeviceNode::set_compute(ComputeConfig c) {
  if (c.utilization < 0.0 || c.utilization > 1.0 || c.duty < 0.0 ||
      c.duty > 1.0)
    throw std::invalid_argument("compute utilization/duty outside [0, 1]");
  compute_.emplace(std::move(c));
  return *this;
}

DeviceNode& DeviceNode::set_radio(RadioConfig r) {
  const double total = r.tx_duty + r.rx_duty + r.idle_duty;
  if (r.tx_duty < 0.0 || r.rx_duty < 0.0 || r.idle_duty < 0.0 || total > 1.0)
    throw std::invalid_argument("radio duty fractions invalid");
  radio_.emplace(std::move(r));
  return *this;
}

DeviceNode& DeviceNode::add_interface(InterfaceConfig i) {
  if (i.duty < 0.0 || i.duty > 1.0)
    throw std::invalid_argument("interface duty outside [0, 1]");
  interfaces_.push_back(std::move(i));
  return *this;
}

DeviceNode& DeviceNode::set_supply(SupplyConfig s) {
  if (s.kind == SupplyKind::Battery && !s.battery)
    throw std::invalid_argument("battery supply needs a battery spec");
  if (s.kind == SupplyKind::Harvested && !s.harvester)
    throw std::invalid_argument("harvested supply needs a harvester");
  supply_ = std::move(s);
  return *this;
}

std::vector<std::pair<std::string, u::Power>> DeviceNode::power_breakdown()
    const {
  std::vector<std::pair<std::string, u::Power>> out;
  if (compute_) {
    // When power-gated (duty < 1) leakage only accrues during the on time.
    const u::Power on = compute_->model.power(compute_->utilization);
    out.emplace_back("compute", on * compute_->duty);
  }
  if (radio_) {
    const auto& r = radio_->model;
    const double sleep_duty =
        1.0 - radio_->tx_duty - radio_->rx_duty - radio_->idle_duty;
    u::Power p = r.tx_power() * radio_->tx_duty +
                 r.rx_power() * radio_->rx_duty +
                 r.idle_power() * radio_->idle_duty +
                 r.sleep_power() * sleep_duty;
    out.emplace_back("radio", p);
  }
  for (const auto& i : interfaces_) {
    out.emplace_back(i.name, i.active_power * i.duty +
                                 i.standby_power * (1.0 - i.duty));
  }
  return out;
}

u::Power DeviceNode::average_power() const {
  u::Power total{0.0};
  for (const auto& [n, p] : power_breakdown()) total += p;
  return total;
}

u::BitRate DeviceNode::information_rate() const {
  // A device's information rate is what it exchanges with the world:
  // communication plus interface streams.  Compute is internal and only
  // counts as a fallback for radio-less, interface-less processing nodes.
  u::BitRate rate{0.0};
  if (radio_) {
    rate += radio_->model.params().bit_rate *
            (radio_->tx_duty + radio_->rx_duty);
  }
  for (const auto& i : interfaces_) rate += i.info_rate * i.duty;
  if (rate <= u::BitRate(0.0) && compute_) {
    // 32-bit operation stream at the effective op rate.
    rate = u::BitRate(compute_->model.throughput().value() *
                      compute_->utilization * compute_->duty * 32.0);
  }
  if (rate <= u::BitRate(0.0))
    throw std::logic_error("device '" + name_ + "' handles no information");
  return rate;
}

DeviceClass DeviceNode::device_class() const {
  return classify_power(average_power());
}

bool DeviceNode::energy_neutral() const {
  switch (supply_.kind) {
    case SupplyKind::Mains: return true;
    case SupplyKind::Battery: return false;
    case SupplyKind::Harvested:
      return supply_.harvester->average_power() >= average_power();
  }
  throw std::logic_error("unknown supply kind");
}

u::Time DeviceNode::autonomy() const {
  constexpr double kForever = 1e18;
  switch (supply_.kind) {
    case SupplyKind::Mains:
      return u::Time(kForever);
    case SupplyKind::Battery: {
      energy::Battery b(*supply_.battery);
      return b.lifetime_at(average_power());
    }
    case SupplyKind::Harvested: {
      const u::Power deficit =
          average_power() - supply_.harvester->average_power();
      if (deficit <= u::Power(0.0)) return u::Time(kForever);
      if (!supply_.battery) return u::Time(0.0);
      energy::Battery b(*supply_.battery);
      return b.lifetime_at(deficit);
    }
  }
  throw std::logic_error("unknown supply kind");
}

PowerInfoPoint DeviceNode::to_point() const {
  const std::string process =
      compute_ ? compute_->model.node().name : "mixed";
  return {name_, TechnologyKind::Compute, process, average_power(),
          information_rate()};
}

// ---------------------------------------------------------------------------
// Case-study presets.
// ---------------------------------------------------------------------------

DeviceNode autonomous_sensor_node(const tech::TechnologyNode& node) {
  DeviceNode d("autonomous-sensor");
  // MCU wakes for ~5 ms every second to sample, filter and decide.
  auto cpu = arch::ProcessorModel::at_max_clock(arch::microcontroller_core(),
                                                node, node.vdd_min);
  d.set_compute({std::move(cpu), 1.0, 0.005});
  // Radio: one 128-bit report per minute through a 1 % duty-cycled MAC.
  radio::RadioModel r(radio::ulp_radio());
  const double report_airtime =
      (0.5 + 128.0 / r.params().bit_rate.value()) / 60.0;  // preamble + data
  d.set_radio({std::move(r), report_airtime, 0.0, 0.01});
  const auto sensor = arch::SensorFrontEnd::temperature();
  d.add_interface({"sensor", sensor.active_power, 0.005, sensor.standby_power,
                   u::BitRate(12.0)});
  SupplyConfig s;
  s.kind = SupplyKind::Harvested;
  s.harvester =
      std::make_shared<energy::SolarHarvester>(2_cm2, 0.15, /*indoor=*/true);
  s.battery = energy::Battery::thin_film_1mAh();
  d.set_supply(std::move(s));
  return d;
}

DeviceNode personal_audio_node(const tech::TechnologyNode& node) {
  DeviceNode d("personal-audio");
  // DSP at a scaled operating point decodes a 128 kbps stream.
  const u::Voltage v{(node.vdd_min.value() + node.vdd_nominal.value()) / 2.0};
  auto cpu = arch::ProcessorModel::at_max_clock(arch::dsp_core(), node, v);
  const double util =
      21e6 / cpu.throughput().value();  // ~21 MOPS audio decode
  d.set_compute({std::move(cpu), std::min(1.0, util), 1.0});
  radio::RadioModel r(radio::bluetooth_like());
  const double rx_duty = 128e3 / r.params().bit_rate.value();
  d.set_radio({std::move(r), 0.01, rx_duty, 0.05});
  const auto lcd = arch::DisplayModel::mobile_lcd();
  d.add_interface({"display", lcd.power(), 0.1, 0.1_mW,
                   lcd.information_rate()});
  const auto ear = arch::AudioOutput::earpiece();
  d.add_interface({"audio-out", ear.amplifier_power, 1.0, 0_uW,
                   ear.information_rate()});
  SupplyConfig s;
  s.kind = SupplyKind::Battery;
  s.battery = energy::Battery::li_ion_1000mAh();
  d.set_supply(std::move(s));
  return d;
}

DeviceNode home_media_server(const tech::TechnologyNode& node) {
  DeviceNode d("home-media-server");
  auto cpu = arch::ProcessorModel::at_max_clock(arch::vliw_core(), node,
                                                node.vdd_nominal);
  d.set_compute({std::move(cpu), 0.6, 1.0});
  radio::RadioModel r(radio::wlan_80211b());
  d.set_radio({std::move(r), 0.2, 0.2, 0.6});
  const auto tv = arch::DisplayModel::tv_panel();
  d.add_interface({"display", tv.power(), 0.5, 0.5_W,
                   tv.information_rate()});
  const auto spk = arch::AudioOutput::loudspeaker();
  d.add_interface({"audio-out", spk.amplifier_power, 0.5, 10_mW,
                   spk.information_rate()});
  SupplyConfig s;
  s.kind = SupplyKind::Mains;
  d.set_supply(std::move(s));
  return d;
}

}  // namespace ambisim::core
