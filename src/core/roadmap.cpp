#include "ambisim/core/roadmap.hpp"

#include <stdexcept>

#include "ambisim/arch/processor.hpp"
#include "ambisim/radio/transceiver.hpp"

namespace ambisim::core {

namespace {

arch::ProcessorModel class_fabric(DeviceClass cls,
                                  const tech::TechnologyNode& node) {
  switch (cls) {
    case DeviceClass::MicroWatt:
      return arch::ProcessorModel::at_max_clock(arch::microcontroller_core(),
                                                node, node.vdd_min);
    case DeviceClass::MilliWatt:
      return arch::ProcessorModel::at_max_clock(
          arch::dsp_core(), node,
          u::Voltage((node.vdd_min.value() + node.vdd_nominal.value()) /
                     2.0));
    case DeviceClass::Watt:
      return arch::ProcessorModel::at_max_clock(arch::vliw_core(), node,
                                                node.vdd_nominal);
  }
  throw std::logic_error("unknown class");
}

radio::RadioModel class_radio(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::MicroWatt: return radio::RadioModel(radio::ulp_radio());
    case DeviceClass::MilliWatt:
      return radio::RadioModel(radio::bluetooth_like());
    case DeviceClass::Watt:
      // The static node's backhaul: 54 Mbps OFDM WLAN.
      return radio::RadioModel(radio::wlan_80211a());
  }
  throw std::logic_error("unknown class");
}

}  // namespace

FeasibilityVerdict function_feasibility(const workload::StreamingWorkload& wl,
                                        DeviceClass cls,
                                        const tech::TechnologyNode& node) {
  FeasibilityVerdict v;
  const auto cpu = class_fabric(cls, node);
  const auto radio = class_radio(cls);

  v.compute_utilization = wl.ops_rate().value() / cpu.throughput().value();
  v.compute_ok = v.compute_utilization <= 1.0;

  const double stream = wl.stream_rate.value();
  const double radio_rate = radio.params().bit_rate.value();
  v.radio_ok = stream <= radio_rate;

  if (!v.compute_ok || !v.radio_ok) return v;

  const double rx_duty = stream / radio_rate;
  const u::Power radio_power =
      radio.rx_power() * rx_duty + radio.sleep_power() * (1.0 - rx_duty);
  v.power = cpu.power(v.compute_utilization) + radio_power;
  v.power_ok = v.power < class_profile(cls).budget_high;
  v.feasible = v.power_ok;
  return v;
}

std::vector<RoadmapEntry> feasibility_roadmap(
    std::span<const workload::StreamingWorkload> functions,
    const tech::TechnologyLibrary& lib) {
  std::vector<RoadmapEntry> out;
  for (const auto& wl : functions) {
    for (DeviceClass cls : {DeviceClass::MicroWatt, DeviceClass::MilliWatt,
                            DeviceClass::Watt}) {
      RoadmapEntry e;
      e.function = wl.name;
      e.cls = cls;
      for (const auto& node : lib.all()) {
        if (function_feasibility(wl, cls, node).feasible) {
          e.first_year = node.year;
          e.first_node = node.name;
          break;
        }
      }
      out.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace ambisim::core
