#include "ambisim/core/power_info.hpp"

#include <cmath>
#include <stdexcept>

#include "ambisim/arch/interface.hpp"
#include "ambisim/arch/processor.hpp"
#include "ambisim/radio/transceiver.hpp"
#include "ambisim/tech/memory_energy.hpp"

namespace ambisim::core {

using namespace ambisim::units::literals;

std::string to_string(TechnologyKind k) {
  switch (k) {
    case TechnologyKind::Compute: return "compute";
    case TechnologyKind::Communication: return "communication";
    case TechnologyKind::Interface: return "interface";
    case TechnologyKind::Storage: return "storage";
  }
  return "unknown";
}

DeviceClass PowerInfoPoint::device_class() const {
  return classify_power(power);
}

u::EnergyPerBit PowerInfoPoint::energy_per_bit() const {
  if (info_rate <= u::BitRate(0.0))
    throw std::logic_error("point has no information rate");
  return power / info_rate;
}

void PowerInfoGraph::add(PowerInfoPoint p) {
  if (p.power <= u::Power(0.0) || p.info_rate <= u::BitRate(0.0))
    throw std::invalid_argument(
        "power-information points must have positive coordinates");
  points_.push_back(std::move(p));
}

std::vector<PowerInfoPoint> PowerInfoGraph::in_class(DeviceClass c) const {
  std::vector<PowerInfoPoint> out;
  for (const auto& p : points_) {
    if (p.device_class() == c) out.push_back(p);
  }
  return out;
}

std::vector<PowerInfoPoint> PowerInfoGraph::of_kind(TechnologyKind k) const {
  std::vector<PowerInfoPoint> out;
  for (const auto& p : points_) {
    if (p.kind == k) out.push_back(p);
  }
  return out;
}

PowerInfoGraph::ClusterStats PowerInfoGraph::cluster(DeviceClass c) const {
  ClusterStats s;
  s.cls = c;
  double lp = 0.0;
  double lr = 0.0;
  bool first = true;
  for (const auto& p : points_) {
    if (p.device_class() != c) continue;
    ++s.count;
    lp += std::log10(p.power.value());
    lr += std::log10(p.info_rate.value());
    const u::EnergyPerBit e = p.energy_per_bit();
    if (first || e < s.min_epb) s.min_epb = e;
    if (first || e > s.max_epb) s.max_epb = e;
    first = false;
  }
  if (s.count > 0) {
    s.mean_log10_power = lp / s.count;
    s.mean_log10_rate = lr / s.count;
  }
  return s;
}

sim::LinearFit PowerInfoGraph::loglog_fit() const {
  if (points_.size() < 2)
    throw std::logic_error("log-log fit needs >= 2 points");
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(points_.size());
  y.reserve(points_.size());
  for (const auto& p : points_) {
    x.push_back(std::log10(p.info_rate.value()));
    y.push_back(std::log10(p.power.value()));
  }
  return sim::linear_fit(x, y);
}

sim::Table PowerInfoGraph::to_table(const std::string& title) const {
  sim::Table t(title, {"technology", "kind", "process", "power_W",
                       "info_rate_bps", "energy_per_bit_J", "device_class"});
  for (const auto& p : points_) {
    t.add_row({p.name, to_string(p.kind), p.process, p.power.value(),
               p.info_rate.value(), p.energy_per_bit().value(),
               to_string(p.device_class())});
  }
  return t;
}

namespace {

PowerInfoPoint compute_point(const arch::CoreParams& params,
                             const tech::TechnologyNode& node,
                             double word_bits) {
  const auto cpu =
      arch::ProcessorModel::at_max_clock(params, node, node.vdd_nominal);
  return {params.name + "@" + node.name, TechnologyKind::Compute, node.name,
          cpu.power(1.0),
          u::BitRate(cpu.throughput().value() * word_bits)};
}

PowerInfoPoint radio_point(const radio::RadioParams& params) {
  const radio::RadioModel r(params);
  // A symmetric link: average of transmit and receive supply power.
  const u::Power p = (r.tx_power() + r.rx_power()) / 2.0;
  return {params.name, TechnologyKind::Communication, "radio", p,
          params.bit_rate};
}

}  // namespace

PowerInfoGraph PowerInfoGraph::standard_catalogue(
    const tech::TechnologyLibrary& lib) {
  PowerInfoGraph g;

  // Compute fabric across the roadmap: the same cores migrate down-right as
  // technology scales.
  for (const auto& node : lib.all()) {
    g.add(compute_point(arch::microcontroller_core(), node, 8.0));
    g.add(compute_point(arch::risc_core(), node, 32.0));
  }
  const auto& n130 = lib.node("130nm");
  const auto& n90 = lib.by_year(2003);
  g.add(compute_point(arch::dsp_core(), n130, 32.0));
  g.add(compute_point(arch::dsp_core(), n90, 32.0));
  g.add(compute_point(arch::vliw_core(), n130, 32.0));
  g.add(compute_point(arch::vliw_core(), n90, 32.0));
  g.add(compute_point(arch::accelerator_core("mpeg"), n130, 16.0));

  // Communication standards spanning the classes.
  g.add(radio_point(radio::ulp_radio()));
  g.add(radio_point(radio::bluetooth_like()));
  g.add(radio_point(radio::wlan_80211b()));

  // Interface electronics.
  {
    const arch::AdcModel sensor_adc(12.0, 1_kHz);
    g.add({"adc-12b-1k", TechnologyKind::Interface, "mixed", sensor_adc.power(),
           sensor_adc.information_rate()});
    const arch::AdcModel audio_adc(16.0, 48_kHz);
    g.add({"adc-16b-48k", TechnologyKind::Interface, "mixed",
           audio_adc.power(), audio_adc.information_rate()});
    const arch::AdcModel video_adc(8.0, 13.5_MHz);
    g.add({"adc-8b-video", TechnologyKind::Interface, "mixed",
           video_adc.power(), video_adc.information_rate()});
    const auto lcd = arch::DisplayModel::mobile_lcd();
    g.add({"lcd-mobile", TechnologyKind::Interface, "display", lcd.power(),
           lcd.information_rate()});
    const auto tv = arch::DisplayModel::tv_panel();
    g.add({"display-tv", TechnologyKind::Interface, "display", tv.power(),
           tv.information_rate()});
    const auto ear = arch::AudioOutput::earpiece();
    g.add({"audio-earpiece", TechnologyKind::Interface, "audio",
           ear.amplifier_power, ear.information_rate()});
  }

  // Storage streams: on-chip SRAM vs off-chip DRAM at a sustained word rate.
  {
    const double sram_bits = 32.0 * 8192.0 * 8.0;  // 32 KiB
    const u::Frequency f = 50_MHz;
    const u::Energy ea = tech::SramModel::access_energy(
        n130, n130.vdd_nominal, sram_bits, 32.0);
    g.add({"sram-32k@130nm", TechnologyKind::Storage, "130nm",
           u::Power(ea.value() * f.value()),
           u::BitRate(32.0 * f.value())});
    const u::Energy ed = tech::OffChipModel::access_energy(2.5_V, 32.0) +
                         tech::OffChipModel::dram_core_energy(32.0);
    const u::Frequency fd = 100_MHz;
    g.add({"sdram-offchip", TechnologyKind::Storage, "pcb",
           u::Power(ed.value() * fd.value()),
           u::BitRate(32.0 * fd.value())});
  }

  return g;
}

}  // namespace ambisim::core
