#include "ambisim/workload/streams.hpp"

#include <stdexcept>

namespace ambisim::workload {

using namespace ambisim::units::literals;

u::OpRate StreamingWorkload::ops_rate() const {
  return u::OpRate(demand.ops * unit_rate.value());
}

double StreamingWorkload::ops_over(u::Time t) const {
  if (t < u::Time(0.0)) throw std::invalid_argument("negative duration");
  return demand.ops * unit_rate.value() * t.value();
}

StreamingWorkload audio_playback(u::BitRate compressed_rate) {
  if (compressed_rate <= u::BitRate(0.0))
    throw std::invalid_argument("compressed rate must be positive");
  // One MP3-class granule: 1152 stereo samples at 44.1 kHz.
  StreamingWorkload w;
  w.name = "audio-playback";
  w.unit_rate = u::Frequency(44100.0 / 1152.0);  // ~38.3 frames/s
  w.demand.ops = 550e3;           // ~21 MOPS sustained decode + post
  w.demand.mem_accesses = 90e3;
  w.demand.working_set_bits = 64.0 * 8192.0;  // tables + frame buffers
  w.demand.bus_bits = 18432.0;    // PCM out per granule
  w.stream_rate = compressed_rate;
  return w;
}

StreamingWorkload video_decode_sd() {
  // MPEG-2 SD: 720x576 @ 25 fps, ~1500 ops/macroblock-pixel-ish budget.
  StreamingWorkload w;
  w.name = "video-sd";
  w.unit_rate = u::Frequency(25.0);
  w.demand.ops = 120e6;            // 3 GOPS sustained
  w.demand.mem_accesses = 18e6;    // motion compensation traffic
  w.demand.working_set_bits = 8.0 * 3.0 * 720.0 * 576.0 * 2.0;  // ref frames
  w.demand.bus_bits = 720.0 * 576.0 * 16.0;  // one frame out
  w.stream_rate = 4_Mbps;
  return w;
}

StreamingWorkload video_decode_hd() {
  StreamingWorkload w;
  w.name = "video-hd";
  w.unit_rate = u::Frequency(30.0);
  w.demand.ops = 400e6;            // 12 GOPS sustained
  w.demand.mem_accesses = 60e6;
  w.demand.working_set_bits = 8.0 * 3.0 * 1280.0 * 720.0 * 2.0;
  w.demand.bus_bits = 1280.0 * 720.0 * 16.0;
  w.stream_rate = 12_Mbps;
  return w;
}

StreamingWorkload sensing(u::Frequency rate) {
  if (rate <= u::Frequency(0.0))
    throw std::invalid_argument("sensing rate must be positive");
  StreamingWorkload w;
  w.name = "sensing";
  w.unit_rate = rate;
  w.demand.ops = 2000.0;           // sample + IIR filter + threshold
  w.demand.mem_accesses = 450.0;
  w.demand.working_set_bits = 4096.0;
  w.demand.bus_bits = 12.0;
  w.stream_rate = u::BitRate(12.0 * rate.value());
  return w;
}

StreamingWorkload speech_frontend() {
  StreamingWorkload w;
  w.name = "speech-frontend";
  w.unit_rate = u::Frequency(100.0);  // 10 ms frames
  w.demand.ops = 300e3;               // FFT + mel filterbank + DCT
  w.demand.mem_accesses = 60e3;
  w.demand.working_set_bits = 8.0 * 32768.0;
  w.demand.bus_bits = 13.0 * 32.0;    // 13 cepstral coefficients
  w.stream_rate = u::BitRate(16000.0 * 16.0);  // 16 kHz, 16-bit input
  return w;
}

}  // namespace ambisim::workload
