#include "ambisim/workload/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ambisim::workload {

using namespace ambisim::units::literals;

TaskGraph::TaskGraph(std::string name) : name_(std::move(name)) {}

int TaskGraph::add_task(Task t) {
  if (t.ops < 0.0 || t.mem_accesses < 0.0)
    throw std::invalid_argument("negative task demand");
  tasks_.push_back(std::move(t));
  return static_cast<int>(tasks_.size()) - 1;
}

void TaskGraph::add_edge(int from, int to, u::Information bits) {
  if (from < 0 || from >= task_count() || to < 0 || to >= task_count())
    throw std::out_of_range("edge endpoint out of range");
  if (from == to) throw std::invalid_argument("self edge");
  if (bits < u::Information(0.0))
    throw std::invalid_argument("negative edge payload");
  edges_.push_back({from, to, bits});
}

std::vector<int> TaskGraph::predecessors(int i) const {
  if (i < 0 || i >= task_count()) throw std::out_of_range("task index");
  std::vector<int> out;
  for (const auto& e : edges_) {
    if (e.to == i) out.push_back(e.from);
  }
  return out;
}

std::vector<int> TaskGraph::successors(int i) const {
  if (i < 0 || i >= task_count()) throw std::out_of_range("task index");
  std::vector<int> out;
  for (const auto& e : edges_) {
    if (e.from == i) out.push_back(e.to);
  }
  return out;
}

std::vector<int> TaskGraph::topological_order() const {
  std::vector<int> indeg(tasks_.size(), 0);
  for (const auto& e : edges_) ++indeg[e.to];
  std::queue<int> ready;
  for (int i = 0; i < task_count(); ++i) {
    if (indeg[i] == 0) ready.push(i);
  }
  std::vector<int> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop();
    order.push_back(v);
    for (const auto& e : edges_) {
      if (e.from == v && --indeg[e.to] == 0) ready.push(e.to);
    }
  }
  if (order.size() != tasks_.size())
    throw std::logic_error("task graph '" + name_ + "' contains a cycle");
  return order;
}

bool TaskGraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

double TaskGraph::total_ops() const {
  double s = 0.0;
  for (const auto& t : tasks_) s += t.ops;
  return s;
}

u::Information TaskGraph::total_traffic() const {
  u::Information s{0.0};
  for (const auto& e : edges_) s += e.bits;
  return s;
}

double TaskGraph::critical_path_ops() const {
  const auto order = topological_order();
  std::vector<double> longest(tasks_.size(), 0.0);
  double best = 0.0;
  for (int v : order) {
    longest[v] += tasks_[v].ops;
    best = std::max(best, longest[v]);
    for (const auto& e : edges_) {
      if (e.from == v) longest[e.to] = std::max(longest[e.to], longest[v]);
    }
  }
  return best;
}

TaskGraph audio_pipeline_graph() {
  TaskGraph g("audio-pipeline");
  const int rx = g.add_task({"radio-rx", 2'000, 400, 4096_bit});
  const int depkt = g.add_task({"depacketize", 1'500, 600, 4096_bit});
  const int decode = g.add_task({"decode", 250'000, 40'000, 18432_bit});
  const int post = g.add_task({"post-process", 60'000, 9'000, 18432_bit});
  const int vol = g.add_task({"volume", 5'000, 2'000, 18432_bit});
  const int dac = g.add_task({"dac-feed", 2'500, 1'200, 18432_bit});
  g.add_edge(rx, depkt, 4096_bit);
  g.add_edge(depkt, decode, 4096_bit);
  g.add_edge(decode, post, 18432_bit);
  g.add_edge(post, vol, 18432_bit);
  g.add_edge(vol, dac, 18432_bit);
  g.set_period(u::Time(1152.0 / 44100.0));  // one MP3 granule
  g.set_deadline(g.period());
  return g;
}

TaskGraph sensing_pipeline_graph() {
  TaskGraph g("sensing-pipeline");
  const int sense = g.add_task({"sample", 60, 20, 12_bit});
  const int filt = g.add_task({"filter", 400, 90, 12_bit});
  const int cls = g.add_task({"classify", 1'200, 250, 8_bit});
  const int rpt = g.add_task({"report", 300, 80, 128_bit});
  g.add_edge(sense, filt, 12_bit);
  g.add_edge(filt, cls, 12_bit);
  g.add_edge(cls, rpt, 8_bit);
  g.set_period(u::Time(1.0));
  g.set_deadline(u::Time(0.5));
  return g;
}

TaskGraph random_task_graph(sim::Rng& rng, int tasks, int layers,
                            double edge_probability) {
  if (tasks < 1 || layers < 1 || layers > tasks)
    throw std::invalid_argument("bad random task graph shape");
  if (edge_probability < 0.0 || edge_probability > 1.0)
    throw std::invalid_argument("edge probability outside [0, 1]");
  TaskGraph g("random");
  std::vector<int> layer_of(tasks);
  for (int i = 0; i < tasks; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.ops = rng.uniform(1e3, 1e6);
    t.mem_accesses = t.ops * rng.uniform(0.05, 0.4);
    t.output_bits = u::Information(rng.uniform(64.0, 8192.0));
    g.add_task(std::move(t));
    // Spread tasks over layers; edges only go to strictly later layers so
    // the graph is acyclic by construction.
    layer_of[i] = (i * layers) / tasks;
  }
  for (int i = 0; i < tasks; ++i) {
    for (int j = i + 1; j < tasks; ++j) {
      if (layer_of[j] > layer_of[i] && rng.uniform() < edge_probability) {
        g.add_edge(i, j, g.task(i).output_bits);
      }
    }
  }
  g.set_period(u::Time(0.1));
  g.set_deadline(u::Time(0.1));
  return g;
}

}  // namespace ambisim::workload
