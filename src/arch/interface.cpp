#include "ambisim/arch/interface.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::arch {

using namespace ambisim::units::literals;

AdcModel::AdcModel(double enob_bits, u::Frequency sample_rate, u::Energy fom)
    : enob_(enob_bits), rate_(sample_rate), fom_(fom) {
  if (enob_bits <= 0.0 || enob_bits > 24.0)
    throw std::invalid_argument("ENOB outside (0, 24]");
  if (sample_rate <= u::Frequency(0.0))
    throw std::invalid_argument("sample rate must be positive");
  if (fom <= u::Energy(0.0))
    throw std::invalid_argument("FOM must be positive");
}

u::Power AdcModel::power() const {
  return u::Power(fom_.value() * std::exp2(enob_) * rate_.value());
}

u::Energy AdcModel::energy_per_sample() const {
  return u::Energy(fom_.value() * std::exp2(enob_));
}

u::BitRate AdcModel::information_rate() const {
  return u::BitRate(enob_ * rate_.value());
}

SensorFrontEnd SensorFrontEnd::temperature() {
  return {"temperature", 15_uW, 0.05_uW, 2_ms};
}

SensorFrontEnd SensorFrontEnd::passive_infrared() {
  return {"PIR", 60_uW, 0.2_uW, 50_ms};
}

SensorFrontEnd SensorFrontEnd::microphone() {
  return {"microphone", 300_uW, 0.5_uW, 5_ms};
}

SensorFrontEnd SensorFrontEnd::image_sensor_qvga() {
  return {"image-QVGA", 40_mW, 5_uW, 30_ms};
}

DisplayModel::DisplayModel(double pixels, u::Frequency frame_rate,
                           u::Power backlight, u::Energy energy_per_pixel)
    : pixels_(pixels),
      frame_rate_(frame_rate),
      backlight_(backlight),
      energy_per_pixel_(energy_per_pixel) {
  if (pixels <= 0.0) throw std::invalid_argument("pixel count");
  if (frame_rate <= u::Frequency(0.0))
    throw std::invalid_argument("frame rate");
  if (backlight < u::Power(0.0)) throw std::invalid_argument("backlight");
}

u::Power DisplayModel::power() const {
  return backlight_ + u::Power(energy_per_pixel_.value() * pixels_ *
                               frame_rate_.value());
}

u::BitRate DisplayModel::information_rate(double bits_per_pixel) const {
  if (bits_per_pixel <= 0.0) throw std::invalid_argument("bits per pixel");
  return u::BitRate(pixels_ * bits_per_pixel * frame_rate_.value());
}

DisplayModel DisplayModel::mobile_lcd() {
  return DisplayModel(176.0 * 208.0, 30_Hz, 25_mW);
}

DisplayModel DisplayModel::tv_panel() {
  return DisplayModel(720.0 * 576.0, 50_Hz, 12_W);
}

u::BitRate AudioOutput::information_rate() const {
  return u::BitRate(sample_rate.value() * bits_per_sample);
}

AudioOutput AudioOutput::earpiece() { return {8_mW, 44.1_kHz, 16.0}; }

AudioOutput AudioOutput::loudspeaker() { return {2_W, 48_kHz, 16.0}; }

}  // namespace ambisim::arch
