#include "ambisim/arch/interconnect.hpp"

#include <stdexcept>

namespace ambisim::arch {

OnChipBus::OnChipBus(const tech::TechnologyNode& node, u::Voltage v,
                     double length_mm, double width_bits, u::Frequency clock)
    : voltage_(v),
      length_mm_(length_mm),
      width_bits_(width_bits),
      clock_(clock) {
  if (length_mm <= 0.0 || width_bits <= 0.0)
    throw std::invalid_argument("bus geometry must be positive");
  const u::Frequency fmax = tech::max_frequency(node, v, 40.0);
  if (clock > fmax * 1.0001)
    throw std::domain_error("bus clock exceeds achievable frequency");
  if (clock <= u::Frequency(0.0))
    throw std::invalid_argument("bus clock must be positive");
}

u::Energy OnChipBus::transfer_energy(double bits) const {
  if (bits < 0.0) throw std::invalid_argument("negative bit count");
  const double v = voltage_.value();
  // Half the lines toggle per transferred word on average.
  return u::Energy(0.5 * bits * kWireCapPerMm * length_mm_ * v * v);
}

u::BitRate OnChipBus::bandwidth() const {
  return u::BitRate(width_bits_ * clock_.value());
}

u::Time OnChipBus::transfer_time(double bits) const {
  if (bits < 0.0) throw std::invalid_argument("negative bit count");
  return u::Time(bits / bandwidth().value());
}

u::Power OnChipBus::power_at_rate(u::BitRate rate) const {
  if (rate < u::BitRate(0.0)) throw std::invalid_argument("negative rate");
  if (rate > bandwidth() * 1.0001)
    throw std::domain_error("rate exceeds bus bandwidth");
  return u::Power(transfer_energy(1.0).value() * rate.value());
}

NocLink::NocLink(const tech::TechnologyNode& node, u::Voltage v, double hop_mm,
                 double flit_bits, u::Frequency clock)
    : node_(node),
      voltage_(v),
      hop_mm_(hop_mm),
      flit_bits_(flit_bits),
      clock_(clock) {
  if (hop_mm <= 0.0 || flit_bits <= 0.0)
    throw std::invalid_argument("NoC geometry must be positive");
  if (clock <= u::Frequency(0.0))
    throw std::invalid_argument("NoC clock must be positive");
}

u::Energy NocLink::flit_energy() const {
  const double v = voltage_.value();
  const u::Energy wire{0.5 * flit_bits_ * OnChipBus::kWireCapPerMm * hop_mm_ *
                       v * v};
  const u::Energy router = tech::switching_energy(node_, voltage_) *
                           (kRouterGatesPerFlitBit * flit_bits_);
  return wire + router;
}

u::Energy NocLink::transfer_energy(double bits, int hops) const {
  if (bits < 0.0 || hops < 0)
    throw std::invalid_argument("negative transfer");
  const double flits = bits / flit_bits_;
  return flit_energy() * (flits * hops);
}

u::BitRate NocLink::link_bandwidth() const {
  return u::BitRate(flit_bits_ * clock_.value());
}

}  // namespace ambisim::arch
