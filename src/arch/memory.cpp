#include "ambisim/arch/memory.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::arch {

u::Energy MemoryStats::energy_per_access(double accesses) const {
  if (accesses <= 0.0) return u::Energy(0.0);
  return u::Energy(energy.value() / accesses);
}

MemoryHierarchy::MemoryHierarchy(const tech::TechnologyNode& node,
                                 u::Voltage core_voltage,
                                 std::vector<CacheLevelSpec> levels,
                                 bool offchip_backing, u::Voltage io_voltage)
    : node_(node),
      core_voltage_(core_voltage),
      levels_(std::move(levels)),
      offchip_(offchip_backing),
      io_voltage_(io_voltage) {
  double prev = 0.0;
  for (const auto& l : levels_) {
    if (l.capacity_bits <= 0.0 || l.word_bits <= 0.0)
      throw std::invalid_argument("cache level sizes must be positive");
    if (l.capacity_bits < prev)
      throw std::invalid_argument("cache levels must grow outward");
    prev = l.capacity_bits;
  }
  if (levels_.empty() && !offchip_)
    throw std::invalid_argument("hierarchy needs at least one level");
}

double MemoryHierarchy::hit_rate(std::size_t level, double working_set_bits,
                                 double reuse_exponent) const {
  if (level >= levels_.size()) throw std::out_of_range("level index");
  if (working_set_bits <= 0.0)
    throw std::invalid_argument("working set must be positive");
  if (reuse_exponent <= 0.0 || reuse_exponent > 1.0)
    throw std::invalid_argument("reuse exponent outside (0, 1]");
  const double c = levels_[level].capacity_bits;
  if (c >= working_set_bits) return 1.0;
  return std::pow(c / working_set_bits, reuse_exponent);
}

MemoryStats MemoryHierarchy::simulate(const AccessProfile& profile) const {
  if (profile.accesses < 0.0)
    throw std::invalid_argument("negative access count");
  MemoryStats stats;
  stats.hits_per_level.resize(levels_.size(), 0.0);
  double stream = profile.accesses;  // accesses reaching the current level
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const auto& lvl = levels_[i];
    // Every access reaching this level probes it once.
    stats.energy += tech::SramModel::access_energy(
                        node_, core_voltage_, lvl.capacity_bits,
                        lvl.word_bits) *
                    stream;
    stats.total_latency += lvl.latency * stream;
    const double h =
        hit_rate(i, profile.working_set_bits, profile.reuse_exponent);
    stats.hits_per_level[i] = stream * h;
    stream *= (1.0 - h);
  }
  if (offchip_) {
    stats.offchip_accesses = stream;
    const double word =
        levels_.empty() ? 32.0 : levels_.back().word_bits;
    stats.energy +=
        (tech::OffChipModel::access_energy(io_voltage_, word) +
         tech::OffChipModel::dram_core_energy(word)) *
        stream;
    stats.total_latency += u::Time(60e-9) * stream;  // ~60 ns DRAM round trip
  } else {
    // No backing store: the last level must contain the working set.
    if (!levels_.empty() && stream > 1e-9 * profile.accesses &&
        levels_.back().capacity_bits < profile.working_set_bits)
      stats.offchip_accesses = stream;  // reported as unserviced traffic
  }
  return stats;
}

u::Power MemoryHierarchy::leakage() const {
  u::Power p{0.0};
  for (const auto& l : levels_)
    p += tech::SramModel::leakage(node_, core_voltage_, l.capacity_bits);
  return p;
}

}  // namespace ambisim::arch
