#include "ambisim/arch/soc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ambisim::arch {

SocModel::SocModel(std::string name, const tech::TechnologyNode& node,
                   u::Voltage v)
    : name_(std::move(name)), node_(node), voltage_(v) {}

SocModel& SocModel::add_core(const CoreParams& params) {
  cores_.push_back(ProcessorModel::at_max_clock(params, node_, voltage_));
  return *this;
}

SocModel& SocModel::add_core(const CoreParams& params, u::Frequency clock) {
  cores_.emplace_back(params, node_, voltage_, clock);
  return *this;
}

SocModel& SocModel::set_memory(std::vector<CacheLevelSpec> levels,
                               bool offchip_backing) {
  memory_.emplace(node_, voltage_, std::move(levels), offchip_backing);
  return *this;
}

SocModel& SocModel::set_bus(double length_mm, double width_bits) {
  const u::Frequency bus_clock = tech::max_frequency(node_, voltage_, 40.0);
  bus_.emplace(node_, voltage_, length_mm, width_bits, bus_clock);
  return *this;
}

u::OpRate SocModel::compute_capacity() const {
  u::OpRate cap{0.0};
  for (const auto& c : cores_) cap += c.throughput();
  return cap;
}

double SocModel::total_gates() const {
  double g = 0.0;
  for (const auto& c : cores_) g += c.params().total_gates;
  return g;
}

SocModel::Evaluation SocModel::evaluate(const ComputeDemand& demand,
                                        u::Frequency rate) const {
  if (cores_.empty()) throw std::logic_error("SoC has no cores");
  if (rate < u::Frequency(0.0))
    throw std::invalid_argument("negative work rate");

  Evaluation ev;
  const double ops_rate = demand.ops * rate.value();
  const u::OpRate capacity = compute_capacity();
  ev.compute_utilization = ops_rate / capacity.value();

  // Cores are loaded proportionally to their capacity; each core's dynamic
  // power scales with its share, leakage is always on.
  u::Power compute{0.0};
  const double util = std::min(1.0, ev.compute_utilization);
  for (const auto& c : cores_) compute += c.power(util);
  ev.breakdown.emplace_back("cores", compute);

  u::Power mem_power{0.0};
  if (memory_) {
    AccessProfile prof{demand.mem_accesses, demand.working_set_bits, 0.5};
    if (demand.mem_accesses > 0.0 && demand.working_set_bits > 0.0) {
      const MemoryStats stats = memory_->simulate(prof);
      mem_power = u::Power(stats.energy.value() * rate.value());
    }
    mem_power += memory_->leakage();
    ev.breakdown.emplace_back("memory", mem_power);
  }

  u::Power bus_power{0.0};
  if (bus_ && demand.bus_bits > 0.0) {
    const u::BitRate bus_rate{demand.bus_bits * rate.value()};
    ev.bus_utilization = bus_rate.value() / bus_->bandwidth().value();
    if (ev.bus_utilization <= 1.0) {
      bus_power = bus_->power_at_rate(bus_rate);
    } else {
      bus_power = bus_->power_at_rate(bus_->bandwidth());
    }
    ev.breakdown.emplace_back("interconnect", bus_power);
  }

  ev.power = compute + mem_power + bus_power;
  ev.feasible = ev.compute_utilization <= 1.0 && ev.bus_utilization <= 1.0;
  if (rate > u::Frequency(0.0))
    ev.energy_per_unit = u::Energy(ev.power.value() / rate.value());
  return ev;
}

u::Frequency SocModel::max_rate(const ComputeDemand& demand) const {
  if (cores_.empty()) throw std::logic_error("SoC has no cores");
  double rate = std::numeric_limits<double>::infinity();
  if (demand.ops > 0.0)
    rate = std::min(rate, compute_capacity().value() / demand.ops);
  if (bus_ && demand.bus_bits > 0.0)
    rate = std::min(rate, bus_->bandwidth().value() / demand.bus_bits);
  if (!std::isfinite(rate))
    throw std::invalid_argument("demand has no resource requirements");
  return u::Frequency(rate);
}

}  // namespace ambisim::arch
