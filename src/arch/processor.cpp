#include "ambisim/arch/processor.hpp"

#include <stdexcept>

namespace ambisim::arch {

std::string to_string(CoreStyle s) {
  switch (s) {
    case CoreStyle::Microcontroller: return "microcontroller";
    case CoreStyle::GeneralPurpose: return "general-purpose";
    case CoreStyle::Dsp: return "dsp";
    case CoreStyle::Vliw: return "vliw";
    case CoreStyle::Accelerator: return "accelerator";
  }
  return "unknown";
}

// The gates_per_op figures are *effective switched gate equivalents* per
// sustained operation; they fold in clock tree, register file and local
// wiring, and are calibrated so that e.g. the RISC core lands near
// 0.2-0.3 mW/MHz in 130 nm — an ARM9-class figure.
CoreParams microcontroller_core() {
  return {"mcu8", CoreStyle::Microcontroller, 0.5, 8'000.0, 30'000.0, 60.0};
}

CoreParams risc_core() {
  return {"risc32", CoreStyle::GeneralPurpose, 1.0, 120'000.0, 600'000.0,
          24.0};
}

CoreParams dsp_core() {
  return {"dsp-2mac", CoreStyle::Dsp, 2.0, 40'000.0, 400'000.0, 28.0};
}

CoreParams vliw_core() {
  return {"vliw4", CoreStyle::Vliw, 4.0, 60'000.0, 2'000'000.0, 20.0};
}

CoreParams accelerator_core(const std::string& function) {
  return {"accel-" + function, CoreStyle::Accelerator, 16.0, 1'200.0,
          250'000.0, 32.0};
}

ProcessorModel::ProcessorModel(CoreParams params,
                               const tech::TechnologyNode& node, u::Voltage v,
                               u::Frequency clock)
    : params_(std::move(params)), node_(node), voltage_(v), clock_(clock) {
  if (params_.ops_per_cycle <= 0.0 || params_.gates_per_op <= 0.0 ||
      params_.total_gates <= 0.0 || params_.logic_depth <= 0.0)
    throw std::invalid_argument("core parameters must be positive");
  const u::Frequency fmax =
      tech::max_frequency(node_, v, params_.logic_depth);
  if (clock > fmax * 1.0001)
    throw std::domain_error("clock " + u::si_format(clock.value(), "Hz") +
                            " exceeds max " +
                            u::si_format(fmax.value(), "Hz") + " for " +
                            params_.name + " at this voltage");
  if (clock <= u::Frequency(0.0))
    throw std::invalid_argument("clock must be positive");
}

ProcessorModel ProcessorModel::at_max_clock(CoreParams params,
                                            const tech::TechnologyNode& node,
                                            u::Voltage v) {
  const u::Frequency fmax = tech::max_frequency(node, v, params.logic_depth);
  return ProcessorModel(std::move(params), node, v, fmax);
}

u::OpRate ProcessorModel::throughput() const {
  return u::OpRate(clock_.value() * params_.ops_per_cycle);
}

u::Power ProcessorModel::dynamic_power(double utilization) const {
  if (utilization < 0.0 || utilization > 1.0)
    throw std::invalid_argument("utilization outside [0, 1]");
  const u::Energy per_op = tech::switching_energy(node_, voltage_) *
                           params_.gates_per_op;
  return u::Power(per_op.value() * throughput().value() * utilization);
}

u::Power ProcessorModel::leakage_power() const {
  return tech::leakage_power_per_gate(node_, voltage_) * params_.total_gates;
}

u::Power ProcessorModel::power(double utilization) const {
  return dynamic_power(utilization) + leakage_power();
}

u::Energy ProcessorModel::energy_per_op() const {
  return u::Energy(power(1.0).value() / throughput().value());
}

u::Time ProcessorModel::time_for(double ops) const {
  if (ops < 0.0) throw std::invalid_argument("negative op count");
  return u::Time(ops / throughput().value());
}

u::Energy ProcessorModel::energy_for(double ops) const {
  return u::Energy(power(1.0).value() * time_for(ops).value());
}

ProcessorModel ProcessorModel::with_operating_point(u::Voltage v,
                                                    u::Frequency clock) const {
  return ProcessorModel(params_, node_, v, clock);
}

}  // namespace ambisim::arch
