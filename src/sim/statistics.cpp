#include "ambisim/sim/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ambisim::sim {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("min of empty sample set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("max of empty sample set");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw std::logic_error("percentile of empty set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("linear_fit needs >= 2 paired samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < std::numeric_limits<double>::min())
    throw std::invalid_argument("linear_fit: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace ambisim::sim
