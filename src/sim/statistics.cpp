#include "ambisim/sim/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ambisim::sim {

const std::vector<double>& Samples::sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("min of empty sample set");
  return sorted().front();
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("max of empty sample set");
  return sorted().back();
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw std::logic_error("percentile of empty set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  const std::vector<double>& s = sorted();
  if (s.size() == 1) return s.front();
  const double pos = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("linear_fit needs >= 2 paired samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < std::numeric_limits<double>::min())
    throw std::invalid_argument("linear_fit: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace ambisim::sim
