#include "ambisim/sim/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

namespace ambisim::sim {

AsciiScatter::AsciiScatter(std::string title, int width, int height,
                           bool log_x, bool log_y)
    : title_(std::move(title)),
      width_(width),
      height_(height),
      log_x_(log_x),
      log_y_(log_y) {
  if (width < 16 || height < 8)
    throw std::invalid_argument("plot too small to be readable");
}

void AsciiScatter::add(double x, double y, char glyph) {
  if ((log_x_ && x <= 0.0) || (log_y_ && y <= 0.0))
    throw std::invalid_argument("non-positive coordinate on a log axis");
  if (!std::isfinite(x) || !std::isfinite(y))
    throw std::invalid_argument("non-finite coordinate");
  points_.push_back({x, y, glyph});
}

void AsciiScatter::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

void AsciiScatter::render(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  if (points_.empty()) {
    os << "(no points)\n";
    return;
  }

  auto tx = [&](double v) { return log_x_ ? std::log10(v) : v; };
  auto ty = [&](double v) { return log_y_ ? std::log10(v) : v; };

  double xmin = tx(points_.front().x), xmax = xmin;
  double ymin = ty(points_.front().y), ymax = ymin;
  for (const auto& p : points_) {
    xmin = std::min(xmin, tx(p.x));
    xmax = std::max(xmax, tx(p.x));
    ymin = std::min(ymin, ty(p.y));
    ymax = std::max(ymax, ty(p.y));
  }
  // Snap log ranges to whole decades for clean gridlines.
  if (log_x_) {
    xmin = std::floor(xmin);
    xmax = std::ceil(xmax + 1e-12);
  }
  if (log_y_) {
    ymin = std::floor(ymin);
    ymax = std::ceil(ymax + 1e-12);
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;

  std::vector<std::string> grid(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));

  // Decade gridlines.
  if (log_y_) {
    for (double d = ymin; d <= ymax + 1e-9; d += 1.0) {
      const int r = static_cast<int>(
          std::lround((ymax - d) / (ymax - ymin) * (height_ - 1)));
      if (r >= 0 && r < height_) {
        for (int c = 0; c < width_; ++c) grid[r][c] = '.';
      }
    }
  }
  if (log_x_) {
    for (double d = xmin; d <= xmax + 1e-9; d += 1.0) {
      const int c = static_cast<int>(
          std::lround((d - xmin) / (xmax - xmin) * (width_ - 1)));
      if (c >= 0 && c < width_) {
        for (int r = 0; r < height_; ++r) {
          if (grid[r][c] == ' ') grid[r][c] = ':';
        }
      }
    }
  }

  for (const auto& p : points_) {
    const int c = static_cast<int>(std::lround(
        (tx(p.x) - xmin) / (xmax - xmin) * (width_ - 1)));
    const int r = static_cast<int>(std::lround(
        (ymax - ty(p.y)) / (ymax - ymin) * (height_ - 1)));
    if (r >= 0 && r < height_ && c >= 0 && c < width_) grid[r][c] = p.glyph;
  }

  char buf[64];
  for (int r = 0; r < height_; ++r) {
    // Left margin: decade label at gridline rows.
    std::string margin(10, ' ');
    if (log_y_) {
      const double d = ymax - (ymax - ymin) * r / (height_ - 1);
      if (std::fabs(d - std::lround(d)) < (ymax - ymin) / (2.0 * height_)) {
        std::snprintf(buf, sizeof(buf), "1e%+03d ", (int)std::lround(d));
        margin = std::string(10 - std::min<std::size_t>(10, strlen(buf)),
                             ' ') +
                 buf;
      }
    }
    os << margin << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(width_, '-') << '\n';
  if (log_x_) {
    std::string axis(static_cast<std::size_t>(width_) + 11, ' ');
    for (double d = xmin; d <= xmax + 1e-9; d += 1.0) {
      const int c = static_cast<int>(
          std::lround((d - xmin) / (xmax - xmin) * (width_ - 1)));
      std::snprintf(buf, sizeof(buf), "1e%+03d", (int)std::lround(d));
      const std::size_t at = static_cast<std::size_t>(11 + c) >= 3
                                 ? static_cast<std::size_t>(11 + c) - 3
                                 : 0;
      if (at + 5 < axis.size()) axis.replace(at, 5, buf);
    }
    os << axis << '\n';
  }
  if (!x_label_.empty() || !y_label_.empty()) {
    os << std::string(10, ' ') << "x: " << x_label_ << "   y: " << y_label_
       << '\n';
  }
}

std::ostream& operator<<(std::ostream& os, const AsciiScatter& plot) {
  plot.render(os);
  return os;
}

}  // namespace ambisim::sim
