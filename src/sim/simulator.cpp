#include "ambisim/sim/simulator.hpp"

#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::sim {

void EventHandle::cancel() {
  if (cancelled_ && !*cancelled_) {
    *cancelled_ = true;
    AMBISIM_OBS_COUNT("sim.cancelled");
  }
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule_at(Time t, Callback fn) {
  if (t < now_)
    throw std::invalid_argument("schedule_at: time is in the past");
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
#if AMBISIM_OBS_COMPILED
  if (obs::enabled()) [[unlikely]] {
    obs::context().metrics.counter("sim.scheduled").inc();
    obs::context().tracer.instant("schedule", "kernel",
                                  obs::to_us(t.value()));
  }
#endif
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{t, seq_++, std::move(fn), flag});
  return EventHandle(flag);
}

EventHandle Simulator::schedule_in(Time dt, Callback fn) {
  if (dt < Time(0.0))
    throw std::invalid_argument("schedule_in: negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.time;
    *ev.cancelled = true;  // mark fired so handles report non-pending
    ++executed_;
#if AMBISIM_OBS_COMPILED
    if (obs::enabled()) [[unlikely]] {
      obs::context().metrics.counter("sim.fired").inc();
      // Span on the simulated timeline whose duration is the host cost of
      // the callback; histogram of the same cost for profiling.
      obs::ProbeScope span("event", "kernel", obs::to_us(now_.value()), 0);
      obs::ScopedTimer timer("sim.callback_s");
      ev.fn();
      return true;
    }
#endif
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time deadline) {
  if (deadline < now_)
    throw std::invalid_argument("run_until: deadline is in the past");
  stopped_ = false;
  for (;;) {
    // Drop cancelled events so the live queue head decides whether we are
    // past the deadline.
    while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
    if (stopped_ || queue_.empty() || queue_.top().time > deadline) break;
    step();
  }
  if (!stopped_) now_ = deadline;
}

double Trace::integral() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    acc += points_[i - 1].value *
           (points_[i].time - points_[i - 1].time).value();
  }
  return acc;
}

}  // namespace ambisim::sim
