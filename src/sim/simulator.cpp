#include "ambisim/sim/simulator.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "ambisim/obs/probe.hpp"

namespace ambisim::sim {

namespace detail {

// Slab pool of event slots plus the 4-ary min-heap ordering them.
//
// Slots are recycled through a LIFO free list; each recycle bumps the
// slot's generation so outstanding EventHandles referencing the previous
// occupant go inert.  The heap stores {time, seq, slot index} entries — the
// ordering key lives *inline* in the heap array, so the ~log4(n) x 4
// comparisons per push/pop walk contiguous memory and never touch the
// slots; pushing/popping never copies a callable either, because the
// kernel moves the winner's InplaceCallback out before releasing the slot.
// Cancelled events keep their heap position until popped (lazy deletion),
// which preserves the legacy kernel's pending_events() accounting.
class EventPool {
 public:
  enum class State : std::uint8_t { Free, Pending, Cancelled };
  static constexpr std::uint32_t kNone = 0xffffffffu;
  static constexpr std::size_t kInitialCapacity = 64;

  struct Slot {
    InplaceCallback fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNone;
    State state = State::Free;
  };

  struct HeapEntry {
    Time time{0.0};
    std::uint64_t seq = 0;
    std::uint32_t idx = kNone;
  };

  [[nodiscard]] Slot& slot(std::uint32_t idx) { return slots_[idx]; }
  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    return slots_[idx];
  }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] std::size_t capacity() const { return slots_.capacity(); }
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  std::uint32_t acquire(InplaceCallback&& fn) {
    std::uint32_t idx;
    if (free_head_ != kNone) {
      idx = free_head_;
      free_head_ = slots_[idx].next_free;
    } else {
      if (slots_.size() == slots_.capacity()) {
        slots_.reserve(slots_.empty() ? kInitialCapacity
                                      : slots_.size() * 2);
        heap_.reserve(slots_.capacity());
      }
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    s.fn = std::move(fn);
    s.next_free = kNone;
    s.state = State::Pending;
    return idx;
  }

  /// Destroy the slot's callable, advance its generation (stale handles go
  /// inert), and return it to the free list.
  void release(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.fn.reset();
    s.state = State::Free;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  /// The earliest (time, seq) entry, nullptr when empty.
  [[nodiscard]] const HeapEntry* peek_min() const {
    return heap_.empty() ? nullptr : heap_.data();
  }

  /// Start pulling `idx`'s slot toward the cache.  The winner's slot is a
  /// likely L2 miss at steady-state populations; issuing the prefetch
  /// before pop_min() overlaps that latency with the sift-down.
  void prefetch_slot(std::uint32_t idx) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[idx], /*rw=*/1);
#else
    (void)idx;
#endif
  }

  void push(Time t, std::uint64_t seq, std::uint32_t idx) {
    heap_.push_back(HeapEntry{t, seq, idx});
    std::size_t i = heap_.size() - 1;
    // Sift up by hole: keep the new entry in registers and only write it
    // once its final position is known.
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Remove the earliest entry (heap must be non-empty).
  ///
  /// Bottom-up delete-min: walk the hole from the root to a leaf along the
  /// min-child path (no comparison against the displaced last element on
  /// the way down), then sift that element up from the leaf hole — it was
  /// a leaf itself, so it almost never moves.  Versus the textbook
  /// move-last-to-root-and-sift-down this saves one comparison and one
  /// branch per level.  The resulting heap can differ in internal
  /// arrangement, but (time, seq) keys are unique, so every pop still
  /// yields the one global minimum: the observable firing order is
  /// unchanged.
  void pop_min() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = 4 * hole + 1;
      if (first + 4 <= n) {
        // Full fan-out: tournament-reduce the four children pairwise.  A
        // linear scan's running-best selection serializes four dependent
        // compares; pairing makes the two first-round compares
        // independent.  Keys are unique, so the winner is the same either
        // way (a NaN time loses every earlier() call in both shapes).
        const std::size_t m0 = first + (earlier(heap_[first + 1],
                                                heap_[first]) ? 1 : 0);
        const std::size_t m1 = first + 2 + (earlier(heap_[first + 3],
                                                    heap_[first + 2]) ? 1 : 0);
        const std::size_t m = earlier(heap_[m1], heap_[m0]) ? m1 : m0;
        heap_[hole] = heap_[m];
        hole = m;
      } else if (first < n) {
        std::size_t m = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (earlier(heap_[c], heap_[m])) m = c;
        }
        heap_[hole] = heap_[m];
        hole = m;
      } else {
        break;
      }
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 4;
      if (!earlier(last, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = last;
  }

  /// Destroy every live callable and invalidate every outstanding handle;
  /// called by ~Simulator so captures don't outlive the run just because a
  /// handle keeps the pool's slab alive.
  void drain_all() {
    for (auto& s : slots_) {
      if (s.state != State::Free) {
        s.fn.reset();
        s.state = State::Free;
        ++s.generation;
      }
    }
    heap_.clear();
    free_head_ = kNone;  // the pool is dead; nothing acquires again
  }

#if AMBISIM_OBS_COMPILED
  // Cached instrument handles: step()/schedule/cancel would otherwise pay a
  // string-keyed registry lookup per event when probes are armed.  The
  // cache keys on (context pointer, registry epoch): a worker rebinding to
  // its obs shard or a registry clear() re-resolves automatically, and
  // obs::reset() keeps entries so the cache survives it.
  obs::Context& bind() {
    obs::Context& c = obs::context();
    if (&c != obs_ctx_ || c.metrics.epoch() != obs_epoch_) {
      obs_ctx_ = &c;
      obs_epoch_ = c.metrics.epoch();
      scheduled_ = &c.metrics.counter("sim.scheduled");
      fired_ = &c.metrics.counter("sim.fired");
      cancelled_ = &c.metrics.counter("sim.cancelled");
      callback_hist_ = &c.metrics.histogram("sim.callback_s");
    }
    return c;
  }

  void invalidate_obs_cache() { obs_ctx_ = nullptr; }

  [[nodiscard]] obs::Counter& scheduled() const { return *scheduled_; }
  [[nodiscard]] obs::Counter& fired() const { return *fired_; }
  [[nodiscard]] obs::Counter& cancelled() const { return *cancelled_; }
  [[nodiscard]] obs::Histogram* callback_hist() const {
    return callback_hist_;
  }
#else
  void invalidate_obs_cache() {}
#endif

 private:
  // Branchless (time, seq) comparison: event times are tie-heavy (quantized
  // periods, simultaneous timers), so a short-circuit comparator
  // mispredicts constantly in the sift loops.  Evaluating all three flags
  // and combining lets the compiler emit setcc/cmov instead of jumps.
  // Semantics match `if (time != time) time < time; else seq < seq`
  // exactly, including NaN (all flags false) and -0.0 == +0.0 ties.
  [[nodiscard]] static bool earlier(const HeapEntry& x, const HeapEntry& y) {
    const bool lt = x.time < y.time;
    const bool eq = x.time == y.time;
    const bool sl = x.seq < y.seq;
    return lt | (eq & sl);
  }

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNone;

  friend void pool_add_ref(EventPool* p) noexcept;
  friend void pool_release(EventPool* p) noexcept;
  std::uint64_t refs_ = 1;  // the creating Simulator holds the first ref

#if AMBISIM_OBS_COMPILED
  obs::Context* obs_ctx_ = nullptr;
  std::uint64_t obs_epoch_ = 0;
  obs::Counter* scheduled_ = nullptr;
  obs::Counter* fired_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Histogram* callback_hist_ = nullptr;
#endif
};

void pool_add_ref(EventPool* p) noexcept { ++p->refs_; }

void pool_release(EventPool* p) noexcept {
  if (--p->refs_ == 0) delete p;
}

}  // namespace detail

using detail::EventPool;

void EventHandle::cancel() {
  if (!pool_) return;
  EventPool::Slot& s = pool_->slot(index_);
  if (s.generation != generation_ || s.state != EventPool::State::Pending)
    return;
  s.state = EventPool::State::Cancelled;
#if AMBISIM_OBS_COMPILED
  if (obs::enabled()) [[unlikely]] {
    pool_->bind();
    pool_->cancelled().inc();
  }
#endif
}

bool EventHandle::pending() const {
  if (!pool_) return false;
  const EventPool::Slot& s = pool_->slot(index_);
  return s.generation == generation_ && s.state == EventPool::State::Pending;
}

Simulator::Simulator() : pool_(detail::PoolRef(new EventPool())) {}

Simulator::~Simulator() { pool_->drain_all(); }

EventHandle Simulator::schedule_at(Time t, Callback fn) {
  if (t < now_)
    throw std::invalid_argument("schedule_at: time is in the past");
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
#if AMBISIM_OBS_COMPILED
  if (obs::enabled()) [[unlikely]] {
    obs::Context& ctx = pool_->bind();
    pool_->scheduled().inc();
    ctx.tracer.instant("schedule", "kernel", obs::to_us(t.value()));
  }
#endif
  const std::uint32_t idx = pool_->acquire(std::move(fn));
  pool_->push(t, seq_++, idx);
  return EventHandle(pool_, idx, pool_->slot(idx).generation);
}

EventHandle Simulator::schedule_in(Time dt, Callback fn) {
  if (dt < Time(0.0))
    throw std::invalid_argument("schedule_in: negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

bool Simulator::step() {
  EventPool& pool = *pool_;
  for (;;) {
    const EventPool::HeapEntry* top = pool.peek_min();
    if (top == nullptr) return false;
    const std::uint32_t idx = top->idx;
    const Time when = top->time;
    pool.prefetch_slot(idx);
    pool.pop_min();
    EventPool::Slot& s = pool.slot(idx);
    if (s.state == EventPool::State::Cancelled) {
      pool.release(idx);
      ++dropped_;
      continue;
    }
    now_ = when;
    // Move the callable out before releasing: the slot is free (and its
    // generation advanced, so cancel-from-inside is a no-op) while the
    // callback runs, letting the callback schedule into the same slab.
    InplaceCallback fn = std::move(s.fn);
    pool.release(idx);
    ++executed_;
#if AMBISIM_OBS_COMPILED
    if (obs::enabled()) [[unlikely]] {
      pool.bind();
      pool.fired().inc();
      // Span on the simulated timeline whose duration is the host cost of
      // the callback; histogram of the same cost for profiling.
      obs::ProbeScope span("event", "kernel", obs::to_us(now_.value()), 0);
      obs::ScopedTimer timer(pool.callback_hist());
      fn();
      return true;
    }
#endif
    fn();
    return true;
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time deadline) {
  if (deadline < now_)
    throw std::invalid_argument("run_until: deadline is in the past");
  stopped_ = false;
  EventPool& pool = *pool_;
  for (;;) {
    // Drop cancelled events so the live queue head decides whether we are
    // past the deadline; each drained slot is a dropped, not executed,
    // event.
    const EventPool::HeapEntry* head = pool.peek_min();
    while (head != nullptr &&
           pool.slot(head->idx).state == EventPool::State::Cancelled) {
      const std::uint32_t idx = head->idx;
      pool.pop_min();
      pool.release(idx);
      ++dropped_;
      head = pool.peek_min();
    }
    if (stopped_ || head == nullptr || head->time > deadline) break;
    step();
  }
  if (!stopped_) now_ = deadline;
}

std::size_t Simulator::pending_events() const { return pool_->heap_size(); }

std::size_t Simulator::event_pool_capacity() const {
  return pool_->capacity();
}

void Simulator::refresh_obs_cache() { pool_->invalidate_obs_cache(); }

double Trace::integral() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    acc += points_[i - 1].value *
           (points_[i].time - points_[i - 1].time).value();
  }
  return acc;
}

}  // namespace ambisim::sim
