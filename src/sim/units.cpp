#include "ambisim/sim/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace ambisim::units {

std::string si_format(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 17> kPrefixes = {{
      {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
      {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
      {1e-15, "f"}, {1e-18, "a"}, {1e-21, "z"}, {1e-24, "y"}, {1e-27, "?"},
      {1e-30, "?"}, {1e-33, "?"},
  }};

  if (value == 0.0) return "0 " + unit;
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes[5];  // unity
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g %s%s", precision,
                value / chosen->scale, chosen->symbol, unit.c_str());
  return buf;
}

}  // namespace ambisim::units
