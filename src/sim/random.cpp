#include "ambisim/sim/random.hpp"

#include <numeric>

namespace ambisim::sim {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("all weights zero");
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // float round-off fallback
}

}  // namespace ambisim::sim
