#include "ambisim/sim/random.hpp"

namespace ambisim::sim {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("empty weight vector");
  // One engine draw up front, then a single fused pass that validates,
  // accumulates the total, and lazily advances the selection cursor
  // (formerly validation+total and selection were two full passes).  The
  // cursor may only advance when its cumulative mass falls below the
  // current target u * total: the target only grows as total grows, so the
  // cursor never overshoots the final selection.  The selected index is
  // the first whose cumulative weight exceeds u * total — the same
  // criterion, same addition order, and (in libstdc++, which scales one
  // canonical variate) the same draw as the old uniform(0, total) code
  // path, keeping seeded experiments bit-identical.
  const double u = uniform();
  double total = 0.0;
  double below = 0.0;  // cumulative weight of indices strictly before `sel`
  std::size_t sel = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
    while (sel < i && below + weights[sel] <= u * total) {
      below += weights[sel];
      ++sel;
    }
  }
  if (total <= 0.0) throw std::invalid_argument("all weights zero");
  while (sel + 1 < weights.size() && below + weights[sel] <= u * total) {
    below += weights[sel];
    ++sel;
  }
  return sel;  // float round-off falls back to the last index
}

}  // namespace ambisim::sim
