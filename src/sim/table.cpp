#include "ambisim/sim/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ambisim::sim {

namespace {

std::string cell_to_string(const Table::Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* d = std::get_if<double>(&c)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", *d);
    return buf;
  }
  return std::to_string(std::get<long long>(c));
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("table needs columns");
}

Table& Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument("row width mismatch in table '" + title_ +
                                "'");
  rows_.push_back(std::move(cells));
  return *this;
}

double Table::number(std::size_t row, std::size_t col) const {
  const Cell& c = rows_.at(row).at(col);
  if (const auto* d = std::get_if<double>(&c)) return *d;
  if (const auto* i = std::get_if<long long>(&c))
    return static_cast<double>(*i);
  throw std::logic_error("table cell is not numeric");
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i)
    width[i] = columns_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(cell_to_string(row[i]));
      width[i] = std::max(width[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size())
        os << std::string(width[i] - cells[i].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rendered) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos) return s;
    return '"' + s + '"';
  };
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << quote(columns_[i]);
    if (i + 1 < columns_.size()) os << ',';
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << quote(cell_to_string(row[i]));
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  }
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace ambisim::sim
