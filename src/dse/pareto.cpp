#include "ambisim/dse/pareto.hpp"

#include <algorithm>

namespace ambisim::dse {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.cost <= b.cost && a.value >= b.value;
  const bool strictly_better = a.cost < b.cost || a.value > b.value;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  // Sort by cost ascending, value descending; then a single sweep keeps the
  // points whose value strictly improves on everything cheaper.
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.value > b.value;
            });
  std::vector<ParetoPoint> front;
  double best_value = -1e300;
  for (const auto& p : points) {
    if (p.value > best_value) {
      front.push_back(p);
      best_value = p.value;
    }
  }
  return front;
}

std::vector<ParetoPoint> pareto_front_parallel(std::vector<ParetoPoint> points,
                                               exec::ExecConfig cfg) {
  constexpr std::size_t kBlock = 1024;
  if (points.size() <= kBlock) return pareto_front(std::move(points));

  const std::size_t blocks = (points.size() + kBlock - 1) / kBlock;
  std::vector<std::vector<ParetoPoint>> local(blocks);
  exec::ThreadPool pool(cfg.threads);
  exec::parallel_for(
      pool, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * kBlock;
        const std::size_t hi = std::min(points.size(), lo + kBlock);
        local[b] = pareto_front(std::vector<ParetoPoint>(
            points.begin() + static_cast<std::ptrdiff_t>(lo),
            points.begin() + static_cast<std::ptrdiff_t>(hi)));
      },
      /*grain=*/1);

  std::vector<ParetoPoint> survivors;
  for (const auto& front : local)
    survivors.insert(survivors.end(), front.begin(), front.end());
  return pareto_front(std::move(survivors));
}

bool is_pareto_front(const std::vector<ParetoPoint>& front) {
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i != j && dominates(front[i], front[j])) return false;
    }
  }
  return true;
}

}  // namespace ambisim::dse
