#include "ambisim/dse/pareto.hpp"

#include <algorithm>

namespace ambisim::dse {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.cost <= b.cost && a.value >= b.value;
  const bool strictly_better = a.cost < b.cost || a.value > b.value;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  // Sort by cost ascending, value descending; then a single sweep keeps the
  // points whose value strictly improves on everything cheaper.
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.value > b.value;
            });
  std::vector<ParetoPoint> front;
  double best_value = -1e300;
  for (const auto& p : points) {
    if (p.value > best_value) {
      front.push_back(p);
      best_value = p.value;
    }
  }
  return front;
}

bool is_pareto_front(const std::vector<ParetoPoint>& front) {
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i != j && dominates(front[i], front[j])) return false;
    }
  }
  return true;
}

}  // namespace ambisim::dse
