#include "ambisim/dse/dvs_schedule.hpp"

#include <stdexcept>

namespace ambisim::dse {

namespace u = ambisim::units;

DvsScheduleResult schedule_with_dvs(const workload::TaskGraph& graph,
                                    const tech::DvsModel& dvs,
                                    u::Time deadline, double gates_per_cycle,
                                    double idle_gates, double cycles_per_op) {
  if (deadline <= u::Time(0.0))
    throw std::invalid_argument("deadline must be positive");
  if (cycles_per_op <= 0.0)
    throw std::invalid_argument("cycles_per_op must be positive");

  const auto order = graph.topological_order();
  DvsScheduleResult res;

  // Reference: the whole chain at the fastest point.
  const auto& fast = dvs.fastest();
  double total_cycles = 0.0;
  for (int t : order) total_cycles += graph.task(t).ops * cycles_per_op;
  res.energy_nominal =
      dvs.energy(fast, total_cycles, gates_per_cycle, idle_gates);
  const u::Time t_min{total_cycles / fast.frequency.value()};
  if (t_min > deadline) {
    res.feasible = false;
    res.energy_dvs = res.energy_nominal;
    res.makespan = t_min;
    return res;
  }
  res.feasible = true;

  // Uniform slowdown is optimal for convex power; each task gets a share of
  // the deadline proportional to its cycle count, then snaps to the slowest
  // feasible discrete operating point.
  res.points.reserve(order.size());
  std::vector<tech::OperatingPoint> per_task(
      static_cast<std::size_t>(graph.task_count()), fast);
  u::Time used{0.0};
  u::Energy e{0.0};
  for (int t : order) {
    const double cycles = graph.task(t).ops * cycles_per_op;
    if (cycles <= 0.0) {
      per_task[static_cast<std::size_t>(t)] = dvs.slowest();
      continue;
    }
    const u::Time slice{deadline.value() * cycles / total_cycles};
    const auto point =
        dvs.optimal(cycles, slice, gates_per_cycle, idle_gates);
    per_task[static_cast<std::size_t>(t)] = point;
    e += dvs.energy(point, cycles, gates_per_cycle, idle_gates);
    used += u::Time(cycles / point.frequency.value());
  }
  res.energy_dvs = e;
  res.makespan = used;
  for (int t = 0; t < graph.task_count(); ++t)
    res.points.push_back(per_task[static_cast<std::size_t>(t)]);
  res.savings = res.energy_nominal > u::Energy(0.0)
                    ? 1.0 - res.energy_dvs.value() / res.energy_nominal.value()
                    : 0.0;
  return res;
}

}  // namespace ambisim::dse
