#include "ambisim/dse/sweep.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::dse {

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 1) throw std::invalid_argument("linspace needs n >= 1");
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("logspace needs positive bounds");
  if (n < 1) throw std::invalid_argument("logspace needs n >= 1");
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (int i = 0; i < n; ++i)
    out.push_back(std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                     (n - 1)));
  return out;
}

std::vector<std::pair<double, double>> grid(const std::vector<double>& xs,
                                            const std::vector<double>& ys) {
  std::vector<std::pair<double, double>> out;
  out.reserve(xs.size() * ys.size());
  for (double x : xs)
    for (double y : ys) out.emplace_back(x, y);
  return out;
}

}  // namespace ambisim::dse
