#include "ambisim/dse/mapping.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::dse {

MappingOptimizer::MappingOptimizer(MappingProblem problem)
    : problem_(std::move(problem)) {
  if (problem_.targets.empty())
    throw std::invalid_argument("mapping needs at least one target");
  if (problem_.period <= u::Time(0.0))
    throw std::invalid_argument("mapping period must be positive");
  for (const auto& t : problem_.targets) {
    if (t.ops_scale <= 0.0)
      throw std::invalid_argument("ops_scale must be positive");
    if (t.energy_weight <= 0.0)
      throw std::invalid_argument("energy_weight must be positive");
  }
  for (const auto& [task, target] : problem_.pinned) {
    if (task < 0 || task >= problem_.graph.task_count() || target < 0 ||
        target >= static_cast<int>(problem_.targets.size()))
      throw std::out_of_range("pin references unknown task or target");
  }
  (void)problem_.graph.topological_order();  // validates acyclicity
}

int MappingOptimizer::pin_of(int task) const {
  for (const auto& [t, target] : problem_.pinned) {
    if (t == task) return target;
  }
  return -1;
}

Mapping MappingOptimizer::evaluate(const std::vector<int>& assignment) const {
  const auto& g = problem_.graph;
  const auto& targets = problem_.targets;
  if (assignment.size() != static_cast<std::size_t>(g.task_count()))
    throw std::invalid_argument("assignment size mismatch");

  Mapping m;
  m.assignment = assignment;
  m.utilization.assign(targets.size(), 0.0);

  for (int t = 0; t < g.task_count(); ++t) {
    const int tgt = assignment[static_cast<std::size_t>(t)];
    if (tgt < 0 || tgt >= static_cast<int>(targets.size()))
      throw std::out_of_range("assignment target out of range");
    const auto& target = targets[static_cast<std::size_t>(tgt)];
    const double native_ops = g.task(t).ops * target.ops_scale;
    const u::Energy e = target.cpu.energy_per_op() * native_ops;
    m.compute_energy += e;
    m.weighted_cost += e.value() * target.energy_weight;
    m.utilization[static_cast<std::size_t>(tgt)] +=
        native_ops / (target.cpu.throughput().value() *
                      problem_.period.value());
  }
  for (const auto& e : g.edges()) {
    const int a = assignment[static_cast<std::size_t>(e.from)];
    const int b = assignment[static_cast<std::size_t>(e.to)];
    if (a != b) {
      // Both ends pay their link energy: the sender transmits, the receiver
      // listens.
      const auto& ta = targets[static_cast<std::size_t>(a)];
      const auto& tb = targets[static_cast<std::size_t>(b)];
      const double epb = ta.link_energy_per_bit.value() +
                         tb.link_energy_per_bit.value();
      m.comm_energy += u::Energy(epb * e.bits.value());
      m.weighted_cost +=
          e.bits.value() * (ta.link_energy_per_bit.value() * ta.energy_weight +
                            tb.link_energy_per_bit.value() * tb.energy_weight);
    }
  }
  m.energy_per_period = m.compute_energy + m.comm_energy;
  m.feasible = true;
  for (const auto& [task, target] : problem_.pinned) {
    if (assignment[static_cast<std::size_t>(task)] != target)
      m.feasible = false;
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (m.utilization[i] > targets[i].utilization_limit + 1e-12)
      m.feasible = false;
  }
  return m;
}

Mapping MappingOptimizer::all_on(int target) const {
  if (target < 0 || target >= static_cast<int>(problem_.targets.size()))
    throw std::out_of_range("target index");
  return evaluate(std::vector<int>(
      static_cast<std::size_t>(problem_.graph.task_count()), target));
}

Mapping MappingOptimizer::greedy() const {
  const auto& g = problem_.graph;
  const auto order = g.topological_order();
  std::vector<int> assignment(static_cast<std::size_t>(g.task_count()), -1);
  std::vector<double> load(problem_.targets.size(), 0.0);

  for (int t : order) {
    int best = -1;
    double best_cost = 0.0;
    const int pin = pin_of(t);
    for (std::size_t k = 0; k < problem_.targets.size(); ++k) {
      if (pin >= 0 && static_cast<int>(k) != pin) continue;
      const auto& target = problem_.targets[k];
      const double native_ops = g.task(t).ops * target.ops_scale;
      const double added_util =
          native_ops /
          (target.cpu.throughput().value() * problem_.period.value());
      if (pin < 0 && load[k] + added_util > target.utilization_limit + 1e-12)
        continue;
      double cost = target.cpu.energy_per_op().value() * native_ops *
                    target.energy_weight;
      // Communication with already-placed predecessors.
      for (int p : g.predecessors(t)) {
        const int ptgt = assignment[static_cast<std::size_t>(p)];
        if (ptgt >= 0 && ptgt != static_cast<int>(k)) {
          for (const auto& e : g.edges()) {
            if (e.from == p && e.to == t) {
              const auto& pt =
                  problem_.targets[static_cast<std::size_t>(ptgt)];
              cost += (pt.link_energy_per_bit.value() * pt.energy_weight +
                       target.link_energy_per_bit.value() *
                           target.energy_weight) *
                      e.bits.value();
            }
          }
        }
      }
      if (best < 0 || cost < best_cost) {
        best = static_cast<int>(k);
        best_cost = cost;
      }
    }
    if (best < 0) {
      // No feasible target: fall back to the fastest one; evaluate() will
      // flag infeasibility.
      std::size_t fastest = 0;
      for (std::size_t k = 1; k < problem_.targets.size(); ++k) {
        if (problem_.targets[k].cpu.throughput() >
            problem_.targets[fastest].cpu.throughput())
          fastest = k;
      }
      best = static_cast<int>(fastest);
    }
    assignment[static_cast<std::size_t>(t)] = best;
    const auto& chosen = problem_.targets[static_cast<std::size_t>(best)];
    load[static_cast<std::size_t>(best)] +=
        g.task(t).ops * chosen.ops_scale /
        (chosen.cpu.throughput().value() * problem_.period.value());
  }
  return evaluate(assignment);
}

Mapping MappingOptimizer::anneal(sim::Rng& rng, int iterations) const {
  if (iterations < 1) throw std::invalid_argument("iterations < 1");
  Mapping current = greedy();
  Mapping best = current;
  const int tasks = problem_.graph.task_count();
  const int ntargets = static_cast<int>(problem_.targets.size());
  if (ntargets < 2 || tasks == 0) return best;

  // Infeasible states are admitted with a large penalty so the search can
  // cross infeasible regions.
  auto score = [](const Mapping& m) {
    double s = m.weighted_cost;
    if (!m.feasible) {
      double excess = 0.0;
      for (double util : m.utilization) excess += std::max(0.0, util - 1.0);
      s += (1.0 + excess) * 1e6 * (s + 1e-12);
    }
    return s;
  };

  double t_hot = score(current) * 0.5 + 1e-15;
  for (int it = 0; it < iterations; ++it) {
    const double temp =
        t_hot * std::pow(1e-4, static_cast<double>(it) / iterations);
    auto cand_assign = current.assignment;
    std::size_t idx =
        static_cast<std::size_t>(rng.uniform_int(0, tasks - 1));
    bool found_free = false;
    for (int probe = 0; probe < tasks; ++probe) {
      if (pin_of(static_cast<int>(idx)) < 0) {
        found_free = true;
        break;
      }
      idx = (idx + 1) % static_cast<std::size_t>(tasks);
    }
    if (!found_free) break;  // everything pinned: nothing to optimize
    const int old_tgt = cand_assign[idx];
    int new_tgt = old_tgt;
    while (new_tgt == old_tgt)
      new_tgt = static_cast<int>(rng.uniform_int(0, ntargets - 1));
    cand_assign[idx] = new_tgt;
    const Mapping cand = evaluate(cand_assign);
    const double delta = score(cand) - score(current);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      current = cand;
      if (cand.feasible &&
          (!best.feasible || cand.weighted_cost < best.weighted_cost))
        best = cand;
    }
  }
  return best;
}

}  // namespace ambisim::dse
