#include "ambisim/tech/subthreshold.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ambisim::tech {

namespace {
constexpr double kBoltzmannOverQ = 8.617333e-5;  // V/K
}

SubthresholdModel::SubthresholdModel(const TechnologyNode& node, double n,
                                     double temperature_k)
    : node_(node), n_(n), vt_(kBoltzmannOverQ * temperature_k) {
  if (n < 1.0 || n > 3.0)
    throw std::invalid_argument("subthreshold slope factor out of range");
  if (temperature_k < 200.0 || temperature_k > 500.0)
    throw std::invalid_argument("temperature out of range");
  // Calibrate the alpha law so delay(Vnom) == fo4_delay:
  //   delay = C * V / I  =>  I(Vnom) = C * Vnom / fo4.
  const double vn = node_.vdd_nominal.value();
  const double vth = node_.vth.value();
  const double i_nom = node_.gate_cap.value() * vn / node_.fo4_delay.value();
  k_sat_ = i_nom / std::pow(vn - vth, node_.alpha);
  // Handoff a couple of thermal slopes above threshold.
  handoff_v_ = vth + 2.0 * n_ * vt_;
  i_at_handoff_ = k_sat_ * std::pow(handoff_v_ - vth, node_.alpha);
}

u::Voltage SubthresholdModel::thermal_voltage() const {
  return u::Voltage(vt_);
}

u::Voltage SubthresholdModel::functional_floor() const {
  return u::Voltage(4.0 * vt_);
}

u::Current SubthresholdModel::on_current(u::Voltage v) const {
  const double vv = v.value();
  if (vv <= 0.0) throw std::domain_error("non-positive supply");
  if (vv > node_.vdd_nominal.value() * 1.0001)
    throw std::domain_error("supply above nominal");
  if (vv >= handoff_v_) {
    return u::Current(k_sat_ *
                      std::pow(vv - node_.vth.value(), node_.alpha));
  }
  return u::Current(i_at_handoff_ *
                    std::exp((vv - handoff_v_) / (n_ * vt_)));
}

u::Time SubthresholdModel::gate_delay(u::Voltage v) const {
  return u::Time(node_.gate_cap.value() * v.value() /
                 on_current(v).value());
}

u::Frequency SubthresholdModel::max_frequency(u::Voltage v,
                                              double logic_depth) const {
  if (logic_depth <= 0.0) throw std::invalid_argument("logic depth");
  return u::Frequency(1.0 / (logic_depth * gate_delay(v).value()));
}

u::Power SubthresholdModel::leakage_power_per_gate(u::Voltage v) const {
  // Subthreshold leakage current falls only mildly with supply (DIBL):
  // I_leak(V) = I_nom * e^{kd (V - Vnom)} with kd ~ 1.5 /V, i.e. roughly a
  // 5-6x reduction from nominal down to near zero — unlike the cubic
  // super-threshold fit, it must not vanish at low Vdd, which is exactly
  // why the minimum-energy point exists.
  constexpr double kDibl = 1.5;  // 1/V
  const double i_leak =
      node_.leak_nominal.value() *
      std::exp(kDibl * (v.value() - node_.vdd_nominal.value()));
  return u::Power(i_leak * v.value());
}

u::Energy SubthresholdModel::energy_per_op(u::Voltage v, double gates_per_op,
                                           double idle_gates,
                                           double logic_depth) const {
  if (gates_per_op < 0.0 || idle_gates < 0.0)
    throw std::invalid_argument("negative gate counts");
  const double vv = v.value();
  const u::Energy dynamic{gates_per_op * node_.gate_cap.value() * vv * vv};
  const double cycle = logic_depth * gate_delay(v).value();
  const u::Energy leak{leakage_power_per_gate(v).value() *
                       (gates_per_op + idle_gates) * cycle};
  return dynamic + leak;
}

u::Voltage SubthresholdModel::minimum_energy_voltage(
    double gates_per_op, double idle_gates, double logic_depth,
    u::Voltage v_floor, int steps) const {
  if (steps < 2) throw std::invalid_argument("steps < 2");
  const double lo = std::max(v_floor.value(), functional_floor().value());
  const double hi = node_.vdd_nominal.value();
  if (lo >= hi) throw std::invalid_argument("voltage range empty");
  double best_v = hi;
  double best_e = std::numeric_limits<double>::infinity();
  for (int i = 0; i < steps; ++i) {
    const double v = lo + (hi - lo) * i / (steps - 1);
    const double e =
        energy_per_op(u::Voltage(v), gates_per_op, idle_gates, logic_depth)
            .value();
    if (e < best_e) {
      best_e = e;
      best_v = v;
    }
  }
  return u::Voltage(best_v);
}

}  // namespace ambisim::tech
