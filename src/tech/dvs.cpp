#include "ambisim/tech/dvs.hpp"

#include <stdexcept>

namespace ambisim::tech {

DvsModel::DvsModel(const TechnologyNode& node, int steps, double logic_depth)
    : node_(node), logic_depth_(logic_depth) {
  if (steps < 2) throw std::invalid_argument("DVS needs >= 2 steps");
  if (logic_depth <= 0.0)
    throw std::invalid_argument("logic depth must be positive");
  const double vlo = node.vdd_min.value();
  const double vhi = node.vdd_nominal.value();
  points_.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double v = vlo + (vhi - vlo) * static_cast<double>(i) /
                               static_cast<double>(steps - 1);
    const u::Voltage vv{v};
    points_.push_back({vv, max_frequency(node, vv, logic_depth_)});
  }
}

OperatingPoint DvsModel::slowest_feasible(double cycles,
                                          u::Time deadline) const {
  if (cycles < 0.0) throw std::invalid_argument("negative cycle count");
  if (deadline <= u::Time(0.0))
    throw std::invalid_argument("non-positive deadline");
  // Small relative tolerance so exactly-critical schedules remain feasible
  // under floating-point rounding.
  const double budget = deadline.value() * (1.0 + 1e-9);
  for (const auto& p : points_) {
    if (cycles / p.frequency.value() <= budget) return p;
  }
  throw std::domain_error("deadline infeasible even at nominal voltage");
}

u::Energy DvsModel::energy(const OperatingPoint& p, double cycles,
                           double gates_per_cycle, double idle_gates) const {
  const u::Time duration{cycles / p.frequency.value()};
  const u::Energy dyn =
      switching_energy(node_, p.voltage) * (gates_per_cycle * cycles);
  const u::Energy leak{leakage_power_per_gate(node_, p.voltage).value() *
                       (gates_per_cycle + idle_gates) * duration.value()};
  return dyn + leak;
}

OperatingPoint DvsModel::optimal(double cycles, u::Time deadline,
                                 double gates_per_cycle,
                                 double idle_gates) const {
  // Ensure feasibility (throws otherwise).
  (void)slowest_feasible(cycles, deadline);
  const OperatingPoint* best = nullptr;
  u::Energy best_e{0.0};
  const double budget = deadline.value() * (1.0 + 1e-9);
  for (const auto& p : points_) {
    if (cycles / p.frequency.value() > budget) continue;
    const u::Energy e = energy(p, cycles, gates_per_cycle, idle_gates);
    if (best == nullptr || e < best_e) {
      best = &p;
      best_e = e;
    }
  }
  return *best;
}

}  // namespace ambisim::tech
