#include "ambisim/tech/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::tech {

ThermalModel::ThermalModel(double resistance_k_per_w, double ambient_c,
                           double leak_doubling_c)
    : resistance_(resistance_k_per_w),
      ambient_c_(ambient_c),
      doubling_c_(leak_doubling_c) {
  if (resistance_k_per_w <= 0.0)
    throw std::invalid_argument("thermal resistance must be positive");
  if (leak_doubling_c <= 0.0)
    throw std::invalid_argument("leakage doubling interval must be positive");
  if (ambient_c < -55.0 || ambient_c >= kMaxJunction)
    throw std::invalid_argument("ambient temperature out of range");
}

double ThermalModel::leakage_multiplier(double t_c) const {
  return std::exp2((t_c - 25.0) / doubling_c_);
}

ThermalModel::Equilibrium ThermalModel::solve(u::Power dynamic_power,
                                              u::Power leakage_at_25c,
                                              int max_iterations) const {
  if (dynamic_power < u::Power(0.0) || leakage_at_25c < u::Power(0.0))
    throw std::invalid_argument("negative power");
  if (max_iterations < 1) throw std::invalid_argument("max_iterations < 1");

  Equilibrium eq;
  double t = ambient_c_;
  for (int i = 1; i <= max_iterations; ++i) {
    const double leak = leakage_at_25c.value() * leakage_multiplier(t);
    const double t_next =
        ambient_c_ + resistance_ * (dynamic_power.value() + leak);
    eq.iterations = i;
    if (t_next > kMaxJunction) {
      // Runaway: report the state at the silicon limit.
      eq.stable = false;
      eq.temperature_c = t_next;
      eq.leakage_power = u::Power(leak);
      eq.total_power = dynamic_power + eq.leakage_power;
      return eq;
    }
    if (std::fabs(t_next - t) < 1e-9) {
      eq.stable = true;
      eq.temperature_c = t_next;
      eq.leakage_power = u::Power(leak);
      eq.total_power = dynamic_power + eq.leakage_power;
      return eq;
    }
    t = t_next;
  }
  // Did not converge within the budget: treat as unstable (slowly divergent
  // loops end up here).
  eq.stable = false;
  eq.temperature_c = t;
  eq.leakage_power =
      u::Power(leakage_at_25c.value() * leakage_multiplier(t));
  eq.total_power = dynamic_power + eq.leakage_power;
  return eq;
}

double ThermalModel::critical_resistance(u::Power dynamic_power,
                                         u::Power leakage_at_25c,
                                         double ambient_c,
                                         double leak_doubling_c) {
  if (dynamic_power <= u::Power(0.0) && leakage_at_25c <= u::Power(0.0))
    throw std::invalid_argument("no power dissipated");
  double lo = 1e-3;
  double hi = 1e4;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);
    const ThermalModel m(mid, ambient_c, leak_doubling_c);
    if (m.solve(dynamic_power, leakage_at_25c).stable)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace ambisim::tech
