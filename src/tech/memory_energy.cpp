#include "ambisim/tech/memory_energy.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::tech {

u::Energy SramModel::access_energy(const TechnologyNode& node, u::Voltage v,
                                   double capacity_bits, double word_bits) {
  if (capacity_bits <= 0.0 || word_bits <= 0.0)
    throw std::invalid_argument("SRAM sizes must be positive");
  if (word_bits > capacity_bits)
    throw std::invalid_argument("word wider than array");
  const u::Energy eg = switching_energy(node, v);
  // Decoder + periphery (fixed), sense amps + data path (per word bit), and
  // bitline/wordline charging growing with the array's linear dimension.
  const double k_fixed = 40.0;
  const double k_word = 6.0;
  const double k_array = 1.5;
  const double gates =
      k_fixed + k_word * word_bits + k_array * std::sqrt(capacity_bits);
  return eg * gates;
}

u::Power SramModel::leakage(const TechnologyNode& node, u::Voltage v,
                            double capacity_bits) {
  if (capacity_bits < 0.0)
    throw std::invalid_argument("negative SRAM capacity");
  // A 6T cell leaks roughly a quarter of a reference logic gate.
  return leakage_power_per_gate(node, v) * (0.25 * capacity_bits);
}

u::Energy OffChipModel::access_energy(u::Voltage io_voltage, double word_bits,
                                      u::Capacitance pin_cap) {
  if (word_bits <= 0.0) throw std::invalid_argument("word bits <= 0");
  // Each pin swings the pad + trace capacitance once per transfer; assume
  // half the bits toggle.  Address/control pins add ~50 % overhead.
  const double v = io_voltage.value();
  const double data = 0.5 * word_bits * pin_cap.value() * v * v;
  return u::Energy(1.5 * data);
}

u::Energy OffChipModel::dram_core_energy(double word_bits) {
  if (word_bits <= 0.0) throw std::invalid_argument("word bits <= 0");
  // ~0.5 nJ per 32-bit access for 2003-era SDRAM, linear in word width.
  return u::Energy(0.5e-9 * word_bits / 32.0);
}

}  // namespace ambisim::tech
