#include "ambisim/tech/technology.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::tech {

using namespace ambisim::units::literals;

TechnologyLibrary::TechnologyLibrary(std::vector<TechnologyNode> nodes)
    : nodes_(std::move(nodes)) {
  if (nodes_.empty())
    throw std::invalid_argument("technology library must not be empty");
}

const TechnologyLibrary& TechnologyLibrary::standard() {
  // First-order constants per generation, 2003-era ITRS flavour.  FO4 delay
  // follows the ~0.36 ns/um rule; leakage per gate grows roughly 4-5x per
  // generation as Vth scales down.
  static const TechnologyLibrary lib{{
      {"350nm", 350_nm, 1995, 3.3_V, 0.60_V, 1.2_V, 4.0_fF, 126.0_ps,
       u::Current(1e-11), 1.7},
      {"250nm", 250_nm, 1997, 2.5_V, 0.55_V, 1.1_V, 2.6_fF, 90.0_ps,
       u::Current(5e-11), 1.6},
      {"180nm", 180_nm, 1999, 1.8_V, 0.50_V, 0.9_V, 1.7_fF, 65.0_ps,
       u::Current(2e-10), 1.55},
      {"130nm", 130_nm, 2001, 1.3_V, 0.40_V, 0.8_V, 1.1_fF, 47.0_ps,
       u::Current(1e-9), 1.5},
      {"90nm", 90_nm, 2003, 1.2_V, 0.35_V, 0.7_V, 0.70_fF, 32.0_ps,
       u::Current(5e-9), 1.4},
      {"65nm", 65_nm, 2005, 1.1_V, 0.30_V, 0.65_V, 0.45_fF, 23.0_ps,
       u::Current(2e-8), 1.35},
      {"45nm", 45_nm, 2007, 1.0_V, 0.30_V, 0.6_V, 0.30_fF, 16.0_ps,
       u::Current(6e-8), 1.3},
  }};
  return lib;
}

const TechnologyNode& TechnologyLibrary::node(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return n;
  }
  throw std::out_of_range("unknown technology node: " + name);
}

const TechnologyNode& TechnologyLibrary::by_year(int year) const {
  const TechnologyNode* best = &nodes_.front();
  for (const auto& n : nodes_) {
    if (n.year <= year) best = &n;
  }
  return *best;
}

namespace {

void check_voltage(const TechnologyNode& node, u::Voltage v) {
  if (v < node.vdd_min || v > node.vdd_nominal * 1.0001)
    throw std::domain_error("supply voltage outside [vdd_min, vdd_nominal] for " +
                            node.name);
}

}  // namespace

u::Time gate_delay(const TechnologyNode& node, u::Voltage v) {
  check_voltage(node, v);
  const double vn = node.vdd_nominal.value();
  const double vt = node.vth.value();
  const double vv = v.value();
  // alpha-power law: tau ~ V / (V - Vth)^alpha, normalized at Vnom.
  const double scale = (vv / vn) * std::pow((vn - vt) / (vv - vt), node.alpha);
  return node.fo4_delay * scale;
}

u::Frequency max_frequency(const TechnologyNode& node, u::Voltage v,
                           double logic_depth) {
  if (logic_depth <= 0.0)
    throw std::invalid_argument("logic depth must be positive");
  return u::Frequency(1.0 / (logic_depth * gate_delay(node, v).value()));
}

u::Energy switching_energy(const TechnologyNode& node, u::Voltage v) {
  check_voltage(node, v);
  return u::Energy(node.gate_cap.value() * v.value() * v.value());
}

u::Current leakage_current(const TechnologyNode& node, u::Voltage v) {
  check_voltage(node, v);
  const double r = v.value() / node.vdd_nominal.value();
  return node.leak_nominal * (r * r * r);
}

u::Power leakage_power_per_gate(const TechnologyNode& node, u::Voltage v) {
  return u::Power(leakage_current(node, v).value() * v.value());
}

u::Power dynamic_power(const TechnologyNode& node, double gate_count,
                       double activity, u::Frequency f, u::Voltage v) {
  if (gate_count < 0.0 || activity < 0.0 || activity > 1.0)
    throw std::invalid_argument("bad gate count or activity factor");
  const u::Frequency fmax = max_frequency(node, v);
  if (f > fmax * 1.0001)
    throw std::domain_error("clock exceeds max frequency at this voltage");
  return u::Power(gate_count * activity * switching_energy(node, v).value() *
                  f.value());
}

u::Power total_power(const TechnologyNode& node, double gate_count,
                     double activity, u::Frequency f, u::Voltage v) {
  return dynamic_power(node, gate_count, activity, f, v) +
         leakage_power_per_gate(node, v) * gate_count;
}

u::Energy energy_per_op(const TechnologyNode& node, double gates_per_op,
                        u::Voltage v, u::Frequency f, double idle_gates) {
  if (gates_per_op < 0.0 || idle_gates < 0.0)
    throw std::invalid_argument("negative gate counts");
  const u::Energy dyn = switching_energy(node, v) * gates_per_op;
  const u::Energy leak = u::Energy(
      leakage_power_per_gate(node, v).value() * (gates_per_op + idle_gates) /
      f.value());
  return dyn + leak;
}

}  // namespace ambisim::tech
