#include "ambisim/isa/machine.hpp"

#include <stdexcept>

namespace ambisim::isa {

Machine::Machine(const tech::TechnologyNode& node, u::Voltage v,
                 u::Frequency clock, std::size_t memory_bytes,
                 CoreEnergyParams params)
    : node_(node),
      voltage_(v),
      clock_(clock),
      params_(params),
      memory_(memory_bytes, 0) {
  if (clock <= u::Frequency(0.0))
    throw std::invalid_argument("clock must be positive");
  const auto fmax = tech::max_frequency(node, v, 60.0);
  if (clock > fmax * 1.0001)
    throw std::domain_error("clock exceeds the core's maximum at this supply");
  if (memory_bytes < 4)
    throw std::invalid_argument("memory too small");
}

void Machine::load_program(std::vector<Instruction> program) {
  program_ = std::move(program);
  reset();
}

void Machine::reset() {
  regs_.fill(0);
  std::fill(memory_.begin(), memory_.end(), 0);
  pc_ = 0;
  halted_ = false;
  stats_ = MachineStats{};
}

std::int32_t Machine::reg(int i) const {
  if (i < 0 || i >= kRegisterCount) throw std::out_of_range("register");
  return regs_[static_cast<std::size_t>(i)];
}

void Machine::set_reg(int i, std::int32_t value) {
  if (i < 0 || i >= kRegisterCount) throw std::out_of_range("register");
  if (i != 0) regs_[static_cast<std::size_t>(i)] = value;
}

std::int32_t Machine::load_word(std::uint32_t address) const {
  if (address + 4 > memory_.size() || (address & 3u) != 0)
    throw std::out_of_range("unaligned or out-of-range word load");
  std::uint32_t v = 0;
  for (int b = 3; b >= 0; --b) v = (v << 8) | memory_[address + b];
  return static_cast<std::int32_t>(v);
}

void Machine::store_word(std::uint32_t address, std::int32_t value) {
  if (address + 4 > memory_.size() || (address & 3u) != 0)
    throw std::out_of_range("unaligned or out-of-range word store");
  auto v = static_cast<std::uint32_t>(value);
  for (int b = 0; b < 4; ++b) {
    memory_[address + b] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

void Machine::charge(InstrClass cls, int cycles) {
  double gates = params_.gates_fetch_decode;
  switch (cls) {
    case InstrClass::Alu: gates += params_.gates_alu; break;
    case InstrClass::Mul: gates += params_.gates_mul; break;
    case InstrClass::Mem: gates += params_.gates_mem; break;
    case InstrClass::Branch: gates += params_.gates_branch; break;
    case InstrClass::Io: gates += params_.gates_io; break;
    case InstrClass::System: break;  // fetch/decode only
  }
  stats_.dynamic_energy +=
      tech::switching_energy(node_, voltage_) * gates;
  const u::Time dt{static_cast<double>(cycles) / clock_.value()};
  stats_.leakage_energy +=
      u::Energy(tech::leakage_power_per_gate(node_, voltage_).value() *
                params_.total_gates * dt.value());
  stats_.cycles += static_cast<std::uint64_t>(cycles);
  ++stats_.instructions;
  ++stats_.by_class[static_cast<int>(cls)];
}

bool Machine::step() {
  if (halted_) return false;
  if (pc_ >= program_.size()) {
    halted_ = true;
    return false;
  }
  const Instruction ins = program_[pc_];
  const InstrClass cls = instr_class(ins.op);
  std::uint32_t next = pc_ + 1;
  int cycles = params_.cycles_alu;

  auto rs1 = [&] { return regs_[ins.rs1]; };
  auto rs2 = [&] { return regs_[ins.rs2]; };
  auto write = [&](std::int32_t v) {
    if (ins.rd != 0) regs_[ins.rd] = v;
  };
  auto ushift = [&](std::int32_t v) {
    return static_cast<std::uint32_t>(v);
  };

  switch (ins.op) {
    case Opcode::Add: write(rs1() + rs2()); break;
    case Opcode::Sub: write(rs1() - rs2()); break;
    case Opcode::And: write(rs1() & rs2()); break;
    case Opcode::Or: write(rs1() | rs2()); break;
    case Opcode::Xor: write(rs1() ^ rs2()); break;
    case Opcode::Shl:
      write(static_cast<std::int32_t>(ushift(rs1()) << (rs2() & 31)));
      break;
    case Opcode::Shr:
      write(static_cast<std::int32_t>(ushift(rs1()) >> (rs2() & 31)));
      break;
    case Opcode::Slt: write(rs1() < rs2() ? 1 : 0); break;
    case Opcode::Mul:
      write(rs1() * rs2());
      cycles = params_.cycles_mul;
      break;
    case Opcode::Addi: write(rs1() + ins.imm); break;
    case Opcode::Andi: write(rs1() & ins.imm); break;
    case Opcode::Ori: write(rs1() | ins.imm); break;
    case Opcode::Slli:
      write(static_cast<std::int32_t>(ushift(rs1()) << (ins.imm & 31)));
      break;
    case Opcode::Srli:
      write(static_cast<std::int32_t>(ushift(rs1()) >> (ins.imm & 31)));
      break;
    case Opcode::Lui:
      write(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ins.imm) << 16));
      break;
    case Opcode::Lw:
      write(load_word(static_cast<std::uint32_t>(rs1() + ins.imm)));
      cycles = params_.cycles_mem;
      break;
    case Opcode::Sw:
      store_word(static_cast<std::uint32_t>(rs1() + ins.imm), rs2());
      cycles = params_.cycles_mem;
      break;
    case Opcode::Lb: {
      const auto addr = static_cast<std::uint32_t>(rs1() + ins.imm);
      if (addr >= memory_.size())
        throw std::out_of_range("byte load out of range");
      write(static_cast<std::int8_t>(memory_[addr]));
      cycles = params_.cycles_mem;
      break;
    }
    case Opcode::Sb: {
      const auto addr = static_cast<std::uint32_t>(rs1() + ins.imm);
      if (addr >= memory_.size())
        throw std::out_of_range("byte store out of range");
      memory_[addr] = static_cast<std::uint8_t>(rs2() & 0xFF);
      cycles = params_.cycles_mem;
      break;
    }
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt: {
      bool taken = false;
      if (ins.op == Opcode::Beq) taken = rs1() == rs2();
      if (ins.op == Opcode::Bne) taken = rs1() != rs2();
      if (ins.op == Opcode::Blt) taken = rs1() < rs2();
      cycles = taken ? params_.cycles_branch_taken
                     : params_.cycles_branch_not_taken;
      if (taken) next = static_cast<std::uint32_t>(ins.imm);
      break;
    }
    case Opcode::Jmp:
      next = static_cast<std::uint32_t>(ins.imm);
      cycles = params_.cycles_branch_taken;
      break;
    case Opcode::Jal:
      write(static_cast<std::int32_t>(pc_ + 1));
      next = static_cast<std::uint32_t>(ins.imm);
      cycles = params_.cycles_branch_taken;
      break;
    case Opcode::Jr:
      next = static_cast<std::uint32_t>(rs1());
      cycles = params_.cycles_branch_taken;
      break;
    case Opcode::In:
      if (!in_) throw std::logic_error("IN executed with no input port");
      write(in_(ins.imm));
      cycles = params_.cycles_io;
      break;
    case Opcode::Out:
      if (!out_) throw std::logic_error("OUT executed with no output port");
      out_(ins.imm, rs1());
      cycles = params_.cycles_io;
      break;
    case Opcode::Nop: break;
    case Opcode::Halt:
      halted_ = true;
      break;
  }

  charge(cls, cycles);
  pc_ = next;
  return !halted_;
}

bool Machine::run(std::uint64_t max_instructions) {
  const std::uint64_t start = stats_.instructions;
  while (!halted_ && stats_.instructions - start < max_instructions) {
    if (!step()) break;
  }
  return halted_;
}

u::Time Machine::elapsed() const {
  return u::Time(static_cast<double>(stats_.cycles) / clock_.value());
}

u::Power Machine::average_power() const {
  const double t = elapsed().value();
  if (t <= 0.0) return u::Power(0.0);
  return u::Power(stats_.total_energy().value() / t);
}

u::Energy Machine::energy_per_instruction() const {
  if (stats_.instructions == 0) return u::Energy(0.0);
  return u::Energy(stats_.total_energy().value() /
                   static_cast<double>(stats_.instructions));
}

}  // namespace ambisim::isa
