#include "ambisim/isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace ambisim::isa {

AssemblyError::AssemblyError(int line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string strip(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

const std::map<std::string, Opcode>& opcode_table() {
  static const std::map<std::string, Opcode> table = {
      {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"and", Opcode::And},
      {"or", Opcode::Or},     {"xor", Opcode::Xor},   {"shl", Opcode::Shl},
      {"shr", Opcode::Shr},   {"mul", Opcode::Mul},   {"slt", Opcode::Slt},
      {"addi", Opcode::Addi}, {"andi", Opcode::Andi}, {"ori", Opcode::Ori},
      {"slli", Opcode::Slli}, {"srli", Opcode::Srli}, {"lui", Opcode::Lui},
      {"lw", Opcode::Lw},     {"sw", Opcode::Sw},     {"lb", Opcode::Lb},
      {"sb", Opcode::Sb},     {"beq", Opcode::Beq},   {"bne", Opcode::Bne},
      {"blt", Opcode::Blt},   {"jmp", Opcode::Jmp},   {"jal", Opcode::Jal},
      {"jr", Opcode::Jr},     {"in", Opcode::In},     {"out", Opcode::Out},
      {"nop", Opcode::Nop},   {"halt", Opcode::Halt},
  };
  return table;
}

struct Line {
  int number;           // 1-based source line
  std::string text;     // instruction text, labels stripped
};

std::uint8_t parse_register(const std::string& tok, int line) {
  const std::string t = lower(strip(tok));
  if (t.size() < 2 || t[0] != 'r')
    throw AssemblyError(line, "expected register, got '" + tok + "'");
  int idx = 0;
  try {
    idx = std::stoi(t.substr(1));
  } catch (const std::exception&) {
    throw AssemblyError(line, "bad register '" + tok + "'");
  }
  if (idx < 0 || idx >= kRegisterCount)
    throw AssemblyError(line, "register out of range '" + tok + "'");
  return static_cast<std::uint8_t>(idx);
}

std::int32_t parse_immediate(const std::string& tok, int line) {
  const std::string t = strip(tok);
  try {
    std::size_t pos = 0;
    const long v = std::stol(t, &pos, 0);  // handles decimal and 0x
    if (pos != t.size()) throw std::invalid_argument(t);
    return static_cast<std::int32_t>(v);
  } catch (const std::exception&) {
    throw AssemblyError(line, "bad immediate '" + tok + "'");
  }
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = strip(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

/// Parse "imm(rN)" into offset and base register.
std::pair<std::int32_t, std::uint8_t> parse_mem_operand(
    const std::string& tok, int line) {
  const auto open = tok.find('(');
  const auto close = tok.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open)
    throw AssemblyError(line, "expected imm(reg), got '" + tok + "'");
  const std::string imm_part = strip(tok.substr(0, open));
  const std::int32_t imm =
      imm_part.empty() ? 0 : parse_immediate(imm_part, line);
  const std::uint8_t base =
      parse_register(tok.substr(open + 1, close - open - 1), line);
  return {imm, base};
}

}  // namespace

std::vector<Instruction> assemble(const std::string& source) {
  // Pass 1: strip comments/labels, collect label addresses.
  std::map<std::string, std::int32_t> labels;
  std::vector<Line> lines;
  {
    std::istringstream in(source);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      const auto comment = raw.find_first_of(";#");
      if (comment != std::string::npos) raw = raw.substr(0, comment);
      std::string text = strip(raw);
      // Peel off any leading labels.
      for (;;) {
        const auto colon = text.find(':');
        if (colon == std::string::npos) break;
        const std::string label = lower(strip(text.substr(0, colon)));
        if (label.empty() ||
            !std::all_of(label.begin(), label.end(), [](unsigned char c) {
              return std::isalnum(c) || c == '_';
            }))
          throw AssemblyError(number, "bad label '" + label + "'");
        if (labels.count(label))
          throw AssemblyError(number, "duplicate label '" + label + "'");
        labels[label] = static_cast<std::int32_t>(lines.size());
        text = strip(text.substr(colon + 1));
      }
      if (!text.empty()) lines.push_back({number, text});
    }
  }

  auto resolve_target = [&](const std::string& tok,
                            int line) -> std::int32_t {
    const std::string t = lower(strip(tok));
    const auto it = labels.find(t);
    if (it != labels.end()) return it->second;
    // Numeric absolute target is also allowed.
    if (!t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) ||
                       t[0] == '-'))
      return parse_immediate(t, line);
    throw AssemblyError(line, "unknown label '" + tok + "'");
  };

  // Pass 2: parse instructions.
  std::vector<Instruction> program;
  program.reserve(lines.size());
  for (const auto& [number, text] : lines) {
    const auto space = text.find_first_of(" \t");
    const std::string mnem = lower(
        space == std::string::npos ? text : text.substr(0, space));
    const std::string rest =
        space == std::string::npos ? "" : strip(text.substr(space));
    const auto it = opcode_table().find(mnem);
    if (it == opcode_table().end())
      throw AssemblyError(number, "unknown mnemonic '" + mnem + "'");
    const Opcode op = it->second;
    const auto ops = split_operands(rest);
    auto need = [&](std::size_t n) {
      if (ops.size() != n)
        throw AssemblyError(number, mnem + " expects " + std::to_string(n) +
                                        " operands");
    };

    Instruction ins;
    ins.op = op;
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Mul:
      case Opcode::Slt:
        need(3);
        ins.rd = parse_register(ops[0], number);
        ins.rs1 = parse_register(ops[1], number);
        ins.rs2 = parse_register(ops[2], number);
        break;
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Slli:
      case Opcode::Srli:
        need(3);
        ins.rd = parse_register(ops[0], number);
        ins.rs1 = parse_register(ops[1], number);
        ins.imm = parse_immediate(ops[2], number);
        break;
      case Opcode::Lui:
        need(2);
        ins.rd = parse_register(ops[0], number);
        ins.imm = parse_immediate(ops[1], number);
        break;
      case Opcode::Lw:
      case Opcode::Lb: {
        need(2);
        ins.rd = parse_register(ops[0], number);
        const auto [imm, base] = parse_mem_operand(ops[1], number);
        ins.imm = imm;
        ins.rs1 = base;
        break;
      }
      case Opcode::Sw:
      case Opcode::Sb: {
        need(2);
        ins.rs2 = parse_register(ops[0], number);  // value to store
        const auto [imm, base] = parse_mem_operand(ops[1], number);
        ins.imm = imm;
        ins.rs1 = base;
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
        need(3);
        ins.rs1 = parse_register(ops[0], number);
        ins.rs2 = parse_register(ops[1], number);
        ins.imm = resolve_target(ops[2], number);
        break;
      case Opcode::Jmp:
        need(1);
        ins.imm = resolve_target(ops[0], number);
        break;
      case Opcode::Jal:
        need(2);
        ins.rd = parse_register(ops[0], number);
        ins.imm = resolve_target(ops[1], number);
        break;
      case Opcode::Jr:
        need(1);
        ins.rs1 = parse_register(ops[0], number);
        break;
      case Opcode::In:
        need(2);
        ins.rd = parse_register(ops[0], number);
        ins.imm = parse_immediate(ops[1], number);
        break;
      case Opcode::Out:
        need(2);
        ins.rs1 = parse_register(ops[0], number);
        ins.imm = parse_immediate(ops[1], number);
        break;
      case Opcode::Nop:
      case Opcode::Halt:
        need(0);
        break;
    }
    program.push_back(ins);
  }

  // Validate branch targets.
  for (std::size_t i = 0; i < program.size(); ++i) {
    const auto& ins = program[i];
    if (instr_class(ins.op) == InstrClass::Branch &&
        ins.op != Opcode::Jr) {
      if (ins.imm < 0 ||
          ins.imm > static_cast<std::int32_t>(program.size()))
        throw AssemblyError(0, "branch target out of range at instruction " +
                                   std::to_string(i));
    }
  }
  return program;
}

namespace firmware {

std::string sensing_filter() {
  return R"(
; r1 = sample count, r2 = threshold, r3 = running 4-sample sum
; r4..r7 = tap delay line, r8 = scratch, r9 = filtered value
        addi r3, r0, 0
        addi r4, r0, 0
        addi r5, r0, 0
        addi r6, r0, 0
        addi r7, r0, 0
loop:   beq  r1, r0, done
        in   r8, 0           ; read the sensor ADC
        sub  r3, r3, r7      ; drop the oldest tap
        add  r3, r3, r8      ; add the newest
        add  r7, r6, r0      ; shift the delay line
        add  r6, r5, r0
        add  r5, r4, r0
        add  r4, r8, r0
        srli r9, r3, 2       ; moving average = sum / 4
        blt  r9, r2, skip    ; report only above-threshold values
        out  r9, 1           ; push to the radio FIFO
skip:   addi r1, r1, -1
        jmp  loop
done:   halt
)";
}

std::string fibonacci() {
  return R"(
; fib(r1) -> r2, iteratively
        addi r2, r0, 0       ; fib(0)
        addi r3, r0, 1       ; fib(1)
        beq  r1, r0, done
loop:   add  r4, r2, r3
        add  r2, r3, r0
        add  r3, r4, r0
        addi r1, r1, -1
        bne  r1, r0, loop
done:   halt
)";
}

std::string fir16() {
  return R"(
; 16-tap FIR: coefficients at 0x100, samples at 0x200, output at 0x300
; r1 = number of output samples
        addi r10, r0, 0x300  ; output pointer
        addi r11, r0, 0x200  ; sample window base
outer:  beq  r1, r0, done
        addi r3, r0, 0       ; accumulator
        addi r4, r0, 0       ; tap index
        addi r5, r0, 0x100   ; coefficient pointer
        add  r6, r11, r0     ; sample pointer
taps:   lw   r7, 0(r5)
        lw   r8, 0(r6)
        mul  r9, r7, r8
        add  r3, r3, r9
        addi r5, r5, 4
        addi r6, r6, 4
        addi r4, r4, 1
        addi r12, r0, 16
        blt  r4, r12, taps
        sw   r3, 0(r10)
        addi r10, r10, 4
        addi r11, r11, 4     ; slide the window
        addi r1, r1, -1
        jmp  outer
done:   halt
)";
}

}  // namespace firmware

}  // namespace ambisim::isa
