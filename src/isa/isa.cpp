#include "ambisim/isa/isa.hpp"

namespace ambisim::isa {

InstrClass instr_class(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Slt:
    case Opcode::Addi:
    case Opcode::Andi:
    case Opcode::Ori:
    case Opcode::Slli:
    case Opcode::Srli:
    case Opcode::Lui:
      return InstrClass::Alu;
    case Opcode::Mul:
      return InstrClass::Mul;
    case Opcode::Lw:
    case Opcode::Sw:
    case Opcode::Lb:
    case Opcode::Sb:
      return InstrClass::Mem;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Jmp:
    case Opcode::Jal:
    case Opcode::Jr:
      return InstrClass::Branch;
    case Opcode::In:
    case Opcode::Out:
      return InstrClass::Io;
    case Opcode::Nop:
    case Opcode::Halt:
      return InstrClass::System;
  }
  return InstrClass::System;
}

std::string mnemonic(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Mul: return "mul";
    case Opcode::Slt: return "slt";
    case Opcode::Addi: return "addi";
    case Opcode::Andi: return "andi";
    case Opcode::Ori: return "ori";
    case Opcode::Slli: return "slli";
    case Opcode::Srli: return "srli";
    case Opcode::Lui: return "lui";
    case Opcode::Lw: return "lw";
    case Opcode::Sw: return "sw";
    case Opcode::Lb: return "lb";
    case Opcode::Sb: return "sb";
    case Opcode::Beq: return "beq";
    case Opcode::Bne: return "bne";
    case Opcode::Blt: return "blt";
    case Opcode::Jmp: return "jmp";
    case Opcode::Jal: return "jal";
    case Opcode::Jr: return "jr";
    case Opcode::In: return "in";
    case Opcode::Out: return "out";
    case Opcode::Nop: return "nop";
    case Opcode::Halt: return "halt";
  }
  return "?";
}

}  // namespace ambisim::isa
