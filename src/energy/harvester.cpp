#include "ambisim/energy/harvester.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ambisim::energy {

u::Energy Harvester::energy_between(u::Time t0, u::Time t1, int steps) const {
  if (t1 < t0) throw std::invalid_argument("reversed interval");
  if (steps < 1) throw std::invalid_argument("steps < 1");
  const double dt = (t1 - t0).value() / steps;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double a = power_at(t0 + u::Time(i * dt)).value();
    const double b = power_at(t0 + u::Time((i + 1) * dt)).value();
    acc += 0.5 * (a + b) * dt;
  }
  return u::Energy(acc);
}

SolarHarvester::SolarHarvester(u::Area area, double efficiency, bool indoor)
    : area_(area), efficiency_(efficiency), indoor_(indoor) {
  if (area.value() <= 0.0) throw std::invalid_argument("non-positive area");
  if (efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("efficiency outside (0, 1]");
}

u::Power SolarHarvester::power_at(u::Time t) const {
  if (indoor_) return average_power();
  // Half-sine irradiance over a 24 h period: daylight for 12 h, dark for 12.
  constexpr double kDay = 86400.0;
  const double phase = std::fmod(t.value(), kDay) / kDay;  // [0,1)
  const double s = std::sin(2.0 * std::numbers::pi * phase);
  const double irradiance = kOutdoorPeakIrradiance * (s > 0.0 ? s : 0.0);
  return u::Power(irradiance * area_.value() * efficiency_);
}

u::Power SolarHarvester::average_power() const {
  if (indoor_)
    return u::Power(kIndoorIrradiance * area_.value() * efficiency_);
  // Mean of max(0, sin) over a full period is 1/pi.
  return u::Power(kOutdoorPeakIrradiance / std::numbers::pi * area_.value() *
                  efficiency_);
}

std::string SolarHarvester::name() const {
  return indoor_ ? "solar-indoor" : "solar-outdoor";
}

VibrationHarvester::VibrationHarvester(double volume_cm3,
                                       u::Power density_per_cm3)
    : volume_cm3_(volume_cm3), density_per_cm3_(density_per_cm3) {
  if (volume_cm3 <= 0.0) throw std::invalid_argument("non-positive volume");
  if (density_per_cm3 <= u::Power(0.0))
    throw std::invalid_argument("non-positive power density");
}

u::Power VibrationHarvester::power_at(u::Time) const {
  return average_power();
}

u::Power VibrationHarvester::average_power() const {
  return density_per_cm3_ * volume_cm3_;
}

std::string VibrationHarvester::name() const { return "vibration"; }

ThermalHarvester::ThermalHarvester(u::Area area, double delta_t_kelvin,
                                   double k_uw_per_cm2_k2)
    : area_(area), delta_t_(delta_t_kelvin), k_(k_uw_per_cm2_k2) {
  if (area.value() <= 0.0) throw std::invalid_argument("non-positive area");
  if (delta_t_kelvin < 0.0) throw std::invalid_argument("negative delta T");
  if (k_uw_per_cm2_k2 <= 0.0) throw std::invalid_argument("non-positive k");
}

u::Power ThermalHarvester::power_at(u::Time) const { return average_power(); }

u::Power ThermalHarvester::average_power() const {
  const double area_cm2 = area_.value() * 1e4;
  return u::Power(k_ * 1e-6 * area_cm2 * delta_t_ * delta_t_);
}

std::string ThermalHarvester::name() const { return "thermal"; }

PowerDensityHarvester::PowerDensityHarvester(std::vector<Sample> profile,
                                             u::Area aperture,
                                             double efficiency,
                                             std::string name)
    : profile_(std::move(profile)),
      aperture_(aperture),
      efficiency_(efficiency),
      name_(std::move(name)) {
  if (profile_.empty()) throw std::invalid_argument("empty density profile");
  if (aperture.value() <= 0.0)
    throw std::invalid_argument("non-positive aperture");
  if (efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("efficiency outside (0, 1]");
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    if (profile_[i].second < u::PowerDensity(0.0))
      throw std::invalid_argument("negative power density");
    if (i > 0 && profile_[i].first < profile_[i - 1].first)
      throw std::invalid_argument("density profile not time-sorted");
  }
}

PowerDensityHarvester::PowerDensityHarvester(u::PowerDensity density,
                                             u::Area aperture,
                                             double efficiency,
                                             std::string name)
    : PowerDensityHarvester(std::vector<Sample>{{u::Time(0.0), density}},
                            aperture, efficiency, std::move(name)) {}

u::PowerDensity PowerDensityHarvester::density_at(u::Time t) const {
  // Step function: the last sample at or before `t` holds; before the first
  // sample the first one applies.
  u::PowerDensity current = profile_.front().second;
  for (const Sample& s : profile_) {
    if (s.first > t) break;
    current = s.second;
  }
  return current;
}

u::Power PowerDensityHarvester::power_at(u::Time t) const {
  return u::incident_power(density_at(t), aperture_) * efficiency_;
}

u::Power PowerDensityHarvester::average_power() const {
  if (profile_.size() == 1)
    return u::incident_power(profile_.front().second, aperture_) *
           efficiency_;
  // Time-weighted mean of the steps over [first, last]; the final step has
  // zero width inside the span but holds beyond it, so fold it in with the
  // mean of the span and the terminal density.
  double weighted = 0.0;
  const double span =
      (profile_.back().first - profile_.front().first).value();
  for (std::size_t i = 0; i + 1 < profile_.size(); ++i) {
    const double width =
        (profile_[i + 1].first - profile_[i].first).value();
    weighted += profile_[i].second.value() * width;
  }
  const double mean = span > 0.0 ? weighted / span
                                 : profile_.back().second.value();
  return u::Power(mean * aperture_.value() * efficiency_);
}

std::string PowerDensityHarvester::name() const { return name_; }

ConstantSource::ConstantSource(u::Power p, std::string name)
    : power_(p), name_(std::move(name)) {
  if (p < u::Power(0.0)) throw std::invalid_argument("negative source power");
}

u::Power ConstantSource::power_at(u::Time) const { return power_; }
u::Power ConstantSource::average_power() const { return power_; }
std::string ConstantSource::name() const { return name_; }

}  // namespace ambisim::energy
