#include "ambisim/energy/dpm.hpp"

#include <cmath>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::energy {

using namespace ambisim::units::literals;

u::Time PowerStateSpec::break_even() const {
  if (idle <= sleep)
    throw std::logic_error("idle power must exceed sleep power");
  const double num =
      wake_energy.value() + sleep.value() * wake_latency.value();
  return u::Time(num / (idle - sleep).value());
}

PowerStateSpec PowerStateSpec::ulp_radio() {
  return {1.6_mW, 300_uW, 0.5_uW, 400_us, u::Energy(300e-6 * 400e-6)};
}

PowerStateSpec PowerStateSpec::bluetooth_radio() {
  return {30_mW, 8_mW, 30_uW, 200_us, u::Energy(8e-3 * 200e-6 * 3)};
}

PowerStateSpec PowerStateSpec::wlan_radio() {
  return {536_mW, 120_mW, 1_mW, 1_ms, u::Energy(120e-3 * 1e-3 * 5)};
}

double DpmResult::energy_ratio_vs(const DpmResult& baseline) const {
  if (baseline.energy <= u::Energy(0.0))
    throw std::logic_error("baseline consumed no energy");
  return energy.value() / baseline.energy.value();
}

namespace {
void check_trace(const std::vector<double>& idle_seconds) {
  if (idle_seconds.empty())
    throw std::invalid_argument("empty idle trace");
  for (double t : idle_seconds) {
    if (t < 0.0) throw std::invalid_argument("negative idle period");
  }
}
}  // namespace

DpmResult dpm_always_on(const PowerStateSpec& spec,
                        const std::vector<double>& idle_seconds) {
  check_trace(idle_seconds);
  DpmResult r;
  for (double t : idle_seconds) {
    r.energy += u::Energy(spec.idle.value() * t);
  }
  return r;
}

DpmResult dpm_timeout(const PowerStateSpec& spec,
                      const std::vector<double>& idle_seconds,
                      u::Time timeout) {
  check_trace(idle_seconds);
  if (timeout < u::Time(0.0)) throw std::invalid_argument("negative timeout");
  DpmResult r;
  const double to = timeout.value();
  for (double t : idle_seconds) {
    if (t <= to) {
      r.energy += u::Energy(spec.idle.value() * t);
      continue;
    }
    // Idle until the timeout, then sleep; the request at the end of the
    // period pays the wake latency and energy.
    r.energy += u::Energy(spec.idle.value() * to +
                          spec.sleep.value() * (t - to)) +
                spec.wake_energy;
    r.added_latency += spec.wake_latency;
    ++r.sleep_transitions;
  }
  AMBISIM_OBS_COUNT_N(
      "energy.dpm.sleep_transitions",
      static_cast<std::uint64_t>(r.sleep_transitions));
#if AMBISIM_OBS_COMPILED
  // Flight recorder: the sleep/idle decision per period against the
  // cumulative trace clock (1 = slept, 0 = stayed idle).  A second pass so
  // the policy loop itself stays untouched when obs is disarmed.
  if (obs::enabled()) [[unlikely]] {
    auto& s = obs::context().timeline.series("energy.dpm.sleep", 0);
    double clock_s = 0.0;
    for (double t : idle_seconds) {
      s.record_change(clock_s, t > to ? 1.0 : 0.0);
      clock_s += t;
    }
  }
#endif
  return r;
}

DpmResult dpm_oracle(const PowerStateSpec& spec,
                     const std::vector<double>& idle_seconds) {
  check_trace(idle_seconds);
  DpmResult r;
  const double be = spec.break_even().value();
  for (double t : idle_seconds) {
    if (t <= be) {
      r.energy += u::Energy(spec.idle.value() * t);
    } else {
      // Sleep for the whole period and wake exactly on time: the wake
      // transition overlaps the tail of the idle period.
      r.energy += u::Energy(spec.sleep.value() * t) + spec.wake_energy;
      ++r.sleep_transitions;
    }
  }
  AMBISIM_OBS_COUNT_N(
      "energy.dpm.sleep_transitions",
      static_cast<std::uint64_t>(r.sleep_transitions));
#if AMBISIM_OBS_COMPILED
  if (obs::enabled()) [[unlikely]] {
    auto& s = obs::context().timeline.series("energy.dpm.sleep", 0);
    double clock_s = 0.0;
    for (double t : idle_seconds) {
      s.record_change(clock_s, t > be ? 1.0 : 0.0);
      clock_s += t;
    }
  }
#endif
  return r;
}

std::vector<double> exponential_idle_trace(sim::Rng& rng, int periods,
                                           double mean_seconds) {
  if (periods < 1) throw std::invalid_argument("periods < 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(periods));
  for (int i = 0; i < periods; ++i)
    out.push_back(rng.exponential(mean_seconds));
  return out;
}

std::vector<double> pareto_idle_trace(sim::Rng& rng, int periods,
                                      double min_seconds, double alpha) {
  if (periods < 1) throw std::invalid_argument("periods < 1");
  if (min_seconds <= 0.0 || alpha <= 1.0)
    throw std::invalid_argument("need min > 0 and alpha > 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(periods));
  for (int i = 0; i < periods; ++i) {
    const double u = rng.uniform(1e-12, 1.0);
    out.push_back(min_seconds / std::pow(u, 1.0 / alpha));
  }
  return out;
}

}  // namespace ambisim::energy
