#include "ambisim/energy/battery.hpp"

#include <cmath>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::energy {

using namespace ambisim::units::literals;

Battery::Spec Battery::coin_cell_cr2032() {
  return {"CR2032", 3.0_V, 225_mAh, 1.08, u::Current(0.2e-3),
          u::Power(0.3e-6)};
}

Battery::Spec Battery::alkaline_aa() {
  return {"AA-alkaline", 1.5_V, 2850_mAh, 1.25, u::Current(50e-3),
          u::Power(1e-6)};
}

Battery::Spec Battery::li_ion_1000mAh() {
  return {"LiIon-1000", 3.7_V, 1000_mAh, 1.05, u::Current(200e-3),
          u::Power(5e-6)};
}

Battery::Spec Battery::thin_film_1mAh() {
  return {"ThinFilm-1", 3.0_V, 1_mAh, 1.0, u::Current(1e-3),
          u::Power(0.01e-6)};
}

Battery::Spec Battery::storage_capacitor(u::Capacitance c, u::Voltage v) {
  if (c <= u::Capacitance(0.0) || v <= u::Voltage(0.0))
    throw std::invalid_argument("capacitor needs positive C and V");
  return {"StorageCap", v, u::Charge(c.value() * v.value()), 1.0,
          u::Current(1e-3), u::Power(1e-9)};
}

void Battery::configure_brownout(double cutoff_soc, double recovery_soc) {
  if (cutoff_soc < 0.0 || cutoff_soc > 1.0)
    throw std::invalid_argument("brown-out cutoff outside [0, 1]");
  if (recovery_soc < cutoff_soc || recovery_soc > 1.0)
    throw std::invalid_argument("brown-out recovery outside [cutoff, 1]");
  cutoff_soc_ = cutoff_soc;
  recovery_soc_ = recovery_soc;
  brownout_enabled_ = true;
  update_brownout();
}

void Battery::update_brownout() {
  if (!brownout_enabled_) return;
  const double soc = state_of_charge();
  if (!brown_out_) {
    if (soc <= cutoff_soc_) brown_out_ = true;
  } else if (soc >= recovery_soc_ && soc > cutoff_soc_) {
    // The latch only opens strictly above the cutoff, so with a degenerate
    // band (cutoff == recovery) an exact-threshold charge stays browned out
    // instead of flapping on every update.
    brown_out_ = false;
  }
}

Battery::Battery(Spec spec) : spec_(std::move(spec)) {
  if (spec_.peukert < 1.0)
    throw std::invalid_argument("Peukert exponent must be >= 1");
  if (spec_.capacity <= u::Charge(0.0) || spec_.voltage <= u::Voltage(0.0) ||
      spec_.rated_current <= u::Current(0.0))
    throw std::invalid_argument("battery spec must be positive");
  remaining_ = capacity();
}

u::Energy Battery::capacity() const {
  return u::Energy(spec_.voltage.value() * spec_.capacity.value());
}

double Battery::state_of_charge() const {
  return remaining_.value() / capacity().value();
}

double Battery::derating(u::Power p) const {
  if (p <= u::Power(0.0)) return 1.0;
  const double current = p.value() / spec_.voltage.value();
  const double ratio = current / spec_.rated_current.value();
  if (ratio <= 1.0) return 1.0;  // at or below rated current: full capacity
  return std::pow(ratio, spec_.peukert - 1.0);
}

u::Energy Battery::draw(u::Power p, u::Time dt) {
  if (p < u::Power(0.0)) throw std::invalid_argument("negative draw power");
  if (dt < u::Time(0.0)) throw std::invalid_argument("negative duration");
  if (depleted() || p == u::Power(0.0) || dt == u::Time(0.0)) {
    idle(dt);
    return u::Energy(0.0);
  }
  const double factor = derating(p);
  const u::Power internal = p * factor + spec_.self_discharge;
  const u::Energy internal_needed = u::Energy(internal.value() * dt.value());
  if (internal_needed <= remaining_) {
    remaining_ -= internal_needed;
    update_brownout();
    AMBISIM_OBS_GAUGE_SET("energy.battery.soc", state_of_charge());
    return u::Energy(p.value() * dt.value());
  }
  // Battery empties partway through the interval.
  const double frac = remaining_.value() / internal_needed.value();
  remaining_ = u::Energy(0.0);
  update_brownout();
  AMBISIM_OBS_COUNT("energy.battery.depletions");
  AMBISIM_OBS_GAUGE_SET("energy.battery.soc", 0.0);
  return u::Energy(p.value() * dt.value() * frac);
}

u::Energy Battery::recharge(u::Energy e) {
  if (e < u::Energy(0.0)) throw std::invalid_argument("negative recharge");
  const u::Energy room = capacity() - remaining_;
  const u::Energy stored = u::min(e, room);
  remaining_ += stored;
  update_brownout();
  return stored;
}

void Battery::set_state_of_charge(double soc) {
  if (soc < 0.0 || soc > 1.0)
    throw std::invalid_argument("state of charge outside [0, 1]");
  remaining_ = u::Energy(capacity().value() * soc);
  update_brownout();
}

void Battery::idle(u::Time dt) {
  if (dt < u::Time(0.0)) throw std::invalid_argument("negative duration");
  const u::Energy loss = u::Energy(spec_.self_discharge.value() * dt.value());
  remaining_ = u::max(u::Energy(0.0), remaining_ - loss);
  update_brownout();
}

u::Time Battery::lifetime_at(u::Power p) const {
  const u::Power internal =
      p * derating(p) + spec_.self_discharge;
  if (internal <= u::Power(0.0)) return u::Time(1e18);  // effectively forever
  return u::Time(remaining_.value() / internal.value());
}

}  // namespace ambisim::energy
