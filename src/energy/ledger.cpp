#include "ambisim/energy/ledger.hpp"

#include <algorithm>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::energy {

void EnergyLedger::charge(const std::string& name, u::Energy e) {
  if (e < u::Energy(0.0))
    throw std::invalid_argument("cannot charge negative energy");
#if AMBISIM_OBS_COMPILED
  if (obs::enabled()) [[unlikely]] {
    auto& ctx = obs::context();
    ctx.metrics.counter("energy.charges").inc();
    ctx.metrics.histogram("energy.charge_J").observe(e.value());
  }
#endif
  for (auto& [n, acc] : entries_) {
    if (n == name) {
      acc += e;
      return;
    }
  }
  entries_.emplace_back(name, e);
}

u::Energy EnergyLedger::total() const {
  u::Energy t{0.0};
  for (const auto& [n, e] : entries_) t += e;
  return t;
}

u::Energy EnergyLedger::of(const std::string& name) const {
  for (const auto& [n, e] : entries_) {
    if (n == name) return e;
  }
  return u::Energy(0.0);
}

double EnergyLedger::share(const std::string& name) const {
  const u::Energy t = total();
  if (t <= u::Energy(0.0)) return 0.0;
  return of(name).value() / t.value();
}

std::vector<std::pair<std::string, u::Energy>> EnergyLedger::breakdown()
    const {
  auto out = entries_;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void EnergyLedger::merge(const EnergyLedger& other) {
  for (const auto& [n, e] : other.entries_) charge(n, e);
}

void EnergyLedger::clear() { entries_.clear(); }

double DutyCycleLoad::duty() const {
  if (period <= u::Time(0.0) || active_time < u::Time(0.0) ||
      active_time > period)
    throw std::logic_error("invalid duty-cycle load");
  return active_time.value() / period.value();
}

u::Power DutyCycleLoad::average_power() const {
  const double d = duty();
  return active_power * d + sleep_power * (1.0 - d);
}

double max_neutral_duty(u::Power harvest_avg, u::Power active_power,
                        u::Power sleep_power) {
  if (active_power < sleep_power)
    throw std::invalid_argument("active power below sleep power");
  if (harvest_avg <= sleep_power) return 0.0;
  if (harvest_avg >= active_power) return 1.0;
  // harvest = d*active + (1-d)*sleep  =>  d = (harvest-sleep)/(active-sleep)
  return (harvest_avg - sleep_power).value() /
         (active_power - sleep_power).value();
}

}  // namespace ambisim::energy
