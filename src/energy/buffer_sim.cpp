#include "ambisim/energy/buffer_sim.hpp"

#include <cmath>
#include <stdexcept>

namespace ambisim::energy {

BufferSimResult simulate_energy_buffer(const BufferSimConfig& cfg) {
  if (!cfg.harvester) throw std::invalid_argument("no harvester");
  if (cfg.duration <= u::Time(0.0) || cfg.step <= u::Time(0.0))
    throw std::invalid_argument("duration and step must be positive");
  if (cfg.load < u::Power(0.0)) throw std::invalid_argument("negative load");
  if (cfg.initial_soc < 0.0 || cfg.initial_soc > 1.0)
    throw std::invalid_argument("initial SoC outside [0, 1]");

  Battery buffer(cfg.buffer);
  buffer.set_state_of_charge(cfg.initial_soc);

  BufferSimResult res;
  res.min_soc = buffer.state_of_charge();
  const double dt = cfg.step.value();
  const long long steps =
      static_cast<long long>(std::ceil(cfg.duration.value() / dt));
  // One SoC sample per step; multi-day horizons at minute resolution run
  // past 10^5 points, so size the trace up front.
  res.soc_trace.reserve(static_cast<std::size_t>(steps));

  double day_start_soc = buffer.state_of_charge();
  double last_cycle_delta = 0.0;
  constexpr double kDay = 86400.0;
  double next_day_mark = kDay;

  for (long long k = 0; k < steps; ++k) {
    const u::Time now{k * dt};
    const u::Power harvest = cfg.harvester->power_at(now);
    res.harvested += u::Energy(harvest.value() * dt);
    res.consumed += u::Energy(cfg.load.value() * dt);

    const double net = harvest.value() - cfg.load.value();
    if (net >= 0.0) {
      buffer.recharge(u::Energy(net * dt));
    } else {
      buffer.draw(u::Power(-net), u::Time(dt));
    }

    const double soc = buffer.state_of_charge();
    res.soc_trace.record(now, soc);
    res.min_soc = std::min(res.min_soc, soc);
    if (buffer.depleted() && res.survived) {
      res.survived = false;
      res.first_depletion = now;
    }
    if (now.value() >= next_day_mark) {
      last_cycle_delta = soc - day_start_soc;
      day_start_soc = soc;
      next_day_mark += kDay;
    }
  }
  res.final_soc = buffer.state_of_charge();
  res.sustainable = res.survived && last_cycle_delta >= -1e-6;
  return res;
}

ChargeBurstResult simulate_charge_burst(const ChargeBurstConfig& cfg) {
  if (!cfg.harvester) throw std::invalid_argument("no harvester");
  if (cfg.duration <= u::Time(0.0) || cfg.step <= u::Time(0.0))
    throw std::invalid_argument("duration and step must be positive");
  if (cfg.burst_duration <= u::Time(0.0))
    throw std::invalid_argument("burst duration must be positive");
  if (cfg.burst_power <= u::Power(0.0))
    throw std::invalid_argument("burst power must be positive");
  if (cfg.sleep_load < u::Power(0.0))
    throw std::invalid_argument("negative sleep load");
  if (cfg.wake_soc <= 0.0 || cfg.wake_soc > 1.0)
    throw std::invalid_argument("wake SoC outside (0, 1]");
  if (cfg.initial_soc < 0.0 || cfg.initial_soc > 1.0)
    throw std::invalid_argument("initial SoC outside [0, 1]");

  Battery buffer(cfg.buffer);
  buffer.set_state_of_charge(cfg.initial_soc);

  ChargeBurstResult res;
  const double dt = cfg.step.value();
  const double horizon = cfg.duration.value();
  double now = 0.0;
  double charge_start = 0.0;
  double latency_sum = 0.0;
  long long latency_count = 0;

  while (now < horizon) {
    if (buffer.state_of_charge() >= cfg.wake_soc) {
      // Wake threshold reached (an initial_soc exactly at the threshold
      // bursts immediately at t = 0): one burst, then back to charging.
      latency_sum += now - charge_start;
      ++latency_count;
      if (res.bursts_completed == 0 && res.bursts_aborted == 0)
        res.first_burst = u::Time(now);
      // The rectenna decouples during the burst (the antenna is busy
      // reflecting), so the burst is a pure draw on the capacitor.
      const u::Energy want =
          u::Energy(cfg.burst_power.value() * cfg.burst_duration.value());
      const u::Energy got = buffer.draw(cfg.burst_power, cfg.burst_duration);
      res.consumed += got;
      if (got.value() < want.value() * (1.0 - 1e-12))
        ++res.bursts_aborted;  // capacitor hit empty mid-burst
      else
        ++res.bursts_completed;
      now += cfg.burst_duration.value();
      charge_start = now;
      continue;
    }
    const double span = std::min(dt, horizon - now);
    const u::Power harvest = cfg.harvester->power_at(u::Time(now));
    res.harvested += u::Energy(harvest.value() * span);
    res.consumed += u::Energy(cfg.sleep_load.value() * span);
    const double net = harvest.value() - cfg.sleep_load.value();
    if (net >= 0.0)
      buffer.recharge(u::Energy(net * span));
    else
      buffer.draw(u::Power(-net), u::Time(span));
    now += span;
  }

  res.final_soc = buffer.state_of_charge();
  res.starved = latency_count == 0;
  if (latency_count > 0)
    res.mean_charge_latency_s =
        latency_sum / static_cast<double>(latency_count);
  return res;
}

u::Energy minimum_buffer_energy(const BufferSimConfig& cfg, double max_scale,
                                int iterations) {
  if (max_scale <= 1.0) throw std::invalid_argument("max_scale <= 1");
  if (iterations < 1) throw std::invalid_argument("iterations < 1");

  auto survives = [&](double scale) {
    BufferSimConfig c = cfg;
    c.buffer.capacity = u::Charge(cfg.buffer.capacity.value() * scale);
    return simulate_energy_buffer(c).survived;
  };

  if (!survives(max_scale))
    throw std::domain_error("load unsustainable even with the largest buffer");
  double lo = 0.0;  // known-failing (zero capacity)
  double hi = max_scale;
  if (survives(1.0)) hi = 1.0;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (mid <= 0.0) break;
    if (survives(mid))
      hi = mid;
    else
      lo = mid;
  }
  return u::Energy(cfg.buffer.voltage.value() *
                   cfg.buffer.capacity.value() * hi);
}

}  // namespace ambisim::energy
