#include "ambisim/scen/loader.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "ambisim/scen/json.hpp"

namespace ambisim::scen {

std::string Diagnostic::format() const {
  std::string out = path;
  if (line > 0) out += " (line " + std::to_string(line) + ")";
  out += ": " + message;
  return out;
}

std::string LoadResult::format_diagnostics() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.format();
    out += '\n';
  }
  return out;
}

namespace {

using json::Value;

/// Seeds travel through JSON numbers; past 2^53 a double stops holding
/// integers exactly, so the loader rejects anything bigger.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

class Check {
 public:
  explicit Check(std::vector<Diagnostic>& diags) : diags_(diags) {}

  void report(const std::string& path, int line, std::string message) {
    diags_.push_back(Diagnostic{path, line, std::move(message)});
  }

  /// Validated object view: typed getters that record which keys were
  /// consumed, so finish() can flag the unknown ones.
  class Obj {
   public:
    Obj(Check& c, const Value& v, std::string path)
        : check_(c), value_(v), path_(std::move(path)) {}

    /// Raw member access (marks `key` consumed); nullptr when absent.
    const Value* get(const char* key) {
      seen_.insert(key);
      return value_.find(key);
    }

    bool has(const char* key) { return get(key) != nullptr; }

    double num(const char* key, double dflt, double lo, double hi) {
      const Value* v = get(key);
      if (v == nullptr) return dflt;
      if (!v->is_number()) {
        type_error(key, *v, "number");
        return dflt;
      }
      const double x = v->as_number();
      if (x < lo || x > hi) {
        std::ostringstream os;
        os << "must be in [" << lo << ", " << hi << "] (got "
           << json::format_number(x) << ")";
        check_.report(path_ + "." + key, v->line(), os.str());
        return dflt;
      }
      return x;
    }

    long long integer(const char* key, long long dflt, long long lo,
                      long long hi) {
      const Value* v = get(key);
      if (v == nullptr) return dflt;
      if (!v->is_number()) {
        type_error(key, *v, "integer");
        return dflt;
      }
      const double x = v->as_number();
      if (x != std::floor(x) || std::fabs(x) > kMaxExactInteger) {
        check_.report(path_ + "." + key, v->line(),
                      "must be an integer (got " + json::format_number(x) +
                          ")");
        return dflt;
      }
      const auto i = static_cast<long long>(x);
      if (i < lo || i > hi) {
        check_.report(path_ + "." + key, v->line(),
                      "must be in [" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "] (got " +
                          std::to_string(i) + ")");
        return dflt;
      }
      return i;
    }

    bool boolean(const char* key, bool dflt) {
      const Value* v = get(key);
      if (v == nullptr) return dflt;
      if (!v->is_bool()) {
        type_error(key, *v, "bool");
        return dflt;
      }
      return v->as_bool();
    }

    std::string str(const char* key, std::string dflt) {
      const Value* v = get(key);
      if (v == nullptr) return dflt;
      if (!v->is_string()) {
        type_error(key, *v, "string");
        return dflt;
      }
      return v->as_string();
    }

    /// String constrained to a closed set of keywords.
    std::string keyword(const char* key, std::string dflt,
                        std::initializer_list<const char*> allowed) {
      const Value* v = get(key);
      if (v == nullptr) return dflt;
      if (!v->is_string()) {
        type_error(key, *v, "string");
        return dflt;
      }
      for (const char* a : allowed)
        if (v->as_string() == a) return v->as_string();
      std::string msg = "must be one of {";
      bool first = true;
      for (const char* a : allowed) {
        if (!first) msg += ", ";
        msg += std::string("\"") + a + "\"";
        first = false;
      }
      msg += "} (got \"" + v->as_string() + "\")";
      check_.report(path_ + "." + key, v->line(), std::move(msg));
      return dflt;
    }

    /// Flag every key the getters never consumed.
    void finish() {
      for (const auto& [k, v] : value_.members())
        if (seen_.count(k) == 0)
          check_.report(path_, v.line(), "unknown key \"" + k + "\"");
    }

    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] int line() const { return value_.line(); }
    Check& check() { return check_; }

   private:
    void type_error(const char* key, const Value& v, const char* want) {
      check_.report(path_ + "." + key, v.line(),
                    std::string("expected ") + want + ", got " +
                        json::to_string(v.kind()));
    }

    Check& check_;
    const Value& value_;
    std::string path_;
    std::set<std::string, std::less<>> seen_;
  };

  /// Member that must be an object; reports and returns nullptr otherwise.
  const Value* object_member(Obj& parent, const char* key) {
    const Value* v = parent.get(key);
    if (v == nullptr) return nullptr;
    if (!v->is_object()) {
      report(parent.path() + "." + key, v->line(),
             std::string("expected object, got ") + json::to_string(v->kind()));
      return nullptr;
    }
    return v;
  }

 private:
  std::vector<Diagnostic>& diags_;
};

BatterySpec load_battery(Check& c, const Value& v, const std::string& path) {
  BatterySpec b;
  Check::Obj o(c, v, path);
  b.kind = o.keyword("kind", b.kind,
                     {"coin_cell_cr2032", "alkaline_aa", "li_ion_1000mAh",
                      "thin_film_1mAh"});
  b.initial_soc = o.num("initial_soc", b.initial_soc, 0.0, 1.0);
  b.brownout_cutoff_soc =
      o.num("brownout_cutoff_soc", b.brownout_cutoff_soc, 0.0, 1.0);
  b.brownout_recovery_soc =
      o.num("brownout_recovery_soc", b.brownout_recovery_soc, 0.0, 1.0);
  if (b.brownout_recovery_soc < b.brownout_cutoff_soc)
    c.report(path + ".brownout_recovery_soc", v.line(),
             "recovery threshold must be >= cutoff threshold");
  o.finish();
  return b;
}

HarvesterSpec load_harvester(Check& c, const Value& v,
                             const std::string& path) {
  HarvesterSpec h;
  Check::Obj o(c, v, path);
  const bool has_avg = o.has("avg_watt");
  const bool has_area = o.has("area_cm2");
  h.avg_watt = o.num("avg_watt", 0.0, 0.0, 1e3);
  h.area_cm2 = o.num("area_cm2", 0.0, 0.0, 1e4);
  h.efficiency = o.num("efficiency", h.efficiency, 0.0, 1.0);
  if (has_avg && has_area)
    c.report(path, v.line(),
             "give either avg_watt or area_cm2 (indoor PV), not both");
  else if (!has_avg && !has_area)
    c.report(path, v.line(), "harvester needs avg_watt or area_cm2");
  o.finish();
  return h;
}

FleetGroup load_group(Check& c, const Value& v, const std::string& path) {
  FleetGroup g;
  Check::Obj o(c, v, path);
  g.name = o.str("group", "");
  const std::string cls = o.keyword(
      "class", "", {"microwatt", "milliwatt", "watt", "backscatter"});
  if (cls.empty() && v.find("class") == nullptr)
    c.report(path, v.line(), "missing required key \"class\"");
  if (cls == "milliwatt")
    g.device_class = DeviceClass::MilliWatt;
  else if (cls == "watt")
    g.device_class = DeviceClass::Watt;
  else if (cls == "backscatter")
    g.device_class = DeviceClass::Backscatter;
  else
    g.device_class = DeviceClass::MicroWatt;
  g.count = static_cast<int>(o.integer("count", 1, 1, 1000000));
  if (const Value* b = c.object_member(o, "battery"))
    g.battery = load_battery(c, *b, path + ".battery");
  if (const Value* h = c.object_member(o, "harvester"))
    g.harvester = load_harvester(c, *h, path + ".harvester");
  g.baseline_watt = o.num("baseline_watt", 0.0, 0.0, 1e3);
  o.finish();
  return g;
}

TopologySpec load_topology(Check& c, const Value& v, const std::string& path,
                           Engine engine) {
  TopologySpec t;
  Check::Obj o(c, v, path);
  const std::string kind =
      o.keyword("kind", "random", {"random", "grid", "star"});
  if (kind == "grid")
    t.kind = TopologyKind::Grid;
  else if (kind == "star")
    t.kind = TopologyKind::Star;
  else
    t.kind = TopologyKind::Random;
  t.field_side_m = o.num("field_side_m", t.field_side_m, 1e-3, 1e6);
  t.pitch_m = o.num("pitch_m", t.pitch_m, 1e-3, 1e6);
  t.radius_m = o.num("radius_m", t.radius_m, 1e-3, 1e6);
  t.radio_range_m = o.num("radio_range_m", t.radio_range_m, 1e-3, 1e6);
  t.seed = o.integer("seed", -1, 0, static_cast<long long>(kMaxExactInteger));
  // Kind-inapplicable geometry keys are accepted-but-checked: warn loudly
  // by rejecting, so a spec never silently carries a dead knob.
  if (t.kind != TopologyKind::Random && v.find("field_side_m") != nullptr)
    c.report(path + ".field_side_m", v.line(),
             "field_side_m applies only to kind \"random\"");
  if (t.kind != TopologyKind::Grid && v.find("pitch_m") != nullptr)
    c.report(path + ".pitch_m", v.line(),
             "pitch_m applies only to kind \"grid\"");
  if (t.kind != TopologyKind::Star && v.find("radius_m") != nullptr)
    c.report(path + ".radius_m", v.line(),
             "radius_m applies only to kind \"star\"");
  // Backscatter tags are single-hop to the gateway: no multi-hop range.
  if (engine == Engine::Aiot && v.find("radio_range_m") != nullptr)
    c.report(path + ".radio_range_m", v.line(),
             "applies only to the net engine (backscatter tags reach only "
             "their gateway)");
  o.finish();
  return t;
}

WorkloadSpec load_workload(Check& c, const Value& v, const std::string& path,
                           Engine engine) {
  WorkloadSpec w;
  Check::Obj o(c, v, path);
  if (engine == Engine::Net) {
    w.report_period_s = o.num("report_period_s", w.report_period_s, 1e-3, 1e9);
    w.packet_bits = o.num("packet_bits", w.packet_bits, 1.0, 1e9);
    if (const Value* m = c.object_member(o, "mac")) {
      Check::Obj mo(c, *m, path + ".mac");
      w.mac_wake_interval_s =
          mo.num("wake_interval_s", w.mac_wake_interval_s, 1e-6, 1e3);
      w.mac_listen_window_s =
          mo.num("listen_window_s", w.mac_listen_window_s, 1e-7, 1e3);
      if (w.mac_listen_window_s > w.mac_wake_interval_s)
        c.report(path + ".mac.listen_window_s", m->line(),
                 "listen window must not exceed the wake interval");
      mo.finish();
    }
    w.routing = o.keyword("routing", w.routing, {"min_hop", "min_energy"});
    w.model_link_errors =
        o.boolean("model_link_errors", w.model_link_errors);
    w.sparse_links = o.boolean("sparse_links", w.sparse_links);
    for (const char* ami_key :
         {"events_per_hour", "sensor_report_bits", "context_message_bits",
          "technology"})
      if (v.find(ami_key) != nullptr)
        c.report(path + "." + ami_key, v.find(ami_key)->line(),
                 "applies only to the ami engine (mixed-class fleet)");
    for (const char* aiot_key : {"gateway_tx_w", "tag_loss_db"})
      if (v.find(aiot_key) != nullptr)
        c.report(path + "." + aiot_key, v.find(aiot_key)->line(),
                 "applies only to the aiot engine (backscatter fleet)");
  } else if (engine == Engine::Aiot) {
    w.report_period_s = o.num("report_period_s", w.report_period_s, 1e-3, 1e9);
    w.packet_bits = o.num("packet_bits", w.packet_bits, 1.0, 1e9);
    w.gateway_tx_w = o.num("gateway_tx_w", w.gateway_tx_w, 1e-3, 1e3);
    w.tag_loss_db = o.num("tag_loss_db", w.tag_loss_db, 0.0, 60.0);
    for (const char* net_key :
         {"mac", "routing", "model_link_errors", "sparse_links"})
      if (v.find(net_key) != nullptr)
        c.report(path + "." + net_key, v.find(net_key)->line(),
                 "applies only to the net engine (all-microwatt fleet)");
    for (const char* ami_key :
         {"events_per_hour", "sensor_report_bits", "context_message_bits",
          "technology"})
      if (v.find(ami_key) != nullptr)
        c.report(path + "." + ami_key, v.find(ami_key)->line(),
                 "applies only to the ami engine (mixed-class fleet)");
  } else {
    w.events_per_hour = o.num("events_per_hour", w.events_per_hour, 1e-6, 1e6);
    w.sensor_report_bits =
        o.num("sensor_report_bits", w.sensor_report_bits, 1.0, 1e9);
    w.context_message_bits =
        o.num("context_message_bits", w.context_message_bits, 1.0, 1e9);
    w.technology = o.keyword(
        "technology", w.technology,
        {"350nm", "250nm", "180nm", "130nm", "90nm", "65nm", "45nm"});
    for (const char* net_key :
         {"report_period_s", "packet_bits", "mac", "routing",
          "model_link_errors", "sparse_links"})
      if (v.find(net_key) != nullptr)
        c.report(path + "." + net_key, v.find(net_key)->line(),
                 "applies only to the net engine (all-microwatt fleet)");
  }
  o.finish();
  return w;
}

FaultSpec load_faults(Check& c, const Value& v, const std::string& path) {
  FaultSpec f;
  Check::Obj o(c, v, path);
  f.crash_mttf_s = o.num("crash_mttf_s", f.crash_mttf_s, 0.0, 1e12);
  f.crash_mttr_s = o.num("crash_mttr_s", f.crash_mttr_s, 0.0, 1e12);
  f.reboot_s = o.num("reboot_s", f.reboot_s, 0.0, 1e6);
  f.link_mtbf_s = o.num("link_mtbf_s", f.link_mtbf_s, 0.0, 1e12);
  f.link_mttr_s = o.num("link_mttr_s", f.link_mttr_s, 0.0, 1e12);
  f.corruption_rate = o.num("corruption_rate", f.corruption_rate, 0.0, 1.0);
  f.clock_drift_ppm = o.num("clock_drift_ppm", f.clock_drift_ppm, 0.0, 1e5);
  f.sink_immune = o.boolean("sink_immune", f.sink_immune);
  f.deadline_s = o.num("deadline_s", f.deadline_s, 1e-3, 1e9);
  if (const Value* r = c.object_member(o, "retry")) {
    Check::Obj ro(c, *r, path + ".retry");
    f.retry.max_attempts =
        static_cast<int>(ro.integer("max_attempts", f.retry.max_attempts,
                                    1, 64));
    f.retry.timeout_s = ro.num("timeout_s", f.retry.timeout_s, 1e-6, 1e3);
    f.retry.backoff = ro.num("backoff", f.retry.backoff, 1.0, 64.0);
    f.retry.max_backoff_s =
        ro.num("max_backoff_s", f.retry.max_backoff_s, 1e-6, 1e4);
    ro.finish();
  }
  o.finish();
  return f;
}

RunSpec load_run(Check& c, const Value& v, const std::string& path) {
  RunSpec r;
  Check::Obj o(c, v, path);
  r.duration_s = o.num("duration_s", r.duration_s, 1e-3, 1e9);
  r.seed = static_cast<std::uint64_t>(
      o.integer("seed", 1, 0, static_cast<long long>(kMaxExactInteger)));
  r.replications =
      static_cast<int>(o.integer("replications", 1, 1, 100000));
  r.pool = static_cast<int>(o.integer("pool", 0, 0, 4096));
  r.shards = static_cast<int>(o.integer("shards", 0, 0, 4096));
  o.finish();
  return r;
}

/// Observables per engine; "obs_counter" additionally needs `metric`,
/// "final_soc" needs `node` and an energy-coupled fleet.
bool check_known(Engine engine, const std::string& check) {
  static const std::set<std::string> net = {
      "delivered_fraction", "goodput_fraction", "availability",
      "mttf_s",             "mttr_s",           "latency_p50_s",
      "latency_p95_s",      "mean_hops",        "generated",
      "delivered",          "mean_final_soc",   "min_final_soc",
      "final_soc",          "obs_counter"};
  static const std::set<std::string> ami = {
      "delivered_fraction", "responses_fraction",      "events",
      "responses_rendered", "latency_p50_s",           "latency_p95_s",
      "personal_battery_days", "system_power_w",
      "sensor_average_power_w", "obs_counter"};
  static const std::set<std::string> aiot = {
      "delivered_fraction", "coverage_fraction", "availability",
      "mttf_s",             "mttr_s",            "latency_p50_s",
      "latency_p95_s",      "generated",         "delivered",
      "mean_final_soc",     "min_final_soc",     "final_soc",
      "obs_counter"};
  if (engine == Engine::Aiot) return aiot.count(check) > 0;
  return engine == Engine::Net ? net.count(check) > 0 : ami.count(check) > 0;
}

AssertionSpec load_assertion(Check& c, const Value& v,
                             const std::string& path, Engine engine,
                             bool has_energy) {
  AssertionSpec a;
  Check::Obj o(c, v, path);
  a.check = o.str("check", "");
  if (a.check.empty())
    c.report(path, v.line(), "missing required key \"check\"");
  else if (!check_known(engine, a.check))
    c.report(path + ".check", v.line(),
             "unknown check \"" + a.check + "\" for the " +
                 std::string(to_string(engine)) + " engine");
  a.op = o.keyword("op", ">=", {">=", ">", "<=", "<", "==", "!="});
  const Value* val = o.get("value");
  if (val == nullptr) {
    c.report(path, v.line(), "missing required key \"value\"");
  } else if (!val->is_number()) {
    c.report(path + ".value", val->line(),
             std::string("expected number, got ") +
                 json::to_string(val->kind()));
  } else {
    a.value = val->as_number();
  }
  a.node = static_cast<int>(o.integer("node", -1, 0, 1000000));
  a.metric = o.str("metric", "");
  if (a.check == "final_soc" && a.node < 0)
    c.report(path, v.line(), "check \"final_soc\" needs a \"node\" index");
  if (a.check == "obs_counter" && a.metric.empty())
    c.report(path, v.line(),
             "check \"obs_counter\" needs a \"metric\" name");
  if ((a.check == "final_soc" || a.check == "mean_final_soc" ||
       a.check == "min_final_soc") &&
      !has_energy)
    c.report(path + ".check", v.line(),
             "check \"" + a.check +
                 "\" needs a fleet group with a battery (energy coupling)");
  o.finish();
  return a;
}

}  // namespace

LoadResult Loader::load_text(std::string_view text) const {
  LoadResult out;
  Check c(out.diagnostics);

  json::Value root;
  try {
    root = json::parse(text);
  } catch (const json::ParseError& e) {
    c.report("$", e.line(), e.what());
    return out;
  }
  if (!root.is_object()) {
    c.report("$", root.line(),
             std::string("spec must be a JSON object, got ") +
                 json::to_string(root.kind()));
    return out;
  }

  ScenarioSpec spec;
  Check::Obj o(c, root, "$");
  spec.name = o.str("name", "unnamed");

  // Fleet first: engine selection drives every later section.
  const Value* fleet = o.get("fleet");
  if (fleet == nullptr) {
    c.report("$", root.line(), "missing required section \"fleet\"");
    return out;
  }
  if (!fleet->is_array() || fleet->items().empty()) {
    c.report("$.fleet", fleet->line(),
             "fleet must be a non-empty array of device groups");
    return out;
  }
  for (std::size_t i = 0; i < fleet->items().size(); ++i) {
    const Value& gv = fleet->items()[i];
    const std::string gpath = "$.fleet[" + std::to_string(i) + "]";
    if (!gv.is_object()) {
      c.report(gpath, gv.line(),
               std::string("expected object, got ") +
                   json::to_string(gv.kind()));
      continue;
    }
    spec.fleet.push_back(load_group(c, gv, gpath));
  }

  const Engine engine = spec.engine();

  // Engine composition rules.
  if (engine == Engine::Ami) {
    int milli = 0, watt = 0, micro = 0;
    for (const FleetGroup& g : spec.fleet) {
      if (g.device_class == DeviceClass::MilliWatt) milli += g.count;
      if (g.device_class == DeviceClass::Watt) watt += g.count;
      if (g.device_class == DeviceClass::MicroWatt) micro += g.count;
    }
    if (milli != 1 || watt != 1 || micro < 1)
      c.report("$.fleet", fleet->line(),
               "ami engine needs >= 1 microwatt sensors, exactly 1 "
               "milliwatt personal device, and exactly 1 watt server (got " +
                   std::to_string(micro) + "/" + std::to_string(milli) +
                   "/" + std::to_string(watt) + ")");
    for (std::size_t i = 0; i < spec.fleet.size(); ++i)
      if (spec.fleet[i].battery || spec.fleet[i].harvester)
        c.report("$.fleet[" + std::to_string(i) + "]", fleet->line(),
                 "battery/harvester stanzas apply only to the net engine");
  } else if (engine == Engine::Aiot) {
    int tags = 0, watt = 0, milli = 0, micro = 0;
    for (const FleetGroup& g : spec.fleet) {
      if (g.device_class == DeviceClass::Backscatter) tags += g.count;
      if (g.device_class == DeviceClass::Watt) watt += g.count;
      if (g.device_class == DeviceClass::MilliWatt) milli += g.count;
      if (g.device_class == DeviceClass::MicroWatt) micro += g.count;
    }
    if (tags < 1 || watt != 1 || milli != 0 || micro != 0)
      c.report("$.fleet", fleet->line(),
               "aiot engine needs >= 1 backscatter tags and exactly 1 watt "
               "gateway, nothing else (got " + std::to_string(tags) +
                   " tags, " + std::to_string(watt) + " watt, " +
                   std::to_string(milli) + " milliwatt, " +
                   std::to_string(micro) + " microwatt)");
    // The tag's storage capacitor and the gateway's mains feed are part of
    // the engine; a battery or ambient harvester contradicts both.
    for (std::size_t i = 0; i < spec.fleet.size(); ++i)
      if (spec.fleet[i].battery || spec.fleet[i].harvester)
        c.report("$.fleet[" + std::to_string(i) + "]", fleet->line(),
                 "backscatter tags carry a built-in storage capacitor and "
                 "RF harvester; battery/harvester stanzas apply only to "
                 "the net engine");
  } else {
    if (spec.sensor_count() < 1)
      c.report("$.fleet", fleet->line(), "net engine needs >= 1 sensor");
    int with_energy = 0;
    for (const FleetGroup& g : spec.fleet)
      if (g.battery || g.harvester) ++with_energy;
    if (with_energy > 1)
      c.report("$.fleet", fleet->line(),
               "energy coupling is fleet-wide: give battery/harvester on "
               "at most one group");
    for (std::size_t i = 0; i < spec.fleet.size(); ++i)
      if (spec.fleet[i].harvester && !spec.fleet[i].battery)
        c.report("$.fleet[" + std::to_string(i) + "]", fleet->line(),
                 "a harvester needs a battery to recharge");
  }

  if (const Value* t = c.object_member(o, "topology")) {
    if (engine == Engine::Ami)
      c.report("$.topology", t->line(),
               "the ami engine has a fixed home topology; remove this "
               "section");
    else
      spec.topology = load_topology(c, *t, "$.topology", engine);
  }

  if (const Value* w = c.object_member(o, "workload"))
    spec.workload = load_workload(c, *w, "$.workload", engine);

  if (const Value* f = c.object_member(o, "faults")) {
    if (engine == Engine::Ami)
      c.report("$.faults", f->line(),
               "fault injection is a net-engine feature; remove this "
               "section");
    else if (engine == Engine::Aiot)
      c.report("$.faults", f->line(),
               "the aiot engine's only fault process is energy brown-out, "
               "which the wireless-power field drives; remove this section");
    else
      spec.faults = load_faults(c, *f, "$.faults");
  }

  if (const Value* r = c.object_member(o, "run")) {
    spec.run = load_run(c, *r, "$.run");
    if (spec.run.shards != 0) {
      bool battery_fleet = false;
      for (const FleetGroup& g : spec.fleet)
        if (g.battery) battery_fleet = true;
      if (engine != Engine::Net)
        c.report("$.run.shards", r->line(),
                 "sharded execution is a net-engine feature; remove the "
                 "key or the non-sensor fleet groups");
      else if (spec.faults)
        c.report("$.run.shards", r->line(),
                 "the sharded engine does not support fault injection "
                 "(routing re-convergence is global); remove $.faults or "
                 "run unsharded");
      else if (battery_fleet)
        c.report("$.run.shards", r->line(),
                 "the sharded engine does not support battery-coupled "
                 "fleets; drop the battery or run unsharded");
    }
  }

  // Every backscatter tag carries its storage capacitor, so the aiot
  // engine is always energy-coupled and SoC assertions are valid.
  bool has_energy = engine == Engine::Aiot;
  for (const FleetGroup& g : spec.fleet)
    if (g.battery) has_energy = true;

  if (const Value* a = o.get("assertions")) {
    if (!a->is_array()) {
      c.report("$.assertions", a->line(),
               std::string("expected array, got ") +
                   json::to_string(a->kind()));
    } else {
      for (std::size_t i = 0; i < a->items().size(); ++i) {
        const Value& av = a->items()[i];
        const std::string apath = "$.assertions[" + std::to_string(i) + "]";
        if (!av.is_object()) {
          c.report(apath, av.line(),
                   std::string("expected object, got ") +
                       json::to_string(av.kind()));
          continue;
        }
        spec.assertions.push_back(
            load_assertion(c, av, apath, engine, has_energy));
      }
    }
  }

  o.finish();

  if (out.diagnostics.empty()) out.spec = std::move(spec);
  return out;
}

LoadResult Loader::load_file(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LoadResult out;
    out.diagnostics.push_back(
        Diagnostic{"$", 0, "cannot open file: " + path});
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return load_text(ss.str());
}

}  // namespace ambisim::scen
