#include "ambisim/scen/build.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "ambisim/energy/harvester.hpp"
#include "ambisim/exec/runner.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/shard/engine.hpp"
#include "ambisim/tech/technology.hpp"

namespace ambisim::scen {

namespace u = ambisim::units;

namespace {

energy::Battery::Spec battery_spec(const std::string& kind) {
  if (kind == "alkaline_aa") return energy::Battery::alkaline_aa();
  if (kind == "li_ion_1000mAh") return energy::Battery::li_ion_1000mAh();
  if (kind == "thin_film_1mAh") return energy::Battery::thin_film_1mAh();
  return energy::Battery::coin_cell_cr2032();
}

double harvest_watt(const HarvesterSpec& h) {
  if (h.area_cm2 > 0.0) {
    const energy::SolarHarvester pv(u::Area(h.area_cm2 * 1e-4), h.efficiency,
                                    /*indoor=*/true);
    return pv.average_power().value();
  }
  return h.avg_watt;
}

}  // namespace

net::PacketSimConfig build_packet_config(const ScenarioSpec& spec) {
  if (spec.engine() != Engine::Net)
    throw std::invalid_argument(
        "build_packet_config: spec lowers onto the ami engine");

  const WorkloadSpec& w = spec.workload;
  net::PacketSimConfig c;
  c.node_count = spec.sensor_count() + 1;  // + sink node 0
  c.field_side = u::Length(spec.topology.field_side_m);
  c.radio_range = u::Length(spec.topology.radio_range_m);
  c.report_period = u::Time(w.report_period_s);
  c.packet_bits = u::Information(w.packet_bits);
  c.mac = net::DutyCycledMac{u::Time(w.mac_wake_interval_s),
                             u::Time(w.mac_listen_window_s)};
  c.routing = w.routing == "min_energy" ? net::RoutingPolicy::MinEnergy
                                        : net::RoutingPolicy::MinHop;
  c.duration = u::Time(spec.run.duration_s);
  c.seed = static_cast<unsigned>(spec.run.seed);
  c.model_link_errors = w.model_link_errors;
  c.sparse_links = w.sparse_links;
  c.shards = spec.run.shards;

  switch (spec.topology.kind) {
    case TopologyKind::Random:
      // A pinned topology seed decouples placement from the run seed;
      // without one the engine draws placement from c.seed, exactly as a
      // hand-written config would.
      if (spec.topology.seed >= 0) {
        sim::Rng trng(static_cast<std::uint64_t>(spec.topology.seed));
        c.placement = net::Topology::random_field(c.node_count, c.field_side,
                                                  trng);
      }
      break;
    case TopologyKind::Grid:
      c.placement =
          net::Topology::grid(c.node_count, u::Length(spec.topology.pitch_m));
      break;
    case TopologyKind::Star:
      c.placement =
          net::Topology::star(c.node_count, u::Length(spec.topology.radius_m));
      break;
  }

  const FleetGroup* energy_group = nullptr;
  for (const FleetGroup& g : spec.fleet)
    if (g.battery) energy_group = &g;

  if (spec.faults || energy_group != nullptr) {
    net::PacketFaultConfig f;
    const FaultSpec fs = spec.faults.value_or(FaultSpec{});
    f.schedule.seed = spec.run.seed;
    f.schedule.crash_mttf_s = fs.crash_mttf_s;
    f.schedule.crash_mttr_s = fs.crash_mttr_s;
    f.schedule.reboot_s = fs.reboot_s;
    f.schedule.link_mtbf_s = fs.link_mtbf_s;
    f.schedule.link_mttr_s = fs.link_mttr_s;
    f.schedule.corruption_rate = fs.corruption_rate;
    f.schedule.clock_drift_ppm = fs.clock_drift_ppm;
    f.schedule.sink_immune = fs.sink_immune;
    f.retry.max_attempts = fs.retry.max_attempts;
    f.retry.timeout_s = fs.retry.timeout_s;
    f.retry.backoff = fs.retry.backoff;
    f.retry.max_backoff_s = fs.retry.max_backoff_s;
    f.deadline = u::Time(fs.deadline_s);
    if (energy_group != nullptr) {
      fault::EnergyCouplingConfig e;
      e.battery = battery_spec(energy_group->battery->kind);
      e.initial_soc = energy_group->battery->initial_soc;
      e.brownout_cutoff_soc = energy_group->battery->brownout_cutoff_soc;
      e.brownout_recovery_soc = energy_group->battery->brownout_recovery_soc;
      if (energy_group->harvester)
        e.harvest_avg_watt = harvest_watt(*energy_group->harvester);
      e.baseline_watt = energy_group->baseline_watt;
      f.energy = e;
    }
    c.faults = f;
  }
  return c;
}

aiot::WptSimConfig build_wpt_config(const ScenarioSpec& spec) {
  if (spec.engine() != Engine::Aiot)
    throw std::invalid_argument(
        "build_wpt_config: spec has no backscatter fleet");

  aiot::WptSimConfig c;
  c.tag_count = spec.tag_count();
  c.seed = spec.run.seed;
  c.duration_s = spec.run.duration_s;
  c.gateway_tx_w = spec.workload.gateway_tx_w;
  c.tag_loss_db = spec.workload.tag_loss_db;
  c.report_period_s = spec.workload.report_period_s;
  c.packet_bits = spec.workload.packet_bits;

  const int n = c.tag_count + 1;  // + gateway node 0
  switch (spec.topology.kind) {
    case TopologyKind::Random:
      c.field_side = u::Length(spec.topology.field_side_m);
      if (spec.topology.seed >= 0) {
        sim::Rng trng(static_cast<std::uint64_t>(spec.topology.seed));
        c.placement = net::Topology::random_field(n, c.field_side, trng);
      }
      break;
    case TopologyKind::Grid:
      c.placement = net::Topology::grid(n, u::Length(spec.topology.pitch_m));
      break;
    case TopologyKind::Star:
      c.placement = net::Topology::star(n, u::Length(spec.topology.radius_m));
      break;
  }

  // The tag group's baseline draw, when given, replaces the default
  // retention draw — the one energy knob a backscatter spec may turn.
  for (const FleetGroup& g : spec.fleet)
    if (g.device_class == DeviceClass::Backscatter && g.baseline_watt > 0.0)
      c.sleep_watt = g.baseline_watt;
  return c;
}

core::AmiScenarioConfig build_ami_config(const ScenarioSpec& spec) {
  if (spec.engine() != Engine::Ami)
    throw std::invalid_argument(
        "build_ami_config: spec lowers onto the net engine");

  core::AmiScenarioConfig c;
  c.sensor_count = spec.sensor_count();
  c.events_per_hour = spec.workload.events_per_hour;
  c.duration = u::Time(spec.run.duration_s);
  c.sensor_report = u::Information(spec.workload.sensor_report_bits);
  c.context_message = u::Information(spec.workload.context_message_bits);
  c.technology =
      tech::TechnologyLibrary::standard().node(spec.workload.technology);
  c.seed = static_cast<unsigned>(spec.run.seed);
  return c;
}

void ReplicationOutcome::fold_into(fault::Digest& d) const {
  d.fold(delivered_fraction);
  d.fold(goodput_fraction);
  d.fold(availability);
  d.fold(mttf_s);
  d.fold(mttr_s);
  d.fold(mean_hops);
  d.fold(generated);
  d.fold(delivered);
  d.fold(lost);
  d.fold(delayed);
  d.fold(mean_final_soc);
  d.fold(min_final_soc);
  for (const double s : final_soc) d.fold(s);
  d.fold(latency_p50_s);
  d.fold(latency_p95_s);
  d.fold(events);
  d.fold(responses);
  d.fold(personal_battery_days);
  d.fold(system_power_w);
  d.fold(sensor_average_power_w);
}

namespace {

ReplicationOutcome summarize_net(const net::PacketSimResult& r) {
  ReplicationOutcome o;
  o.delivered_fraction = r.delivered_fraction();
  o.goodput_fraction = r.goodput_fraction();
  o.availability = r.availability;
  o.mttf_s = r.mttf_s;
  o.mttr_s = r.mttr_s;
  o.mean_hops = r.mean_hops;
  o.generated = r.generated;
  o.delivered = r.delivered;
  o.lost = r.lost();
  o.delayed = r.delayed;
  if (!r.end_to_end_latency.empty()) {
    o.latency_p50_s = r.end_to_end_latency.median();
    o.latency_p95_s = r.end_to_end_latency.percentile(95.0);
  }
  o.final_soc = r.final_soc;
  double sum = 0.0, mn = 2.0;
  int batteries = 0;
  for (const double s : r.final_soc) {
    if (s < 0.0) continue;  // batteryless node (immune sink)
    sum += s;
    mn = std::min(mn, s);
    ++batteries;
  }
  if (batteries > 0) {
    o.mean_final_soc = sum / batteries;
    o.min_final_soc = mn;
  }
  return o;
}

ReplicationOutcome summarize_aiot(const aiot::WptSimResult& r) {
  ReplicationOutcome o;
  o.delivered_fraction = r.delivered_fraction;
  o.goodput_fraction = r.coverage_fraction;
  o.availability = r.availability;
  o.mttf_s = r.mttf_s;
  o.mttr_s = r.mttr_s;
  o.generated = r.offered;
  o.delivered = r.bursts;
  o.lost = r.offered - r.bursts;  // slots the tag sat out dark
  o.latency_p50_s = r.charge_latency_p50_s;
  o.latency_p95_s = r.charge_latency_p95_s;
  o.final_soc = r.final_soc;
  double sum = 0.0, mn = 2.0;
  int caps = 0;
  for (const double s : r.final_soc) {
    if (s < 0.0) continue;  // the mains-powered gateway
    sum += s;
    mn = std::min(mn, s);
    ++caps;
  }
  if (caps > 0) {
    o.mean_final_soc = sum / caps;
    o.min_final_soc = mn;
  }
  return o;
}

ReplicationOutcome summarize_ami(const core::AmiScenarioResult& r) {
  ReplicationOutcome o;
  o.events = r.events;
  o.responses = r.responses_rendered;
  // The ami engine's "delivered fraction" is the fraction of context
  // events that came back as rendered responses.
  o.delivered_fraction =
      r.events > 0 ? static_cast<double>(r.responses_rendered) / r.events
                   : 0.0;
  o.goodput_fraction = o.delivered_fraction;
  if (!r.end_to_end_latency.empty()) {
    o.latency_p50_s = r.end_to_end_latency.median();
    o.latency_p95_s = r.end_to_end_latency.percentile(95.0);
  }
  o.personal_battery_days = r.personal_battery_days;
  o.system_power_w = r.system_power.value();
  o.sensor_average_power_w = r.sensor_average_power;
  return o;
}

double observe(const RunSummary& s, const AssertionSpec& a) {
  const auto mean = [&](auto get) {
    if (s.replications.empty()) return 0.0;
    double sum = 0.0;
    for (const ReplicationOutcome& r : s.replications) sum += get(r);
    return sum / static_cast<double>(s.replications.size());
  };
  if (a.check == "delivered_fraction")
    return mean([](const auto& r) { return r.delivered_fraction; });
  if (a.check == "goodput_fraction" || a.check == "responses_fraction" ||
      a.check == "coverage_fraction")
    return mean([](const auto& r) { return r.goodput_fraction; });
  if (a.check == "availability")
    return mean([](const auto& r) { return r.availability; });
  if (a.check == "mttf_s")
    return mean([](const auto& r) { return r.mttf_s; });
  if (a.check == "mttr_s")
    return mean([](const auto& r) { return r.mttr_s; });
  if (a.check == "latency_p50_s")
    return mean([](const auto& r) { return r.latency_p50_s; });
  if (a.check == "latency_p95_s")
    return mean([](const auto& r) { return r.latency_p95_s; });
  if (a.check == "mean_hops")
    return mean([](const auto& r) { return r.mean_hops; });
  if (a.check == "generated")
    return mean([](const auto& r) { return double(r.generated); });
  if (a.check == "delivered")
    return mean([](const auto& r) { return double(r.delivered); });
  if (a.check == "mean_final_soc")
    return mean([](const auto& r) { return r.mean_final_soc; });
  if (a.check == "min_final_soc")
    return mean([](const auto& r) { return r.min_final_soc; });
  if (a.check == "final_soc") {
    // Per-node checks read replication 0 — the spec's own seed.
    if (s.replications.empty()) return -1.0;
    const auto& soc = s.replications.front().final_soc;
    if (a.node < 0 || static_cast<std::size_t>(a.node) >= soc.size())
      return -1.0;
    return soc[static_cast<std::size_t>(a.node)];
  }
  if (a.check == "events")
    return mean([](const auto& r) { return double(r.events); });
  if (a.check == "responses_rendered")
    return mean([](const auto& r) { return double(r.responses); });
  if (a.check == "personal_battery_days")
    return mean([](const auto& r) { return r.personal_battery_days; });
  if (a.check == "system_power_w")
    return mean([](const auto& r) { return r.system_power_w; });
  if (a.check == "sensor_average_power_w")
    return mean([](const auto& r) { return r.sensor_average_power_w; });
  if (a.check == "obs_counter") {
    const obs::Counter* c = obs::context().metrics.find_counter(a.metric);
    return c != nullptr ? static_cast<double>(c->value()) : 0.0;
  }
  return 0.0;
}

bool compare(const std::string& op, double observed, double value) {
  if (op == ">=") return observed >= value;
  if (op == ">") return observed > value;
  if (op == "<=") return observed <= value;
  if (op == "<") return observed < value;
  if (op == "==") return observed == value;
  if (op == "!=") return observed != value;
  return false;
}

}  // namespace

RunSummary run_scenario(const ScenarioSpec& spec,
                        const RunOverrides& overrides) {
  RunSummary out;
  out.engine = spec.engine();

  const int reps = overrides.replications > 0 ? overrides.replications
                                              : spec.run.replications;
  const int pool = overrides.pool >= 0 ? overrides.pool : spec.run.pool;

  bool needs_obs = false;
  for (const AssertionSpec& a : spec.assertions)
    if (a.check == "obs_counter") needs_obs = true;
  const bool was_enabled = obs::enabled();
  if (needs_obs) {
    obs::set_enabled(true);
    obs::reset();
  }

  exec::ExecConfig ec;
  ec.threads = static_cast<unsigned>(pool);
  exec::ReplicationRunner runner(ec);

  if (out.engine == Engine::Net) {
    net::PacketSimConfig base = build_packet_config(spec);
    if (overrides.shards >= 0) base.shards = overrides.shards;
    out.replications = runner.run(
        static_cast<std::size_t>(reps), spec.run.seed,
        [&](sim::Rng& rng, std::size_t i) {
          // Replication 0 — the spec verbatim — is the profiled run; the
          // binding is a no-op for every other replication, so only one
          // worker ever records.
          obs::ProfilerBinding pbind(i == 0 ? overrides.profiler : nullptr);
          net::PacketSimConfig c = base;
          if (i > 0) {
            // Replication 0 is the spec verbatim; later replications draw
            // workload and fault-script seeds from their own substream.
            c.seed = static_cast<unsigned>(rng.engine()());
            if (c.faults) c.faults->schedule.seed = rng.engine()();
          }
          if (c.shards >= 1) {
            // Region-sharded engine with a single-threaded inner pool:
            // the replication batch already owns the workers, and the
            // checksum is pool-size independent anyway.
            return summarize_net(
                shard::simulate_packets_sharded(c, {c.shards, 1}).packets);
          }
          return summarize_net(net::simulate_packets(c));
        });
  } else if (out.engine == Engine::Aiot) {
    const aiot::WptSimConfig base = build_wpt_config(spec);
    out.replications = runner.run(
        static_cast<std::size_t>(reps), spec.run.seed,
        [&](sim::Rng& rng, std::size_t i) {
          obs::ProfilerBinding pbind(i == 0 ? overrides.profiler : nullptr);
          aiot::WptSimConfig c = base;
          // Replication 0 is the spec verbatim; later replications redraw
          // an unpinned layout through their own seed (a pinned grid/star
          // or seeded random placement stays put, like the net engine).
          if (i > 0) c.seed = rng.engine()();
          return summarize_aiot(aiot::simulate_wpt(c));
        });
  } else {
    const core::AmiScenarioConfig base = build_ami_config(spec);
    out.replications = runner.run(
        static_cast<std::size_t>(reps), spec.run.seed,
        [&](sim::Rng& rng, std::size_t i) {
          obs::ProfilerBinding pbind(i == 0 ? overrides.profiler : nullptr);
          core::AmiScenarioConfig c = base;
          if (i > 0) c.seed = static_cast<unsigned>(rng.engine()());
          return summarize_ami(core::run_ami_scenario(c));
        });
  }

  fault::Digest digest;
  for (const ReplicationOutcome& r : out.replications) {
    out.delivered_fraction.add(r.delivered_fraction);
    out.availability.add(r.availability);
    out.latency_p95_s.add(r.latency_p95_s);
    if (r.mean_final_soc >= 0.0) out.mean_final_soc.add(r.mean_final_soc);
    r.fold_into(digest);
  }
  out.checksum = digest.value();

  for (const AssertionSpec& a : spec.assertions) {
    AssertionResult res;
    res.spec = a;
    res.observed = observe(out, a);
    res.passed = compare(a.op, res.observed, a.value);
    if (!res.passed) out.assertions_passed = false;
    out.assertions.push_back(std::move(res));
  }

  if (needs_obs && !was_enabled) obs::set_enabled(false);
  return out;
}

void RunSummary::write_report(std::ostream& os) const {
  os << "engine: " << to_string(engine) << ", replications "
     << replications.size() << '\n';
  if (engine == Engine::Net) {
    os << "  delivered fraction : " << delivered_fraction.mean();
    if (replications.size() > 1)
      os << " +/- " << delivered_fraction.stddev();
    os << '\n';
    os << "  availability       : " << availability.mean() << '\n';
    os << "  latency p95        : " << latency_p95_s.mean() << " s\n";
    if (mean_final_soc.count() > 0)
      os << "  mean final SoC     : " << mean_final_soc.mean() << '\n';
  } else if (engine == Engine::Aiot) {
    os << "  delivered fraction : " << delivered_fraction.mean();
    if (replications.size() > 1)
      os << " +/- " << delivered_fraction.stddev();
    os << '\n';
    sim::Accumulator coverage;
    for (const ReplicationOutcome& r : replications)
      coverage.add(r.goodput_fraction);
    os << "  tag coverage       : " << coverage.mean() << '\n';
    os << "  availability       : " << availability.mean() << '\n';
    os << "  charge latency p95 : " << latency_p95_s.mean() << " s\n";
    if (mean_final_soc.count() > 0)
      os << "  mean final SoC     : " << mean_final_soc.mean() << '\n';
  } else if (!replications.empty()) {
    const ReplicationOutcome& r = replications.front();
    os << "  events/responses   : " << r.events << " / " << r.responses
       << '\n'
       << "  latency p50/p95    : " << r.latency_p50_s << " / "
       << r.latency_p95_s << " s\n"
       << "  personal battery   : " << r.personal_battery_days << " days\n"
       << "  system power       : " << r.system_power_w << " W\n";
  }
  os << "  checksum           : " << checksum << '\n';
  for (const AssertionResult& a : assertions) {
    os << "  assert " << a.spec.check;
    if (a.spec.node >= 0) os << "(" << a.spec.node << ")";
    if (!a.spec.metric.empty()) os << "[" << a.spec.metric << "]";
    os << ' ' << a.spec.op << ' ' << a.spec.value << ": observed "
       << a.observed << " -> " << (a.passed ? "PASS" : "FAIL") << '\n';
  }
}

}  // namespace ambisim::scen
