#include "ambisim/scen/spec.hpp"

#include "ambisim/scen/json.hpp"

namespace ambisim::scen {

const char* to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::MicroWatt: return "microwatt";
    case DeviceClass::MilliWatt: return "milliwatt";
    case DeviceClass::Watt: return "watt";
    case DeviceClass::Backscatter: return "backscatter";
  }
  return "?";
}

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::Random: return "random";
    case TopologyKind::Grid: return "grid";
    case TopologyKind::Star: return "star";
  }
  return "?";
}

const char* to_string(Engine e) {
  switch (e) {
    case Engine::Net: return "net";
    case Engine::Ami: return "ami";
    case Engine::Aiot: return "aiot";
  }
  return "?";
}

Engine ScenarioSpec::engine() const {
  // Any backscatter group selects the wireless-power field; the Watt group
  // beside it is the gateway, not the ami server.
  for (const FleetGroup& g : fleet)
    if (g.device_class == DeviceClass::Backscatter) return Engine::Aiot;
  for (const FleetGroup& g : fleet)
    if (g.device_class != DeviceClass::MicroWatt) return Engine::Ami;
  return Engine::Net;
}

int ScenarioSpec::sensor_count() const {
  int n = 0;
  for (const FleetGroup& g : fleet)
    if (g.device_class == DeviceClass::MicroWatt) n += g.count;
  return n;
}

int ScenarioSpec::tag_count() const {
  int n = 0;
  for (const FleetGroup& g : fleet)
    if (g.device_class == DeviceClass::Backscatter) n += g.count;
  return n;
}

namespace {

using json::Value;

Value battery_json(const BatterySpec& b) {
  Value o = Value::object();
  o.set("kind", Value::string(b.kind));
  o.set("initial_soc", Value::number(b.initial_soc));
  o.set("brownout_cutoff_soc", Value::number(b.brownout_cutoff_soc));
  o.set("brownout_recovery_soc", Value::number(b.brownout_recovery_soc));
  return o;
}

Value harvester_json(const HarvesterSpec& h) {
  Value o = Value::object();
  if (h.area_cm2 > 0.0) {
    o.set("area_cm2", Value::number(h.area_cm2));
    o.set("efficiency", Value::number(h.efficiency));
  } else {
    o.set("avg_watt", Value::number(h.avg_watt));
  }
  return o;
}

}  // namespace

std::string to_json(const ScenarioSpec& spec) {
  Value root = Value::object();
  root.set("name", Value::string(spec.name));

  Value fleet = Value::array();
  for (const FleetGroup& g : spec.fleet) {
    Value go = Value::object();
    go.set("group", Value::string(g.name));
    go.set("class", Value::string(to_string(g.device_class)));
    go.set("count", Value::number(static_cast<double>(g.count)));
    if (g.battery) go.set("battery", battery_json(*g.battery));
    if (g.harvester) go.set("harvester", harvester_json(*g.harvester));
    if (g.baseline_watt > 0.0)
      go.set("baseline_watt", Value::number(g.baseline_watt));
    fleet.push(std::move(go));
  }
  root.set("fleet", std::move(fleet));

  if (spec.engine() != Engine::Ami) {
    Value topo = Value::object();
    topo.set("kind", Value::string(to_string(spec.topology.kind)));
    switch (spec.topology.kind) {
      case TopologyKind::Random:
        topo.set("field_side_m", Value::number(spec.topology.field_side_m));
        break;
      case TopologyKind::Grid:
        topo.set("pitch_m", Value::number(spec.topology.pitch_m));
        break;
      case TopologyKind::Star:
        topo.set("radius_m", Value::number(spec.topology.radius_m));
        break;
    }
    // Backscatter tags talk only to the gateway; the multi-hop radio range
    // is a net-engine knob.
    if (spec.engine() == Engine::Net)
      topo.set("radio_range_m", Value::number(spec.topology.radio_range_m));
    if (spec.topology.seed >= 0)
      topo.set("seed",
               Value::number(static_cast<double>(spec.topology.seed)));
    root.set("topology", std::move(topo));
  }

  Value wl = Value::object();
  if (spec.engine() == Engine::Net) {
    wl.set("report_period_s", Value::number(spec.workload.report_period_s));
    wl.set("packet_bits", Value::number(spec.workload.packet_bits));
    Value mac = Value::object();
    mac.set("wake_interval_s",
            Value::number(spec.workload.mac_wake_interval_s));
    mac.set("listen_window_s",
            Value::number(spec.workload.mac_listen_window_s));
    wl.set("mac", std::move(mac));
    wl.set("routing", Value::string(spec.workload.routing));
    wl.set("model_link_errors",
           Value::boolean(spec.workload.model_link_errors));
    // Written only when engaged so pre-existing specs (and the fuzzer's
    // golden generation checksum) serialize unchanged.
    if (spec.workload.sparse_links)
      wl.set("sparse_links", Value::boolean(true));
  } else if (spec.engine() == Engine::Aiot) {
    wl.set("report_period_s", Value::number(spec.workload.report_period_s));
    wl.set("packet_bits", Value::number(spec.workload.packet_bits));
    wl.set("gateway_tx_w", Value::number(spec.workload.gateway_tx_w));
    wl.set("tag_loss_db", Value::number(spec.workload.tag_loss_db));
  } else {
    wl.set("events_per_hour", Value::number(spec.workload.events_per_hour));
    wl.set("sensor_report_bits",
           Value::number(spec.workload.sensor_report_bits));
    wl.set("context_message_bits",
           Value::number(spec.workload.context_message_bits));
    wl.set("technology", Value::string(spec.workload.technology));
  }
  root.set("workload", std::move(wl));

  if (spec.faults) {
    const FaultSpec& f = *spec.faults;
    Value fo = Value::object();
    fo.set("crash_mttf_s", Value::number(f.crash_mttf_s));
    fo.set("crash_mttr_s", Value::number(f.crash_mttr_s));
    fo.set("reboot_s", Value::number(f.reboot_s));
    fo.set("link_mtbf_s", Value::number(f.link_mtbf_s));
    fo.set("link_mttr_s", Value::number(f.link_mttr_s));
    fo.set("corruption_rate", Value::number(f.corruption_rate));
    fo.set("clock_drift_ppm", Value::number(f.clock_drift_ppm));
    fo.set("sink_immune", Value::boolean(f.sink_immune));
    fo.set("deadline_s", Value::number(f.deadline_s));
    Value ro = Value::object();
    ro.set("max_attempts",
           Value::number(static_cast<double>(f.retry.max_attempts)));
    ro.set("timeout_s", Value::number(f.retry.timeout_s));
    ro.set("backoff", Value::number(f.retry.backoff));
    ro.set("max_backoff_s", Value::number(f.retry.max_backoff_s));
    fo.set("retry", std::move(ro));
    root.set("faults", std::move(fo));
  }

  Value run = Value::object();
  run.set("duration_s", Value::number(spec.run.duration_s));
  run.set("seed", Value::number(static_cast<double>(spec.run.seed)));
  run.set("replications",
          Value::number(static_cast<double>(spec.run.replications)));
  run.set("pool", Value::number(static_cast<double>(spec.run.pool)));
  // Opt-in like sparse_links: absent unless set, so canonical JSON (and
  // the fuzzer goldens hashed from it) is unchanged for unsharded specs.
  if (spec.run.shards != 0)
    run.set("shards", Value::number(static_cast<double>(spec.run.shards)));
  root.set("run", std::move(run));

  Value asserts = Value::array();
  for (const AssertionSpec& a : spec.assertions) {
    Value ao = Value::object();
    ao.set("check", Value::string(a.check));
    if (a.node >= 0)
      ao.set("node", Value::number(static_cast<double>(a.node)));
    if (!a.metric.empty()) ao.set("metric", Value::string(a.metric));
    ao.set("op", Value::string(a.op));
    ao.set("value", Value::number(a.value));
    asserts.push(std::move(ao));
  }
  root.set("assertions", std::move(asserts));

  return json::dump(root, 2) + "\n";
}

}  // namespace ambisim::scen
