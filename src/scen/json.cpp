#include "ambisim/scen/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <system_error>

namespace ambisim::scen::json {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::Null: return "null";
    case Kind::Bool: return "bool";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "?";
}

ParseError::ParseError(std::string message, int line, int col)
    : std::runtime_error(std::to_string(line) + ":" + std::to_string(col) +
                         ": " + message),
      line_(line),
      col_(col) {}

bool Value::as_bool() const {
  if (kind_ != Kind::Bool)
    throw std::runtime_error(std::string("expected bool, got ") +
                             to_string(kind_));
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number)
    throw std::runtime_error(std::string("expected number, got ") +
                             to_string(kind_));
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String)
    throw std::runtime_error(std::string("expected string, got ") +
                             to_string(kind_));
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::Array)
    throw std::runtime_error(std::string("expected array, got ") +
                             to_string(kind_));
  return arr_;
}

const std::vector<Value::Member>& Value::members() const {
  if (kind_ != Kind::Object)
    throw std::runtime_error(std::string("expected object, got ") +
                             to_string(kind_));
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t Value::size() const {
  switch (kind_) {
    case Kind::Array: return arr_.size();
    case Kind::Object: return obj_.size();
    case Kind::String: return str_.size();
    default: return 0;
  }
}

Value Value::null() { return Value(); }

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(double x) {
  if (!std::isfinite(x))
    throw std::runtime_error("non-finite number cannot enter a JSON value");
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = x;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

void Value::push(Value v) {
  if (kind_ != Kind::Array) throw std::runtime_error("push on non-array");
  arr_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  if (kind_ != Kind::Object) throw std::runtime_error("set on non-object");
  if (find(key) != nullptr)
    throw std::runtime_error("duplicate key: " + key);
  obj_.emplace_back(std::move(key), std::move(v));
}

// ---------------------------------------------------------------------------
// Parser

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ < text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, col_);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/') {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    // Tolerance: // line and /* block */ comments for hand-edited specs.
    if (pos_ + 1 >= text_.size()) fail("stray '/'");
    advance();  // '/'
    const char c = peek();
    if (c == '/') {
      while (pos_ < text_.size() && peek() != '\n') advance();
    } else if (c == '*') {
      advance();
      while (true) {
        if (pos_ >= text_.size()) fail("unterminated block comment");
        if (advance() == '*' && peek() == '/') {
          advance();
          return;
        }
      }
    } else {
      fail("stray '/'");
    }
  }

  Value parse_value(int depth) {
    if (depth > kMaxNestingDepth) fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const int vline = line_;
    const int vcol = col_;
    Value v = parse_value_inner(depth);
    v.line_ = vline;
    v.col_ = vcol;
    return v;
  }

  Value parse_value_inner(int depth) {
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::string(parse_string());
      case 't': expect_word("true"); return Value::boolean(true);
      case 'f': expect_word("false"); return Value::boolean(false);
      case 'n':
        // Reject "nan" with a targeted message before "null" matching.
        if (text_.substr(pos_, 3) == "nan")
          fail("NaN is not a valid JSON number");
        expect_word("null");
        return Value::null();
      case 'N': fail("NaN is not a valid JSON number");
      case 'I': fail("Infinity is not a valid JSON number");
      case 'i': fail("Infinity is not a valid JSON number");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void expect_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w)
      fail("invalid literal (expected '" + std::string(w) + "')");
    for (std::size_t i = 0; i < w.size(); ++i) advance();
  }

  Value parse_number() {
    const int nline = line_;
    const int ncol = col_;
    const std::size_t start = pos_;
    if (peek() == '-') advance();
    if (peek() == 'I' || peek() == 'i')
      fail("Infinity is not a valid JSON number");
    if (!is_digit(peek())) fail("malformed number");
    if (peek() == '0') {
      advance();
      if (is_digit(peek())) fail("leading zeros are not allowed");
    } else {
      while (is_digit(peek())) advance();
    }
    if (peek() == '.') {
      advance();
      if (!is_digit(peek())) fail("malformed number (digit after '.')");
      while (is_digit(peek())) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (!is_digit(peek())) fail("malformed number (exponent digits)");
      while (is_digit(peek())) advance();
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    if (ec == std::errc::result_out_of_range || !std::isfinite(out))
      throw ParseError("number out of range (overflows to infinity)", nline,
                       ncol);
    if (ec != std::errc() || ptr != tok.data() + tok.size())
      throw ParseError("malformed number", nline, ncol);
    Value v = Value::number(out);
    return v;
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  static bool is_hex(char c) {
    return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size() || !is_hex(peek()))
        fail("invalid \\u escape (expected 4 hex digits)");
      const char c = advance();
      v <<= 4;
      if (is_digit(c))
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else
        v |= static_cast<unsigned>(c - 'A' + 10);
    }
    return v;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    advance();  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated string escape");
      const char e = advance();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (peek() != '\\') fail("unpaired UTF-16 surrogate");
            advance();
            if (peek() != 'u') fail("unpaired UTF-16 surrogate");
            advance();
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("invalid UTF-16 surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Value parse_array(int depth) {
    advance();  // '['
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      advance();
      return v;
    }
    while (true) {
      v.arr_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        advance();
        skip_ws();
        if (peek() == ']') {  // tolerance: trailing comma
          advance();
          return v;
        }
        continue;
      }
      if (c == ']') {
        advance();
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  Value parse_object(int depth) {
    advance();  // '{'
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      advance();
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key in object");
      const int kline = line_;
      const int kcol = col_;
      std::string key = parse_string();
      if (v.find(key) != nullptr)
        throw ParseError("duplicate key \"" + key + "\"", kline, kcol);
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      advance();
      v.obj_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        advance();
        skip_ws();
        if (peek() == '}') {  // tolerance: trailing comma
          advance();
          return v;
        }
        continue;
      }
      if (c == '}') {
        advance();
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

Value parse(std::string_view text) { return Parser(text).run(); }

// ---------------------------------------------------------------------------
// Writer

std::string format_number(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_into(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto pad = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += v.as_bool() ? "true" : "false"; return;
    case Kind::Number: out += format_number(v.as_number()); return;
    case Kind::String: escape_into(out, v.as_string()); return;
    case Kind::Array: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      if (pretty) out.push_back('\n');
      for (std::size_t i = 0; i < items.size(); ++i) {
        pad(depth + 1);
        dump_into(out, items[i], indent, depth + 1);
        if (i + 1 < items.size()) out.push_back(',');
        if (pretty)
          out.push_back('\n');
        else if (i + 1 < items.size())
          out.push_back(' ');
      }
      pad(depth);
      out.push_back(']');
      return;
    }
    case Kind::Object: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      if (pretty) out.push_back('\n');
      for (std::size_t i = 0; i < members.size(); ++i) {
        pad(depth + 1);
        escape_into(out, members[i].first);
        out += ": ";
        dump_into(out, members[i].second, indent, depth + 1);
        if (i + 1 < members.size()) out.push_back(',');
        if (pretty)
          out.push_back('\n');
        else if (i + 1 < members.size())
          out.push_back(' ');
      }
      pad(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_into(out, v, indent, 0);
  return out;
}

}  // namespace ambisim::scen::json
