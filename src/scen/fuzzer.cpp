#include "ambisim/scen/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>

#include "ambisim/exec/seed.hpp"
#include "ambisim/fault/reliability.hpp"
#include "ambisim/scen/build.hpp"
#include "ambisim/scen/loader.hpp"

namespace ambisim::scen {

namespace {

/// Private SplitMix64 draw stream: portable (unlike std:: distributions)
/// and stateless across scenarios — scenario `i` never sees scenario
/// `i-1`'s draws.
class Stream {
 public:
  explicit Stream(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += exec::kSplitMix64Gamma;
    return exec::splitmix64(state_);
  }
  /// Uniform in [0, 1) with 53 random bits.
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  /// Uniform in [lo, hi], rounded to 3 decimals so specs stay readable.
  double range(double lo, double hi) {
    const double v = lo + (hi - lo) * unit();
    return std::round(v * 1000.0) / 1000.0;
  }
  int irange(int lo, int hi) {
    return lo + static_cast<int>(next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
  bool chance(double p) { return unit() < p; }

 private:
  std::uint64_t state_;
};

void fold_bytes(fault::Digest& d, const std::string& s) {
  d.fold(static_cast<std::uint64_t>(s.size()));
  std::uint64_t word = 0;
  std::size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    std::memcpy(&word, s.data() + i, 8);
    d.fold(word);
  }
  word = 0;
  if (i < s.size()) {
    std::memcpy(&word, s.data() + i, s.size() - i);
    d.fold(word);
  }
}

}  // namespace

Fuzzer::Fuzzer(FuzzConfig cfg) : cfg_(cfg) {}

ScenarioSpec Fuzzer::generate(std::uint64_t index) const {
  Stream s(exec::derive_seed(cfg_.root_seed, index));
  ScenarioSpec spec;
  spec.name = "fuzz_" + std::to_string(cfg_.root_seed) + "_" +
              std::to_string(index);

  // ~15% of scenarios exercise the wireless-power field: a backscatter
  // fleet under a single Watt gateway.  No faults section and no storage
  // stanzas — the aiot engine owns the tags' whole energy lifecycle, and
  // the loader rejects both for this composition.
  if (cfg_.with_backscatter && s.chance(0.15)) {
    FleetGroup tags;
    tags.name = "tags";
    tags.device_class = DeviceClass::Backscatter;
    tags.count = s.irange(cfg_.min_sensors, cfg_.max_sensors);
    spec.fleet.push_back(std::move(tags));
    FleetGroup gw;
    gw.name = "gateway";
    gw.device_class = DeviceClass::Watt;
    gw.count = 1;
    spec.fleet.push_back(std::move(gw));

    switch (s.irange(0, 2)) {
      case 0:
        spec.topology.kind = TopologyKind::Random;
        spec.topology.field_side_m = s.range(15.0, 40.0);
        if (s.chance(0.5)) spec.topology.seed = s.irange(1, 1 << 20);
        break;
      case 1:
        spec.topology.kind = TopologyKind::Grid;
        spec.topology.pitch_m = s.range(3.0, 8.0);
        break;
      default:
        spec.topology.kind = TopologyKind::Star;
        spec.topology.radius_m = s.range(3.0, 10.0);
        break;
    }

    spec.workload.report_period_s = s.range(5.0, 30.0);
    spec.workload.packet_bits = static_cast<double>(s.irange(16, 64) * 8);
    spec.workload.gateway_tx_w = s.range(0.5, 4.0);
    spec.workload.tag_loss_db = s.range(5.0, 25.0);

    spec.run.duration_s =
        std::round(s.range(cfg_.min_duration_s, cfg_.max_duration_s));
    spec.run.seed = s.next() & 0xFFFFFFFFULL;
    spec.run.replications = s.irange(1, cfg_.max_replications);
    spec.run.pool = 0;

    // Both tautologies are aiot observables too (coverage and brown-out
    // availability are both fractions).
    spec.assertions.push_back({"delivered_fraction", "<=", 1.0, -1, ""});
    spec.assertions.push_back({"availability", "<=", 1.0, -1, ""});
    return spec;
  }

  FleetGroup g;
  g.name = "sensors";
  g.device_class = DeviceClass::MicroWatt;
  g.count = s.irange(cfg_.min_sensors, cfg_.max_sensors);
  const bool energy = cfg_.with_energy && s.chance(0.5);
  if (energy) {
    BatterySpec b;
    b.kind = s.chance(0.5) ? "coin_cell_cr2032" : "thin_film_1mAh";
    b.initial_soc = s.range(0.5, 1.0);
    b.brownout_cutoff_soc = 0.02;
    b.brownout_recovery_soc = 0.05;
    g.battery = b;
    if (s.chance(0.5)) {
      HarvesterSpec h;
      if (s.chance(0.5)) {
        h.avg_watt = s.range(0.0, 0.001);
      } else {
        h.area_cm2 = s.range(0.5, 4.0);
        h.efficiency = s.range(0.05, 0.25);
      }
      g.harvester = h;
    }
  }
  spec.fleet.push_back(std::move(g));

  switch (s.irange(0, 2)) {
    case 0:
      spec.topology.kind = TopologyKind::Random;
      spec.topology.field_side_m = s.range(20.0, 60.0);
      if (s.chance(0.5))
        spec.topology.seed = s.irange(1, 1 << 20);
      break;
    case 1:
      spec.topology.kind = TopologyKind::Grid;
      spec.topology.pitch_m = s.range(5.0, 12.0);
      break;
    default:
      spec.topology.kind = TopologyKind::Star;
      spec.topology.radius_m = s.range(5.0, 12.0);
      break;
  }
  spec.topology.radio_range_m = s.range(10.0, 18.0);

  spec.workload.report_period_s = s.range(2.0, 20.0);
  spec.workload.packet_bits = static_cast<double>(s.irange(16, 128) * 8);
  spec.workload.mac_wake_interval_s = s.range(0.1, 1.0);
  spec.workload.mac_listen_window_s = s.range(0.001, 0.01);
  spec.workload.routing = s.chance(0.25) ? "min_energy" : "min_hop";
  spec.workload.model_link_errors = s.chance(0.3);

  if (cfg_.with_faults && s.chance(0.7)) {
    FaultSpec f;
    if (s.chance(0.7)) f.crash_mttf_s = s.range(100.0, 1000.0);
    f.crash_mttr_s = s.range(10.0, 120.0);
    f.reboot_s = s.range(1.0, 10.0);
    if (s.chance(0.5)) f.link_mtbf_s = s.range(200.0, 2000.0);
    f.link_mttr_s = s.range(5.0, 60.0);
    if (s.chance(0.4)) f.corruption_rate = s.range(0.0, 0.05);
    if (s.chance(0.3)) f.clock_drift_ppm = s.range(0.0, 50.0);
    f.deadline_s = s.range(5.0, 60.0);
    f.retry.max_attempts = s.irange(2, 6);
    f.retry.timeout_s = s.range(0.05, 0.5);
    spec.faults = f;
  }

  spec.run.duration_s =
      std::round(s.range(cfg_.min_duration_s, cfg_.max_duration_s));
  spec.run.seed = s.next() & 0xFFFFFFFFULL;
  spec.run.replications = s.irange(1, cfg_.max_replications);
  spec.run.pool = 0;

  // Benign tautologies: exercise the assertion machinery without turning
  // stochastic outcomes into false failures.
  spec.assertions.push_back({"delivered_fraction", "<=", 1.0, -1, ""});
  spec.assertions.push_back({"availability", "<=", 1.0, -1, ""});
  return spec;
}

std::uint64_t Fuzzer::generation_checksum(std::uint64_t count) const {
  fault::Digest d;
  for (std::uint64_t i = 0; i < count; ++i)
    fold_bytes(d, to_json(generate(i)));
  return d.value();
}

Fuzzer::Verdict Fuzzer::check(const ScenarioSpec& spec) const {
  Verdict v;
  const auto fail = [&](std::string why) {
    v.ok = false;
    v.failure = std::move(why);
    return v;
  };

  // Invariant 1: the spec's canonical JSON loads back, and reloading is a
  // serialization fixpoint.
  const std::string text = to_json(spec);
  const LoadResult loaded = Loader{}.load_text(text);
  if (!loaded.ok())
    return fail("serialized spec fails validation: " +
                loaded.format_diagnostics());
  if (to_json(*loaded.spec) != text)
    return fail("to_json(load(to_json(spec))) is not a fixpoint");

  // Invariant 2: runs at pools 1 and 8 complete and are bit-identical.
  RunSummary p1, p8;
  try {
    RunOverrides o1;
    o1.pool = 1;
    p1 = run_scenario(*loaded.spec, o1);
    RunOverrides o8;
    o8.pool = 8;
    p8 = run_scenario(*loaded.spec, o8);
  } catch (const std::exception& e) {
    return fail(std::string("engine threw: ") + e.what());
  }
  if (p1.checksum != p8.checksum)
    return fail("pool-size dependence: checksum(pool=1) != checksum(pool=8)");

  // Invariant 3: conservation and range checks per replication.
  for (std::size_t i = 0; i < p1.replications.size(); ++i) {
    const ReplicationOutcome& r = p1.replications[i];
    const std::string at = " (replication " + std::to_string(i) + ")";
    if (r.generated < 0 || r.delivered < 0 || r.lost < 0 || r.delayed < 0)
      return fail("negative packet accounting" + at);
    if (r.delivered + r.lost > r.generated)
      return fail("conservation violated: delivered + lost > offered" + at);
    if (r.delayed > r.delivered)
      return fail("delayed > delivered" + at);
    if (r.delivered_fraction < 0.0 || r.delivered_fraction > 1.0)
      return fail("delivered_fraction outside [0, 1]" + at);
    if (r.goodput_fraction < 0.0 || r.goodput_fraction > 1.0 + 1e-12)
      return fail("goodput_fraction outside [0, 1]" + at);
    if (r.availability < 0.0 || r.availability > 1.0 + 1e-12)
      return fail("availability outside [0, 1]" + at);
    if (r.latency_p50_s < 0.0 || r.latency_p95_s < 0.0)
      return fail("negative latency percentile" + at);
    for (const double soc : r.final_soc)
      if (soc > 1.0 + 1e-12 || (soc < 0.0 && soc != -1.0))
        return fail("final SoC outside [0, 1]" + at);
  }
  if (!p1.assertions_passed)
    return fail("tautological assertion failed");
  return v;
}

Fuzzer::CampaignResult Fuzzer::run(std::uint64_t count) const {
  CampaignResult out;
  fault::Digest d;
  for (std::uint64_t i = 0; i < count; ++i) {
    const ScenarioSpec spec = generate(i);
    fold_bytes(d, to_json(spec));
    const Verdict v = check(spec);
    ++out.executed;
    if (!v.ok) {
      ++out.failures;
      out.failed.emplace_back(i, v.failure);
    }
  }
  out.spec_checksum = d.value();
  return out;
}

namespace {

using Edit = std::function<std::optional<ScenarioSpec>(const ScenarioSpec&)>;

std::vector<Edit> reduction_edits() {
  std::vector<Edit> edits;
  // Biggest wins first: each edit returns nullopt when it cannot reduce.
  edits.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (s.run.replications <= 1) return std::nullopt;
    ScenarioSpec c = s;
    c.run.replications = 1;
    return c;
  });
  edits.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (!s.faults) return std::nullopt;
    ScenarioSpec c = s;
    c.faults.reset();
    return c;
  });
  edits.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    bool any = false;
    ScenarioSpec c = s;
    for (FleetGroup& g : c.fleet) {
      // Halve the bulk device groups; singleton roles (gateway, server,
      // personal) stay put so the composition remains valid.
      if ((g.device_class == DeviceClass::MicroWatt ||
           g.device_class == DeviceClass::Backscatter) &&
          g.count > 1) {
        g.count = std::max(1, g.count / 2);
        any = true;
      }
    }
    return any ? std::optional<ScenarioSpec>(std::move(c)) : std::nullopt;
  });
  edits.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (s.run.duration_s <= 30.0) return std::nullopt;
    ScenarioSpec c = s;
    c.run.duration_s = std::max(30.0, std::round(s.run.duration_s / 2.0));
    return c;
  });
  edits.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    bool any = false;
    ScenarioSpec c = s;
    for (FleetGroup& g : c.fleet) {
      // A battery alone is droppable, but dropping only the battery from
      // under a harvester would produce an invalid spec.
      if (g.battery || g.harvester) {
        g.battery.reset();
        g.harvester.reset();
        any = true;
      }
    }
    if (!any) return std::nullopt;
    // Per-node SoC assertions lose their subject with the batteries.
    std::erase_if(c.assertions, [](const AssertionSpec& a) {
      return a.check == "final_soc" || a.check == "mean_final_soc" ||
             a.check == "min_final_soc";
    });
    return c;
  });
  edits.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (!s.workload.model_link_errors) return std::nullopt;
    ScenarioSpec c = s;
    c.workload.model_link_errors = false;
    return c;
  });
  // Zero each fault process individually (when the whole section cannot
  // go, one of its knobs often can).
  const auto zero_knob = [](double FaultSpec::* knob) {
    return [knob](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
      if (!s.faults || (*s.faults).*knob == 0.0) return std::nullopt;
      ScenarioSpec c = s;
      (*c.faults).*knob = 0.0;
      return c;
    };
  };
  edits.push_back(zero_knob(&FaultSpec::crash_mttf_s));
  edits.push_back(zero_knob(&FaultSpec::link_mtbf_s));
  edits.push_back(zero_knob(&FaultSpec::corruption_rate));
  edits.push_back(zero_knob(&FaultSpec::clock_drift_ppm));
  return edits;
}

/// Drop assertion `i` (a family of edits indexed at call time).
std::optional<ScenarioSpec> drop_assertion(const ScenarioSpec& s,
                                           std::size_t i) {
  if (i >= s.assertions.size()) return std::nullopt;
  ScenarioSpec c = s;
  c.assertions.erase(c.assertions.begin() + static_cast<std::ptrdiff_t>(i));
  return c;
}

}  // namespace

ScenarioSpec Fuzzer::shrink(
    const ScenarioSpec& spec,
    const std::function<bool(const ScenarioSpec&)>& still_fails) {
  ScenarioSpec cur = spec;
  const std::vector<Edit> edits = reduction_edits();
  bool progress = true;
  while (progress) {
    progress = false;
    for (const Edit& edit : edits) {
      if (std::optional<ScenarioSpec> cand = edit(cur);
          cand && still_fails(*cand)) {
        cur = std::move(*cand);
        progress = true;
      }
    }
    for (std::size_t i = 0; i < cur.assertions.size();) {
      if (std::optional<ScenarioSpec> cand = drop_assertion(cur, i);
          cand && still_fails(*cand)) {
        cur = std::move(*cand);
        progress = true;
        // Same index now names the next assertion.
      } else {
        ++i;
      }
    }
  }
  return cur;
}

bool Fuzzer::write_repro(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json(spec);
  return static_cast<bool>(out);
}

}  // namespace ambisim::scen
