#include "ambisim/shard/engine.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ambisim/exec/seed.hpp"
#include "ambisim/exec/thread_pool.hpp"
#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/sparse_link_table.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/obs/probe.hpp"
#include "ambisim/obs/profiler.hpp"
#include "ambisim/shard/partition.hpp"

namespace ambisim::shard {

namespace u = ambisim::units;

namespace {

/// A packet in flight, passed by value across shard boundaries: a boundary
/// hand-off carries everything the next hop needs, so shards share no
/// mutable packet state.
struct LivePacket {
  std::uint64_t flow = 0;
  int origin = -1;
  int hops_taken = 0;
  double created_s = 0.0;
  double queued_s = 0.0;
};

/// One transmission of one hop, recorded when the hop *starts* — matching
/// the legacy kernel, which charges tx/rx energy at forward time, so a
/// packet still in flight at the horizon has paid for its hops.
struct HopRecord {
  std::uint64_t flow = 0;
  int hop = 0;            ///< hop index within the flow (0 = first hop)
  double attempts = 1.0;  ///< expected ARQ attempts of the edge
};

/// A flow's terminal outcome.
struct EndRecord {
  std::uint64_t flow = 0;
  int origin = -1;
  bool delivered = false;  ///< false = undeliverable at generation
  int hops_taken = 0;
  double created_s = 0.0;
  double delivered_s = 0.0;
  double queued_s = 0.0;
};

/// A boundary packet awaiting the window barrier: arrival `pkt` at `node`
/// (owned by a peer shard) at absolute time `time_s`.
struct Boundary {
  double time_s = 0.0;
  int node = -1;
  LivePacket pkt;
};

/// Uniform [0, 1) hash of (seed, flow, hop) — the sharded engine's preamble
/// source.  A pure function of the packet's identity, so the value cannot
/// depend on which shard, window, or thread evaluates the hop (the shared
/// rng the legacy kernel draws from would leak event order into values).
/// Same 53-bit mantissa construction sim::Rng's uniform uses.
[[nodiscard]] double hash_unit(std::uint64_t seed, std::uint64_t flow,
                               int hop) {
  const std::uint64_t h = exec::derive_seed(
      exec::derive_seed(seed, flow), static_cast<std::uint64_t>(hop));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Workload state shared (read-only after setup) by every shard kernel:
/// the same topology / routing / link tables the legacy engine builds, in
/// the same RNG draw order (placement first, then per-source phases), so
/// scenario-pinned topologies line up exactly.
struct Workload {
  std::optional<net::Topology> topo;
  net::Adjacency adj;
  net::RoutingTree tree;
  net::LinkTable links;
  net::SparseLinkTable sparse;
  bool use_sparse = false;
  bool model_link_errors = false;
  u::Length range{0.0};
  u::Time airtime{0.0};
  u::Time startup{0.0};
  u::Time lookahead{0.0};
  u::Time period{0.0};
  u::Time duration{0.0};
  u::Energy tx_e{0.0};
  u::Energy rx_e{0.0};
  u::Power baseline{0.0};
  double wake_s = 0.0;
  std::uint64_t seed = 0;
  int n = 0;
  int sink = 0;
  std::vector<u::Time> phase;   ///< per-source start offset; [0] unused
  std::vector<char> routable;   ///< per-source reachability; [0] unused
  std::size_t expected_packets = 0;

  [[nodiscard]] double edge_attempts(int from, int to) const {
    return use_sparse ? sparse.expected_attempts(from, to)
                      : links.edge(from, to).expected_attempts;
  }
};

Workload build_workload(const net::PacketSimConfig& cfg,
                        obs::Profiler* prof) {
  if (cfg.node_count < 2)
    throw std::invalid_argument("network needs a sink and >= 1 sensor");
  if (cfg.report_period <= u::Time(0.0) || cfg.duration <= u::Time(0.0))
    throw std::invalid_argument("period and duration must be positive");
  if (cfg.faults)
    throw std::invalid_argument(
        "sharded engine does not support fault injection: lifecycle edges "
        "re-converge global routing, a cross-shard side effect with no "
        "lookahead; run fault studies on net::simulate_packets");
  if (cfg.placement &&
      cfg.placement->size() != cfg.node_count)
    throw std::invalid_argument("placement size != node_count");

  sim::Rng rng(cfg.seed);
  Workload w;
  w.topo = obs::Profiler::timed(prof, "net.placement", [&] {
    return cfg.placement ? *cfg.placement
                         : net::Topology::random_field(cfg.node_count,
                                                       cfg.field_side, rng);
  });
  const radio::RadioModel radio(cfg.radio);
  w.range = u::min(cfg.radio_range, radio.max_range());

  net::LinkEnergyModel link_model;
  link_model.k_elec = radio.energy_per_bit_tx().value() +
                      radio.energy_per_bit_rx().value();
  link_model.exponent = cfg.radio.environment.exponent;
  w.adj = obs::Profiler::timed(prof, "net.adjacency_build", [&] {
    return w.topo->neighbor_table(w.range);
  });
  w.tree = obs::Profiler::timed(prof, "net.routing_build", [&] {
    return cfg.routing == net::RoutingPolicy::MinHop
               ? net::min_hop_routes(*w.topo, w.adj)
               : net::min_energy_routes(*w.topo, w.adj, link_model);
  });

  w.model_link_errors = cfg.model_link_errors;
  w.use_sparse = cfg.model_link_errors && cfg.sparse_links;
  {
    obs::Profiler::PhaseScope scope(prof, "net.link_pricing");
    if (cfg.model_link_errors && !w.use_sparse)
      w.links = net::LinkTable(*w.topo, radio, cfg.packet_bits, cfg.arq);
    if (w.use_sparse)
      w.sparse = net::SparseLinkTable(*w.topo, w.adj, radio, cfg.packet_bits,
                                      cfg.arq);
  }

  w.airtime = radio.time_on_air(cfg.packet_bits);
  w.startup = cfg.radio.startup;
  // Every hop occupies the kernel for at least airtime + startup (attempts
  // scale it up, never down), so that sum is the conservative lookahead: a
  // packet handed over mid-window cannot arrive inside the same window.
  w.lookahead = w.airtime + w.startup;
  if (!(w.lookahead > u::Time(0.0)))
    throw std::invalid_argument(
        "sharded engine needs positive lookahead (airtime + radio startup "
        "are both zero, which admits only zero-width sync windows)");

  w.period = cfg.report_period;
  w.duration = cfg.duration;
  w.tx_e = cfg.mac.tx_packet_energy(radio, cfg.packet_bits);
  w.rx_e = cfg.mac.rx_packet_energy(radio, cfg.packet_bits);
  w.baseline = cfg.mac.baseline_power(radio);
  w.wake_s = cfg.mac.wake_interval.value();
  w.seed = cfg.seed;
  w.n = w.topo->size();
  w.sink = w.topo->sink();

  w.phase.assign(static_cast<std::size_t>(w.n), u::Time(0.0));
  w.routable.assign(static_cast<std::size_t>(w.n), 0);
  for (int i = 1; i < w.n; ++i) {
    w.routable[static_cast<std::size_t>(i)] = w.tree.reachable(i) ? 1 : 0;
    w.phase[static_cast<std::size_t>(i)] =
        u::Time(rng.uniform(0.0, cfg.report_period.value()));
  }
  w.expected_packets =
      static_cast<std::size_t>(w.n - 1) *
      (static_cast<std::size_t>(w.duration.value() / w.period.value()) + 1);
  return w;
}

/// One region's event kernel: its own simulator, its outbox for boundary
/// packets, and append-only record logs the final aggregation consumes.
/// `part == nullptr` marks the serial oracle (everything is local).
struct Kernel {
  int id = 0;
  const Workload* w = nullptr;
  const RegionPartition* part = nullptr;
  /// Shared across kernels, but element `i` is only ever touched by node
  /// i's owner shard — per-element ownership, no synchronization needed.
  std::vector<u::Time>* tx_free = nullptr;
  std::vector<long long>* report_idx = nullptr;
  sim::Simulator simu;
  std::vector<Boundary> outbox;
  std::vector<HopRecord> hops;
  std::vector<EndRecord> ends;
  long long generated = 0;

  /// Node `from` (owned by this shard) transmits `pkt` toward the sink.
  void forward(int from, LivePacket pkt) {
    const Workload& wl = *w;
    const int to = wl.tree.next_hop[static_cast<std::size_t>(from)];
    // Wait for the transmitter if it is mid-packet (FIFO).
    const u::Time start =
        u::max(simu.now(), (*tx_free)[static_cast<std::size_t>(from)]);
    const u::Time waited = start - simu.now();
    if (waited > u::Time(0.0)) pkt.queued_s += waited.value();
    // Hashed preamble alignment — see hash_unit for why not a shared rng.
    const u::Time preamble{hash_unit(wl.seed, pkt.flow, pkt.hops_taken) *
                           wl.wake_s};
    double attempts = 1.0;
    if (wl.model_link_errors) attempts = wl.edge_attempts(from, to);
    const u::Time done = start + preamble + wl.airtime * attempts +
                         wl.startup * attempts;
    (*tx_free)[static_cast<std::size_t>(from)] = done;
    hops.push_back({pkt.flow, pkt.hops_taken, attempts});

    AMBISIM_OBS_COUNT("net.hops");
#if AMBISIM_OBS_COMPILED
    if (obs::enabled()) [[unlikely]] {
      auto& octx = obs::context();
      octx.metrics.histogram("net.queue_wait_s").observe(waited.value());
      octx.metrics.histogram("net.preamble_s").observe(preamble.value());
    }
#endif

    if (part != nullptr &&
        part->owner[static_cast<std::size_t>(to)] != id) {
      // Cross-shard hop: hand the arrival to the window barrier.  done >=
      // now + lookahead, so the receiver is guaranteed not to have passed
      // this time yet.
      outbox.push_back({done.value(), to, pkt});
      return;
    }
    simu.schedule_at(done, [this, to, pkt]() { arrive(to, pkt); });
  }

  /// `pkt` completes its hop into `to` (owned by this shard).
  void arrive(int to, LivePacket pkt) {
    pkt.hops_taken += 1;
    if (to == w->sink) {
      const double now_s = simu.now().value();
      ends.push_back({pkt.flow, pkt.origin, true, pkt.hops_taken,
                      pkt.created_s, now_s, pkt.queued_s});
      AMBISIM_OBS_COUNT("net.packets_delivered");
#if AMBISIM_OBS_COMPILED
      if (obs::enabled()) [[unlikely]]
        obs::context().metrics.histogram("net.latency_s")
            .observe(now_s - pkt.created_s);
#endif
      return;
    }
    forward(to, pkt);
  }

  /// Source `i` (owned by this shard) emits its next periodic report and
  /// reschedules itself while the horizon allows.
  void emit(int i) {
    const Workload& wl = *w;
    ++generated;
    // Flow id = (report index, origin) flattened: unique per packet and a
    // pure function of the workload, never of event interleaving.
    const auto k = static_cast<std::uint64_t>(
        (*report_idx)[static_cast<std::size_t>(i)]++);
    const std::uint64_t flow =
        k * static_cast<std::uint64_t>(wl.n) + static_cast<std::uint64_t>(i);
    AMBISIM_OBS_COUNT("net.packets_generated");
    if (!wl.routable[static_cast<std::size_t>(i)]) {
      ends.push_back(
          {flow, i, false, 0, simu.now().value(), 0.0, 0.0});
      AMBISIM_OBS_COUNT("net.packets_undeliverable");
    } else {
      LivePacket pkt;
      pkt.flow = flow;
      pkt.origin = i;
      pkt.created_s = simu.now().value();
      forward(i, pkt);
    }
    if (simu.now() + wl.period <= wl.duration)
      simu.schedule_in(wl.period, [this, i]() { emit(i); });
  }
};

/// Deterministic aggregation: concatenate every kernel's records, sort by
/// unique integer keys, then run every floating-point reduction once in
/// that order.  Identical for the serial oracle and any shard/pool count —
/// this is where the bit-identity contract is discharged.
net::PacketSimResult finalize(const Workload& w,
                              const std::vector<Kernel*>& kernels) {
  std::vector<EndRecord> ends;
  std::vector<HopRecord> hops;
  std::size_t n_ends = 0, n_hops = 0;
  for (const Kernel* k : kernels) {
    n_ends += k->ends.size();
    n_hops += k->hops.size();
  }
  ends.reserve(n_ends);
  hops.reserve(n_hops);

  net::PacketSimResult res;
  for (const Kernel* k : kernels) {
    res.generated += k->generated;
    ends.insert(ends.end(), k->ends.begin(), k->ends.end());
    hops.insert(hops.end(), k->hops.begin(), k->hops.end());
  }
  // Flow ids are unique; (flow, hop) pairs are unique.  Sorting by them
  // yields one canonical order whatever sharding produced the records.
  std::sort(ends.begin(), ends.end(),
            [](const EndRecord& a, const EndRecord& b) {
              return a.flow < b.flow;
            });
  std::sort(hops.begin(), hops.end(),
            [](const HopRecord& a, const HopRecord& b) {
              return a.flow != b.flow ? a.flow < b.flow : a.hop < b.hop;
            });

  res.end_to_end_latency.reserve(w.expected_packets);
  res.queueing_delay.reserve(w.expected_packets);
  for (const EndRecord& e : ends) {
    if (!e.delivered) {
      ++res.undeliverable;
      continue;
    }
    ++res.delivered;
    res.end_to_end_latency.add(e.delivered_s - e.created_s);
    res.queueing_delay.add(e.queued_s);
    res.mean_hops += e.hops_taken;
  }

  double attempts_sum = 0.0;
  long long attempts_hops = 0;
  for (const HopRecord& h : hops) {
    if (w.model_link_errors) {
      attempts_sum += h.attempts;
      ++attempts_hops;
    }
    res.ledger.charge("radio-tx", w.tx_e * h.attempts);
    res.ledger.charge("radio-rx", w.rx_e * h.attempts);
  }
  // Baseline listening for every sensor over the horizon.
  res.ledger.charge(
      "listen-baseline",
      u::Energy(w.baseline.value() * w.duration.value() * (w.n - 1)));

  if (attempts_hops > 0)
    res.mean_link_attempts =
        attempts_sum / static_cast<double>(attempts_hops);
  if (res.delivered > 0) {
    res.mean_hops /= static_cast<double>(res.delivered);
    res.energy_per_delivered =
        u::Energy((res.ledger.of("radio-tx") + res.ledger.of("radio-rx"))
                      .value() /
                  static_cast<double>(res.delivered));
  }
  return res;
}

}  // namespace

std::uint64_t digest_packets(const net::PacketSimResult& res) {
  fault::Digest d;
  d.fold(res.generated);
  d.fold(res.delivered);
  d.fold(res.undeliverable);
  for (const double v : res.end_to_end_latency.values()) d.fold(v);
  for (const double v : res.queueing_delay.values()) d.fold(v);
  d.fold(res.mean_hops);
  d.fold(res.mean_link_attempts);
  d.fold(res.ledger.of("radio-tx").value());
  d.fold(res.ledger.of("radio-rx").value());
  d.fold(res.ledger.of("listen-baseline").value());
  d.fold(res.energy_per_delivered.value());
  return d.value();
}

net::PacketSimResult run_serial_oracle(const net::PacketSimConfig& cfg) {
  obs::Profiler* prof = obs::current_profiler();
  const Workload w = build_workload(cfg, prof);
  std::vector<u::Time> tx_free(static_cast<std::size_t>(w.n), u::Time(0.0));
  std::vector<long long> report_idx(static_cast<std::size_t>(w.n), 0);

  Kernel k;
  k.w = &w;
  k.tx_free = &tx_free;
  k.report_idx = &report_idx;
  for (int i = 1; i < w.n; ++i)
    k.simu.schedule_at(w.phase[static_cast<std::size_t>(i)],
                       [kp = &k, i]() { kp->emit(i); });
  {
    obs::Profiler::PhaseScope scope(prof, "net.event_loop");
    k.simu.run_until(w.duration);
  }
  return finalize(w, {&k});
}

ShardRunResult simulate_packets_sharded(const net::PacketSimConfig& cfg,
                                        const ShardRunConfig& run) {
  if (run.shards < 1)
    throw std::invalid_argument("shard count must be >= 1");
  if (run.pool < 0)
    throw std::invalid_argument("pool size must be >= 0 (0 = hardware)");

#if AMBISIM_OBS_COMPILED
  obs::Profiler* prof =
      run.profiler != nullptr ? run.profiler : obs::current_profiler();
#else
  obs::Profiler* prof = nullptr;
#endif

  const Workload w = build_workload(cfg, prof);
  // Cells of one radio range per side keep most links intra-shard; a
  // degenerate zero range (nothing is in range anyway) still partitions.
  const double cell_m = w.range.value() > 0.0 ? w.range.value() : 1.0;
  const RegionPartition part =
      RegionPartition::build(*w.topo, run.shards, cell_m);
  const int S = run.shards;

  std::vector<u::Time> tx_free(static_cast<std::size_t>(w.n), u::Time(0.0));
  std::vector<long long> report_idx(static_cast<std::size_t>(w.n), 0);
  std::vector<std::unique_ptr<Kernel>> kernels;
  kernels.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    auto k = std::make_unique<Kernel>();
    k->id = s;
    k->w = &w;
    k->part = &part;
    k->tx_free = &tx_free;
    k->report_idx = &report_idx;
    kernels.push_back(std::move(k));
  }
  for (int i = 1; i < w.n; ++i) {
    Kernel* k = kernels[static_cast<std::size_t>(
                            part.owner[static_cast<std::size_t>(i)])]
                    .get();
    k->simu.schedule_at(w.phase[static_cast<std::size_t>(i)],
                        [k, i]() { k->emit(i); });
  }

  exec::ThreadPool pool(static_cast<unsigned>(run.pool));
  // Per-shard obs shards, merged in shard order after the run so recorded
  // metrics are pool-size independent (trace event order then follows
  // shard id, not thread schedule).
  std::unique_ptr<obs::ShardSet> oshards;
  if (obs::enabled())
    oshards = std::make_unique<obs::ShardSet>(static_cast<std::size_t>(S));

  ShardRunResult out;
  out.shard_count = S;
  out.lookahead_s = w.lookahead.value();
  if (S > 1) out.cross_edges = part.cross_edge_count(w.adj);

  // Per-window advance wall times, slot per shard: each parallel_for task
  // (grain 1) writes its own slot, the coordinator reads after the join.
  std::vector<double> advance_s;
  if (prof != nullptr) {
    prof->begin_windows(S);
    advance_s.assign(static_cast<std::size_t>(S), 0.0);
    pool.set_accounting(true);
  }

  const double dur = w.duration.value();
  std::vector<Boundary> inbox;
  double t = 0.0;
  {
    obs::Profiler::PhaseScope loop_scope(prof, "net.event_loop");
    for (;;) {
      // Conservative window [t, wend): every in-window transmission lands
      // at >= t + lookahead >= wend, so shards advance with no peer input.
      const double wend = std::min(t + w.lookahead.value(), dur);
      const double wstart = prof != nullptr ? prof->now_s() : 0.0;
      exec::parallel_for(
          pool, static_cast<std::size_t>(S),
          [&](std::size_t s) {
            obs::ContextBinding bind(oshards ? &oshards->shard(s) : nullptr);
            if (prof != nullptr) {
              const double a0 = prof->now_s();
              kernels[s]->simu.run_until(u::Time(wend));
              advance_s[s] = prof->now_s() - a0;
            } else {
              kernels[s]->simu.run_until(u::Time(wend));
            }
          },
          /*grain=*/1);
      ++out.windows;
      const double b0 = prof != nullptr ? prof->now_s() : 0.0;

      // Barrier: gather boundary packets, order them by a key that no
      // shard schedule can perturb, and deliver into the receivers'
      // futures.
      inbox.clear();
      for (const std::unique_ptr<Kernel>& k : kernels) {
        inbox.insert(inbox.end(), k->outbox.begin(), k->outbox.end());
        k->outbox.clear();
      }
      const long long gathered = static_cast<long long>(inbox.size());
      // Arrivals past the horizon never execute (the serial kernel stops
      // at `duration` too); drop them so the drain loop terminates.
      std::erase_if(inbox,
                    [dur](const Boundary& b) { return b.time_s > dur; });
      std::sort(inbox.begin(), inbox.end(),
                [](const Boundary& a, const Boundary& b) {
                  if (a.time_s != b.time_s) return a.time_s < b.time_s;
                  if (a.pkt.flow != b.pkt.flow)
                    return a.pkt.flow < b.pkt.flow;
                  return a.node < b.node;
                });
      out.boundary_messages += static_cast<long long>(inbox.size());
      for (const Boundary& b : inbox) {
        Kernel* k =
            kernels[static_cast<std::size_t>(
                        part.owner[static_cast<std::size_t>(b.node)])]
                .get();
        k->simu.schedule_at(u::Time(b.time_s),
                            [k, b]() { k->arrive(b.node, b.pkt); });
      }
      if (prof != nullptr)
        prof->record_window(wstart, advance_s, prof->now_s() - b0, gathered,
                            static_cast<long long>(inbox.size()));

      t = wend;
      // Messages landing exactly on the horizon still need a drain round.
      if (wend >= dur && inbox.empty()) break;
    }
  }

  if (oshards) oshards->merge_into(obs::context());
  for (const std::unique_ptr<Kernel>& k : kernels)
    out.events_executed += k->simu.executed_events();

  if (prof != nullptr) {
    for (int s = 0; s < S; ++s)
      prof->set_shard_events(
          s, kernels[static_cast<std::size_t>(s)]->simu.executed_events());
    const std::vector<exec::ThreadPool::WorkerStats> stats =
        pool.worker_stats();
    std::vector<obs::Profiler::Worker> pw;
    pw.reserve(stats.size());
    for (std::size_t i = 0; i < stats.size(); ++i) {
      obs::Profiler::Worker wk;
      wk.index = static_cast<int>(i);
      wk.tasks = stats[i].tasks;
      wk.queue_wait_s = stats[i].queue_wait_s;
      wk.run_s = stats[i].run_s;
      wk.idle_s = stats[i].idle_s;
      wk.lifetime_s = stats[i].lifetime_s;
      pw.push_back(wk);
    }
    prof->set_workers(std::move(pw));
  }

  std::vector<Kernel*> ks;
  ks.reserve(kernels.size());
  for (const std::unique_ptr<Kernel>& k : kernels) ks.push_back(k.get());
  out.packets = finalize(w, ks);
  out.checksum = digest_packets(out.packets);
  return out;
}

}  // namespace ambisim::shard
