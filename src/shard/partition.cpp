#include "ambisim/shard/partition.hpp"

#include <stdexcept>

#include "ambisim/net/spatial_grid.hpp"

namespace ambisim::shard {

RegionPartition RegionPartition::build(const net::Topology& topo,
                                       int shard_count, double cell_size_m) {
  if (shard_count < 1)
    throw std::invalid_argument("RegionPartition: shard_count < 1");
  if (!(cell_size_m > 0.0))
    throw std::invalid_argument("RegionPartition: cell size <= 0");

  const int n = topo.size();
  const net::SpatialGrid grid(topo.positions(), cell_size_m);

  // Nodes per cell, then deal cells (row-major, so neighboring cells tend
  // to stay together) to shards as contiguous spans balanced by node
  // count: cell c goes to the shard whose quota the nodes dealt so far
  // have reached.  Empty cells ride along without advancing the cursor.
  std::vector<int> cell_of(static_cast<std::size_t>(n));
  std::vector<long long> cell_nodes(
      static_cast<std::size_t>(grid.cell_count()), 0);
  for (int i = 0; i < n; ++i) {
    const int c = grid.cell_of(i);
    cell_of[static_cast<std::size_t>(i)] = c;
    ++cell_nodes[static_cast<std::size_t>(c)];
  }

  std::vector<int> shard_of_cell(static_cast<std::size_t>(grid.cell_count()),
                                 0);
  long long dealt = 0;
  for (int c = 0; c < grid.cell_count(); ++c) {
    const long long s = dealt * shard_count / n;
    shard_of_cell[static_cast<std::size_t>(c)] =
        static_cast<int>(s < shard_count ? s : shard_count - 1);
    dealt += cell_nodes[static_cast<std::size_t>(c)];
  }

  RegionPartition part;
  part.shard_count = shard_count;
  part.owner.resize(static_cast<std::size_t>(n));
  part.nodes.assign(static_cast<std::size_t>(shard_count), {});
  for (int i = 0; i < n; ++i) {
    const int s =
        shard_of_cell[static_cast<std::size_t>(cell_of[static_cast<std::size_t>(i)])];
    part.owner[static_cast<std::size_t>(i)] = s;
    part.nodes[static_cast<std::size_t>(s)].push_back(i);
  }
  return part;
}

int RegionPartition::empty_shards() const {
  int empty = 0;
  for (const std::vector<int>& ns : nodes)
    if (ns.empty()) ++empty;
  return empty;
}

std::size_t RegionPartition::cross_edge_count(
    const net::Adjacency& adj) const {
  std::size_t cross = 0;
  for (int i = 0; i < adj.size(); ++i) {
    const net::Adjacency::Row row = adj.row(i);
    for (std::size_t k = 0; k < row.count; ++k)
      if (is_cross(i, row.ids[k])) ++cross;
  }
  return cross;
}

std::size_t RegionPartition::cut_tree_edges(
    const net::RoutingTree& tree) const {
  std::size_t cut = 0;
  for (std::size_t i = 0; i < tree.next_hop.size(); ++i) {
    const int hop = tree.next_hop[i];
    if (hop < 0 || hop == static_cast<int>(i)) continue;
    if (is_cross(static_cast<int>(i), hop)) ++cut;
  }
  return cut;
}

}  // namespace ambisim::shard
