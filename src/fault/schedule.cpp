#include "ambisim/fault/schedule.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ambisim/exec/seed.hpp"
#include "ambisim/sim/random.hpp"

namespace ambisim::fault {

namespace {

// Domain-separation salts: each fault process of each node derives its
// substream from (seed ^ salt, node), so the crash and link processes of
// the same node — and the same process across nodes — never share a stream.
constexpr std::uint64_t kCrashSalt = 0xC4A5'11FE'0000'0001ULL;
constexpr std::uint64_t kLinkSalt = 0x714B'0D0E'0000'0002ULL;
constexpr std::uint64_t kDriftSalt = 0xD21F'7C10'0000'0003ULL;

}  // namespace

FaultSchedule FaultSchedule::generate(const FaultScheduleConfig& cfg) {
  if (cfg.node_count < 0) throw std::invalid_argument("negative node count");
  if (cfg.horizon_s < 0.0) throw std::invalid_argument("negative horizon");
  if (cfg.crash_mttf_s < 0.0 || cfg.crash_mttr_s < 0.0 ||
      cfg.link_mtbf_s < 0.0 || cfg.link_mttr_s < 0.0 || cfg.reboot_s < 0.0)
    throw std::invalid_argument("negative fault-process parameter");
  if (cfg.corruption_rate < 0.0 || cfg.corruption_rate > 1.0)
    throw std::invalid_argument("corruption rate outside [0, 1]");

  FaultSchedule sched;
  sched.cfg_ = cfg;
  const int first = cfg.sink_immune ? 1 : 0;

  for (int node = first; node < cfg.node_count; ++node) {
    const auto node_idx = static_cast<std::uint64_t>(node);

    if (cfg.crash_mttf_s > 0.0) {
      sim::Rng rng(exec::derive_seed(cfg.seed ^ kCrashSalt, node_idx));
      double t = rng.exponential(cfg.crash_mttf_s);
      while (t < cfg.horizon_s) {
        // Outage = exponential repair time floored at the boot tail; the
        // node is Dead until the boot starts and Rebooting through it.
        const double outage =
            std::max(rng.exponential(cfg.crash_mttr_s), cfg.reboot_s);
        sched.events_.push_back(
            {t, FaultKind::NodeCrash, node, outage});
        sched.events_.push_back(
            {t + outage - cfg.reboot_s, FaultKind::NodeReboot, node, 0.0});
        sched.events_.push_back(
            {t + outage, FaultKind::NodeRecover, node, 0.0});
        t += outage + rng.exponential(cfg.crash_mttf_s);
      }
    }

    if (cfg.link_mtbf_s > 0.0) {
      sim::Rng rng(exec::derive_seed(cfg.seed ^ kLinkSalt, node_idx));
      double t = rng.exponential(cfg.link_mtbf_s);
      while (t < cfg.horizon_s) {
        const double outage = rng.exponential(cfg.link_mttr_s);
        sched.events_.push_back({t, FaultKind::LinkDown, node, outage});
        sched.events_.push_back(
            {t + outage, FaultKind::LinkUp, node, 0.0});
        t += outage + rng.exponential(cfg.link_mtbf_s);
      }
    }

    if (cfg.clock_drift_ppm > 0.0) {
      sim::Rng rng(exec::derive_seed(cfg.seed ^ kDriftSalt, node_idx));
      sched.events_.push_back(
          {0.0, FaultKind::ClockDrift, node,
           rng.uniform(-cfg.clock_drift_ppm, cfg.clock_drift_ppm)});
    }
  }

  // Stable sort by time: same-time events keep their generation order
  // (node-major, process-major), which is itself deterministic.
  std::stable_sort(sched.events_.begin(), sched.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return sched;
}

std::uint64_t FaultSchedule::checksum() const {
  std::uint64_t h = 0;
  const auto fold = [&h](std::uint64_t v) {
    h = exec::splitmix64(h ^ (v + exec::kSplitMix64Gamma));
  };
  for (const FaultEvent& ev : events_) {
    fold(std::bit_cast<std::uint64_t>(ev.time_s));
    fold(static_cast<std::uint64_t>(ev.kind));
    fold(static_cast<std::uint64_t>(static_cast<std::int64_t>(ev.node)));
    fold(std::bit_cast<std::uint64_t>(ev.magnitude));
  }
  return h;
}

}  // namespace ambisim::fault
