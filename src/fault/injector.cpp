#include "ambisim/fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ambisim/exec/seed.hpp"
#include "ambisim/obs/probe.hpp"

namespace ambisim::fault {

namespace {
constexpr std::uint64_t kCorruptSalt = 0xC0AA'0F7E'0000'0004ULL;
}  // namespace

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::Up:
      return "Up";
    case NodeState::BrownOut:
      return "BrownOut";
    case NodeState::Dead:
      return "Dead";
    case NodeState::Rebooting:
      return "Rebooting";
  }
  return "?";
}

double RetryPolicy::backoff_delay(int next_attempt) const {
  const int retries_before = std::max(0, next_attempt - 2);
  const double delay =
      timeout_s * std::pow(backoff, static_cast<double>(retries_before));
  return std::min(delay, max_backoff_s);
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)) {}

void FaultInjector::enable_energy(const EnergyCouplingConfig& cfg) {
  if (armed_) throw std::logic_error("enable_energy after arm");
  if (cfg.update_period_s <= 0.0)
    throw std::invalid_argument("energy update period must be positive");
  if (cfg.initial_soc < 0.0 || cfg.initial_soc > 1.0)
    throw std::invalid_argument("initial soc outside [0, 1]");
  for (double w : cfg.per_node_harvest_watt)
    if (!(w >= 0.0))
      throw std::invalid_argument("per-node harvest must be >= 0");
  energy_cfg_ = cfg;
}

bool FaultInjector::immune(int node) const {
  return schedule_.config().sink_immune && node == 0;
}

NodeState FaultInjector::effective_state(const Node& n) const {
  if (n.scripted_dead) return n.rebooting ? NodeState::Rebooting : NodeState::Dead;
  if (n.energy_down) return NodeState::BrownOut;
  return NodeState::Up;
}

void FaultInjector::arm(sim::Simulator& sim, int node_count) {
  if (armed_) throw std::logic_error("injector already armed");
  if (node_count <= 0) throw std::invalid_argument("node count must be > 0");
  armed_ = true;
  sim_ = &sim;
  const double t0 = sim.now().value();
  nodes_.assign(static_cast<std::size_t>(node_count), Node{});
  for (Node& n : nodes_) n.last_change_s = t0;

  if (energy_cfg_) {
    if (!energy_cfg_->per_node_harvest_watt.empty() &&
        static_cast<int>(energy_cfg_->per_node_harvest_watt.size()) !=
            node_count)
      throw std::invalid_argument(
          "per-node harvest vector must cover every node");
    batteries_.clear();
    batteries_.reserve(nodes_.size());
    pending_event_joule_.assign(nodes_.size(), 0.0);
    for (int i = 0; i < node_count; ++i) {
      energy::Battery bat(energy_cfg_->battery);
      bat.configure_brownout(energy_cfg_->brownout_cutoff_soc,
                             energy_cfg_->brownout_recovery_soc);
      bat.set_state_of_charge(energy_cfg_->initial_soc);
      batteries_.push_back(std::move(bat));
      if (!immune(i)) {
        // A node that starts below the cutoff begins out of service; that
        // is its initial condition, not a counted failure.
        auto& n = nodes_[static_cast<std::size_t>(i)];
        n.energy_down = batteries_.back().brown_out();
        n.in_service = !n.energy_down;
        n.current = effective_state(n);
      }
    }
    const double dt = energy_cfg_->update_period_s;
    const double horizon = schedule_.config().horizon_s;
    // Self-rescheduling energy tick: fixed step, last tick at <= horizon.
    struct Tick {
      FaultInjector* inj;
      double dt;
      double horizon;
      void operator()() const {
        inj->energy_tick(inj->sim_->now().value(), dt);
        if (inj->sim_->now().value() + dt <= horizon)
          inj->sim_->schedule_in(u::Time(dt), Tick{inj, dt, horizon});
      }
    };
    if (t0 + dt <= horizon)
      sim.schedule_in(u::Time(dt), Tick{this, dt, horizon});
  }

  for (const FaultEvent& ev : schedule_.events()) {
    if (ev.node < 0 || ev.node >= node_count) continue;
    if (ev.kind == FaultKind::ClockDrift) {
      // Oscillator error exists from power-on; apply directly instead of
      // racing the first scheduled emission.
      nodes_[static_cast<std::size_t>(ev.node)].drift_ppm = ev.magnitude;
      continue;
    }
    sim.schedule_at(u::Time(ev.time_s), [this, ev]() {
      apply_event(ev, sim_->now().value());
    });
  }
}

void FaultInjector::apply_event(const FaultEvent& ev, double now_s) {
  Node& n = nodes_.at(static_cast<std::size_t>(ev.node));
  switch (ev.kind) {
    case FaultKind::NodeCrash:
      n.scripted_dead = true;
      n.rebooting = false;
      AMBISIM_OBS_COUNT("fault.crashes");
      break;
    case FaultKind::NodeReboot:
      if (n.scripted_dead) n.rebooting = true;
      break;
    case FaultKind::NodeRecover:
      n.scripted_dead = false;
      n.rebooting = false;
      break;
    case FaultKind::LinkDown:
      n.radio_out = true;
      AMBISIM_OBS_COUNT("fault.link_outages");
      break;
    case FaultKind::LinkUp:
      n.radio_out = false;
      break;
    case FaultKind::ClockDrift:
      n.drift_ppm = ev.magnitude;
      break;
  }
  refresh(ev.node, now_s);
}

void FaultInjector::energy_tick(double now_s, double dt_s) {
  const std::vector<double>& per_node = energy_cfg_->per_node_harvest_watt;
  const double baseline = energy_cfg_->baseline_watt;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (immune(static_cast<int>(i))) continue;
    Node& n = nodes_[i];
    energy::Battery& bat = batteries_[i];
    const double harvest =
        per_node.empty() ? energy_cfg_->harvest_avg_watt : per_node[i];
    if (harvest > 0.0) bat.recharge(u::Energy(harvest * dt_s));
    const double event_j = pending_event_joule_[i];
    pending_event_joule_[i] = 0.0;
    if (!n.scripted_dead && !n.energy_down) {
      bat.draw(u::Power(baseline + event_j / dt_s), u::Time(dt_s));
    } else {
      // Dead or browned-out rail: only shelf drain applies.
      bat.idle(u::Time(dt_s));
    }
    // Flight recorder: per-node battery state of charge against sim time.
    // On-change dedup keeps a flat battery from flooding the series.
    AMBISIM_OBS_SERIES_CHANGE("energy.soc", static_cast<std::uint32_t>(i),
                              now_s, bat.state_of_charge());
    const bool down = bat.brown_out();
    if (down != n.energy_down) {
      n.energy_down = down;
      if (down) AMBISIM_OBS_COUNT("fault.brownouts");
      refresh(static_cast<int>(i), now_s);
    }
  }
}

void FaultInjector::refresh(int i, double now_s) {
  Node& n = nodes_.at(static_cast<std::size_t>(i));
  const NodeState prev = n.current;
  const NodeState ns = effective_state(n);
  const bool service = ns == NodeState::Up && !n.radio_out;
  const bool service_changed = service != n.in_service;
  if (service_changed) {
    const double span = now_s - n.last_change_s;
    if (n.in_service) {
      n.uptime_s += span;
      ++n.failures;
      AMBISIM_OBS_OBSERVE("fault.uptime_s", span);
    } else {
      n.downtime_s += span;
      ++n.repairs;
      AMBISIM_OBS_OBSERVE("fault.downtime_s", span);
    }
    n.last_change_s = now_s;
    n.in_service = service;
#if AMBISIM_OBS_COMPILED
    if (obs::enabled()) [[unlikely]] {
      auto& octx = obs::context();
      int up = 0;
      for (const Node& node : nodes_) up += node.in_service ? 1 : 0;
      octx.metrics.gauge("fault.nodes_in_service").set(up);
      // Flight recorder: the service edge itself, per node and fleet-wide.
      octx.timeline.series("fault.in_service",
                           static_cast<std::uint32_t>(i))
          .record_change(now_s, service ? 1.0 : 0.0);
      octx.timeline
          .series("fault.nodes_in_service", 0)
          .record(now_s, static_cast<double>(up));
      octx.tracer.instant(service ? "fault.service_up"
                                  : "fault.service_down",
                          "fault", obs::to_us(now_s),
                          static_cast<std::uint32_t>(i));
    }
#endif
  }
  n.current = ns;
#if AMBISIM_OBS_COMPILED
  // Lifecycle-state series on every edge (Up=0, BrownOut=1, Dead=2,
  // Rebooting=3), not just service flips: Dead -> Rebooting is visible.
  if (prev != ns)
    AMBISIM_OBS_SERIES_CHANGE("fault.state", static_cast<std::uint32_t>(i),
                              now_s,
                              static_cast<double>(static_cast<int>(ns)));
#endif
  if ((prev != ns || service_changed) && callback_)
    callback_(i, prev, ns, now_s);
}

NodeState FaultInjector::state(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).current;
}

bool FaultInjector::alive(int node) const {
  return state(node) == NodeState::Up;
}

bool FaultInjector::in_service(int node) const {
  const Node& n = nodes_.at(static_cast<std::size_t>(node));
  return n.in_service;
}

bool FaultInjector::radio_down(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).radio_out;
}

double FaultInjector::drift_factor(int node) const {
  return 1.0 + nodes_.at(static_cast<std::size_t>(node)).drift_ppm * 1e-6;
}

bool FaultInjector::corrupts(int from, int to,
                             std::uint64_t attempt) const {
  const double rate = schedule_.config().corruption_rate;
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  std::uint64_t x = schedule_.config().seed ^ kCorruptSalt;
  x = exec::splitmix64(
      x + (static_cast<std::uint64_t>(from) + 1) * exec::kSplitMix64Gamma);
  x = exec::splitmix64(
      x ^ (static_cast<std::uint64_t>(to) + 1) * exec::kSplitMix64Gamma);
  x = exec::splitmix64(x ^ (attempt + 1) * exec::kSplitMix64Gamma);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(x >> 11) * 0x1.0p-53 < rate;
}

void FaultInjector::account_energy(int node, u::Energy e) {
  if (!energy_cfg_ || !armed_) return;
  if (node < 0 || node >= node_count() || immune(node)) return;
  pending_event_joule_[static_cast<std::size_t>(node)] += e.value();
}

const energy::Battery* FaultInjector::battery(int node) const {
  if (!energy_cfg_ || node < 0 ||
      node >= static_cast<int>(batteries_.size()) || immune(node))
    return nullptr;
  return &batteries_[static_cast<std::size_t>(node)];
}

ReliabilityStats FaultInjector::stats(double horizon_s) const {
  ReliabilityStats out;
  out.node_availability.assign(nodes_.size(), 1.0);
  double total_up = 0.0;
  double total_down = 0.0;
  int counted = 0;
  double availability_sum = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (immune(static_cast<int>(i))) continue;
    const Node& n = nodes_[i];
    const double tail = std::max(0.0, horizon_s - n.last_change_s);
    const double up = n.uptime_s + (n.in_service ? tail : 0.0);
    const double down = n.downtime_s + (n.in_service ? 0.0 : tail);
    const double denom = up + down;
    const double avail = denom > 0.0 ? up / denom : 1.0;
    out.node_availability[i] = avail;
    availability_sum += avail;
    total_up += up;
    total_down += down;
    out.failures += n.failures;
    out.repairs += n.repairs;
    ++counted;
  }
  out.availability =
      counted > 0 ? availability_sum / static_cast<double>(counted) : 1.0;
  out.mttf_s = out.failures > 0
                   ? total_up / static_cast<double>(out.failures)
                   : horizon_s;
  if (out.repairs > 0)
    out.mttr_s = total_down / static_cast<double>(out.repairs);
  else if (out.failures > 0)
    out.mttr_s = total_down / static_cast<double>(out.failures);
  return out;
}

}  // namespace ambisim::fault
