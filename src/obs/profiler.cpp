#include "ambisim/obs/profiler.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "ambisim/obs/manifest.hpp"
#include "ambisim/obs/trace.hpp"

namespace ambisim::obs {

namespace detail {

namespace {
thread_local Profiler* t_profiler = nullptr;
}  // namespace

Profiler* bind_profiler(Profiler* prof) {
  Profiler* prev = t_profiler;
  t_profiler = prof;
  return prev;
}

Profiler* bound_profiler() { return t_profiler; }

}  // namespace detail

void Profiler::add_phase(std::string_view name, double start_s,
                         double wall_s) {
  for (Phase& p : phases_) {
    if (p.name == name) {
      p.count += 1;
      p.wall_s += wall_s;
      return;
    }
  }
  Phase p;
  p.name.assign(name.data(), name.size());
  p.count = 1;
  p.wall_s = wall_s;
  p.first_start_s = start_s;
  phases_.push_back(std::move(p));
}

const Profiler::Phase* Profiler::find_phase(std::string_view name) const {
  for (const Phase& p : phases_)
    if (p.name == name) return &p;
  return nullptr;
}

void Profiler::begin_windows(int shard_count, std::size_t max_records) {
  if (shard_count < 1)
    throw std::invalid_argument("profiler needs >= 1 shard");
  windows_.clear();
  shards_.assign(static_cast<std::size_t>(shard_count), Shard{});
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s].index = static_cast<int>(s);
  max_window_records_ = max_records;
  windows_total_ = 0;
  gathered_ = 0;
  rescheduled_ = 0;
  barrier_total_s_ = 0.0;
  advance_max_total_s_ = 0.0;
  advance_mean_total_s_ = 0.0;
}

void Profiler::record_window(double start_s,
                             const std::vector<double>& advance_s,
                             double barrier_wall_s, long long gathered,
                             long long rescheduled) {
  if (advance_s.size() != shards_.size())
    throw std::invalid_argument(
        "record_window: advance vector size != shard count");
  double max_adv = 0.0, sum_adv = 0.0;
  for (std::size_t s = 0; s < advance_s.size(); ++s) {
    shards_[s].advance_wall_s += advance_s[s];
    max_adv = std::max(max_adv, advance_s[s]);
    sum_adv += advance_s[s];
  }
  const double mean_adv = sum_adv / static_cast<double>(advance_s.size());

  // Aggregates always accumulate, whether or not the per-window record
  // survives the cap below.
  barrier_total_s_ += barrier_wall_s;
  advance_max_total_s_ += max_adv;
  advance_mean_total_s_ += mean_adv;
  gathered_ += gathered;
  rescheduled_ += rescheduled;

  const long long index = windows_total_++;
  if (windows_.size() >= max_window_records_) return;
  Window w;
  w.index = index;
  w.start_s = start_s;
  w.advance_max_s = max_adv;
  w.advance_mean_s = mean_adv;
  w.imbalance = mean_adv > 0.0 ? max_adv / mean_adv : 1.0;
  w.barrier_wall_s = barrier_wall_s;
  w.gathered = gathered;
  w.rescheduled = rescheduled;
  windows_.push_back(w);
}

void Profiler::set_shard_events(int shard, std::uint64_t events) {
  shards_.at(static_cast<std::size_t>(shard)).events = events;
}

void Profiler::set_workers(std::vector<Worker> workers) {
  workers_ = std::move(workers);
}

double Profiler::advance_wall_s() const {
  double sum = 0.0;
  for (const Shard& s : shards_) sum += s.advance_wall_s;
  return sum;
}

double Profiler::aggregate_imbalance() const {
  return advance_mean_total_s_ > 0.0
             ? advance_max_total_s_ / advance_mean_total_s_
             : 1.0;
}

void Profiler::clear() {
  epoch_ = Clock::now();
  phases_.clear();
  workers_.clear();
  windows_.clear();
  shards_.clear();
  max_window_records_ = kDefaultMaxWindowRecords;
  windows_total_ = 0;
  gathered_ = 0;
  rescheduled_ = 0;
  barrier_total_s_ = 0.0;
  advance_max_total_s_ = 0.0;
  advance_mean_total_s_ = 0.0;
}

namespace {

void escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void Profiler::write_json(std::ostream& os, int indent,
                          const RunManifest* manifest) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  os << "{\n";
  if (manifest != nullptr) {
    os << pad2 << "\"manifest\": ";
    manifest->write_json(os, indent + 2);
    os << ",\n";
  }
  os << pad2 << "\"total_wall_s\": " << now_s() << ",\n";

  os << pad2 << "\"phases\": [";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const Phase& p = phases_[i];
    os << (i ? "," : "") << "\n" << pad2 << "  {\"name\": \"";
    escape_into(os, p.name);
    os << "\", \"count\": " << p.count << ", \"wall_s\": " << p.wall_s
       << ", \"start_wall_s\": " << p.first_start_s << "}";
  }
  os << (phases_.empty() ? "" : "\n" + pad2) << "],\n";

  os << pad2 << "\"workers\": [";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = workers_[i];
    os << (i ? "," : "") << "\n"
       << pad2 << "  {\"index\": " << w.index << ", \"tasks\": " << w.tasks
       << ", \"queue_wait_s\": " << w.queue_wait_s
       << ", \"run_s\": " << w.run_s << ", \"idle_s\": " << w.idle_s
       << ", \"lifetime_s\": " << w.lifetime_s
       << ", \"utilization\": " << w.utilization() << "}";
  }
  os << (workers_.empty() ? "" : "\n" + pad2) << "],\n";

  os << pad2 << "\"shards\": [";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    os << (i ? "," : "") << "\n"
       << pad2 << "  {\"index\": " << s.index
       << ", \"advance_wall_s\": " << s.advance_wall_s
       << ", \"events\": " << s.events << "}";
  }
  os << (shards_.empty() ? "" : "\n" + pad2) << "],\n";

  os << pad2 << "\"windows_total\": " << windows_total_ << ",\n"
     << pad2 << "\"windows_recorded\": " << windows_.size() << ",\n"
     << pad2 << "\"boundary_gathered\": " << gathered_ << ",\n"
     << pad2 << "\"boundary_rescheduled\": " << rescheduled_ << ",\n"
     << pad2 << "\"advance_wall_s\": " << advance_wall_s() << ",\n"
     << pad2 << "\"barrier_wall_s\": " << barrier_total_s_ << ",\n"
     << pad2 << "\"imbalance\": " << aggregate_imbalance() << ",\n";

  os << pad2 << "\"windows\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    os << (i ? "," : "") << "\n"
       << pad2 << "  {\"index\": " << w.index
       << ", \"start_wall_s\": " << w.start_s
       << ", \"advance_max_s\": " << w.advance_max_s
       << ", \"advance_mean_s\": " << w.advance_mean_s
       << ", \"imbalance\": " << w.imbalance
       << ", \"barrier_wall_s\": " << w.barrier_wall_s
       << ", \"gathered\": " << w.gathered
       << ", \"rescheduled\": " << w.rescheduled << "}";
  }
  os << (windows_.empty() ? "" : "\n" + pad2) << "]\n";
  os << pad << "}";
}

void Profiler::export_trace(Tracer& tracer) const {
  for (const Phase& p : phases_)
    tracer.complete(p.name.c_str(), "prof", p.first_start_s * 1e6,
                    p.wall_s * 1e6, /*tid=*/0);
  for (const Window& w : windows_) {
    tracer.complete("window.advance", "prof", w.start_s * 1e6,
                    w.advance_max_s * 1e6, /*tid=*/1);
    tracer.complete("window.barrier", "prof",
                    (w.start_s + w.advance_max_s) * 1e6,
                    w.barrier_wall_s * 1e6, /*tid=*/0);
  }
}

}  // namespace ambisim::obs
