#include "ambisim/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace ambisim::obs {

namespace {

template <class T>
T* find_entry(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
    std::string_view name) {
  for (auto& [n, p] : entries) {
    if (n == name) return p.get();
  }
  return nullptr;
}

template <class T>
const T* find_entry(
    const std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
    std::string_view name) {
  for (const auto& [n, p] : entries) {
    if (n == name) return p.get();
  }
  return nullptr;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram needs at least one bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("histogram bounds must be strictly ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  moments_.add(x);
}

double Histogram::upper_bound(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("histogram bucket index");
  if (i == bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[i];
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("quantile must be in [0, 1]");
  if (count() == 0) throw std::logic_error("quantile of empty histogram");
  const double target = q * static_cast<double>(count());
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target && counts_[i] > 0) {
      // Clamp the bucket edges to the observed range so quantiles never
      // leave [min, max]; the overflow bucket has no finite upper edge.
      const double lo =
          i == 0 ? moments_.min() : std::max(bounds_[i - 1], moments_.min());
      const double hi =
          i == bounds_.size() ? moments_.max()
                              : std::min(bounds_[i], moments_.max());
      const double frac =
          (target - static_cast<double>(cum)) /
          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return moments_.max();
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_)
    throw std::invalid_argument("histogram merge: bounds mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  moments_.merge(other.moments_);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  moments_ = sim::Accumulator{};
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  int per_decade) {
  if (lo <= 0.0 || hi <= lo)
    throw std::invalid_argument("need 0 < lo < hi");
  if (per_decade < 1) throw std::invalid_argument("per_decade must be >= 1");
  std::vector<double> bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double b = lo; b < hi * (1.0 + 1e-12); b *= step) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::default_bounds() {
  return exponential_bounds(1e-8, 10.0, 3);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Counter* c = find_entry(counters_, name)) return *c;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (Gauge* g = find_entry(gauges_, name)) return *g;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  if (Histogram* h = find_entry(histograms_, name)) return *h;
  if (bounds.empty()) bounds = Histogram::default_bounds();
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>(std::move(bounds)));
  return *histograms_.back().second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_entry(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_entry(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_entry(histograms_, name);
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "metric,kind,field,value\n";
  struct Row {
    std::string metric;
    const char* kind;
    const char* field;
    double value;
  };
  std::vector<Row> rows;
  for (const auto& [n, c] : counters_)
    rows.push_back({n, "counter", "count",
                    static_cast<double>(c->value())});
  for (const auto& [n, g] : gauges_)
    rows.push_back({n, "gauge", "value", g->value()});
  for (const auto& [n, h] : histograms_) {
    rows.push_back({n, "histogram", "count",
                    static_cast<double>(h->count())});
    if (h->count() > 0) {
      rows.push_back({n, "histogram", "mean", h->moments().mean()});
      rows.push_back({n, "histogram", "stddev", h->moments().stddev()});
      rows.push_back({n, "histogram", "min", h->moments().min()});
      rows.push_back({n, "histogram", "max", h->moments().max()});
      rows.push_back({n, "histogram", "p50", h->quantile(0.5)});
      rows.push_back({n, "histogram", "p99", h->quantile(0.99)});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a.metric < b.metric;
                   });
  for (const Row& r : rows)
    os << r.metric << ',' << r.kind << ',' << r.field << ',' << r.value
       << '\n';
}

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  // Sorted copies of the entry name lists keep the dump deterministic
  // regardless of registration order.
  auto sorted_names = [](const auto& entries) {
    std::vector<const std::string*> names;
    names.reserve(entries.size());
    for (const auto& [n, p] : entries) names.push_back(&n);
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    return names;
  };

  os << "{\n" << pad << "  \"counters\": {";
  bool first = true;
  for (const std::string* n : sorted_names(counters_)) {
    os << (first ? "" : ",") << "\n" << pad << "    \"" << *n
       << "\": " << find_counter(*n)->value();
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";

  os << pad << "  \"gauges\": {";
  first = true;
  for (const std::string* n : sorted_names(gauges_)) {
    os << (first ? "" : ",") << "\n" << pad << "    \"" << *n
       << "\": " << find_gauge(*n)->value();
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";

  os << pad << "  \"histograms\": {";
  first = true;
  for (const std::string* n : sorted_names(histograms_)) {
    const Histogram* h = find_histogram(*n);
    os << (first ? "" : ",") << "\n" << pad << "    \"" << *n
       << "\": {\"count\": " << h->count();
    if (h->count() > 0) {
      os << ", \"mean\": " << h->moments().mean()
         << ", \"stddev\": " << h->moments().stddev()
         << ", \"min\": " << h->moments().min()
         << ", \"max\": " << h->moments().max()
         << ", \"p50\": " << h->quantile(0.5)
         << ", \"p99\": " << h->quantile(0.99);
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "}\n" << pad << "}";
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [n, c] : other.counters_) counter(n).inc(c->value());
  for (const auto& [n, g] : other.gauges_) gauge(n).add(g->value());
  for (const auto& [n, h] : other.histograms_)
    histogram(n, h->bounds()).merge_from(*h);
}

void MetricsRegistry::reset_values() {
  for (auto& [n, c] : counters_) c->reset();
  for (auto& [n, g] : gauges_) g->reset();
  for (auto& [n, h] : histograms_) h->reset();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  ++epoch_;
}

}  // namespace ambisim::obs
