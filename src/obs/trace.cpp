#include "ambisim/obs/trace.hpp"

#include <ostream>
#include <stdexcept>

namespace ambisim::obs {

namespace {

/// Minimal JSON string escaping; names are ASCII identifiers in practice.
void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    switch (*s) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << *s;
    }
  }
  os << '"';
}

}  // namespace

Tracer::Tracer(std::size_t capacity) {
  if (capacity == 0)
    throw std::invalid_argument("tracer capacity must be positive");
  ring_.resize(capacity);
}

void Tracer::push(const TraceEvent& ev) {
  ring_[head_] = ev;
  head_ = (head_ + 1) % ring_.size();
  ++recorded_;
}

void Tracer::instant(const char* name, const char* category, double ts_us,
                     std::uint32_t tid) {
  push({name, category, Phase::Instant, ts_us, 0.0, tid, 0.0, 0});
}

void Tracer::complete(const char* name, const char* category, double ts_us,
                      double dur_us, std::uint32_t tid) {
  push({name, category, Phase::Complete, ts_us, dur_us, tid, 0.0, 0});
}

void Tracer::counter(const char* name, const char* category, double ts_us,
                     double value) {
  push({name, category, Phase::Counter, ts_us, 0.0, 0, value, 0});
}

void Tracer::flow(const char* name, const char* category, Phase phase,
                  double ts_us, std::uint32_t tid, std::uint64_t flow_id,
                  double value) {
  push({name, category, phase, ts_us, 0.0, tid, value, flow_id});
}

std::size_t Tracer::size() const {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                  : ring_.size();
}

void Tracer::clear() {
  head_ = 0;
  recorded_ = 0;
}

void Tracer::merge_from(const Tracer& other) {
  for (const TraceEvent& ev : other.events()) push(ev);
}

std::vector<TraceEvent> Tracer::events() const {
  const std::size_t n = size();
  std::vector<TraceEvent> out;
  out.reserve(n);
  // When the ring has wrapped, the oldest surviving event sits at head_.
  const std::size_t start = recorded_ > ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void Tracer::write_chrome_json(std::ostream& os, int pid) const {
  os << "[";
  bool first = true;
  for (const TraceEvent& ev : events()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_escaped(os, ev.name);
    os << ",\"cat\":";
    write_escaped(os, ev.category);
    os << ",\"ph\":\"" << static_cast<char>(ev.phase) << '"'
       << ",\"ts\":" << ev.ts_us << ",\"pid\":" << pid
       << ",\"tid\":" << ev.tid;
    if (ev.phase == Phase::Complete) os << ",\"dur\":" << ev.dur_us;
    // Flow events need an id so the viewer links the chain; "bp":"e"
    // binds each event to its enclosing slice, which Perfetto accepts
    // even when the lane has no open slice.
    if (is_flow(ev.phase))
      os << ",\"id\":" << ev.flow << ",\"bp\":\"e\"";
    if (ev.phase == Phase::Counter)
      os << ",\"args\":{\"value\":" << ev.value << '}';
    else if (is_flow(ev.phase))
      os << ",\"args\":{\"value\":" << ev.value << '}';
    else
      os << ",\"args\":{}";
    os << '}';
  }
  os << "\n]\n";
}

void Tracer::write_csv(std::ostream& os) const {
  os << "name,category,phase,ts_us,dur_us,tid,value,flow\n";
  for (const TraceEvent& ev : events()) {
    os << ev.name << ',' << ev.category << ','
       << static_cast<char>(ev.phase) << ',' << ev.ts_us << ',' << ev.dur_us
       << ',' << ev.tid << ',' << ev.value << ',' << ev.flow << '\n';
  }
}

void Tracer::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : events()) {
    os << "{\"type\":\"event\",\"name\":";
    write_escaped(os, ev.name);
    os << ",\"cat\":";
    write_escaped(os, ev.category);
    os << ",\"ph\":\"" << static_cast<char>(ev.phase) << '"'
       << ",\"ts_us\":" << ev.ts_us << ",\"dur_us\":" << ev.dur_us
       << ",\"tid\":" << ev.tid << ",\"value\":" << ev.value
       << ",\"flow\":" << ev.flow << "}\n";
  }
}

}  // namespace ambisim::obs
