#include "ambisim/obs/timeline.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

namespace ambisim::obs {

namespace {

// Local SplitMix64 finalizer chain for the digest; obs sits below exec in
// the layering, so the constant is duplicated rather than included.
constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + kGamma));
}

std::uint64_t fold(std::uint64_t h, double v) {
  return fold(h, std::bit_cast<std::uint64_t>(v));
}

/// Total order on samples: by time, ties by value bit pattern.  Samples
/// carry no other state, so equal (t, value) samples are interchangeable
/// and any sequence sorted by this order is a pure function of the sample
/// multiset.
bool sample_less(const Sample& a, const Sample& b) {
  if (a.t_s != b.t_s) return a.t_s < b.t_s;
  return std::bit_cast<std::uint64_t>(a.value) <
         std::bit_cast<std::uint64_t>(b.value);
}

}  // namespace

Series::Series(std::size_t max_samples) : max_samples_(max_samples) {
  if (max_samples_ == 1) max_samples_ = 2;
  if (max_samples_ % 2 != 0) ++max_samples_;
}

void Series::ensure_sorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end(), sample_less);
  sorted_ = true;
}

void Series::admit(double t_s, double value) {
  if (!samples_.empty() && t_s < samples_.back().t_s) sorted_ = false;
  samples_.push_back({t_s, value});
  has_last_ = true;
  last_value_ = value;
  if (max_samples_ != 0 && samples_.size() >= max_samples_) {
    // Halve: keep even positions of the admitted stream and double the
    // stride, so the kept set is "every 2*stride-th offered sample" — a
    // pure function of the stream, never of wall time or allocation.
    ensure_sorted();
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2)
      samples_[w++] = samples_[r];
    samples_.resize(w);
    stride_ *= 2;
  }
}

void Series::record(double t_s, double value) {
  const std::uint64_t index = seen_++;
  if (index % stride_ != 0) return;
  admit(t_s, value);
}

void Series::record_change(double t_s, double value) {
  if (has_last_ && value == last_value_) return;
  record(t_s, value);
}

const std::vector<Sample>& Series::samples() const {
  ensure_sorted();
  return samples_;
}

Sample Series::last() const {
  ensure_sorted();
  return samples_.back();
}

const Sample* Series::last_before(double t_s) const {
  ensure_sorted();
  // First sample with t > t_s; the one before it (if any) is the answer.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t_s,
      [](double t, const Sample& s) { return t < s.t_s; });
  if (it == samples_.begin()) return nullptr;
  return &*(it - 1);
}

WindowStats Series::window(double t0, double t1) const {
  ensure_sorted();
  WindowStats w;
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), t0,
      [](const Sample& s, double t) { return s.t_s < t; });
  for (auto it = lo; it != samples_.end() && it->t_s <= t1; ++it) {
    if (w.count == 0) {
      w.min = w.max = it->value;
    } else {
      w.min = std::min(w.min, it->value);
      w.max = std::max(w.max, it->value);
    }
    w.mean += it->value;
    ++w.count;
  }
  if (w.count > 0) w.mean /= static_cast<double>(w.count);
  return w;
}

void Series::merge_from(const Series& other) {
  if (other.samples_.empty()) return;
  ensure_sorted();
  other.ensure_sorted();
  std::vector<Sample> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
             other.samples_.end(), std::back_inserter(merged), sample_less);
  samples_ = std::move(merged);
  // Offered counts add; the stride and dedup state follow the larger
  // contributor so continued recording stays deterministic per stream.
  seen_ += other.seen_;
  stride_ = std::max(stride_, other.stride_);
  if (!samples_.empty()) {
    has_last_ = true;
    last_value_ = samples_.back().value;
  }
}

void Series::compact() {
  if (max_samples_ == 0 || samples_.size() <= max_samples_) return;
  ensure_sorted();
  // Keep every k-th sample plus the final one; k depends only on the
  // sample count, so compaction is a pure function of the multiset.
  const std::size_t k =
      (samples_.size() + max_samples_ - 1) / max_samples_;
  std::size_t w = 0;
  for (std::size_t r = 0; r + 1 < samples_.size() && w + 1 < max_samples_;
       r += k)
    samples_[w++] = samples_[r];
  samples_[w++] = samples_.back();
  samples_.resize(w);
}

void Series::reset_stream() { has_last_ = false; }

void Series::clear() {
  samples_.clear();
  sorted_ = true;
  stride_ = 1;
  seen_ = 0;
  has_last_ = false;
  last_value_ = 0.0;
}

Series& Timeline::series(std::string_view name, std::uint32_t node,
                         std::size_t max_samples) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(name, node),
      [](const Keyed& e, const std::pair<std::string_view, std::uint32_t>& k) {
        if (e.name != k.first) return e.name < k.first;
        return e.node < k.second;
      });
  if (it != entries_.end() && it->name == name && it->node == node)
    return *it->series;
  it = entries_.insert(
      it, Keyed{std::string(name), node,
                std::make_unique<Series>(max_samples)});
  return *it->series;
}

const Series* Timeline::find(std::string_view name,
                             std::uint32_t node) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(name, node),
      [](const Keyed& e, const std::pair<std::string_view, std::uint32_t>& k) {
        if (e.name != k.first) return e.name < k.first;
        return e.node < k.second;
      });
  if (it != entries_.end() && it->name == name && it->node == node)
    return it->series.get();
  return nullptr;
}

std::size_t Timeline::sample_count() const {
  std::size_t n = 0;
  for (const Keyed& e : entries_) n += e.series->size();
  return n;
}

std::vector<Timeline::Entry> Timeline::entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const Keyed& e : entries_)
    out.push_back({&e.name, e.node, e.series.get()});
  return out;
}

void Timeline::merge_from(const Timeline& other) {
  for (const Keyed& e : other.entries_)
    series(e.name, e.node, e.series->max_samples())
        .merge_from(*e.series);
}

std::uint64_t Timeline::digest() const {
  std::uint64_t h = 0;
  for (const Keyed& e : entries_) {
    for (char c : e.name) h = fold(h, static_cast<std::uint64_t>(c));
    h = fold(h, static_cast<std::uint64_t>(e.node));
    for (const Sample& s : e.series->samples()) {
      h = fold(h, s.t_s);
      h = fold(h, s.value);
    }
  }
  return h;
}

void Timeline::write_csv(std::ostream& os) const {
  os << "series,node,t_s,value\n";
  for (const Keyed& e : entries_)
    for (const Sample& s : e.series->samples())
      os << e.name << ',' << e.node << ',' << s.t_s << ',' << s.value
         << '\n';
}

void Timeline::write_jsonl(std::ostream& os) const {
  for (const Keyed& e : entries_)
    for (const Sample& s : e.series->samples())
      os << "{\"type\":\"sample\",\"name\":\"" << e.name
         << "\",\"node\":" << e.node << ",\"t_s\":" << s.t_s
         << ",\"value\":" << s.value << "}\n";
}

void Timeline::reset_streams() {
  for (Keyed& e : entries_) e.series->reset_stream();
}

void Timeline::reset_values() {
  for (Keyed& e : entries_) e.series->clear();
}

void Timeline::clear() { entries_.clear(); }

}  // namespace ambisim::obs
