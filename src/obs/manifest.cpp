#include "ambisim/obs/manifest.hpp"

#include <ostream>
#include <string>

#include "ambisim/obs/obs.hpp"

#ifndef AMBISIM_GIT_DESCRIBE
#define AMBISIM_GIT_DESCRIBE "unknown"
#endif
#ifndef AMBISIM_BUILD_TYPE
#define AMBISIM_BUILD_TYPE "unknown"
#endif
#ifndef AMBISIM_SANITIZE_FLAGS
#define AMBISIM_SANITIZE_FLAGS ""
#endif

namespace ambisim::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

RunManifest RunManifest::collect() {
  RunManifest m;
  m.git_describe = AMBISIM_GIT_DESCRIBE;
  m.build_type = AMBISIM_BUILD_TYPE;
#ifdef __VERSION__
  m.compiler = __VERSION__;
#endif
  m.sanitize = AMBISIM_SANITIZE_FLAGS;
  m.obs_compiled = AMBISIM_OBS_COMPILED != 0;
  return m;
}

void RunManifest::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n" << pad << "  \"git_describe\": ";
  write_escaped(os, git_describe);
  os << ",\n" << pad << "  \"build_type\": ";
  write_escaped(os, build_type);
  os << ",\n" << pad << "  \"compiler\": ";
  write_escaped(os, compiler);
  os << ",\n" << pad << "  \"sanitize\": ";
  write_escaped(os, sanitize);
  os << ",\n" << pad << "  \"obs_compiled\": "
     << (obs_compiled ? "true" : "false");
  os << ",\n" << pad << "  \"label\": ";
  write_escaped(os, label);
  os << ",\n" << pad << "  \"seed\": " << seed;
  os << ",\n" << pad << "  \"config_digest\": " << config_digest;
  os << ",\n" << pad << "  \"pool_size\": " << pool_size;
  os << "\n" << pad << "}";
}

void write_flight_jsonl(std::ostream& os, const Context& ctx,
                        const RunManifest& manifest) {
  os << "{\"type\":\"manifest\",\"git_describe\":";
  write_escaped(os, manifest.git_describe);
  os << ",\"build_type\":";
  write_escaped(os, manifest.build_type);
  os << ",\"label\":";
  write_escaped(os, manifest.label);
  os << ",\"seed\":" << manifest.seed
     << ",\"config_digest\":" << manifest.config_digest
     << ",\"pool_size\":" << manifest.pool_size << "}\n";
  ctx.timeline.write_jsonl(os);
  ctx.tracer.write_jsonl(os);
}

}  // namespace ambisim::obs
