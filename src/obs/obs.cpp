#include "ambisim/obs/obs.hpp"

#include <stdexcept>

namespace ambisim::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
thread_local Context* t_bound = nullptr;
}  // namespace

Context* bind_context(Context* ctx) {
  Context* prev = t_bound;
  t_bound = ctx;
  return prev;
}

}  // namespace detail

Context& context() {
  if (detail::t_bound != nullptr) return *detail::t_bound;
  static Context ctx;
  return ctx;
}

void set_enabled(bool on) {
#if AMBISIM_OBS_COMPILED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void reset() {
  context().metrics.reset_values();
  context().tracer.clear();
  context().timeline.reset_values();
}

ShardSet::ShardSet(std::size_t shards, std::size_t tracer_capacity) {
  if (shards == 0)
    throw std::invalid_argument("shard count must be positive");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto ctx = std::make_unique<Context>();
    ctx->tracer = Tracer(tracer_capacity);
    shards_.push_back(std::move(ctx));
  }
}

void ShardSet::merge_into(Context& dst) {
  for (auto& shard : shards_) {
    dst.metrics.merge_from(shard->metrics);
    dst.tracer.merge_from(shard->tracer);
    // Timelines merge as sorted multisets, so the folded result does not
    // depend on which replication landed in which shard (pool-size
    // bit-identity; see timeline.hpp).
    dst.timeline.merge_from(shard->timeline);
    shard->metrics.clear();
    shard->tracer.clear();
    shard->timeline.clear();
  }
}

}  // namespace ambisim::obs
