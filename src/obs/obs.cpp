#include "ambisim/obs/obs.hpp"

namespace ambisim::obs {

namespace detail {
bool g_enabled = false;
}  // namespace detail

Context& context() {
  static Context ctx;
  return ctx;
}

void set_enabled(bool on) {
#if AMBISIM_OBS_COMPILED
  detail::g_enabled = on;
#else
  (void)on;
#endif
}

void reset() {
  context().metrics.reset_values();
  context().tracer.clear();
}

}  // namespace ambisim::obs
