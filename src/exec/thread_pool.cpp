#include "ambisim/exec/thread_pool.hpp"

namespace ambisim::exec {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  slots_.resize(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Task t;
    t.fn = std::move(task);
    if (accounting_) t.enqueued = Clock::now();
    queue_.push_back(std::move(t));
  }
  cv_.notify_one();
}

void ThreadPool::set_accounting(bool enabled) {
  std::lock_guard<std::mutex> lk(mu_);
  accounting_ = enabled;
  if (!enabled) return;
  const Clock::time_point now = Clock::now();
  for (WorkerSlot& slot : slots_) {
    slot.stats = WorkerStats{};
    slot.anchor = now;
    slot.last_event = now;
    slot.running = false;
  }
}

bool ThreadPool::accounting_enabled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return accounting_;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  const Clock::time_point now = Clock::now();
  std::vector<WorkerStats> out;
  out.reserve(slots_.size());
  for (const WorkerSlot& slot : slots_) {
    WorkerStats s = slot.stats;
    if (slot.anchor != Clock::time_point{}) {
      // Attribute the open interval since the last recorded transition so
      // the buckets partition the lifetime.
      const double tail =
          std::chrono::duration<double>(now - slot.last_event).count();
      if (slot.running)
        s.run_s += tail;
      else
        s.idle_s += tail;
      s.lifetime_s = std::chrono::duration<double>(now - slot.anchor).count();
    }
    out.push_back(s);
  }
  return out;
}

int ThreadPool::current_worker_index() { return t_worker_index; }

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop(unsigned index) {
  t_worker_index = static_cast<int>(index);
  WorkerSlot& slot = slots_[index];
  for (;;) {
    Task task;
    bool acct = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      acct = accounting_;
      if (acct) {
        const Clock::time_point d = Clock::now();
        // Split [last_event, d) at the task's enqueue stamp: before it the
        // worker was idle (nothing runnable for it); after it the task sat
        // in the queue.  Unstamped tasks (enqueued before accounting was
        // enabled) clamp to last_event and charge the whole gap to idle.
        Clock::time_point avail = task.enqueued;
        if (avail < slot.last_event) avail = slot.last_event;
        if (avail > d) avail = d;
        slot.stats.idle_s +=
            std::chrono::duration<double>(avail - slot.last_event).count();
        slot.stats.queue_wait_s +=
            std::chrono::duration<double>(d - avail).count();
        slot.stats.tasks += 1;
        slot.last_event = d;
        slot.running = true;
      }
    }
    task.fn();
    if (acct) {
      // Publish immediately so a worker_stats() snapshot taken right after
      // TaskSet::wait() already sees this task's run time.
      std::lock_guard<std::mutex> lk(mu_);
      const Clock::time_point f = Clock::now();
      slot.stats.run_s +=
          std::chrono::duration<double>(f - slot.last_event).count();
      slot.last_event = f;
      slot.running = false;
    }
  }
}

TaskSet::~TaskSet() {
  std::unique_lock<std::mutex> lk(mu_);
  done_.wait(lk, [this] { return pending_count_ == 0; });
}

void TaskSet::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_count_;
  }
  pool_.submit([this, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (err && !first_error_) first_error_ = err;
    if (--pending_count_ == 0) done_.notify_all();
  });
}

void TaskSet::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_.wait(lk, [this] { return pending_count_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t TaskSet::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_count_;
}

}  // namespace ambisim::exec
