#include "ambisim/exec/thread_pool.hpp"

namespace ambisim::exec {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::current_worker_index() { return t_worker_index; }

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop(unsigned index) {
  t_worker_index = static_cast<int>(index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskSet::~TaskSet() {
  std::unique_lock<std::mutex> lk(mu_);
  done_.wait(lk, [this] { return pending_count_ == 0; });
}

void TaskSet::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_count_;
  }
  pool_.submit([this, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (err && !first_error_) first_error_ = err;
    if (--pending_count_ == 0) done_.notify_all();
  });
}

void TaskSet::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_.wait(lk, [this] { return pending_count_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t TaskSet::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_count_;
}

}  // namespace ambisim::exec
