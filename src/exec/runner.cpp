#include "ambisim/exec/runner.hpp"

#include <algorithm>

namespace ambisim::exec::detail {

namespace {

// Shard tracer rings share the global tracer's budget across workers so a
// heavily traced parallel region does not multiply memory by thread count.
std::size_t shard_tracer_capacity(unsigned workers) {
  return std::max<std::size_t>(
      1024, obs::Tracer::kDefaultCapacity / std::max(1u, workers));
}

}  // namespace

ObsShardGuard::ObsShardGuard(bool shard_obs, unsigned workers) {
  if (shard_obs && workers > 0 && obs::enabled())
    shards_ = std::make_unique<obs::ShardSet>(workers,
                                              shard_tracer_capacity(workers));
}

ObsShardGuard::~ObsShardGuard() {
  if (shards_) shards_->merge_into(obs::context());
}

obs::Context* ObsShardGuard::shard_for_current_worker() {
  if (!shards_) return nullptr;
  const int worker = ThreadPool::current_worker_index();
  if (worker < 0 || static_cast<std::size_t>(worker) >= shards_->size())
    return nullptr;
  return &shards_->shard(static_cast<std::size_t>(worker));
}

}  // namespace ambisim::exec::detail
