#include "ambisim/net/network_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>

#include "ambisim/exec/thread_pool.hpp"

namespace ambisim::net {

namespace {

using namespace ambisim::units::literals;

// Routing over the alive subgraph: dead nodes neither source nor relay.
// The neighbor table is built once per run; every epoch's rebuild filters
// it and reads cached edge distances instead of recomputing hypots.
RoutingTree routes_on_alive(const Topology& topo, const Adjacency& adj,
                            const std::vector<bool>& alive,
                            RoutingPolicy policy,
                            const LinkEnergyModel& model) {
  const int n = topo.size();
  RoutingTree tree;
  tree.next_hop.assign(n, -1);
  tree.cost.assign(n, std::numeric_limits<double>::infinity());
  tree.hops.assign(n, -1);
  const int s = topo.sink();
  tree.next_hop[s] = s;
  tree.cost[s] = 0.0;
  tree.hops[s] = 0;

  if (policy == RoutingPolicy::MinHop) {
    std::queue<int> q;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      const Adjacency::Row row = adj.row(v);
      for (std::size_t k = 0; k < row.count; ++k) {
        const int w = row.ids[k];
        if (!alive[w] || tree.hops[w] >= 0) continue;
        tree.hops[w] = tree.hops[v] + 1;
        tree.cost[w] = static_cast<double>(tree.hops[w]);
        tree.next_hop[w] = v;
        q.push(w);
      }
    }
  } else {
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0.0, s});
    while (!pq.empty()) {
      const auto [c, v] = pq.top();
      pq.pop();
      if (c > tree.cost[v]) continue;
      const Adjacency::Row row = adj.row(v);
      for (std::size_t k = 0; k < row.count; ++k) {
        const int w = row.ids[k];
        if (!alive[w]) continue;
        const double cand = c + model.cost(u::Length(row.dist[k]));
        if (cand < tree.cost[w]) {
          tree.cost[w] = cand;
          tree.next_hop[w] = v;
          tree.hops[w] = tree.hops[v] + 1;
          pq.push({cand, w});
        }
      }
    }
  }
  return tree;
}

}  // namespace

SensorNetworkResult simulate_sensor_network(const SensorNetworkConfig& cfg) {
  if (cfg.node_count < 2)
    throw std::invalid_argument("network needs a sink and >= 1 sensor");
  if (cfg.report_period <= u::Time(0.0))
    throw std::invalid_argument("report period must be positive");
  if (cfg.shards < 0)
    throw std::invalid_argument("shards must be >= 0 (0 = serial walk)");

  sim::Rng rng(cfg.seed);
  const Topology topo =
      Topology::random_field(cfg.node_count, cfg.field_side, rng);
  const radio::RadioModel radio(cfg.radio);
  const u::Length range =
      u::min(cfg.radio_range, radio.max_range());
  const Adjacency adj = topo.neighbor_table(range);

  LinkEnergyModel link_model;
  link_model.k_elec = radio.energy_per_bit_tx().value() +
                      radio.energy_per_bit_rx().value();
  link_model.exponent = cfg.radio.environment.exponent;

  const int n = topo.size();
  std::vector<energy::Battery> batteries;
  batteries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) batteries.emplace_back(cfg.battery);

  std::vector<bool> alive(n, true);
  SensorNetworkResult res;
  res.energy_spent.assign(n, 0.0);

  const u::Power baseline =
      cfg.mac.baseline_power(radio) + cfg.mcu_sleep;
  const u::Energy source_energy =
      cfg.mac.tx_packet_energy(radio, cfg.packet_bits) +
      u::Energy(cfg.mcu_active.value() * cfg.mcu_active_per_report.value());
  const u::Energy relay_energy =
      cfg.mac.rx_packet_energy(radio, cfg.packet_bits) +
      cfg.mac.tx_packet_energy(radio, cfg.packet_bits);
  const u::Energy sink_rx =
      cfg.mac.rx_packet_energy(radio, cfg.packet_bits);

  const u::Power harvest{cfg.harvest_avg_watt.value_or(0.0)};

  const u::Time horizon = cfg.max_sim_time > u::Time(0.0)
                              ? cfg.max_sim_time
                              : u::Time(86400.0 * 365.25 * 20);  // 20 years
  u::Time now{0.0};
  double hop_sum = 0.0;
  long long hop_packets = 0;

  int alive_sensors = n - 1;
  const int death_target = (n - 1) / 10;  // stop at 90 % sensor death

  // Sharded relay walk (cfg.shards >= 2): contiguous source blocks walk
  // their paths into per-block scratch rows in parallel, then the rows
  // merge in block order.  Relay counts are integral doubles, so the merge
  // is exact and the epoch stays bit-identical to the serial walk.
  const int blocks = cfg.shards;
  std::optional<exec::ThreadPool> walk_pool;
  std::vector<double> walk_scratch;
  std::vector<int> walk_counts;
  if (blocks >= 2) {
    walk_pool.emplace(0);
    walk_scratch.resize(static_cast<std::size_t>(blocks) *
                        static_cast<std::size_t>(n));
    walk_counts.resize(static_cast<std::size_t>(blocks));
  }

  while (now < horizon && alive_sensors > death_target) {
    const RoutingTree tree =
        routes_on_alive(topo, adj, alive, cfg.routing, link_model);

    // Per-node steady-state drain in the current epoch.  `sourcing` is
    // bytes, not vector<bool>: block workers each write their own index
    // range, which packed bits would turn into a word-level data race.
    std::vector<double> relays(n, 0.0);
    std::vector<std::uint8_t> sourcing(n, 0);
    int reachable_sources = 0;
    if (blocks < 2) {
      for (int i = 1; i < n; ++i) {
        if (!alive[i] || !tree.reachable(i)) continue;
        sourcing[i] = 1;
        ++reachable_sources;
        int v = tree.next_hop[i];
        while (v != topo.sink()) {
          relays[v] += 1.0;
          v = tree.next_hop[v];
        }
      }
    } else {
      std::fill(walk_scratch.begin(), walk_scratch.end(), 0.0);
      std::fill(walk_counts.begin(), walk_counts.end(), 0);
      exec::parallel_for(
          *walk_pool, static_cast<std::size_t>(blocks),
          [&](std::size_t b) {
            // Sources [1, n) split into `blocks` contiguous ranges.
            const int lo =
                1 + static_cast<int>((static_cast<long long>(n - 1) *
                                      static_cast<long long>(b)) /
                                     blocks);
            const int hi =
                1 + static_cast<int>((static_cast<long long>(n - 1) *
                                      static_cast<long long>(b + 1)) /
                                     blocks);
            double* row = walk_scratch.data() +
                          b * static_cast<std::size_t>(n);
            for (int i = lo; i < hi; ++i) {
              if (!alive[i] || !tree.reachable(i)) continue;
              sourcing[static_cast<std::size_t>(i)] = 1;
              ++walk_counts[b];
              int v = tree.next_hop[i];
              while (v != topo.sink()) {
                row[v] += 1.0;
                v = tree.next_hop[v];
              }
            }
          },
          /*grain=*/1);
      for (int b = 0; b < blocks; ++b) {
        reachable_sources += walk_counts[static_cast<std::size_t>(b)];
        const double* row = walk_scratch.data() +
                            static_cast<std::size_t>(b) *
                                static_cast<std::size_t>(n);
        for (int v = 0; v < n; ++v) relays[static_cast<std::size_t>(v)] += row[v];
      }
    }

    std::vector<u::Power> drain(n, u::Power(0.0));
    for (int i = 1; i < n; ++i) {
      if (!alive[i]) continue;
      u::Energy per_round{0.0};
      if (sourcing[i]) per_round += source_energy;
      if (cfg.aggregate_at_relays) {
        // Aggregating relays still receive every descendant's packet but
        // fold the payloads into their own single transmission.
        per_round += cfg.mac.rx_packet_energy(radio, cfg.packet_bits) *
                     relays[i];
      } else {
        per_round += relay_energy * relays[i];
      }
      drain[i] = baseline +
                 u::Power(per_round.value() / cfg.report_period.value());
    }

    // Earliest death under constant drain (harvest offsets the drain).
    u::Time dt = horizon - now;
    for (int i = 1; i < n; ++i) {
      if (!alive[i]) continue;
      const u::Power net = drain[i] - harvest;
      if (net <= u::Power(0.0)) continue;  // energy-neutral: immortal
      const u::Time death = batteries[i].lifetime_at(net);
      dt = u::min(dt, death);
    }
    if (dt <= u::Time(0.0)) dt = cfg.report_period;  // guarantee progress

    // Advance the epoch: spend energy, count traffic.
    const double rounds = dt.value() / cfg.report_period.value();
    for (int i = 1; i < n; ++i) {
      if (!alive[i]) continue;
      const u::Power net = u::max(u::Power(0.0), drain[i] - harvest);
      const u::Energy spent = batteries[i].draw(net, dt);
      res.energy_spent[i] += drain[i].value() * dt.value();
      (void)spent;
      res.ledger.charge("listen-baseline", u::Energy(baseline.value() *
                                                     dt.value()));
      if (sourcing[i]) {
        res.ledger.charge("source-tx",
                          u::Energy(source_energy.value() * rounds));
      }
      const u::Energy relay_unit =
          cfg.aggregate_at_relays
              ? cfg.mac.rx_packet_energy(radio, cfg.packet_bits)
              : relay_energy;
      res.ledger.charge("relay-fwd",
                        u::Energy(relay_unit.value() * relays[i] * rounds));
    }
    res.ledger.charge("sink-rx", u::Energy(sink_rx.value() *
                                           reachable_sources * rounds));

    res.packets_generated +=
        static_cast<long long>(std::llround(rounds * (alive_sensors)));
    res.packets_delivered +=
        static_cast<long long>(std::llround(rounds * reachable_sources));
    for (int i = 1; i < n; ++i) {
      if (sourcing[i]) {
        hop_sum += tree.hops[i] * rounds;
        hop_packets += static_cast<long long>(std::llround(rounds));
      }
    }

    now += dt;

    // Mark deaths at the epoch boundary.
    for (int i = 1; i < n; ++i) {
      if (!alive[i]) continue;
      const u::Power net = drain[i] - harvest;
      if (net > u::Power(0.0) && batteries[i].depleted()) {
        alive[i] = false;
        --alive_sensors;
        res.node_lifetimes.add(now.value());
        if (res.first_node_death == u::Time(0.0)) {
          res.first_node_death = now;
          // Hot-spot factor is meaningful at first death: the spread of
          // energy-spend rates before the network starts re-routing around
          // dead relays.
          double mean_e = 0.0;
          double max_e = 0.0;
          for (int k = 1; k < n; ++k) {
            mean_e += res.energy_spent[k];
            max_e = std::max(max_e, res.energy_spent[k]);
          }
          mean_e /= (n - 1);
          if (mean_e > 0.0) res.hotspot_factor = max_e / mean_e;
        }
        if (res.half_network_death == u::Time(0.0) &&
            alive_sensors <= (n - 1) / 2)
          res.half_network_death = now;
      }
    }

    // All remaining nodes energy-neutral: nothing more will change.
    bool any_mortal = false;
    for (int i = 1; i < n; ++i) {
      if (alive[i] && drain[i] - harvest > u::Power(0.0)) any_mortal = true;
    }
    if (!any_mortal) {
      now = horizon;
      break;
    }
  }

  res.simulated = now;
  res.delivery_ratio =
      res.packets_generated > 0
          ? static_cast<double>(res.packets_delivered) /
                static_cast<double>(res.packets_generated)
          : 0.0;
  res.mean_hops = hop_packets > 0
                      ? hop_sum / static_cast<double>(hop_packets)
                      : 0.0;

  {
    const RoutingTree full = routes_on_alive(
        topo, adj, std::vector<bool>(n, true), cfg.routing, link_model);
    for (int i = 1; i < n; ++i) {
      if (!full.reachable(i)) ++res.unreachable_nodes;
    }
  }

  if (res.hotspot_factor == 0.0) {
    // No node died (energy-neutral run): report the end-of-run spread.
    double mean_e = 0.0;
    double max_e = 0.0;
    for (int i = 1; i < n; ++i) {
      mean_e += res.energy_spent[i];
      max_e = std::max(max_e, res.energy_spent[i]);
    }
    mean_e /= (n - 1);
    if (mean_e > 0.0) res.hotspot_factor = max_e / mean_e;
  }
  return res;
}

}  // namespace ambisim::net
