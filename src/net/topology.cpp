#include "ambisim/net/topology.hpp"

#include <cmath>
#include <numbers>
#include <queue>
#include <stdexcept>

namespace ambisim::net {

u::Length distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return u::Length(std::hypot(dx, dy));
}

Topology::Topology(std::vector<Point> nodes) : nodes_(std::move(nodes)) {
  if (nodes_.empty()) throw std::invalid_argument("empty topology");
}

Topology Topology::random_field(int n, u::Length side, sim::Rng& rng) {
  if (n < 1) throw std::invalid_argument("need at least one node");
  if (side <= u::Length(0.0)) throw std::invalid_argument("field side <= 0");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  const double s = side.value();
  pts.push_back({s / 2.0, s / 2.0});  // sink at center
  for (int i = 1; i < n; ++i)
    pts.push_back({rng.uniform(0.0, s), rng.uniform(0.0, s)});
  return Topology(std::move(pts));
}

Topology Topology::grid(int n, u::Length pitch) {
  if (n < 1) throw std::invalid_argument("need at least one node");
  if (pitch <= u::Length(0.0)) throw std::invalid_argument("pitch <= 0");
  const int cols = static_cast<int>(std::ceil(std::sqrt(double(n))));
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int r = i / cols;
    const int c = i % cols;
    pts.push_back({c * pitch.value(), r * pitch.value()});
  }
  return Topology(std::move(pts));
}

Topology Topology::star(int n, u::Length r) {
  if (n < 1) throw std::invalid_argument("need at least one node");
  if (r <= u::Length(0.0)) throw std::invalid_argument("radius <= 0");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  pts.push_back({0.0, 0.0});
  for (int i = 1; i < n; ++i) {
    const double theta = 2.0 * std::numbers::pi * (i - 1) / (n - 1);
    pts.push_back({r.value() * std::cos(theta), r.value() * std::sin(theta)});
  }
  return Topology(std::move(pts));
}

u::Length Topology::node_distance(int a, int b) const {
  return distance(nodes_.at(a), nodes_.at(b));
}

std::vector<std::vector<int>> Topology::adjacency(u::Length range) const {
  if (range <= u::Length(0.0)) throw std::invalid_argument("range <= 0");
  std::vector<std::vector<int>> adj(nodes_.size());
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      if (node_distance(i, j) <= range) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  return adj;
}

bool Topology::connected(u::Length range) const {
  const auto adj = adjacency(range);
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<int> q;
  q.push(sink());
  seen[sink()] = true;
  int visited = 0;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    ++visited;
    for (int w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        q.push(w);
      }
    }
  }
  return visited == size();
}

}  // namespace ambisim::net
