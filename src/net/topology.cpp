#include "ambisim/net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <queue>
#include <stdexcept>

#include "ambisim/net/spatial_grid.hpp"

namespace ambisim::net {

u::Length distance(Point a, Point b) { return u::Length(distance_m(a, b)); }

Topology::Topology(std::vector<Point> nodes) : nodes_(std::move(nodes)) {
  if (nodes_.empty()) throw std::invalid_argument("empty topology");
}

Topology Topology::random_field(int n, u::Length side, sim::Rng& rng) {
  if (n < 1) throw std::invalid_argument("need at least one node");
  if (side <= u::Length(0.0)) throw std::invalid_argument("field side <= 0");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  const double s = side.value();
  pts.push_back({s / 2.0, s / 2.0});  // sink at center
  for (int i = 1; i < n; ++i)
    pts.push_back({rng.uniform(0.0, s), rng.uniform(0.0, s)});
  return Topology(std::move(pts));
}

Topology Topology::grid(int n, u::Length pitch) {
  if (n < 1) throw std::invalid_argument("need at least one node");
  if (pitch <= u::Length(0.0)) throw std::invalid_argument("pitch <= 0");
  const int cols = static_cast<int>(std::ceil(std::sqrt(double(n))));
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int r = i / cols;
    const int c = i % cols;
    pts.push_back({c * pitch.value(), r * pitch.value()});
  }
  return Topology(std::move(pts));
}

Topology Topology::star(int n, u::Length r) {
  if (n < 1) throw std::invalid_argument("need at least one node");
  if (r <= u::Length(0.0)) throw std::invalid_argument("radius <= 0");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  pts.push_back({0.0, 0.0});
  for (int i = 1; i < n; ++i) {
    const double theta = 2.0 * std::numbers::pi * (i - 1) / (n - 1);
    pts.push_back({r.value() * std::cos(theta), r.value() * std::sin(theta)});
  }
  return Topology(std::move(pts));
}

u::Length Topology::node_distance(int a, int b) const {
  return distance(nodes_.at(a), nodes_.at(b));
}

std::vector<std::vector<int>> Topology::adjacency(u::Length range) const {
  if (range <= u::Length(0.0)) throw std::invalid_argument("range <= 0");
  const double r = range.value();
  const SpatialGrid grid(nodes_, r);
  std::vector<std::vector<int>> adj(nodes_.size());
  std::vector<int> buf;
  for (int i = 0; i < size(); ++i) {
    buf.clear();
    grid.neighbors_within(i, r, buf);
    // The brute-force scan emits each row ascending; restore that order so
    // the two paths are byte-identical.
    std::sort(buf.begin(), buf.end());
    adj[static_cast<std::size_t>(i)].assign(buf.begin(), buf.end());
  }
  return adj;
}

std::vector<std::vector<int>> Topology::adjacency_bruteforce(
    u::Length range) const {
  if (range <= u::Length(0.0)) throw std::invalid_argument("range <= 0");
  const double r = range.value();
  std::vector<std::vector<int>> adj(nodes_.size());
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      if (dist_unchecked(i, j) <= r) {
        adj[static_cast<std::size_t>(i)].push_back(j);
        adj[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  return adj;
}

Adjacency Topology::neighbor_table(u::Length range) const {
  if (range <= u::Length(0.0)) throw std::invalid_argument("range <= 0");
  const double r = range.value();
  const SpatialGrid grid(nodes_, r);
  const int n = size();

  Adjacency adj;
  adj.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> buf;
  for (int i = 0; i < n; ++i) {
    buf.clear();
    grid.neighbors_within(i, r, buf);
    std::sort(buf.begin(), buf.end());
    for (const int j : buf) {
      adj.neighbors.push_back(j);
      adj.distance_m.push_back(dist_unchecked(i, j));
    }
    adj.offsets[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(adj.neighbors.size());
  }
  return adj;
}

bool Topology::connected(u::Length range) const {
  return connected(neighbor_table(range));
}

bool Topology::connected(const Adjacency& adj) const {
  if (adj.size() != size())
    throw std::invalid_argument("adjacency size != node count");
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<int> q;
  q.push(sink());
  seen[sink()] = true;
  int visited = 0;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    ++visited;
    const Adjacency::Row row = adj.row(v);
    for (std::size_t k = 0; k < row.count; ++k) {
      const int w = row.ids[k];
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        q.push(w);
      }
    }
  }
  return visited == size();
}

}  // namespace ambisim::net
