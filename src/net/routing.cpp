#include "ambisim/net/routing.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace ambisim::net {

std::vector<int> RoutingTree::path_from(int node) const {
  if (!reachable(node)) return {};
  std::vector<int> path;
  int v = node;
  path.push_back(v);
  while (next_hop[v] != v) {
    v = next_hop[v];
    path.push_back(v);
    if (path.size() > next_hop.size())
      throw std::logic_error("routing loop detected");
  }
  return path;
}

std::vector<int> RoutingTree::relay_load() const {
  std::vector<int> load(next_hop.size(), 0);
  for (std::size_t i = 1; i < next_hop.size(); ++i) {
    if (!reachable(static_cast<int>(i))) continue;
    int v = static_cast<int>(i);
    while (next_hop[v] != v) {
      v = next_hop[v];
      if (next_hop[v] == v) break;  // reached sink; don't count it as relay
      ++load[v];
    }
  }
  return load;
}

double LinkEnergyModel::cost(u::Length d) const {
  if (d < u::Length(0.0)) throw std::invalid_argument("negative distance");
  return k_elec + k_amp * std::pow(d.value(), exponent);
}

namespace {

/// True when `node` is marked down in the (possibly empty) exclusion mask.
bool is_down(const std::vector<std::uint8_t>& down, int node) {
  return !down.empty() && down[static_cast<std::size_t>(node)] != 0;
}

}  // namespace

RoutingTree min_hop_routes(const Topology& topo, const Adjacency& adj,
                           const std::vector<std::uint8_t>& down) {
  if (adj.size() != topo.size())
    throw std::invalid_argument("adjacency size != node count");
  if (!down.empty() && down.size() != static_cast<std::size_t>(topo.size()))
    throw std::invalid_argument("down mask size != node count");
  const int n = topo.size();
  RoutingTree tree;
  tree.next_hop.assign(n, -1);
  tree.cost.assign(n, std::numeric_limits<double>::infinity());
  tree.hops.assign(n, -1);

  const int s = topo.sink();
  if (is_down(down, s)) return tree;  // dead sink: nothing is reachable
  std::queue<int> q;
  tree.next_hop[s] = s;
  tree.cost[s] = 0.0;
  tree.hops[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    const Adjacency::Row row = adj.row(v);
    for (std::size_t k = 0; k < row.count; ++k) {
      const int w = row.ids[k];
      if (tree.hops[w] < 0 && !is_down(down, w)) {
        tree.hops[w] = tree.hops[v] + 1;
        tree.cost[w] = static_cast<double>(tree.hops[w]);
        tree.next_hop[w] = v;
        q.push(w);
      }
    }
  }
  return tree;
}

RoutingTree min_hop_routes(const Topology& topo, u::Length range,
                           const std::vector<std::uint8_t>& down) {
  return min_hop_routes(topo, topo.neighbor_table(range), down);
}

RoutingTree min_hop_routes(const Topology& topo, u::Length range) {
  return min_hop_routes(topo, range, {});
}

RoutingTree min_energy_routes(const Topology& topo, const Adjacency& adj,
                              const LinkEnergyModel& model,
                              const std::vector<std::uint8_t>& down) {
  if (adj.size() != topo.size())
    throw std::invalid_argument("adjacency size != node count");
  if (!down.empty() && down.size() != static_cast<std::size_t>(topo.size()))
    throw std::invalid_argument("down mask size != node count");
  const int n = topo.size();
  RoutingTree tree;
  tree.next_hop.assign(n, -1);
  tree.cost.assign(n, std::numeric_limits<double>::infinity());
  tree.hops.assign(n, -1);

  const int s = topo.sink();
  if (is_down(down, s)) return tree;  // dead sink: nothing is reachable
  using Item = std::pair<double, int>;  // (cost, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  tree.cost[s] = 0.0;
  tree.next_hop[s] = s;
  tree.hops[s] = 0;
  pq.push({0.0, s});
  while (!pq.empty()) {
    const auto [c, v] = pq.top();
    pq.pop();
    if (c > tree.cost[v]) continue;
    const Adjacency::Row row = adj.row(v);
    for (std::size_t k = 0; k < row.count; ++k) {
      const int w = row.ids[k];
      if (is_down(down, w)) continue;
      // The edge length was cached at adjacency build; relaxations no
      // longer pay a hypot (let alone a bounds-checked one) per edge.
      const double link = model.cost(u::Length(row.dist[k]));
      const double cand = tree.cost[v] + link;
      if (cand < tree.cost[w]) {
        tree.cost[w] = cand;
        tree.next_hop[w] = v;
        tree.hops[w] = tree.hops[v] + 1;
        pq.push({cand, w});
      }
    }
  }
  return tree;
}

RoutingTree min_energy_routes(const Topology& topo, u::Length range,
                              const LinkEnergyModel& model,
                              const std::vector<std::uint8_t>& down) {
  return min_energy_routes(topo, topo.neighbor_table(range), model, down);
}

RoutingTree min_energy_routes(const Topology& topo, u::Length range,
                              const LinkEnergyModel& model) {
  return min_energy_routes(topo, range, model, {});
}

double multihop_energy(const LinkEnergyModel& model, u::Length total,
                       int hops) {
  if (hops < 1) throw std::invalid_argument("hops < 1");
  if (total <= u::Length(0.0))
    throw std::invalid_argument("non-positive distance");
  const double per_hop = total.value() / hops;
  return hops * model.cost(u::Length(per_hop));
}

int optimal_hop_count(const LinkEnergyModel& model, u::Length total) {
  if (total <= u::Length(0.0))
    throw std::invalid_argument("non-positive distance");
  if (model.exponent <= 1.0) return 1;  // no superlinear term: direct hop
  const double k_star =
      total.value() * std::pow((model.exponent - 1.0) * model.k_amp /
                                   model.k_elec,
                               1.0 / model.exponent);
  if (k_star <= 1.0) return 1;
  const int lo = static_cast<int>(std::floor(k_star));
  const int hi = lo + 1;
  return multihop_energy(model, total, lo) <=
                 multihop_energy(model, total, hi)
             ? lo
             : hi;
}

}  // namespace ambisim::net
