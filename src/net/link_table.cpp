#include "ambisim/net/link_table.hpp"

#include <stdexcept>

namespace ambisim::net {

LinkTable::LinkTable(const Topology& topo, const radio::RadioModel& radio,
                     u::Information packet_bits,
                     const radio::ArqModel& arq,
                     const LinkTableOptions& options)
    : n_(topo.size()) {
  if (packet_bits <= u::Information(0.0))
    throw std::invalid_argument("link table needs a positive packet size");
  if (options.tag_loss_db < 0.0)
    throw std::invalid_argument("link table needs a non-negative tag loss");
  stats_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  const radio::LinkBudget budget = radio.link_budget();
  const radio::Modulation& mod = radio.params().modulation;
  const bool monostatic = options.model == LinkModel::MonostaticBackscatter;
  for (int from = 0; from < n_; ++from) {
    for (int to = 0; to < n_; ++to) {
      LinkStats& s = stats_[static_cast<std::size_t>(from) *
                                static_cast<std::size_t>(n_) +
                            static_cast<std::size_t>(to)];
      if (from == to) continue;  // self-links keep the perfect defaults
      const u::Length d = topo.node_distance(from, to);
      s.distance_m = d.value();
      s.ber = monostatic
                  ? radio::backscatter_bit_error_rate_at(budget, mod, d,
                                                         options.tag_loss_db)
                  : radio::bit_error_rate_at(budget, mod, d);
      s.per = radio::packet_error_rate(s.ber, packet_bits.value());
      s.expected_attempts = arq.expected_attempts(s.per);
      s.delivery_probability = arq.delivery_probability(s.per);
    }
  }
}

}  // namespace ambisim::net
