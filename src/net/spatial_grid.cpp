#include "ambisim/net/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ambisim::net {

namespace {

/// Cells per axis for an extent/cell ratio, in [1, kMaxCellsPerAxis].
int axis_cells(double extent, double cell_size) {
  if (extent <= 0.0) return 1;
  const double raw = std::ceil(extent / cell_size);
  if (raw >= static_cast<double>(SpatialGrid::kMaxCellsPerAxis))
    return SpatialGrid::kMaxCellsPerAxis;
  return std::max(1, static_cast<int>(raw));
}

}  // namespace

SpatialGrid::SpatialGrid(const std::vector<Point>& points, double cell_size)
    : points_(&points) {
  if (points.empty()) throw std::invalid_argument("empty point set");
  if (!(cell_size > 0.0)) throw std::invalid_argument("cell size <= 0");

  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  min_x_ = std::numeric_limits<double>::infinity();
  min_y_ = std::numeric_limits<double>::infinity();
  for (const Point& p : points) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  if (!std::isfinite(min_x_) || !std::isfinite(min_y_) ||
      !std::isfinite(max_x) || !std::isfinite(max_y))
    throw std::invalid_argument("non-finite node position");

  nx_ = axis_cells(max_x - min_x_, cell_size);
  ny_ = axis_cells(max_y - min_y_, cell_size);
  inv_cell_x_ = nx_ > 1 ? nx_ / (max_x - min_x_) : 0.0;
  inv_cell_y_ = ny_ > 1 ? ny_ / (max_y - min_y_) : 0.0;

  // Counting sort into cells: histogram, prefix-sum, scatter.  Stable, so
  // items within a cell keep ascending id order.
  const int cells = nx_ * ny_;
  const int n = size();
  cell_start_.assign(static_cast<std::size_t>(cells) + 1, 0);
  for (int i = 0; i < n; ++i) {
    const Point& p = points[static_cast<std::size_t>(i)];
    const int c = cell_y(p.y) * nx_ + cell_x(p.x);
    ++cell_start_[static_cast<std::size_t>(c) + 1];
  }
  for (int c = 0; c < cells; ++c)
    cell_start_[static_cast<std::size_t>(c) + 1] +=
        cell_start_[static_cast<std::size_t>(c)];
  cell_items_.resize(static_cast<std::size_t>(n));
  std::vector<int> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (int i = 0; i < n; ++i) {
    const Point& p = points[static_cast<std::size_t>(i)];
    const int c = cell_y(p.y) * nx_ + cell_x(p.x);
    cell_items_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(c)]++)] = i;
  }
}

int SpatialGrid::cell_x(double x) const {
  if (inv_cell_x_ == 0.0) return 0;
  const int c = static_cast<int>((x - min_x_) * inv_cell_x_);
  return std::clamp(c, 0, nx_ - 1);
}

int SpatialGrid::cell_y(double y) const {
  if (inv_cell_y_ == 0.0) return 0;
  const int c = static_cast<int>((y - min_y_) * inv_cell_y_);
  return std::clamp(c, 0, ny_ - 1);
}

int SpatialGrid::cell_of(int point) const {
  const Point& p = points_->at(static_cast<std::size_t>(point));
  return cell_y(p.y) * nx_ + cell_x(p.x);
}

std::size_t SpatialGrid::bytes() const {
  return cell_start_.capacity() * sizeof(int) +
         cell_items_.capacity() * sizeof(int) + sizeof(*this);
}

void SpatialGrid::gather(Point center, double radius, int exclude,
                         std::vector<int>& out) const {
  const std::vector<Point>& pts = *points_;
  const int x0 = cell_x(center.x - radius);
  const int x1 = cell_x(center.x + radius);
  const int y0 = cell_y(center.y - radius);
  const int y1 = cell_y(center.y + radius);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const int c = cy * nx_ + cx;
      const int lo = cell_start_[static_cast<std::size_t>(c)];
      const int hi = cell_start_[static_cast<std::size_t>(c) + 1];
      for (int k = lo; k < hi; ++k) {
        const int j = cell_items_[static_cast<std::size_t>(k)];
        if (j == exclude) continue;
        const Point& q = pts[static_cast<std::size_t>(j)];
        // Same predicate as the brute-force scan (hypot is symmetric in
        // sign, so dx/dy orientation cannot flip a borderline edge).
        if (distance_m(center, q) <= radius) out.push_back(j);
      }
    }
  }
}

void SpatialGrid::neighbors_within(int query, double radius,
                                   std::vector<int>& out) const {
  const Point& p = points_->at(static_cast<std::size_t>(query));
  gather(p, radius, query, out);
}

void SpatialGrid::points_within(Point center, double radius,
                                std::vector<int>& out) const {
  gather(center, radius, -1, out);
}

}  // namespace ambisim::net
