#include "ambisim/net/contention.hpp"

#include <cmath>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::net {

namespace {
void check_load(double g) {
  if (g < 0.0) throw std::invalid_argument("negative offered load");
}
}  // namespace

double slotted_aloha_throughput(double g) {
  check_load(g);
  return g * std::exp(-g);
}

double pure_aloha_throughput(double g) {
  check_load(g);
  return g * std::exp(-2.0 * g);
}

double csma_throughput(double g, double a) {
  check_load(g);
  if (a < 0.0) throw std::invalid_argument("negative propagation delay");
  if (g == 0.0) return 0.0;
  const double e = std::exp(-a * g);
  return g * e / (g * (1.0 + 2.0 * a) + e);
}

double optimal_load_slotted_aloha() { return 1.0; }
double optimal_load_pure_aloha() { return 0.5; }

double optimal_load_csma(double a) {
  // Golden-section search on [1e-3, 1e3] in log space; the curve is
  // unimodal in G.
  double lo = std::log(1e-3);
  double hi = std::log(1e3);
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  for (int i = 0; i < 200; ++i) {
    const double m1 = hi - phi * (hi - lo);
    const double m2 = lo + phi * (hi - lo);
    if (csma_throughput(std::exp(m1), a) < csma_throughput(std::exp(m2), a))
      lo = m1;
    else
      hi = m2;
  }
  return std::exp((lo + hi) / 2.0);
}

double simulate_slotted_aloha(double offered_load, int nodes, int slots,
                              sim::Rng& rng) {
  check_load(offered_load);
  if (nodes < 1 || slots < 1)
    throw std::invalid_argument("need at least one node and one slot");
  const double p = offered_load / nodes;
  if (p > 1.0)
    throw std::invalid_argument("offered load exceeds node capacity");
  long long successes = 0;
  for (int s = 0; s < slots; ++s) {
    int transmitting = 0;
    for (int n = 0; n < nodes && transmitting < 2; ++n) {
      if (rng.bernoulli(p)) ++transmitting;
    }
    if (transmitting == 1) ++successes;
  }
  AMBISIM_OBS_COUNT_N("net.aloha.slots", static_cast<std::uint64_t>(slots));
  AMBISIM_OBS_COUNT_N("net.aloha.successes",
                      static_cast<std::uint64_t>(successes));
  return static_cast<double>(successes) / slots;
}

u::Frequency max_report_rate_per_node(int nodes, u::BitRate bit_rate,
                                      u::Information packet_bits) {
  if (nodes < 1) throw std::invalid_argument("need at least one node");
  if (bit_rate <= u::BitRate(0.0) || packet_bits <= u::Information(0.0))
    throw std::invalid_argument("rates must be positive");
  // Channel carries S_max packets per slot; slots per second =
  // bit_rate / packet_bits; fair share across nodes.
  const double s_max = slotted_aloha_throughput(optimal_load_slotted_aloha());
  const double slots_per_s = bit_rate.value() / packet_bits.value();
  return u::Frequency(s_max * slots_per_s / nodes);
}

}  // namespace ambisim::net
