#include "ambisim/net/packet_sim.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ambisim/net/sparse_link_table.hpp"
#include "ambisim/obs/probe.hpp"
#include "ambisim/obs/profiler.hpp"

namespace ambisim::net {

namespace {

struct Packet {
  int origin = -1;
  int hops_taken = 0;
  int attempts = 0;  ///< tries on the current hop (fault mode only)
  u::Time created{0.0};
  u::Time queued_total{0.0};
  /// Stable per-run flow id (1-based generation order): links every trace
  /// event of this packet's causal chain — hops, retries, reroutes,
  /// delivery or loss — across timeline lanes.  Assigned unconditionally
  /// (a counter bump, no RNG), emitted only when obs is armed.
  std::uint64_t flow = 0;
};

// Everything the per-hop and per-source closures need, gathered behind one
// pointer: event callbacks then capture {ctx, small scalars, shared packet}
// and stay inside InplaceCallback's inline buffer instead of spilling a
// fistful of reference captures to the heap on every scheduled hop.
struct SimCtx {
  const PacketSimConfig& cfg;
  const Topology& topo;
  const RoutingTree& tree;
  const LinkTable& links;
  sim::Simulator& simu;
  sim::Rng& rng;
  PacketSimResult& res;
  std::vector<u::Time>& tx_free;
  u::Time airtime;
  u::Energy tx_e;
  u::Energy rx_e;
  double attempts_sum = 0.0;
  long long attempts_hops = 0;
  std::uint64_t packet_seq = 0;  ///< flow-id source (generation order)
  // Flight-recorder state, written only inside obs::enabled() gates:
  // per-node outstanding transmissions, cumulative radio-on seconds, and
  // cumulative retries.
  std::vector<int> queue_depth;
  std::vector<double> busy_s;
  std::vector<long long> retries_by_node;
  std::function<void(int, std::shared_ptr<Packet>)> forward;

  // Opt-in sparse link state (cfg.sparse_links); null on the dense path.
  const SparseLinkTable* slinks = nullptr;
  // Neighbor table of the run's topology at the routing range, built once;
  // fault-mode re-convergence filters it through the down mask instead of
  // re-running neighbor discovery on every lifecycle edge.
  const Adjacency* adj = nullptr;

  // Fault mode only (all inert when cfg.faults is disengaged).
  fault::FaultInjector* inj = nullptr;
  const PacketFaultConfig* fcfg = nullptr;
  RoutingTree live_tree;          ///< re-converged around down nodes
  u::Length range{0.0};           ///< for rebuilds
  LinkEnergyModel link_model;     ///< for MinEnergy rebuilds
  std::uint64_t attempt_seq = 0;  ///< corruption-hash counter
  std::function<void(int, std::shared_ptr<Packet>)> try_send;

  /// Expected ARQ attempts of (from, to) from whichever table is live.
  [[nodiscard]] double edge_attempts(int from, int to) const {
    return slinks ? slinks->expected_attempts(from, to)
                  : links.edge(from, to).expected_attempts;
  }
};

}  // namespace

PacketSimResult simulate_packets(const PacketSimConfig& cfg) {
  if (cfg.node_count < 2)
    throw std::invalid_argument("network needs a sink and >= 1 sensor");
  if (cfg.report_period <= u::Time(0.0) || cfg.duration <= u::Time(0.0))
    throw std::invalid_argument("period and duration must be positive");
  if (cfg.shards >= 1)
    throw std::invalid_argument(
        "cfg.shards selects the region-sharded engine; call "
        "shard::simulate_packets_sharded (this kernel's shared-rng "
        "preambles cannot honour the sharded determinism contract)");

  // Pure wall-clock observer; nullptr (the common case) costs one pointer
  // test per phase boundary and changes nothing else.
  obs::Profiler* prof = obs::current_profiler();

  sim::Rng rng(cfg.seed);
  if (cfg.placement && cfg.placement->size() != cfg.node_count)
    throw std::invalid_argument("placement size != node_count");
  // An explicit placement skips the random-field draw entirely (the rng
  // stream then starts at the source phases); without one the draw order
  // is unchanged from every earlier release.
  const Topology topo = obs::Profiler::timed(prof, "net.placement", [&] {
    return cfg.placement
               ? *cfg.placement
               : Topology::random_field(cfg.node_count, cfg.field_side, rng);
  });
  const radio::RadioModel radio(cfg.radio);
  const u::Length range = u::min(cfg.radio_range, radio.max_range());

  LinkEnergyModel link_model;
  link_model.k_elec = radio.energy_per_bit_tx().value() +
                      radio.energy_per_bit_rx().value();
  link_model.exponent = cfg.radio.environment.exponent;
  // Neighbor discovery runs once per topology (spatial-grid backed); the
  // initial tree, any fault-mode re-convergence, and the sparse link
  // table all reuse this one table.
  const Adjacency adj = obs::Profiler::timed(
      prof, "net.adjacency_build", [&] { return topo.neighbor_table(range); });
  const RoutingTree tree =
      obs::Profiler::timed(prof, "net.routing_build", [&] {
        return cfg.routing == RoutingPolicy::MinHop
                   ? min_hop_routes(topo, adj)
                   : min_energy_routes(topo, adj, link_model);
      });

  // BER/PER/expected-ARQ-attempts per directed edge, evaluated once per
  // topology; hops then read the cached row instead of re-deriving
  // bit_error_rate_at per packet.  Sparse mode prices only the in-range
  // edges (CSR over `adj`); dense stays the default and the oracle.
  const bool sparse = cfg.model_link_errors && cfg.sparse_links;
  const LinkTable links =
      obs::Profiler::timed(prof, "net.link_pricing", [&] {
        return cfg.model_link_errors && !sparse
                   ? LinkTable(topo, radio, cfg.packet_bits, cfg.arq)
                   : LinkTable();
      });
  const SparseLinkTable sparse_links =
      obs::Profiler::timed(prof, "net.link_pricing", [&] {
        return sparse
                   ? SparseLinkTable(topo, adj, radio, cfg.packet_bits,
                                     cfg.arq)
                   : SparseLinkTable();
      });

  PacketSimResult res;
  sim::Simulator simu;
  const int n = topo.size();
  // Engaged only when cfg.faults is set; outlives the run loop (pending
  // fault events still in the pool at scope exit are destroyed unfired).
  std::optional<fault::FaultInjector> injector;

  // Every source emits about duration/period packets (plus its phase
  // packet); pre-size the sample stores so hot-loop `add`s never reallocate.
  const std::size_t expected_packets =
      static_cast<std::size_t>(n - 1) *
      (static_cast<std::size_t>(cfg.duration.value() /
                                cfg.report_period.value()) +
       1);
  res.end_to_end_latency.reserve(expected_packets);
  res.queueing_delay.reserve(expected_packets);

  // Transmitter FIFO serialization point per node.
  std::vector<u::Time> tx_free(static_cast<std::size_t>(n), u::Time(0.0));

  SimCtx ctx{cfg,  topo, tree, links, simu,
             rng,  res,  tx_free,
             /*airtime=*/radio.time_on_air(cfg.packet_bits),
             /*tx_e=*/cfg.mac.tx_packet_energy(radio, cfg.packet_bits),
             /*rx_e=*/cfg.mac.rx_packet_energy(radio, cfg.packet_bits)};
  ctx.queue_depth.assign(static_cast<std::size_t>(n), 0);
  ctx.busy_s.assign(static_cast<std::size_t>(n), 0.0);
  ctx.retries_by_node.assign(static_cast<std::size_t>(n), 0);
  if (sparse) ctx.slinks = &sparse_links;
  ctx.adj = &adj;

  // Hop forwarding: node `from` hands `pkt` toward the sink.
  ctx.forward = [c = &ctx](int from, std::shared_ptr<Packet> pkt) {
    const int to = c->tree.next_hop[static_cast<std::size_t>(from)];
    // Wait for the transmitter if it is mid-packet (FIFO).
    const u::Time start =
        u::max(c->simu.now(), c->tx_free[static_cast<std::size_t>(from)]);
    const u::Time waited = start - c->simu.now();
    if (waited > u::Time(0.0)) pkt->queued_total += waited;
    // Random preamble alignment with the receiver's wake window.
    const u::Time preamble{
        c->rng.uniform(0.0, c->cfg.mac.wake_interval.value())};
    // Expected ARQ attempts on this directed edge (exactly 1.0 on perfect
    // links, so `x * attempts` stays bit-identical to the unscaled path).
    double attempts = 1.0;
    if (c->cfg.model_link_errors) {
      attempts = c->edge_attempts(from, to);
      c->attempts_sum += attempts;
      ++c->attempts_hops;
    }
    const u::Time done = start + preamble + c->airtime * attempts +
                         c->cfg.radio.startup * attempts;
    c->tx_free[static_cast<std::size_t>(from)] = done;

#if AMBISIM_OBS_COMPILED
    if (obs::enabled()) [[unlikely]] {
      auto& octx = obs::context();
      const double now_s = c->simu.now().value();
      octx.metrics.counter("net.hops").inc();
      octx.metrics.histogram("net.queue_wait_s").observe(waited.value());
      octx.metrics.histogram("net.preamble_s").observe(preamble.value());
      // The hop span covers queueing + preamble + airtime on the
      // sender's timeline lane.
      octx.tracer.complete("hop", "net", obs::to_us(now_s),
                           obs::to_us((done - c->simu.now()).value()),
                           static_cast<std::uint32_t>(from));
      octx.tracer.counter("energy.radio_uJ", "energy", obs::to_us(now_s),
                          (c->tx_e + c->rx_e).value() * attempts * 1e6);
      // Causal chain: this hop, payload = chosen next hop.
      octx.tracer.flow("hop", "net", obs::Phase::FlowStep,
                       obs::to_us(now_s), static_cast<std::uint32_t>(from),
                       pkt->flow, static_cast<double>(to));
      // Flight-recorder series: sender queue depth and radio duty cycle.
      const auto uf = static_cast<std::size_t>(from);
      c->queue_depth[uf] += 1;
      octx.timeline.series("net.queue_depth",
                           static_cast<std::uint32_t>(from))
          .record_change(now_s, c->queue_depth[uf]);
      c->busy_s[uf] += (done - start).value();
      if (done > u::Time(0.0))
        octx.timeline.series("net.radio_duty",
                             static_cast<std::uint32_t>(from))
            .record(done.value(), c->busy_s[uf] / done.value());
    }
#endif

    c->res.ledger.charge("radio-tx", c->tx_e * attempts);
    c->res.ledger.charge("radio-rx", c->rx_e * attempts);

    c->simu.schedule_at(done, [c, from, to, pkt]() {
      pkt->hops_taken += 1;
#if AMBISIM_OBS_COMPILED
      if (obs::enabled()) [[unlikely]] {
        const auto uf = static_cast<std::size_t>(from);
        c->queue_depth[uf] -= 1;
        obs::context()
            .timeline.series("net.queue_depth",
                             static_cast<std::uint32_t>(from))
            .record_change(c->simu.now().value(), c->queue_depth[uf]);
      }
#endif
      if (to == c->topo.sink()) {
        ++c->res.delivered;
        c->res.end_to_end_latency.add(
            (c->simu.now() - pkt->created).value());
        c->res.queueing_delay.add(pkt->queued_total.value());
        c->res.mean_hops += pkt->hops_taken;
#if AMBISIM_OBS_COMPILED
        if (obs::enabled()) [[unlikely]] {
          auto& octx = obs::context();
          octx.metrics.counter("net.packets_delivered").inc();
          octx.metrics.histogram("net.latency_s")
              .observe((c->simu.now() - pkt->created).value());
          octx.tracer.instant("packet.delivered", "net",
                              obs::to_us(c->simu.now().value()),
                              static_cast<std::uint32_t>(pkt->origin));
          octx.tracer.flow("packet.delivered", "net", obs::Phase::FlowEnd,
                           obs::to_us(c->simu.now().value()),
                           static_cast<std::uint32_t>(pkt->origin),
                           pkt->flow,
                           static_cast<double>(pkt->hops_taken));
        }
#endif
        return;
      }
      c->forward(to, pkt);
    });
  };

  // Fault mode: deterministic fault schedule armed on the same kernel,
  // retry/timeout/backoff per hop, and routing re-convergence around down
  // nodes.  Nothing here touches the healthy path above — with
  // cfg.faults disengaged the run is bit-identical to the pre-fault
  // simulator.
  if (cfg.faults) {
    ctx.fcfg = &*cfg.faults;
    ctx.range = range;
    ctx.link_model = link_model;
    ctx.live_tree = tree;

    fault::FaultScheduleConfig scfg = cfg.faults->schedule;
    scfg.node_count = n;
    scfg.horizon_s = cfg.duration.value();
    injector.emplace(fault::FaultSchedule::generate(scfg));
    if (cfg.faults->energy) injector->enable_energy(*cfg.faults->energy);
    ctx.inj = &*injector;

    // Any lifecycle edge re-converges the routing tree around the nodes
    // currently out of service, so subtrees reroute instead of
    // black-holing through a dead parent.  The cached neighbor table is
    // filtered through the down mask — re-convergence no longer repeats
    // neighbor discovery (the old per-transition O(N^2) rebuild).
    injector->on_transition(
        [c = &ctx](int node, fault::NodeState, fault::NodeState,
                   double time_s) {
          std::vector<std::uint8_t> down(
              static_cast<std::size_t>(c->topo.size()), 0);
          for (int v = 0; v < c->topo.size(); ++v)
            down[static_cast<std::size_t>(v)] =
                c->inj->in_service(v) ? 0 : 1;
          c->live_tree =
              c->cfg.routing == RoutingPolicy::MinHop
                  ? min_hop_routes(c->topo, *c->adj, down)
                  : min_energy_routes(c->topo, *c->adj, c->link_model,
                                      down);
          ++c->res.reroutes;
          AMBISIM_OBS_COUNT("net.reroutes");
          // The lifecycle edge that re-converged routing, on the lane of
          // the node that transitioned: packets whose hop.attempt events
          // change next-hop after this instant were rerouted around it.
          AMBISIM_OBS_INSTANT("net.reroute", "net", obs::to_us(time_s),
                              static_cast<std::uint32_t>(node));
        });

    // One transmission attempt of `pkt`'s current hop out of `from`;
    // failures (dead/faded peer, corruption) retry after exponential
    // backoff until the policy gives up.
    ctx.try_send = [c = &ctx](int from, std::shared_ptr<Packet> pkt) {
      if (!c->inj->alive(from)) {
        // The relay died holding the packet; its queue died with it.
        ++c->res.lost_in_flight;
        AMBISIM_OBS_COUNT("net.packets_lost");
        AMBISIM_OBS_FLOW("packet.lost_relay_death", "net",
                         obs::Phase::FlowEnd,
                         obs::to_us(c->simu.now().value()),
                         static_cast<std::uint32_t>(from), pkt->flow,
                         static_cast<double>(pkt->attempts));
        return;
      }
      const int to = c->live_tree.next_hop[static_cast<std::size_t>(from)];
      if (to < 0) {
        ++c->res.lost_no_route;
        AMBISIM_OBS_COUNT("net.packets_lost");
        AMBISIM_OBS_FLOW("packet.lost_no_route", "net", obs::Phase::FlowEnd,
                         obs::to_us(c->simu.now().value()),
                         static_cast<std::uint32_t>(from), pkt->flow,
                         static_cast<double>(pkt->attempts));
        return;
      }
      ++pkt->attempts;
      const u::Time start =
          u::max(c->simu.now(), c->tx_free[static_cast<std::size_t>(from)]);
      const u::Time waited = start - c->simu.now();
      if (waited > u::Time(0.0)) pkt->queued_total += waited;
      const u::Time preamble{
          c->rng.uniform(0.0, c->cfg.mac.wake_interval.value())};
      double attempts = 1.0;
      if (c->cfg.model_link_errors) {
        attempts = c->edge_attempts(from, to);
        c->attempts_sum += attempts;
        ++c->attempts_hops;
      }
      const u::Time done = start + preamble + c->airtime * attempts +
                           c->cfg.radio.startup * attempts;
      c->tx_free[static_cast<std::size_t>(from)] = done;
      c->res.ledger.charge("radio-tx", c->tx_e * attempts);
      c->res.ledger.charge("radio-rx", c->rx_e * attempts);
      c->inj->account_energy(from, c->tx_e * attempts);
      c->inj->account_energy(to, c->rx_e * attempts);

#if AMBISIM_OBS_COMPILED
      if (obs::enabled()) [[unlikely]] {
        auto& octx = obs::context();
        const double now_s = c->simu.now().value();
        octx.metrics.counter("net.hops").inc();
        octx.metrics.histogram("net.queue_wait_s").observe(waited.value());
        octx.tracer.complete("hop", "net", obs::to_us(now_s),
                             obs::to_us((done - c->simu.now()).value()),
                             static_cast<std::uint32_t>(from));
        // Causal chain: one transmission attempt; payload = next hop read
        // from the *live* tree, so a reroute shows up as a changed
        // next-hop between consecutive attempts of the same flow.
        octx.tracer.flow("hop.attempt", "net", obs::Phase::FlowStep,
                         obs::to_us(now_s),
                         static_cast<std::uint32_t>(from), pkt->flow,
                         static_cast<double>(to));
        const auto uf = static_cast<std::size_t>(from);
        c->queue_depth[uf] += 1;
        octx.timeline.series("net.queue_depth",
                             static_cast<std::uint32_t>(from))
            .record_change(now_s, c->queue_depth[uf]);
        c->busy_s[uf] += (done - start).value();
        if (done > u::Time(0.0))
          octx.timeline.series("net.radio_duty",
                               static_cast<std::uint32_t>(from))
              .record(done.value(), c->busy_s[uf] / done.value());
      }
#endif

      const std::uint64_t attempt_id = ++c->attempt_seq;
      c->simu.schedule_at(done, [c, from, to, pkt, attempt_id]() {
#if AMBISIM_OBS_COMPILED
        if (obs::enabled()) [[unlikely]] {
          const auto uf = static_cast<std::size_t>(from);
          c->queue_depth[uf] -= 1;
          obs::context()
              .timeline.series("net.queue_depth",
                               static_cast<std::uint32_t>(from))
              .record_change(c->simu.now().value(), c->queue_depth[uf]);
        }
#endif
        // Judged at completion: either endpoint may have crashed, browned
        // out, or lost its radio while the packet was on the air.
        bool ok = c->inj->in_service(from) && c->inj->in_service(to);
        if (ok && c->inj->corrupts(from, to, attempt_id)) {
          ok = false;
          ++c->res.corrupted_attempts;
          AMBISIM_OBS_COUNT("net.attempts_corrupted");
          AMBISIM_OBS_FLOW("hop.corrupted", "net", obs::Phase::FlowStep,
                           obs::to_us(c->simu.now().value()),
                           static_cast<std::uint32_t>(from), pkt->flow,
                           static_cast<double>(to));
        }
        if (ok) {
          pkt->attempts = 0;
          pkt->hops_taken += 1;
          if (to == c->topo.sink()) {
            ++c->res.delivered;
            const u::Time latency = c->simu.now() - pkt->created;
            c->res.end_to_end_latency.add(latency.value());
            c->res.queueing_delay.add(pkt->queued_total.value());
            c->res.mean_hops += pkt->hops_taken;
            if (latency > c->fcfg->deadline) {
              ++c->res.delayed;
              AMBISIM_OBS_COUNT("net.packets_delayed");
            }
#if AMBISIM_OBS_COMPILED
            if (obs::enabled()) [[unlikely]] {
              auto& octx = obs::context();
              octx.metrics.counter("net.packets_delivered").inc();
              octx.metrics.histogram("net.latency_s")
                  .observe(latency.value());
              octx.tracer.flow("packet.delivered", "net",
                               obs::Phase::FlowEnd,
                               obs::to_us(c->simu.now().value()),
                               static_cast<std::uint32_t>(pkt->origin),
                               pkt->flow,
                               static_cast<double>(pkt->hops_taken));
            }
#endif
            return;
          }
          c->try_send(to, pkt);
          return;
        }
        if (pkt->attempts >= c->fcfg->retry.max_attempts) {
          ++c->res.lost_in_flight;
          AMBISIM_OBS_COUNT("net.packets_lost");
          AMBISIM_OBS_FLOW("packet.lost_retries_exhausted", "net",
                           obs::Phase::FlowEnd,
                           obs::to_us(c->simu.now().value()),
                           static_cast<std::uint32_t>(from), pkt->flow,
                           static_cast<double>(pkt->attempts));
          return;
        }
        ++c->res.retries;
        AMBISIM_OBS_COUNT("net.retries");
#if AMBISIM_OBS_COMPILED
        if (obs::enabled()) [[unlikely]] {
          auto& octx = obs::context();
          const double now_s = c->simu.now().value();
          // Causal chain: the retry decision, payload = attempts so far.
          octx.tracer.flow("hop.retry", "net", obs::Phase::FlowStep,
                           obs::to_us(now_s),
                           static_cast<std::uint32_t>(from), pkt->flow,
                           static_cast<double>(pkt->attempts));
          const auto uf = static_cast<std::size_t>(from);
          c->retries_by_node[uf] += 1;
          octx.timeline.series("net.retry_count",
                               static_cast<std::uint32_t>(from))
              .record(now_s,
                      static_cast<double>(c->retries_by_node[uf]));
        }
#endif
        const double delay =
            c->fcfg->retry.backoff_delay(pkt->attempts + 1);
        c->simu.schedule_in(u::Time(delay), [c, from, pkt]() {
          c->try_send(from, pkt);
        });
      });
    };

    injector->arm(simu, n);
  }

  // Periodic sources, phase-staggered.  Each node's emitter lives in this
  // frame (which outlives the run) rather than in a shared cell captured
  // by its own closure — the self-capture form is a reference cycle that
  // never frees the cell.
  std::vector<std::function<void()>> emitters(static_cast<std::size_t>(n));
  for (int i = 1; i < n; ++i) {
    const bool routable = tree.reachable(i);
    const u::Time phase{rng.uniform(0.0, cfg.report_period.value())};
    std::function<void()>* emit = &emitters[static_cast<std::size_t>(i)];
    if (!cfg.faults) {
      *emit = [c = &ctx, i, routable, emit]() {
        ++c->res.generated;
        AMBISIM_OBS_COUNT("net.packets_generated");
        if (!routable) {
          ++c->res.undeliverable;
          AMBISIM_OBS_COUNT("net.packets_undeliverable");
        } else {
          auto pkt = std::make_shared<Packet>();
          pkt->origin = i;
          pkt->created = c->simu.now();
          pkt->flow = ++c->packet_seq;
          AMBISIM_OBS_INSTANT("packet.generated", "net",
                              obs::to_us(c->simu.now().value()),
                              static_cast<std::uint32_t>(i));
          AMBISIM_OBS_FLOW("packet", "net", obs::Phase::FlowStart,
                           obs::to_us(c->simu.now().value()),
                           static_cast<std::uint32_t>(i), pkt->flow,
                           static_cast<double>(i));
          c->forward(i, pkt);
        }
        if (c->simu.now() + c->cfg.report_period <= c->cfg.duration)
          c->simu.schedule_in(c->cfg.report_period, *emit);
      };
    } else {
      // Fault-aware source: a down node's scheduled report still counts
      // against the offered load (the function asked for it), routes are
      // read from the live tree, and the local oscillator's drift factor
      // stretches or shrinks the node's report period.
      *emit = [c = &ctx, i, routable, emit]() {
        ++c->res.generated;
        AMBISIM_OBS_COUNT("net.packets_generated");
        if (!c->inj->alive(i)) {
          ++c->res.missed_reports;
          AMBISIM_OBS_COUNT("net.reports_missed");
        } else if (!c->live_tree.reachable(i)) {
          if (!routable) {
            ++c->res.undeliverable;
            AMBISIM_OBS_COUNT("net.packets_undeliverable");
          } else {
            ++c->res.lost_no_route;
            AMBISIM_OBS_COUNT("net.packets_lost");
          }
        } else {
          auto pkt = std::make_shared<Packet>();
          pkt->origin = i;
          pkt->created = c->simu.now();
          pkt->flow = ++c->packet_seq;
          AMBISIM_OBS_INSTANT("packet.generated", "net",
                              obs::to_us(c->simu.now().value()),
                              static_cast<std::uint32_t>(i));
          AMBISIM_OBS_FLOW("packet", "net", obs::Phase::FlowStart,
                           obs::to_us(c->simu.now().value()),
                           static_cast<std::uint32_t>(i), pkt->flow,
                           static_cast<double>(i));
          c->try_send(i, pkt);
        }
        const u::Time period =
            c->cfg.report_period * c->inj->drift_factor(i);
        if (c->simu.now() + period <= c->cfg.duration)
          c->simu.schedule_in(period, *emit);
      };
    }
    simu.schedule_at(phase, *emit);
  }

  {
    obs::Profiler::PhaseScope scope(prof, "net.event_loop");
    simu.run_until(cfg.duration);
  }

  if (injector) {
    const fault::ReliabilityStats st =
        injector->stats(cfg.duration.value());
    res.availability = st.availability;
    res.mttf_s = st.mttf_s;
    res.mttr_s = st.mttr_s;
    if (cfg.faults->energy) {
      // End-of-run battery states for scenario assertions (-1 marks the
      // batteryless immune sink).
      res.final_soc.resize(static_cast<std::size_t>(n), -1.0);
      for (int i = 0; i < n; ++i)
        if (const energy::Battery* b = injector->battery(i))
          res.final_soc[static_cast<std::size_t>(i)] = b->state_of_charge();
    }
  }

  // Baseline listening for every sensor over the horizon.
  const u::Power baseline = cfg.mac.baseline_power(radio);
  res.ledger.charge("listen-baseline",
                    u::Energy(baseline.value() * cfg.duration.value() *
                              (n - 1)));

  if (ctx.attempts_hops > 0)
    res.mean_link_attempts =
        ctx.attempts_sum / static_cast<double>(ctx.attempts_hops);
  if (res.delivered > 0) {
    res.mean_hops /= static_cast<double>(res.delivered);
    res.energy_per_delivered =
        u::Energy((res.ledger.of("radio-tx") + res.ledger.of("radio-rx"))
                      .value() /
                  static_cast<double>(res.delivered));
  }
  return res;
}

}  // namespace ambisim::net
