#include "ambisim/net/packet_sim.hpp"

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ambisim/obs/probe.hpp"

namespace ambisim::net {

namespace {

struct Packet {
  int origin = -1;
  int hops_taken = 0;
  u::Time created{0.0};
  u::Time queued_total{0.0};
};

}  // namespace

PacketSimResult simulate_packets(const PacketSimConfig& cfg) {
  if (cfg.node_count < 2)
    throw std::invalid_argument("network needs a sink and >= 1 sensor");
  if (cfg.report_period <= u::Time(0.0) || cfg.duration <= u::Time(0.0))
    throw std::invalid_argument("period and duration must be positive");

  sim::Rng rng(cfg.seed);
  const Topology topo =
      Topology::random_field(cfg.node_count, cfg.field_side, rng);
  const radio::RadioModel radio(cfg.radio);
  const u::Length range = u::min(cfg.radio_range, radio.max_range());

  LinkEnergyModel link_model;
  link_model.k_elec = radio.energy_per_bit_tx().value() +
                      radio.energy_per_bit_rx().value();
  link_model.exponent = cfg.radio.environment.exponent;
  const RoutingTree tree =
      cfg.routing == RoutingPolicy::MinHop
          ? min_hop_routes(topo, range)
          : min_energy_routes(topo, range, link_model);

  PacketSimResult res;
  sim::Simulator simu;
  const int n = topo.size();

  // Transmitter FIFO serialization point per node.
  std::vector<u::Time> tx_free(static_cast<std::size_t>(n), u::Time(0.0));

  const u::Time airtime = radio.time_on_air(cfg.packet_bits);
  const u::Energy tx_e = cfg.mac.tx_packet_energy(radio, cfg.packet_bits);
  const u::Energy rx_e = cfg.mac.rx_packet_energy(radio, cfg.packet_bits);

  // Hop forwarding: node `from` hands `pkt` toward the sink.
  std::function<void(int, std::shared_ptr<Packet>)> forward =
      [&](int from, std::shared_ptr<Packet> pkt) {
        const int to = tree.next_hop[static_cast<std::size_t>(from)];
        // Wait for the transmitter if it is mid-packet (FIFO).
        const u::Time start = u::max(simu.now(), tx_free[
            static_cast<std::size_t>(from)]);
        const u::Time waited = start - simu.now();
        if (waited > u::Time(0.0))
          pkt->queued_total += waited;
        // Random preamble alignment with the receiver's wake window.
        const u::Time preamble{
            rng.uniform(0.0, cfg.mac.wake_interval.value())};
        const u::Time done = start + preamble + airtime +
                             cfg.radio.startup;
        tx_free[static_cast<std::size_t>(from)] = done;

#if AMBISIM_OBS_COMPILED
        if (obs::enabled()) [[unlikely]] {
          auto& ctx = obs::context();
          ctx.metrics.counter("net.hops").inc();
          ctx.metrics.histogram("net.queue_wait_s").observe(waited.value());
          ctx.metrics.histogram("net.preamble_s").observe(preamble.value());
          // The hop span covers queueing + preamble + airtime on the
          // sender's timeline lane.
          ctx.tracer.complete("hop", "net", obs::to_us(simu.now().value()),
                              obs::to_us((done - simu.now()).value()),
                              static_cast<std::uint32_t>(from));
          ctx.tracer.counter("energy.radio_uJ", "energy",
                             obs::to_us(simu.now().value()),
                             (tx_e + rx_e).value() * 1e6);
        }
#endif

        res.ledger.charge("radio-tx", tx_e);
        res.ledger.charge("radio-rx", rx_e);

        simu.schedule_at(done, [&, to, pkt]() {
          pkt->hops_taken += 1;
          if (to == topo.sink()) {
            ++res.delivered;
            res.end_to_end_latency.add((simu.now() - pkt->created).value());
            res.queueing_delay.add(pkt->queued_total.value());
            res.mean_hops += pkt->hops_taken;
#if AMBISIM_OBS_COMPILED
            if (obs::enabled()) [[unlikely]] {
              auto& ctx = obs::context();
              ctx.metrics.counter("net.packets_delivered").inc();
              ctx.metrics.histogram("net.latency_s")
                  .observe((simu.now() - pkt->created).value());
              ctx.tracer.instant("packet.delivered", "net",
                                 obs::to_us(simu.now().value()),
                                 static_cast<std::uint32_t>(pkt->origin));
            }
#endif
            return;
          }
          forward(to, pkt);
        });
      };

  // Periodic sources, phase-staggered.
  for (int i = 1; i < n; ++i) {
    const bool routable = tree.reachable(i);
    const u::Time phase{rng.uniform(0.0, cfg.report_period.value())};
    auto emit = std::make_shared<std::function<void()>>();
    *emit = [&, i, routable, emit]() {
      ++res.generated;
      AMBISIM_OBS_COUNT("net.packets_generated");
      if (!routable) {
        ++res.undeliverable;
        AMBISIM_OBS_COUNT("net.packets_undeliverable");
      } else {
        auto pkt = std::make_shared<Packet>();
        pkt->origin = i;
        pkt->created = simu.now();
        AMBISIM_OBS_INSTANT("packet.generated", "net",
                            obs::to_us(simu.now().value()),
                            static_cast<std::uint32_t>(i));
        forward(i, pkt);
      }
      if (simu.now() + cfg.report_period <= cfg.duration)
        simu.schedule_in(cfg.report_period, *emit);
    };
    simu.schedule_at(phase, *emit);
  }

  simu.run_until(cfg.duration);

  // Baseline listening for every sensor over the horizon.
  const u::Power baseline = cfg.mac.baseline_power(radio);
  res.ledger.charge("listen-baseline",
                    u::Energy(baseline.value() * cfg.duration.value() *
                              (n - 1)));

  if (res.delivered > 0) {
    res.mean_hops /= static_cast<double>(res.delivered);
    res.energy_per_delivered =
        u::Energy((res.ledger.of("radio-tx") + res.ledger.of("radio-rx"))
                      .value() /
                  static_cast<double>(res.delivered));
  }
  return res;
}

}  // namespace ambisim::net
