#include "ambisim/net/mac.hpp"

#include <algorithm>
#include <stdexcept>

#include "ambisim/obs/probe.hpp"

namespace ambisim::net {

double DutyCycledMac::duty() const {
  if (wake_interval <= u::Time(0.0) || listen_window <= u::Time(0.0) ||
      listen_window > wake_interval)
    throw std::logic_error("invalid duty-cycled MAC parameters");
  return listen_window.value() / wake_interval.value();
}

u::Power DutyCycledMac::baseline_power(const radio::RadioModel& r) const {
  const double d = duty();
  return r.idle_power() * d + r.sleep_power() * (1.0 - d);
}

u::Energy DutyCycledMac::tx_packet_energy(const radio::RadioModel& r,
                                          u::Information payload) const {
  (void)duty();  // validate
  // Preamble sampling: on average half a wake interval of preamble precedes
  // the payload so the receiver's next listen window catches it.
  const u::Time preamble = wake_interval / 2.0;
  return u::Energy(r.tx_power().value() *
                   (preamble + r.time_on_air(payload)).value()) +
         r.startup_energy();
}

u::Energy DutyCycledMac::rx_packet_energy(const radio::RadioModel& r,
                                          u::Information payload) const {
  (void)duty();
  // The receiver hears on average half the preamble before the payload.
  const u::Time extra = wake_interval / 4.0;
  return u::Energy(r.rx_power().value() *
                   (extra + r.time_on_air(payload)).value());
}

u::Time DutyCycledMac::hop_latency(const radio::RadioModel& r,
                                   u::Information payload) const {
  (void)duty();
  return wake_interval + r.time_on_air(payload) + r.params().startup;
}

TdmaSchedule TdmaSchedule::build(
    const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) throw std::invalid_argument("empty adjacency");

  // Two-hop conflict sets: a node conflicts with neighbours and neighbours'
  // neighbours (hidden terminals at a shared receiver).
  std::vector<std::vector<int>> conflicts(n);
  for (int v = 0; v < n; ++v) {
    std::vector<bool> seen(n, false);
    seen[v] = true;
    for (int w : adjacency[v]) {
      if (!seen[w]) {
        seen[w] = true;
        conflicts[v].push_back(w);
      }
      for (int x : adjacency[w]) {
        if (!seen[x]) {
          seen[x] = true;
          conflicts[v].push_back(x);
        }
      }
    }
  }

  // Greedy coloring in descending conflict-degree order.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return conflicts[a].size() > conflicts[b].size();
  });

  TdmaSchedule sched;
  sched.slots_.assign(n, -1);
  for (int v : order) {
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    for (int w : conflicts[v]) {
      if (sched.slots_[w] >= 0) used[sched.slots_[w]] = true;
    }
    int slot = 0;
    while (used[slot]) ++slot;
    sched.slots_[v] = slot;
    sched.frame_slots_ = std::max(sched.frame_slots_, slot + 1);
  }
  AMBISIM_OBS_COUNT("net.tdma.builds");
  AMBISIM_OBS_GAUGE_SET("net.tdma.frame_slots",
                        static_cast<double>(sched.frame_slots_));
  return sched;
}

bool TdmaSchedule::collision_free(
    const std::vector<std::vector<int>>& adjacency) const {
  const int n = static_cast<int>(adjacency.size());
  if (static_cast<std::size_t>(n) != slots_.size()) return false;
  for (int v = 0; v < n; ++v) {
    for (int w : adjacency[v]) {
      if (slots_[v] == slots_[w]) return false;
      for (int x : adjacency[w]) {
        if (x != v && slots_[v] == slots_[x]) return false;
      }
    }
  }
  return true;
}

double TdmaSchedule::per_node_share() const {
  if (frame_slots_ == 0) return 0.0;
  return 1.0 / frame_slots_;
}

}  // namespace ambisim::net
