#include "ambisim/net/sparse_link_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace ambisim::net {

namespace {

void validate_build_args(u::Information packet_bits,
                         const LinkTableOptions& options) {
  if (packet_bits <= u::Information(0.0))
    throw std::invalid_argument("link table needs a positive packet size");
  if (options.tag_loss_db < 0.0)
    throw std::invalid_argument("link table needs a non-negative tag loss");
}

}  // namespace

SparseLinkTable::SparseLinkTable(const Topology& topo, const Adjacency& adj,
                                 const radio::RadioModel& radio,
                                 u::Information packet_bits,
                                 const radio::ArqModel& arq,
                                 const LinkTableOptions& options)
    : n_(topo.size()) {
  validate_build_args(packet_bits, options);
  if (adj.size() != topo.size())
    throw std::invalid_argument("adjacency size != node count");
  offsets_ = adj.offsets;
  to_ = adj.neighbors;
  distance_m_ = adj.distance_m;
  build(radio, packet_bits, arq, options);
}

SparseLinkTable::SparseLinkTable(const Topology& topo,
                                 const radio::RadioModel& radio,
                                 u::Information packet_bits,
                                 u::Length max_range,
                                 const radio::ArqModel& arq,
                                 const LinkTableOptions& options)
    : SparseLinkTable(topo, topo.neighbor_table(max_range), radio,
                      packet_bits, arq, options) {}

SparseLinkTable SparseLinkTable::star(const Topology& topo,
                                      const radio::RadioModel& radio,
                                      u::Information packet_bits,
                                      const radio::ArqModel& arq,
                                      const LinkTableOptions& options,
                                      int hub) {
  const int n = topo.size();
  if (hub < 0 || hub >= n) throw std::invalid_argument("star hub out of range");
  Adjacency adj;
  adj.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  adj.neighbors.reserve(2 * static_cast<std::size_t>(n) - 2);
  adj.distance_m.reserve(2 * static_cast<std::size_t>(n) - 2);
  for (int i = 0; i < n; ++i) {
    if (i == hub) {
      for (int j = 0; j < n; ++j) {
        if (j == hub) continue;
        adj.neighbors.push_back(j);
        adj.distance_m.push_back(distance_m(topo.position(hub),
                                            topo.position(j)));
      }
    } else {
      adj.neighbors.push_back(hub);
      adj.distance_m.push_back(distance_m(topo.position(i),
                                          topo.position(hub)));
    }
    adj.offsets[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(adj.neighbors.size());
  }
  return SparseLinkTable(topo, adj, radio, packet_bits, arq, options);
}

void SparseLinkTable::build(const radio::RadioModel& radio,
                            u::Information packet_bits,
                            const radio::ArqModel& arq,
                            const LinkTableOptions& options) {
  const std::size_t edges = to_.size();
  ber_.resize(edges);
  per_.resize(edges);
  expected_attempts_.resize(edges);
  delivery_probability_.resize(edges);

  const radio::LinkBudget budget = radio.link_budget();
  const radio::Modulation& mod = radio.params().modulation;
  const bool monostatic = options.model == LinkModel::MonostaticBackscatter;
  const double bits = packet_bits.value();

  // Batched struct-of-arrays passes: each quantity sweeps one contiguous
  // array, in the same evaluation order and through the same functions as
  // the dense table — per-edge values are bitwise equal to LinkTable's.
  const double* dist = distance_m_.data();
  double* ber = ber_.data();
  double* per = per_.data();
  double* att = expected_attempts_.data();
  double* del = delivery_probability_.data();
  if (monostatic) {
    for (std::size_t k = 0; k < edges; ++k)
      ber[k] = radio::backscatter_bit_error_rate_at(
          budget, mod, u::Length(dist[k]), options.tag_loss_db);
  } else {
    for (std::size_t k = 0; k < edges; ++k)
      ber[k] = radio::bit_error_rate_at(budget, mod, u::Length(dist[k]));
  }
  for (std::size_t k = 0; k < edges; ++k)
    per[k] = radio::packet_error_rate(ber[k], bits);
  for (std::size_t k = 0; k < edges; ++k)
    att[k] = arq.expected_attempts(per[k]);
  for (std::size_t k = 0; k < edges; ++k)
    del[k] = arq.delivery_probability(per[k]);
}

std::size_t SparseLinkTable::bytes() const {
  return offsets_.capacity() * sizeof(std::int64_t) +
         to_.capacity() * sizeof(int) +
         (distance_m_.capacity() + ber_.capacity() + per_.capacity() +
          expected_attempts_.capacity() + delivery_probability_.capacity()) *
             sizeof(double);
}

std::ptrdiff_t SparseLinkTable::find(int from, int to) const {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) return -1;
  const auto lo = static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(from)]);
  const auto hi = static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(from) + 1]);
  const int* first = to_.data() + lo;
  const int* last = to_.data() + hi;
  const int* it = std::lower_bound(first, last, to);
  if (it == last || *it != to) return -1;
  return static_cast<std::ptrdiff_t>(lo) + (it - first);
}

std::size_t SparseLinkTable::checked_index(int from, int to) const {
  const std::ptrdiff_t k = find(from, to);
  if (k < 0)
    throw std::out_of_range("sparse link table: edge not materialized");
  return static_cast<std::size_t>(k);
}

LinkStats SparseLinkTable::edge(int from, int to) const {
  if (from == to && from >= 0 && from < n_) return LinkStats{};
  const std::size_t k = checked_index(from, to);
  LinkStats s;
  s.distance_m = distance_m_[k];
  s.ber = ber_[k];
  s.per = per_[k];
  s.expected_attempts = expected_attempts_[k];
  s.delivery_probability = delivery_probability_[k];
  return s;
}

SparseLinkTable::Row SparseLinkTable::row(int from) const {
  if (from < 0 || from >= n_)
    throw std::out_of_range("sparse link table row out of range");
  const auto lo = static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(from)]);
  const auto hi = static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(from) + 1]);
  Row r;
  r.to = to_.data() + lo;
  r.distance_m = distance_m_.data() + lo;
  r.ber = ber_.data() + lo;
  r.per = per_.data() + lo;
  r.expected_attempts = expected_attempts_.data() + lo;
  r.delivery_probability = delivery_probability_.data() + lo;
  r.count = hi - lo;
  return r;
}

}  // namespace ambisim::net
