#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts within relative tolerances.

Usage:
    bench_compare.py BASELINE CANDIDATE [--rtol 0.02] [--ignore REGEX ...]

Walks every key present in the baseline and checks the candidate agrees:
numbers within --rtol relative tolerance, strings/bools exactly.  Keys the
candidate has but the baseline lacks are fine (baselines are deliberately
pruned to the deterministic fields), missing keys are a failure.

Machine-dependent fields — wall-clock times, throughputs, speedups, the
provenance manifest, hardware thread counts — are ignored by default; add
more patterns with --ignore.  Exits non-zero on any regression so CI can
gate on it.
"""

import argparse
import json
import re
import sys

DEFAULT_IGNORES = [
    r"(^|\.)manifest($|\.)",     # provenance differs per build by design
    r"wall_s$",
    r"events_per_s$",
    r"speedup$",
    r"hardware_threads$",
    r"(^|\.)pools($|[.\[])",     # pool list depends on the host's cores
]


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def compare(base, cand, rtol, ignores, path="", errors=None):
    if errors is None:
        errors = []
    if any(rx.search(path) for rx in ignores):
        return errors

    if isinstance(base, dict):
        if not isinstance(cand, dict):
            errors.append(f"{path or '<root>'}: object vs {type(cand).__name__}")
            return errors
        for key, bval in base.items():
            sub = f"{path}.{key}" if path else key
            if any(rx.search(sub) for rx in ignores):
                continue
            if key not in cand:
                errors.append(f"{sub}: missing from candidate")
                continue
            compare(bval, cand[key], rtol, ignores, sub, errors)
    elif isinstance(base, list):
        if not isinstance(cand, list):
            errors.append(f"{path}: array vs {type(cand).__name__}")
            return errors
        if len(base) != len(cand):
            errors.append(f"{path}: length {len(base)} vs {len(cand)}")
            return errors
        for i, (b, c) in enumerate(zip(base, cand)):
            compare(b, c, rtol, ignores, f"{path}[{i}]", errors)
    elif is_number(base):
        if not is_number(cand):
            errors.append(f"{path}: number vs {type(cand).__name__}")
        else:
            scale = max(abs(base), abs(cand))
            if scale > 0 and abs(base - cand) / scale > rtol:
                errors.append(
                    f"{path}: {base} vs {cand} "
                    f"(rel diff {abs(base - cand) / scale:.3g} > {rtol})"
                )
    elif base != cand:
        errors.append(f"{path}: {base!r} vs {cand!r}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--rtol", type=float, default=0.02,
                    help="relative tolerance for numbers (default 0.02)")
    ap.add_argument("--ignore", action="append", default=[],
                    metavar="REGEX",
                    help="extra key-path patterns to skip (repeatable)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    ignores = [re.compile(p) for p in DEFAULT_IGNORES + args.ignore]
    errors = compare(base, cand, args.rtol, ignores)
    if errors:
        print(f"REGRESSION: {args.candidate} diverges from {args.baseline}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"OK: {args.candidate} matches {args.baseline} "
          f"(rtol {args.rtol})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
