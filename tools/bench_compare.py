#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts within relative tolerances.

Usage:
    bench_compare.py BASELINE CANDIDATE [--rtol 0.02] [--ignore REGEX ...]
    bench_compare.py --self-test

Walks every key present in the baseline and checks the candidate agrees:
numbers within --rtol relative tolerance, strings/bools exactly.  Keys the
candidate has but the baseline lacks are fine (baselines are deliberately
pruned to the deterministic fields), missing keys are a failure.

Machine-dependent fields — wall-clock times, throughputs, speedups, the
provenance manifest, hardware thread counts, the embedded execution
profile — are ignored by default; add more patterns with --ignore.  The
summary line lists which baseline keys were skipped that way, so a gate
that silently ignores everything is visible in the CI log.  Exits non-zero
on any regression so CI can gate on it.
"""

import argparse
import json
import re
import sys

DEFAULT_IGNORES = [
    r"(^|\.)manifest($|\.)",     # provenance differs per build by design
    r"(^|\.)profile($|[.\[])",   # obs::Profiler dump is wall-clock data
    r"wall_s$",
    r"events_per_s$",
    r"speedup$",
    r"imbalance$",               # max/mean timing ratio: scheduling noise
    r"utilization$",
    r"hardware_threads$",
    r"(^|\.)pools($|[.\[])",     # pool list depends on the host's cores
]


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def compare(base, cand, rtol, ignores, path="", errors=None, skipped=None):
    if errors is None:
        errors = []
    if skipped is None:
        skipped = []
    if path and any(rx.search(path) for rx in ignores):
        skipped.append(path)
        return errors

    if isinstance(base, dict):
        if not isinstance(cand, dict):
            errors.append(f"{path or '<root>'}: object vs {type(cand).__name__}")
            return errors
        for key, bval in base.items():
            sub = f"{path}.{key}" if path else key
            if any(rx.search(sub) for rx in ignores):
                skipped.append(sub)
                continue
            if key not in cand:
                errors.append(f"{sub}: missing from candidate")
                continue
            compare(bval, cand[key], rtol, ignores, sub, errors, skipped)
    elif isinstance(base, list):
        if not isinstance(cand, list):
            errors.append(f"{path}: array vs {type(cand).__name__}")
            return errors
        if len(base) != len(cand):
            errors.append(f"{path}: length {len(base)} vs {len(cand)}")
            return errors
        for i, (b, c) in enumerate(zip(base, cand)):
            compare(b, c, rtol, ignores, f"{path}[{i}]", errors, skipped)
    elif is_number(base):
        if not is_number(cand):
            errors.append(f"{path}: number vs {type(cand).__name__}")
        else:
            scale = max(abs(base), abs(cand))
            if scale > 0 and abs(base - cand) / scale > rtol:
                errors.append(
                    f"{path}: {base} vs {cand} "
                    f"(rel diff {abs(base - cand) / scale:.3g} > {rtol})"
                )
    elif base != cand:
        errors.append(f"{path}: {base!r} vs {cand!r}")
    return errors


def summarize_skipped(skipped):
    """Dedupe skipped key paths, collapsing array indices: points[3].x ->
    points[].x.  Keeps the summary line bounded on long point lists."""
    return sorted({re.sub(r"\[\d+\]", "[]", p) for p in skipped})


def self_test():
    """Exercise the comparator against synthetic documents; returns the
    usual exit code so CI can smoke the gate itself."""
    ignores = [re.compile(p) for p in DEFAULT_IGNORES]
    failures = []

    def check(name, base, cand, want_errors, want_skipped=None):
        skipped = []
        errors = compare(base, cand, 0.02, ignores, skipped=skipped)
        if bool(errors) != want_errors:
            failures.append(f"{name}: expected errors={want_errors}, "
                            f"got {errors or 'none'}")
        if want_skipped is not None:
            got = summarize_skipped(skipped)
            if got != sorted(want_skipped):
                failures.append(f"{name}: expected skipped={want_skipped}, "
                                f"got {got}")

    check("equal numbers pass", {"a": 100}, {"a": 100}, False)
    check("within rtol passes", {"a": 100.0}, {"a": 101.0}, False)
    check("outside rtol fails", {"a": 100.0}, {"a": 110.0}, True)
    check("missing key fails", {"a": 1, "b": 2}, {"a": 1}, True)
    check("extra candidate key ok", {"a": 1}, {"a": 1, "b": 2}, False)
    check("string mismatch fails", {"s": "x"}, {"s": "y"}, True)
    check("list length fails", {"l": [1, 2]}, {"l": [1]}, True)
    check("wall clock ignored",
          {"run_wall_s": 1.0, "n": 3}, {"run_wall_s": 9.0, "n": 3},
          False, ["run_wall_s"])
    check("profile subtree ignored",
          {"profile": {"total_wall_s": 1.0}, "n": 3}, {"n": 3},
          False, ["profile"])
    check("imbalance/utilization ignored",
          {"points": [{"imbalance": 2.0, "utilization": 0.4, "w": 5}]},
          {"points": [{"imbalance": 7.0, "utilization": 0.1, "w": 5}]},
          False, ["points[].imbalance", "points[].utilization"])
    check("manifest ignored",
          {"manifest": {"git": "a"}, "n": 1}, {"manifest": {"git": "b"}, "n": 1},
          False, ["manifest"])
    check("gated field still gates",
          {"points": [{"imbalance": 2.0, "windows": 363}]},
          {"points": [{"imbalance": 2.0, "windows": 400}]},
          True)

    if failures:
        print("SELF-TEST FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("SELF-TEST OK: comparator gates structural fields and skips "
          "machine-dependent ones")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--rtol", type=float, default=0.02,
                    help="relative tolerance for numbers (default 0.02)")
    ap.add_argument("--ignore", action="append", default=[],
                    metavar="REGEX",
                    help="extra key-path patterns to skip (repeatable)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the comparator's built-in checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        ap.error("baseline and candidate are required (or use --self-test)")

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    ignores = [re.compile(p) for p in DEFAULT_IGNORES + args.ignore]
    skipped = []
    errors = compare(base, cand, args.rtol, ignores, skipped=skipped)
    ignored_keys = summarize_skipped(skipped)
    ignored_note = (
        f"; ignored {len(ignored_keys)} machine-dependent key(s): "
        + ", ".join(ignored_keys) if ignored_keys else ""
    )
    if errors:
        print(f"REGRESSION: {args.candidate} diverges from {args.baseline}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"OK: {args.candidate} matches {args.baseline} "
          f"(rtol {args.rtol}{ignored_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
