// Package thermal model with leakage-temperature feedback.
//
// The Watt node's challenge: power raises die temperature, temperature
// raises leakage exponentially, which raises power.  Below a critical
// thermal resistance the loop converges to an equilibrium; above it the
// die runs away.  Reproduction figure F12.
#pragma once

#include "ambisim/sim/units.hpp"

namespace ambisim::tech {

namespace u = ambisim::units;

class ThermalModel {
 public:
  /// `resistance` junction-to-ambient in K/W; leakage doubles every
  /// `leak_doubling_c` degrees above the 25 C reference.
  explicit ThermalModel(double resistance_k_per_w, double ambient_c = 25.0,
                        double leak_doubling_c = 25.0);

  [[nodiscard]] double resistance() const { return resistance_; }
  [[nodiscard]] double ambient() const { return ambient_c_; }

  /// Leakage multiplier at junction temperature `t_c` relative to 25 C.
  [[nodiscard]] double leakage_multiplier(double t_c) const;

  struct Equilibrium {
    bool stable = false;
    double temperature_c = 0.0;  ///< junction temperature (or kMaxJunction+)
    u::Power total_power{0.0};
    u::Power leakage_power{0.0};
    int iterations = 0;
  };

  /// Fixed-point solve of T = Ta + R * (P_dyn + P_leak25 * m(T)).
  /// Declares runaway (stable = false) if the junction would exceed
  /// kMaxJunction or the iteration fails to converge.
  [[nodiscard]] Equilibrium solve(u::Power dynamic_power,
                                  u::Power leakage_at_25c,
                                  int max_iterations = 10'000) const;

  /// Largest thermal resistance (worst allowable package/heatsink) for
  /// which the given power mix still converges below kMaxJunction.
  static double critical_resistance(u::Power dynamic_power,
                                    u::Power leakage_at_25c,
                                    double ambient_c = 25.0,
                                    double leak_doubling_c = 25.0);

  static constexpr double kMaxJunction = 150.0;  // silicon limit, Celsius

 private:
  double resistance_;
  double ambient_c_;
  double doubling_c_;
};

}  // namespace ambisim::tech
