// Subthreshold / near-threshold operation: the microWatt node's endgame.
//
// Below Vth the on-current falls exponentially, so delay explodes while
// dynamic energy keeps shrinking as C*V^2; leakage energy per operation
// (leakage power x exploding cycle time) eventually dominates, producing
// the classic *minimum-energy point* (MEP) somewhere near or below Vth.
// This module extends the technology model to arbitrary supply voltages
// and locates the MEP — reproduction figure F11 and the keynote's
// "ultra-low-voltage design challenge".
#pragma once

#include "ambisim/tech/technology.hpp"

namespace ambisim::tech {

class SubthresholdModel {
 public:
  /// `n` is the subthreshold slope factor (~1.3-1.6); `temperature_k` sets
  /// the thermal voltage kT/q.
  explicit SubthresholdModel(const TechnologyNode& node, double n = 1.5,
                             double temperature_k = 300.0);

  [[nodiscard]] const TechnologyNode& node() const { return node_; }
  /// Thermal voltage kT/q.
  [[nodiscard]] u::Voltage thermal_voltage() const;

  /// Effective on-current of the reference gate: alpha-power law above
  /// threshold, exponential below, continuous at the handoff.
  [[nodiscard]] u::Current on_current(u::Voltage v) const;

  /// Gate delay ~ C*V / I_on(V); matches the super-threshold model at
  /// nominal supply.
  [[nodiscard]] u::Time gate_delay(u::Voltage v) const;
  [[nodiscard]] u::Frequency max_frequency(u::Voltage v,
                                           double logic_depth = 20.0) const;

  /// Leakage per gate, extended below vdd_min (cubic DIBL fit).
  [[nodiscard]] u::Power leakage_power_per_gate(u::Voltage v) const;

  /// Energy of one operation: switched C*V^2 plus leakage of the idle
  /// population over the (voltage-dependent) cycle time.
  [[nodiscard]] u::Energy energy_per_op(u::Voltage v, double gates_per_op,
                                        double idle_gates,
                                        double logic_depth = 20.0) const;

  /// Supply voltage minimizing energy_per_op over [v_floor, vdd_nominal].
  [[nodiscard]] u::Voltage minimum_energy_voltage(
      double gates_per_op, double idle_gates, double logic_depth = 20.0,
      u::Voltage v_floor = u::Voltage(0.1), int steps = 400) const;

  /// Lowest usable supply: ~4 thermal voltages for reliable logic levels.
  [[nodiscard]] u::Voltage functional_floor() const;

 private:
  TechnologyNode node_;
  double n_;
  double vt_;          ///< thermal voltage, volts
  double handoff_v_;   ///< super/sub-threshold boundary (Vth + ~2 n VT)
  double i_at_handoff_;
  double k_sat_;       ///< alpha-law coefficient calibrated at Vnom
};

}  // namespace ambisim::tech
