// Dynamic voltage scaling (DVS) support.
//
// A DvsModel enumerates the discrete (voltage, frequency) operating points a
// technology node supports and answers the classic DVS question: given a
// cycle budget and a deadline, which point minimizes energy?  Because
// dynamic energy scales with V^2 while delay grows only as ~1/(V-Vth)^alpha,
// running as slowly as the deadline allows is (leakage aside) optimal; with
// leakage included there is a V_min below which slowing down loses — the
// model captures both effects.
#pragma once

#include <vector>

#include "ambisim/tech/technology.hpp"

namespace ambisim::tech {

struct OperatingPoint {
  u::Voltage voltage;
  u::Frequency frequency;
};

class DvsModel {
 public:
  /// Discretize [vdd_min, vdd_nominal] into `steps` evenly spaced supply
  /// levels (steps >= 2) for a pipeline of `logic_depth` FO4 per cycle.
  DvsModel(const TechnologyNode& node, int steps = 16,
           double logic_depth = 20.0);

  [[nodiscard]] const TechnologyNode& node() const { return node_; }
  [[nodiscard]] const std::vector<OperatingPoint>& points() const {
    return points_;
  }

  /// Slowest operating point that still finishes `cycles` within `deadline`.
  /// Throws std::domain_error if even the fastest point cannot make it.
  [[nodiscard]] OperatingPoint slowest_feasible(double cycles,
                                                u::Time deadline) const;

  /// Energy of executing `cycles` cycles at point `p`, with `gates_per_cycle`
  /// switching gates and `idle_gates` leaking gates.
  [[nodiscard]] u::Energy energy(const OperatingPoint& p, double cycles,
                                 double gates_per_cycle,
                                 double idle_gates) const;

  /// Energy-optimal feasible point (scans all points; accounts for leakage,
  /// so the optimum may be faster than the slowest feasible point).
  [[nodiscard]] OperatingPoint optimal(double cycles, u::Time deadline,
                                       double gates_per_cycle,
                                       double idle_gates) const;

  [[nodiscard]] const OperatingPoint& fastest() const {
    return points_.back();
  }
  [[nodiscard]] const OperatingPoint& slowest() const {
    return points_.front();
  }

 private:
  TechnologyNode node_;
  double logic_depth_;
  std::vector<OperatingPoint> points_;  // ascending frequency
};

}  // namespace ambisim::tech
