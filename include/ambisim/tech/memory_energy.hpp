// Analytic SRAM / off-chip memory access-energy models (CACTI-flavoured
// square-root bitline law).  Used by the arch layer's cache hierarchy and by
// the Watt-node media-SoC case study, where memory traffic dominates power.
#pragma once

#include "ambisim/tech/technology.hpp"

namespace ambisim::tech {

struct SramModel {
  /// Energy of one read/write access to an SRAM of `capacity_bits` organized
  /// in `word_bits` words, in technology `node` at supply `v`.
  ///
  /// E = E_gate(v) * (k_fixed + k_word*word_bits + k_array*sqrt(bits))
  /// The sqrt term models bitline/wordline length growth with capacity.
  static u::Energy access_energy(const TechnologyNode& node, u::Voltage v,
                                 double capacity_bits, double word_bits = 32);

  /// Leakage power of the array (6T cells leak ~ 1/4 of a logic gate each).
  static u::Power leakage(const TechnologyNode& node, u::Voltage v,
                          double capacity_bits);
};

struct OffChipModel {
  /// Energy of transferring one `word_bits` word over pads + PCB to
  /// commodity DRAM.  Dominated by pad capacitance (~10 pF/pin) and I/O
  /// swing, hence scales with the I/O voltage, not the core technology.
  static u::Energy access_energy(u::Voltage io_voltage, double word_bits = 32,
                                 u::Capacitance pin_cap = u::Capacitance(10e-12));

  /// DRAM core contribution per access (activation + precharge amortized).
  static u::Energy dram_core_energy(double word_bits = 32);
};

}  // namespace ambisim::tech
