// CMOS technology models.
//
// A TechnologyNode captures the first-order electrical constants of a CMOS
// process generation (350 nm .. 45 nm), calibrated to 2003-era ITRS-style
// figures.  On top of it, free functions give the classic analytic models:
//
//   gate delay        tau(V)  = tau0 * (V/Vnom) * ((Vnom-Vth)/(V-Vth))^alpha
//   dynamic energy    E_sw(V) = C_gate * V^2                (per switch)
//   leakage power     P_lk(V) = I_leak(V) * V per gate, I_leak ~ V^3 DIBL fit
//
// These are the terms the keynote's power-information graph is built from:
// they determine both the achievable information rate (frequency) and the
// power drawn at that rate for a given silicon budget.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ambisim/sim/units.hpp"

namespace ambisim::tech {

namespace u = ambisim::units;

struct TechnologyNode {
  std::string name;         ///< e.g. "130nm"
  u::Length feature;        ///< drawn feature size
  int year;                 ///< approximate production year
  u::Voltage vdd_nominal;   ///< nominal supply
  u::Voltage vth;           ///< threshold voltage
  u::Voltage vdd_min;       ///< lowest reliable operating supply
  u::Capacitance gate_cap;  ///< switched capacitance of a reference gate
  u::Time fo4_delay;        ///< fanout-of-4 inverter delay at vdd_nominal
  u::Current leak_nominal;  ///< subthreshold leakage per gate at vdd_nominal
  double alpha = 1.5;       ///< alpha-power-law saturation exponent
};

/// Catalogue of process generations, oldest first.
class TechnologyLibrary {
 public:
  /// The built-in seven-node roadmap (350 nm .. 45 nm).
  static const TechnologyLibrary& standard();

  [[nodiscard]] const TechnologyNode& node(const std::string& name) const;
  [[nodiscard]] const TechnologyNode& by_year(int year) const;
  [[nodiscard]] std::span<const TechnologyNode> all() const { return nodes_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  explicit TechnologyLibrary(std::vector<TechnologyNode> nodes);

 private:
  std::vector<TechnologyNode> nodes_;
};

/// FO4 gate delay at supply voltage `v` (alpha-power law, normalized so that
/// tau(vdd_nominal) == fo4_delay).  `v` must lie in [vdd_min, vdd_nominal].
u::Time gate_delay(const TechnologyNode& node, u::Voltage v);

/// Maximum clock frequency of a pipeline with `logic_depth` FO4 stages per
/// cycle at supply voltage `v`.
u::Frequency max_frequency(const TechnologyNode& node, u::Voltage v,
                           double logic_depth = 20.0);

/// Energy of one full charge/discharge event of a reference gate: C * V^2.
u::Energy switching_energy(const TechnologyNode& node, u::Voltage v);

/// Leakage current per gate at supply `v` (cubic DIBL fit to the nominal
/// point).
u::Current leakage_current(const TechnologyNode& node, u::Voltage v);

/// Static power per gate at supply `v`.
u::Power leakage_power_per_gate(const TechnologyNode& node, u::Voltage v);

/// Dynamic power of `gate_count` gates switching with activity factor `a`
/// at clock `f` and supply `v`.
u::Power dynamic_power(const TechnologyNode& node, double gate_count,
                       double activity, u::Frequency f, u::Voltage v);

/// Total (dynamic + leakage) power of a gate ensemble.
u::Power total_power(const TechnologyNode& node, double gate_count,
                     double activity, u::Frequency f, u::Voltage v);

/// Energy to execute one "operation" implemented with `gates_per_op` gate
/// switching events at supply `v`, including the leakage charged to the op
/// at clock frequency `f` (leakage energy = P_leak * 1/f per cycle).
u::Energy energy_per_op(const TechnologyNode& node, double gates_per_op,
                        u::Voltage v, u::Frequency f, double idle_gates = 0.0);

}  // namespace ambisim::tech
