// Parameter-sweep helpers for the benchmark harnesses.
//
// Axis generators (linspace/logspace/grid) build design-point vectors;
// parallel_sweep fans the evaluation of those points across a worker pool
// via ambisim::exec, returning results in input order and bit-identical to
// the serial loop for any thread count.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ambisim/exec/runner.hpp"

namespace ambisim::dse {

/// `n` evenly spaced values from lo to hi inclusive (n >= 2, or n == 1 -> lo).
std::vector<double> linspace(double lo, double hi, int n);

/// `n` log-spaced values from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, int n);

/// Row-major cartesian product of two axes: (xs[i], ys[j]) with j fastest.
std::vector<std::pair<double, double>> grid(const std::vector<double>& xs,
                                            const std::vector<double>& ys);

/// Evaluate `fn(point)` or `fn(point, index)` over every design point on a
/// worker pool; results come back in input order.  `fn` must be safe to
/// invoke concurrently for distinct points — derive any per-point
/// randomness from exec::derive_seed(root, index), never a shared Rng.
template <typename Point, typename Fn>
auto parallel_sweep(const std::vector<Point>& points, Fn&& fn,
                    exec::ExecConfig cfg = {}) {
  exec::ParallelSweepRunner runner(cfg);
  return runner.run(points, std::forward<Fn>(fn));
}

}  // namespace ambisim::dse
