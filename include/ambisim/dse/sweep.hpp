// Parameter-sweep helpers for the benchmark harnesses.
#pragma once

#include <vector>

namespace ambisim::dse {

/// `n` evenly spaced values from lo to hi inclusive (n >= 2, or n == 1 -> lo).
std::vector<double> linspace(double lo, double hi, int n);

/// `n` log-spaced values from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, int n);

}  // namespace ambisim::dse
