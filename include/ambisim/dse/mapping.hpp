// Mapping of ambient-intelligence functions (task graphs) onto the network's
// heterogeneous execution targets — the DSE question behind the keynote's
// "network of devices realizes the function": which computation belongs on
// the microWatt node, which on the personal device, which on the server?
//
// Energy objective per period:
//   sum_tasks ops * E_op(target)  +  sum_crossing_edges bits * E_bit(link)
// subject to per-target utilization <= 1.
#pragma once

#include <string>
#include <vector>

#include "ambisim/arch/processor.hpp"
#include "ambisim/core/device_class.hpp"
#include "ambisim/sim/random.hpp"
#include "ambisim/workload/task_graph.hpp"

namespace ambisim::dse {

namespace u = ambisim::units;

struct ExecutionTarget {
  std::string name;
  arch::ProcessorModel cpu;
  core::DeviceClass cls;
  /// Energy per bit shipped onto the network link of this target.
  u::EnergyPerBit link_energy_per_bit{0.0};
  double utilization_limit = 1.0;
  /// Native operations spent per abstract task operation (ISA/word-width
  /// mismatch): ~10 for an 8-bit MCU running 32-bit DSP code, 1 for a
  /// native-width core, <1 for a hardwired accelerator.
  double ops_scale = 1.0;
  /// Scarcity weight of a joule drawn from this target's supply: harvested
  /// joules are far more precious than battery joules, which are more
  /// precious than mains joules.  The optimizers minimize weighted cost.
  double energy_weight = 1.0;
};

struct MappingProblem {
  workload::TaskGraph graph;
  u::Time period;  ///< activation period of the whole graph
  std::vector<ExecutionTarget> targets;
  /// Placement constraints (task, target): sensing is physically tied to
  /// the sensor node, rendering to the device holding the actuator.
  std::vector<std::pair<int, int>> pinned;
};

struct Mapping {
  std::vector<int> assignment;      ///< task index -> target index
  u::Energy energy_per_period{0.0};  ///< raw joules, unweighted
  u::Energy compute_energy{0.0};
  u::Energy comm_energy{0.0};
  /// Scarcity-weighted cost (what greedy/anneal minimize).
  double weighted_cost = 0.0;
  std::vector<double> utilization;  ///< per target
  bool feasible = false;
};

class MappingOptimizer {
 public:
  explicit MappingOptimizer(MappingProblem problem);

  [[nodiscard]] const MappingProblem& problem() const { return problem_; }

  /// Cost/feasibility of a given assignment.
  [[nodiscard]] Mapping evaluate(const std::vector<int>& assignment) const;

  /// Everything on the single target that fits — the naive baseline.
  [[nodiscard]] Mapping all_on(int target) const;

  /// Topological greedy: each task goes to the feasible target with the
  /// smallest marginal (compute + communication) energy.
  [[nodiscard]] Mapping greedy() const;

  /// Simulated annealing seeded with the greedy solution.
  [[nodiscard]] Mapping anneal(sim::Rng& rng, int iterations = 20'000) const;

 private:
  /// Pinned target of `task`, or -1 if unconstrained.
  [[nodiscard]] int pin_of(int task) const;

  MappingProblem problem_;
};

}  // namespace ambisim::dse
