// Static DVS slack allocation for a periodic task chain: run each task as
// slowly as the deadline allows (uniform-slowdown optimum for convex power,
// quantized to the technology's discrete operating points).  Reproduction
// figure F6: energy savings versus slack.
#pragma once

#include <vector>

#include "ambisim/tech/dvs.hpp"
#include "ambisim/workload/task_graph.hpp"

namespace ambisim::dse {

struct DvsScheduleResult {
  bool feasible = false;
  ambisim::units::Energy energy_nominal{0.0};  ///< all tasks at max frequency
  ambisim::units::Energy energy_dvs{0.0};
  double savings = 0.0;  ///< 1 - dvs/nominal
  std::vector<tech::OperatingPoint> points;  ///< chosen per task
  ambisim::units::Time makespan{0.0};        ///< schedule length under DVS
};

/// Schedule `graph` (executed as a topological chain on one DVS-capable
/// core) within `deadline`.  `cycles_per_op` converts task ops to cycles;
/// `gates_per_cycle`/`idle_gates` parameterize the energy model.
DvsScheduleResult schedule_with_dvs(const workload::TaskGraph& graph,
                                    const tech::DvsModel& dvs,
                                    ambisim::units::Time deadline,
                                    double gates_per_cycle,
                                    double idle_gates,
                                    double cycles_per_op = 1.0);

}  // namespace ambisim::dse
