// Pareto-front extraction for two-objective design-space exploration
// (minimize cost, maximize value) — e.g. power vs throughput of SoC
// alternatives in the Watt-node case study.
#pragma once

#include <string>
#include <vector>

#include "ambisim/exec/runner.hpp"

namespace ambisim::dse {

struct ParetoPoint {
  double cost = 0.0;   ///< minimized (e.g. watts)
  double value = 0.0;  ///< maximized (e.g. throughput)
  std::string label;
};

/// True if `a` is at least as good as `b` in both objectives and strictly
/// better in one.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Non-dominated subset, sorted by ascending cost.
std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

/// True if no point in `front` dominates any other (validity check).
bool is_pareto_front(const std::vector<ParetoPoint>& front);

/// pareto_front for large candidate sets: fixed-size blocks reduce to local
/// fronts in parallel, then one serial pass over the (much smaller)
/// concatenation.  Blocks are cut by index and merged in index order, so
/// the result is identical for any thread count — and identical to
/// pareto_front on the same input.
std::vector<ParetoPoint> pareto_front_parallel(std::vector<ParetoPoint> points,
                                               exec::ExecConfig cfg = {});

}  // namespace ambisim::dse
