// Pareto-front extraction for two-objective design-space exploration
// (minimize cost, maximize value) — e.g. power vs throughput of SoC
// alternatives in the Watt-node case study.
#pragma once

#include <string>
#include <vector>

namespace ambisim::dse {

struct ParetoPoint {
  double cost = 0.0;   ///< minimized (e.g. watts)
  double value = 0.0;  ///< maximized (e.g. throughput)
  std::string label;
};

/// True if `a` is at least as good as `b` in both objectives and strictly
/// better in one.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Non-dominated subset, sorted by ascending cost.
std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

/// True if no point in `front` dominates any other (validity check).
bool is_pareto_front(const std::vector<ParetoPoint>& front);

}  // namespace ambisim::dse
