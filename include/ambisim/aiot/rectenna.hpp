// RF energy-harvesting front end: incident power density -> DC microwatts.
//
// A battery-free ambient-IoT tag lives entirely on the RF field its gateway
// radiates.  This module is the power half of that link: the incident power
// density a Watt-class illuminator produces at a tag's distance (free-space
// sphere at the reference distance, log-distance excess beyond it), and a
// rectenna model — antenna aperture plus rectifier efficiency curve — that
// turns the incident microwatts into harvested DC.  The rectifier is the
// honest part: below its sensitivity the diodes never turn on and the tag
// gets *nothing*, which is what puts far tags in an RF shadow instead of
// merely charging them slowly.
#pragma once

#include "ambisim/radio/link.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::aiot {

namespace u = ambisim::units;

/// Incident RF power density at distance `d` from an illuminator radiating
/// `tx` through `loss`.  The free-space sphere fixes the absolute level at
/// the reference distance — S(d0) = P / (4 pi d0^2) — and the path-loss
/// excess beyond d0 (loss_db(d) - loss_at_ref_db, exponent n) decays it,
/// so a denser environment starves tags faster than free space would.
u::PowerDensity incident_density(u::Power tx, const radio::PathLossModel& loss,
                                 u::Length d);

/// Rectenna: antenna aperture + rectifier conversion-efficiency curve.
///
/// Efficiency rises log-linearly with incident power between the rectifier's
/// sensitivity (diode turn-on; zero output below) and its saturation point
/// (peak efficiency above), the standard shape of measured RF-DC curves.
/// Deterministic and monotone non-decreasing in the incident power — the
/// property the coverage-vs-gateway-power benchmark gate leans on.
struct RectennaModel {
  u::Area aperture{50e-4};       ///< effective capture area (50 cm^2)
  u::Power sensitivity{1e-6};    ///< below this incident power: zero output
  u::Power saturation{10e-3};    ///< efficiency plateaus from here up
  double peak_efficiency = 0.55;

  /// Printed flexible tag: small aperture, modest rectifier.
  static RectennaModel printed_tag();
  /// PCB module with a patch antenna: larger aperture, better diodes.
  static RectennaModel pcb_module();

  /// Throws std::invalid_argument on a non-physical model.
  void validate() const;

  /// RF-DC conversion efficiency at `incident` captured power.
  [[nodiscard]] double efficiency(u::Power incident) const;
  /// DC output for `incident` captured power.
  [[nodiscard]] u::Power harvested(u::Power incident) const;
  /// DC output in a field of density `s` (capture through the aperture,
  /// then the rectifier curve).
  [[nodiscard]] u::Power harvested_from_density(u::PowerDensity s) const;
};

}  // namespace ambisim::aiot
