// Wireless-power network simulation: a Watt-class gateway powering a field
// of battery-free backscatter tags.
//
// The gateway (node 0, mains powered, immune) radiates a continuous RF
// carrier.  Each tag harvests what its rectenna extracts from the incident
// power density at its distance (aiot/rectenna.hpp), buffers the microwatts
// on a storage capacitor, and runs a charge-then-burst MAC: charge until
// the wake threshold, transmit one report burst over the monostatic
// backscatter uplink at the next report slot, and go dark again when the
// burst drains the capacitor below the brown-out cutoff.  The lifecycle is
// the fault injector's — a tag in RF shadow (rectenna output below the
// sleep draw) is honestly Dead-until-charged, indistinguishable from a
// browned-out coin-cell node, and availability/MTTR fall out of the same
// timeline accounting every other engine uses.
//
// Determinism: placement is the only random draw (cfg.seed); harvest,
// charge trajectories, burst schedule, and link quality are all pure
// functions of the config, so a replication study is bit-identical at any
// worker-pool size (run_wpt_study folds every field into the checksum the
// determinism tests assert on).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ambisim/aiot/rectenna.hpp"
#include "ambisim/exec/runner.hpp"
#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/sim/statistics.hpp"

namespace ambisim::aiot {

struct WptSimConfig {
  int tag_count = 32;          ///< tags; the gateway is node 0 on top
  u::Length field_side{30.0};  ///< random placement square (gateway center)
  /// Pinned placement (node 0 = gateway); must hold tag_count + 1 nodes.
  /// Unset: Topology::random_field drawn from `seed`.
  std::optional<net::Topology> placement;
  std::uint64_t seed = 1;

  // --- power downlink (gateway -> tags) ---
  double gateway_tx_w = 2.0;  ///< radiated carrier power
  /// Power-carrier propagation; only exponent and reference distance shape
  /// the density falloff (the free-space sphere sets the absolute level).
  radio::PathLossModel power_path{2.2, u::Length(1.0), 30.0};
  RectennaModel rectenna = RectennaModel::printed_tag();

  // --- backscatter uplink (tags -> gateway, monostatic) ---
  radio::PathLossModel uplink_path{2.0, u::Length(1.0), 30.0};
  double uplink_bandwidth_hz = 1e6;
  double tag_loss_db = 15.0;  ///< reflection (conversion + mismatch) loss
  double packet_bits = 256.0;

  // --- charge-then-burst MAC ---
  double report_period_s = 60.0;  ///< burst slots at k * period
  double capacitance_f = 47e-6;   ///< storage capacitor
  double cap_voltage_v = 2.4;
  double wake_soc = 0.9;     ///< brown-out recovery = wake threshold
  double cutoff_soc = 0.25;  ///< brown-out cutoff (burst drains below it)
  double burst_energy_j = 180e-6;  ///< one report incl. retries
  double sleep_watt = 1e-6;        ///< retention draw while charging
  double initial_soc = 0.0;        ///< tags start dark (cold field)
  double energy_step_s = 1.0;

  double duration_s = 1800.0;
};

struct WptSimResult {
  int tag_count = 0;
  long long offered = 0;  ///< tag_count * report slots in the horizon
  long long bursts = 0;   ///< bursts actually transmitted (tag was awake)
  /// Expected reports at the gateway: sum over bursts of the uplink's ARQ
  /// delivery probability at the tag's distance.
  double delivered_expect = 0.0;
  double delivered_fraction = 0.0;  ///< delivered_expect / offered
  double coverage_fraction = 0.0;   ///< tags with >= 1 burst / tag_count
  long long dark_tags = 0;          ///< tags that never completed a burst
  double mean_charge_latency_s = 0.0;  ///< dark -> wake, over all wakes
  double charge_latency_p50_s = 0.0;
  double charge_latency_p95_s = 0.0;
  double availability = 0.0;  ///< injector timeline, tags only
  double mttf_s = 0.0;
  double mttr_s = 0.0;
  double mean_harvest_uw = 0.0;  ///< rectenna DC output over tags
  double min_harvest_uw = 0.0;
  /// Final capacitor state of charge per node; -1 marks the gateway.
  std::vector<double> final_soc;

  void fold_into(fault::Digest& d) const;
};

/// One deterministic run of the wireless-power field.
WptSimResult simulate_wpt(const WptSimConfig& cfg);

struct WptStudyResult {
  std::vector<WptSimResult> replications;
  sim::Accumulator delivered_fraction;
  sim::Accumulator coverage_fraction;
  sim::Accumulator mean_charge_latency_s;
  sim::Accumulator availability;
  /// Order-sensitive digest over every replication: equal checksums mean
  /// bit-identical studies at any pool size.
  std::uint64_t checksum = 0;
};

/// Replication study over exec::ReplicationRunner.  Replication 0 runs
/// `base` verbatim; replication i > 0 redraws placement from
/// derive_seed(root_seed, i)'s substream.  Bit-identical for any
/// exec_cfg.threads (the aiot determinism tests assert pools {1, 2, 8}).
WptStudyResult run_wpt_study(const WptSimConfig& base,
                             std::size_t replications,
                             std::uint64_t root_seed,
                             exec::ExecConfig exec_cfg = {});

}  // namespace ambisim::aiot
