// AmbiCore-32: a tiny load/store ISA for the microWatt node's controller.
//
// The keynote's autonomous node computes with a minimal core; this ISA plus
// the interpreter in machine.hpp gives AmbiSim an instruction-accurate
// energy model to validate the abstract ProcessorModel calibration against
// (reproduction ablation A1).
//
// 16 general registers (r0 hardwired to zero), 32-bit words, byte-addressed
// data memory, separate instruction store.  Multi-cycle multiply and memory
// accesses; input/output ports model the sensor ADC and the radio FIFO.
#pragma once

#include <cstdint>
#include <string>

namespace ambisim::isa {

enum class Opcode : std::uint8_t {
  // Arithmetic / logic, register-register.
  Add, Sub, And, Or, Xor, Shl, Shr, Mul, Slt,
  // Register-immediate.
  Addi, Andi, Ori, Slli, Srli, Lui,
  // Memory.
  Lw, Sw, Lb, Sb,
  // Control.
  Beq, Bne, Blt, Jmp, Jal, Jr,
  // Ports.
  In,   ///< rd <- port[imm]
  Out,  ///< port[imm] <- rs1
  // Misc.
  Nop, Halt,
};

/// Functional class of an instruction: decides its cycle count and the
/// switched-gate energy charged per execution.
enum class InstrClass { Alu, Mul, Mem, Branch, Io, System };

InstrClass instr_class(Opcode op);
std::string mnemonic(Opcode op);

struct Instruction {
  Opcode op = Opcode::Nop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

inline constexpr int kRegisterCount = 16;

}  // namespace ambisim::isa
