// Two-pass assembler for the AmbiCore-32 ISA.
//
// Syntax (one instruction per line, ';' or '#' starts a comment):
//   loop:  add  r3, r1, r2
//          addi r4, r4, -1
//          lw   r5, 16(r2)
//          sw   r5, 0(r2)
//          beq  r4, r0, done
//          jmp  loop
//   done:  halt
//
// Branch/jump targets are labels; immediates are decimal or 0x hex.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "ambisim/isa/isa.hpp"

namespace ambisim::isa {

/// Thrown with line number and message on any syntax error.
class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(int line, const std::string& message);
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Assemble `source` into an instruction vector.
std::vector<Instruction> assemble(const std::string& source);

/// Firmware presets used by the examples and the A1 ablation.
namespace firmware {

/// Read `n` samples from port 0, run a 4-tap moving-average filter, write
/// values crossing `threshold` to port 1.  Registers: r1 = n, r2 = threshold.
std::string sensing_filter();

/// Iterative Fibonacci: computes fib(r1) into r2 (pure ALU/branch mix).
std::string fibonacci();

/// 16-tap integer FIR over a buffer in memory (mul/mem heavy).
std::string fir16();

}  // namespace firmware

}  // namespace ambisim::isa
