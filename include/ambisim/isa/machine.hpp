// Instruction-accurate AmbiCore-32 interpreter with energy accounting.
//
// Each executed instruction is charged switched-gate energy by functional
// class (derived from the technology node and supply voltage) plus the
// whole core's leakage over the cycles it occupies.  IO ports connect the
// firmware to sensor/radio stubs via callbacks.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "ambisim/isa/isa.hpp"
#include "ambisim/tech/technology.hpp"

namespace ambisim::isa {

namespace u = ambisim::units;

/// Switched gate-equivalents per instruction class plus pipeline overhead
/// (fetch/decode/clock), and cycles per class.  Defaults model a small
/// in-order 2-stage core of ~30 k gates.
struct CoreEnergyParams {
  double gates_fetch_decode = 2'500.0;  ///< charged to every instruction
  double gates_alu = 3'000.0;
  double gates_mul = 12'000.0;
  double gates_mem = 4'500.0;
  double gates_branch = 2'000.0;
  double gates_io = 1'500.0;
  double total_gates = 30'000.0;  ///< leakage population
  int cycles_alu = 1;
  int cycles_mul = 4;
  int cycles_mem = 2;
  int cycles_branch_taken = 2;
  int cycles_branch_not_taken = 1;
  int cycles_io = 1;
};

struct MachineStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t by_class[6] = {0, 0, 0, 0, 0, 0};  ///< indexed by InstrClass
  u::Energy dynamic_energy{0.0};
  u::Energy leakage_energy{0.0};

  [[nodiscard]] u::Energy total_energy() const {
    return dynamic_energy + leakage_energy;
  }
  [[nodiscard]] double cpi() const {
    return instructions ? static_cast<double>(cycles) / instructions : 0.0;
  }
};

class Machine {
 public:
  using InPort = std::function<std::int32_t(int port)>;
  using OutPort = std::function<void(int port, std::int32_t value)>;

  /// Core in `node` at supply `v` clocked at `clock`, with `memory_bytes`
  /// of data memory.
  Machine(const tech::TechnologyNode& node, u::Voltage v, u::Frequency clock,
          std::size_t memory_bytes = 65'536,
          CoreEnergyParams params = CoreEnergyParams{});

  void load_program(std::vector<Instruction> program);
  void set_input_port(InPort in) { in_ = std::move(in); }
  void set_output_port(OutPort out) { out_ = std::move(out); }

  /// Run until HALT or `max_instructions`.  Returns true if halted.
  bool run(std::uint64_t max_instructions = 10'000'000);
  /// Execute exactly one instruction.  Returns false once halted.
  bool step();
  void reset();

  [[nodiscard]] std::int32_t reg(int i) const;
  void set_reg(int i, std::int32_t value);
  [[nodiscard]] std::int32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::int32_t value);

  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] const MachineStats& stats() const { return stats_; }

  /// Wall-clock time of the run so far: cycles / clock.
  [[nodiscard]] u::Time elapsed() const;
  /// Average power over the run so far.
  [[nodiscard]] u::Power average_power() const;
  /// Energy per executed instruction.
  [[nodiscard]] u::Energy energy_per_instruction() const;

 private:
  void charge(InstrClass cls, int cycles);

  tech::TechnologyNode node_;
  u::Voltage voltage_;
  u::Frequency clock_;
  CoreEnergyParams params_;

  std::vector<Instruction> program_;
  std::array<std::int32_t, kRegisterCount> regs_{};
  std::vector<std::uint8_t> memory_;
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  InPort in_;
  OutPort out_;
  MachineStats stats_;
};

}  // namespace ambisim::isa
