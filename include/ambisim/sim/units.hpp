// Strong-typed SI quantities with compile-time dimensional analysis.
//
// Every physical value flowing through AmbiSim (power, energy, bit-rate,
// voltage, capacitance, ...) is carried by a Quantity whose dimension is
// encoded in the type.  Mixing incompatible dimensions is a compile error;
// multiplying or dividing quantities produces the correctly-dimensioned
// result (power * time = energy, energy / bits = energy-per-bit, ...).
//
// Dimension exponents, in order: time (s), length (m), mass (kg),
// current (A), information (bit).  Information is treated as an independent
// base dimension so that bit-rates and joule-per-bit figures are type-safe.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace ambisim::units {

template <int T, int L, int M, int I, int B>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  /// Raw value in SI base units (seconds, meters, kilograms, amperes, bits).
  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity rhs) {
    value_ += rhs.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    value_ -= rhs.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity operator+() const { return *this; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.value_ == b.value_;
  }

 private:
  double value_ = 0.0;
};

// Dimension arithmetic for * and /.
template <int T1, int L1, int M1, int I1, int B1, int T2, int L2, int M2,
          int I2, int B2>
constexpr auto operator*(Quantity<T1, L1, M1, I1, B1> a,
                         Quantity<T2, L2, M2, I2, B2> b) {
  return Quantity<T1 + T2, L1 + L2, M1 + M2, I1 + I2, B1 + B2>(a.value() *
                                                               b.value());
}

template <int T1, int L1, int M1, int I1, int B1, int T2, int L2, int M2,
          int I2, int B2>
constexpr auto operator/(Quantity<T1, L1, M1, I1, B1> a,
                         Quantity<T2, L2, M2, I2, B2> b) {
  return Quantity<T1 - T2, L1 - L2, M1 - M2, I1 - I2, B1 - B2>(a.value() /
                                                               b.value());
}

template <int T, int L, int M, int I, int B>
constexpr auto operator/(double s, Quantity<T, L, M, I, B> a) {
  return Quantity<-T, -L, -M, -I, -B>(s / a.value());
}

// Dimensionless quantities collapse to double implicitly via ratio().
template <int T, int L, int M, int I, int B>
constexpr double ratio(Quantity<T, L, M, I, B> a, Quantity<T, L, M, I, B> b) {
  return a.value() / b.value();
}

template <int T, int L, int M, int I, int B>
constexpr Quantity<T, L, M, I, B> abs(Quantity<T, L, M, I, B> a) {
  return Quantity<T, L, M, I, B>(a.value() < 0 ? -a.value() : a.value());
}

template <int T, int L, int M, int I, int B>
constexpr Quantity<T, L, M, I, B> min(Quantity<T, L, M, I, B> a,
                                      Quantity<T, L, M, I, B> b) {
  return a < b ? a : b;
}

template <int T, int L, int M, int I, int B>
constexpr Quantity<T, L, M, I, B> max(Quantity<T, L, M, I, B> a,
                                      Quantity<T, L, M, I, B> b) {
  return a > b ? a : b;
}

/// Square root; only valid when every exponent is even.
template <int T, int L, int M, int I, int B>
  requires(T % 2 == 0 && L % 2 == 0 && M % 2 == 0 && I % 2 == 0 && B % 2 == 0)
inline Quantity<T / 2, L / 2, M / 2, I / 2, B / 2> sqrt(
    Quantity<T, L, M, I, B> a) {
  return Quantity<T / 2, L / 2, M / 2, I / 2, B / 2>(std::sqrt(a.value()));
}

// ---------------------------------------------------------------------------
// Named dimensions.
// ---------------------------------------------------------------------------
using Dimensionless = Quantity<0, 0, 0, 0, 0>;
using Time = Quantity<1, 0, 0, 0, 0>;
using Frequency = Quantity<-1, 0, 0, 0, 0>;
using Length = Quantity<0, 1, 0, 0, 0>;
using Area = Quantity<0, 2, 0, 0, 0>;
using Energy = Quantity<-2, 2, 1, 0, 0>;       // joule
using Power = Quantity<-3, 2, 1, 0, 0>;        // watt
using Voltage = Quantity<-3, 2, 1, -1, 0>;     // volt
using Current = Quantity<0, 0, 0, 1, 0>;       // ampere
using Charge = Quantity<1, 0, 0, 1, 0>;        // coulomb
using Capacitance = Quantity<4, -2, -1, 2, 0>; // farad
using Resistance = Quantity<-3, 2, 1, -2, 0>;  // ohm
using Information = Quantity<0, 0, 0, 0, 1>;   // bit
using BitRate = Quantity<-1, 0, 0, 0, 1>;      // bit/s
using EnergyPerBit = Quantity<-2, 2, 1, 0, -1>;
using PowerDensity = Quantity<-3, 0, 1, 0, 0>;     // W/m^2
using EnergyDensity = Quantity<-2, 0, 1, 0, 0>;    // J/m^2
using OpRate = Frequency;                           // operations/s (ops are
                                                    // dimensionless counts)

// ---------------------------------------------------------------------------
// Literals.  All literals are defined in SI base units.
// ---------------------------------------------------------------------------
namespace literals {

// Time.
constexpr Time operator""_s(long double v) { return Time(double(v)); }
constexpr Time operator""_s(unsigned long long v) { return Time(double(v)); }
constexpr Time operator""_ms(long double v) { return Time(double(v) * 1e-3); }
constexpr Time operator""_ms(unsigned long long v) {
  return Time(double(v) * 1e-3);
}
constexpr Time operator""_us(long double v) { return Time(double(v) * 1e-6); }
constexpr Time operator""_us(unsigned long long v) {
  return Time(double(v) * 1e-6);
}
constexpr Time operator""_ns(long double v) { return Time(double(v) * 1e-9); }
constexpr Time operator""_ns(unsigned long long v) {
  return Time(double(v) * 1e-9);
}
constexpr Time operator""_ps(long double v) { return Time(double(v) * 1e-12); }
constexpr Time operator""_ps(unsigned long long v) {
  return Time(double(v) * 1e-12);
}
constexpr Time operator""_minutes(unsigned long long v) {
  return Time(double(v) * 60.0);
}
constexpr Time operator""_hours(long double v) {
  return Time(double(v) * 3600.0);
}
constexpr Time operator""_hours(unsigned long long v) {
  return Time(double(v) * 3600.0);
}
constexpr Time operator""_days(unsigned long long v) {
  return Time(double(v) * 86400.0);
}
constexpr Time operator""_years(long double v) {
  return Time(double(v) * 86400.0 * 365.25);
}
constexpr Time operator""_years(unsigned long long v) {
  return Time(double(v) * 86400.0 * 365.25);
}

// Frequency.
constexpr Frequency operator""_Hz(long double v) {
  return Frequency(double(v));
}
constexpr Frequency operator""_Hz(unsigned long long v) {
  return Frequency(double(v));
}
constexpr Frequency operator""_kHz(long double v) {
  return Frequency(double(v) * 1e3);
}
constexpr Frequency operator""_kHz(unsigned long long v) {
  return Frequency(double(v) * 1e3);
}
constexpr Frequency operator""_MHz(long double v) {
  return Frequency(double(v) * 1e6);
}
constexpr Frequency operator""_MHz(unsigned long long v) {
  return Frequency(double(v) * 1e6);
}
constexpr Frequency operator""_GHz(long double v) {
  return Frequency(double(v) * 1e9);
}
constexpr Frequency operator""_GHz(unsigned long long v) {
  return Frequency(double(v) * 1e9);
}

// Length / area.
constexpr Length operator""_m(long double v) { return Length(double(v)); }
constexpr Length operator""_m(unsigned long long v) {
  return Length(double(v));
}
constexpr Length operator""_mm(long double v) {
  return Length(double(v) * 1e-3);
}
constexpr Length operator""_cm(long double v) {
  return Length(double(v) * 1e-2);
}
constexpr Length operator""_km(long double v) {
  return Length(double(v) * 1e3);
}
constexpr Length operator""_nm(long double v) {
  return Length(double(v) * 1e-9);
}
constexpr Length operator""_nm(unsigned long long v) {
  return Length(double(v) * 1e-9);
}
constexpr Area operator""_cm2(long double v) { return Area(double(v) * 1e-4); }
constexpr Area operator""_cm2(unsigned long long v) {
  return Area(double(v) * 1e-4);
}
constexpr Area operator""_m2(long double v) { return Area(double(v)); }

// Power.
constexpr Power operator""_W(long double v) { return Power(double(v)); }
constexpr Power operator""_W(unsigned long long v) { return Power(double(v)); }
constexpr Power operator""_kW(long double v) { return Power(double(v) * 1e3); }
constexpr Power operator""_mW(long double v) {
  return Power(double(v) * 1e-3);
}
constexpr Power operator""_mW(unsigned long long v) {
  return Power(double(v) * 1e-3);
}
constexpr Power operator""_uW(long double v) {
  return Power(double(v) * 1e-6);
}
constexpr Power operator""_uW(unsigned long long v) {
  return Power(double(v) * 1e-6);
}
constexpr Power operator""_nW(long double v) {
  return Power(double(v) * 1e-9);
}
constexpr Power operator""_nW(unsigned long long v) {
  return Power(double(v) * 1e-9);
}

// Power density (RF field strength at a rectenna, irradiance on a PV cell).
// 1 uW/cm^2 = 1e-2 W/m^2 — the customary unit of harvesting papers.
constexpr PowerDensity operator""_W_m2(long double v) {
  return PowerDensity(double(v));
}
constexpr PowerDensity operator""_W_m2(unsigned long long v) {
  return PowerDensity(double(v));
}
constexpr PowerDensity operator""_mW_cm2(long double v) {
  return PowerDensity(double(v) * 10.0);
}
constexpr PowerDensity operator""_uW_cm2(long double v) {
  return PowerDensity(double(v) * 1e-2);
}
constexpr PowerDensity operator""_uW_cm2(unsigned long long v) {
  return PowerDensity(double(v) * 1e-2);
}

// Energy.
constexpr Energy operator""_J(long double v) { return Energy(double(v)); }
constexpr Energy operator""_J(unsigned long long v) {
  return Energy(double(v));
}
constexpr Energy operator""_kJ(long double v) {
  return Energy(double(v) * 1e3);
}
constexpr Energy operator""_mJ(long double v) {
  return Energy(double(v) * 1e-3);
}
constexpr Energy operator""_uJ(long double v) {
  return Energy(double(v) * 1e-6);
}
constexpr Energy operator""_nJ(long double v) {
  return Energy(double(v) * 1e-9);
}
constexpr Energy operator""_pJ(long double v) {
  return Energy(double(v) * 1e-12);
}
constexpr Energy operator""_pJ(unsigned long long v) {
  return Energy(double(v) * 1e-12);
}
constexpr Energy operator""_Wh(long double v) {
  return Energy(double(v) * 3600.0);
}
constexpr Energy operator""_Wh(unsigned long long v) {
  return Energy(double(v) * 3600.0);
}
constexpr Energy operator""_mWh(long double v) {
  return Energy(double(v) * 3.6);
}

// Electrical.
constexpr Voltage operator""_V(long double v) { return Voltage(double(v)); }
constexpr Voltage operator""_V(unsigned long long v) {
  return Voltage(double(v));
}
constexpr Voltage operator""_mV(long double v) {
  return Voltage(double(v) * 1e-3);
}
constexpr Current operator""_A(long double v) { return Current(double(v)); }
constexpr Current operator""_mA(long double v) {
  return Current(double(v) * 1e-3);
}
constexpr Current operator""_uA(long double v) {
  return Current(double(v) * 1e-6);
}
constexpr Charge operator""_mAh(long double v) {
  return Charge(double(v) * 1e-3 * 3600.0);
}
constexpr Charge operator""_mAh(unsigned long long v) {
  return Charge(double(v) * 1e-3 * 3600.0);
}
constexpr Capacitance operator""_F(long double v) {
  return Capacitance(double(v));
}
constexpr Capacitance operator""_pF(long double v) {
  return Capacitance(double(v) * 1e-12);
}
constexpr Capacitance operator""_fF(long double v) {
  return Capacitance(double(v) * 1e-15);
}

// Information.
constexpr Information operator""_bit(long double v) {
  return Information(double(v));
}
constexpr Information operator""_bit(unsigned long long v) {
  return Information(double(v));
}
constexpr Information operator""_kbit(long double v) {
  return Information(double(v) * 1e3);
}
constexpr Information operator""_Mbit(long double v) {
  return Information(double(v) * 1e6);
}
constexpr Information operator""_bytes(unsigned long long v) {
  return Information(double(v) * 8.0);
}
constexpr BitRate operator""_bps(long double v) { return BitRate(double(v)); }
constexpr BitRate operator""_bps(unsigned long long v) {
  return BitRate(double(v));
}
constexpr BitRate operator""_kbps(long double v) {
  return BitRate(double(v) * 1e3);
}
constexpr BitRate operator""_kbps(unsigned long long v) {
  return BitRate(double(v) * 1e3);
}
constexpr BitRate operator""_Mbps(long double v) {
  return BitRate(double(v) * 1e6);
}
constexpr BitRate operator""_Mbps(unsigned long long v) {
  return BitRate(double(v) * 1e6);
}
constexpr BitRate operator""_Gbps(long double v) {
  return BitRate(double(v) * 1e9);
}

}  // namespace literals

/// Format a raw SI value with an engineering prefix, e.g. 1.3e-6 W -> "1.30 uW".
std::string si_format(double value, const std::string& unit, int precision = 3);

inline std::string to_string(Power p) { return si_format(p.value(), "W"); }
inline std::string to_string(Energy e) { return si_format(e.value(), "J"); }
inline std::string to_string(Time t) { return si_format(t.value(), "s"); }
inline std::string to_string(BitRate r) {
  return si_format(r.value(), "bit/s");
}
inline std::string to_string(EnergyPerBit e) {
  return si_format(e.value(), "J/bit");
}
inline std::string to_string(Length l) { return si_format(l.value(), "m"); }
inline std::string to_string(Frequency f) {
  return si_format(f.value(), "Hz");
}
inline std::string to_string(Voltage v) { return si_format(v.value(), "V"); }
inline std::string to_string(PowerDensity s) {
  return si_format(s.value(), "W/m^2");
}

// ---------------------------------------------------------------------------
// Strong-type helpers for the rectenna chain (power density in, microwatts
// out).  Kept beside the literals so the dimensional refactor of ROADMAP
// item 5 finds every scaling constant in one place.
// ---------------------------------------------------------------------------

/// W/m^2 from the customary uW/cm^2 of the harvesting literature.
constexpr PowerDensity power_density_from_uw_cm2(double uw_per_cm2) {
  return PowerDensity(uw_per_cm2 * 1e-2);
}

/// Numeric value of a power density in uW/cm^2.
constexpr double as_uw_cm2(PowerDensity s) { return s.value() * 1e2; }

/// Power from a microwatt figure (harvested-power tables are quoted in uW).
constexpr Power microwatts(double uw) { return Power(uw * 1e-6); }

/// Numeric value of a power in microwatts.
constexpr double as_microwatts(Power p) { return p.value() * 1e6; }

/// Incident power collected by an aperture: S * A, dimension-checked.
constexpr Power incident_power(PowerDensity s, Area a) { return s * a; }

}  // namespace ambisim::units
