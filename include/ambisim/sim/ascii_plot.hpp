// Minimal ASCII scatter plot for the benchmark harness: renders the
// keynote's log-log power-information plane (and any other (x, y) cloud)
// directly into the bench output, with decade gridlines and per-point
// glyphs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ambisim::sim {

class AsciiScatter {
 public:
  /// Plot of `width` x `height` character cells.  Log-log by default.
  AsciiScatter(std::string title, int width = 72, int height = 24,
               bool log_x = true, bool log_y = true);

  /// Add a point; `glyph` is the character drawn at its cell.  Points with
  /// non-positive coordinates on a log axis are rejected.
  void add(double x, double y, char glyph);

  /// Optional axis labels.
  void set_labels(std::string x_label, std::string y_label);

  /// Render with decade ticks (log axes) or min/max annotations (linear).
  void render(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  struct Point {
    double x;
    double y;
    char glyph;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  bool log_x_;
  bool log_y_;
  std::vector<Point> points_;
};

std::ostream& operator<<(std::ostream& os, const AsciiScatter& plot);

}  // namespace ambisim::sim
