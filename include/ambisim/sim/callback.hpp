// Small-buffer-optimized type-erased callable for the event kernel.
//
// `std::function` costs the hot path twice: copying one out of
// `priority_queue::top()` may heap-allocate, and libstdc++'s 16-byte inline
// buffer spills typical simulator closures (a context pointer plus a couple
// of scalars) to the heap at schedule time.  InplaceCallback is the
// kernel-shaped replacement: 48 bytes of inline storage (enough for every
// closure the simulators build, and for a whole `std::function` should a
// client hand one over), move-only semantics so the kernel never copies a
// callable, and a heap fallback only for oversized or throwing-move captures
// so behaviour stays correct for arbitrary clients.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ambisim::sim {

class InplaceCallback {
 public:
  /// Inline capture budget.  Closures at or under this size (and alignment)
  /// with noexcept moves live in the event slot itself; anything bigger
  /// falls back to one heap cell.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InplaceCallback() noexcept = default;

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceCallback> &&
                std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  InplaceCallback(F&& f) {
    // Preserve std::function's null semantics: wrapping an empty function
    // (or null function pointer) yields an empty InplaceCallback, so
    // `schedule_*` can keep rejecting it up front instead of crashing at
    // fire time.
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(f)) return;
    }
    emplace<D>(std::forward<F>(f));
  }

  InplaceCallback(InplaceCallback&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      // Trivially-relocatable callables (the kernel's own closures, heap
      // cell pointers) move with a plain copy of the whole buffer — no
      // indirect call on the hot path.
      if (vtable_->trivial) {
        storage_ = other.storage_;
      } else {
        vtable_->relocate(&storage_, &other.storage_);
      }
      other.vtable_ = nullptr;
    }
  }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        if (vtable_->trivial) {
          storage_ = other.storage_;
        } else {
          vtable_->relocate(&storage_, &other.storage_);
        }
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { reset(); }

  void operator()() { vtable_->invoke(&storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial_destroy) vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

  /// True when the held callable lives in the inline buffer (test hook for
  /// the zero-allocation contract).
  [[nodiscard]] bool inline_stored() const noexcept {
    return vtable_ != nullptr && vtable_->inline_stored;
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-construct `*dst` from `*src`, then destroy `*src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inline_stored;
    /// Relocating is a plain buffer copy (trivially-copyable inline
    /// callables, and heap cells whose buffer just holds the pointer).
    bool trivial;
    /// Destruction is a no-op (trivially-destructible inline callables).
    bool trivial_destroy;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D, typename F>
  void emplace(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      static constexpr VTable vt{
          [](void* self) { (*std::launder(static_cast<D*>(self)))(); },
          [](void* dst, void* src) noexcept {
            D* from = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
          },
          [](void* self) noexcept {
            std::launder(static_cast<D*>(self))->~D();
          },
          /*inline_stored=*/true,
          /*trivial=*/std::is_trivially_copyable_v<D>,
          /*trivial_destroy=*/std::is_trivially_destructible_v<D>};
      vtable_ = &vt;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      static constexpr VTable vt{
          [](void* self) { (**std::launder(static_cast<D**>(self)))(); },
          [](void* dst, void* src) noexcept {
            // Pointer relocation: copy the cell pointer; the source slot is
            // trivially destructible.
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
          },
          [](void* self) noexcept {
            delete *std::launder(static_cast<D**>(self));
          },
          /*inline_stored=*/false,
          /*trivial=*/true,  // the buffer just holds the cell pointer
          /*trivial_destroy=*/false};
      vtable_ = &vt;
    }
  }

  // Wrapped in a struct so the trivial-relocate path is one aggregate copy.
  struct Storage {
    alignas(kInlineAlign) std::byte bytes[kInlineSize];
  };

  const VTable* vtable_ = nullptr;
  Storage storage_;
};

}  // namespace ambisim::sim
