// Deterministic pseudo-random source for simulations.
//
// All stochastic components take an explicit Rng so that every experiment in
// the benchmark harness is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace ambisim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponentially distributed value with the given mean (= 1/rate).
  double exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("exponential mean <= 0");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::uint64_t poisson(double mean) {
    return std::poisson_distribution<std::uint64_t>(mean)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("pick from empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Weighted index selection; weights need not be normalized.
  std::size_t weighted_index(std::span<const double> weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-node generators).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ambisim::sim
