// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue.  Events are arbitrary
// callables scheduled at absolute or relative simulated times; ties are
// broken by insertion order so runs are fully deterministic.  Handles allow
// cancellation (used by MAC timers and power-manager timeouts).
//
// The hot path is allocation-free in steady state: events live in a slab
// pool of reusable slots (free-list recycled, generation-counted so stale
// handles are inert), callables are stored in-place via InplaceCallback
// (heap fallback only for oversized captures), and ordering is kept by a
// hand-rolled 4-ary min-heap over pool indices that moves the callable out
// of the winning slot instead of copying it.  Cancellation is lazy: a
// cancelled event keeps its queue position until the heap reaches it, at
// which point it is dropped and counted in `dropped_events()` — exactly the
// semantics (and `pending_events()` accounting) of the earlier
// shared_ptr/std::function kernel, at a fraction of the cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ambisim/sim/callback.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::sim {

using units::Time;

class Simulator;

namespace detail {
class EventPool;

void pool_add_ref(EventPool* p) noexcept;
void pool_release(EventPool* p) noexcept;

// Intrusive, non-atomic refcounted pointer to the event pool.  The kernel
// is single-threaded by contract (the exec layer hands each worker its own
// Simulator), so handle copies cost a plain increment where a shared_ptr
// would pay two locked operations per scheduled event.
class PoolRef {
 public:
  PoolRef() = default;
  /// Adopts `p` (takes over the initial reference).
  explicit PoolRef(EventPool* p) noexcept : p_(p) {}
  PoolRef(const PoolRef& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) pool_add_ref(p_);
  }
  PoolRef(PoolRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PoolRef& operator=(const PoolRef& o) noexcept {
    if (this != &o) {
      if (o.p_ != nullptr) pool_add_ref(o.p_);
      if (p_ != nullptr) pool_release(p_);
      p_ = o.p_;
    }
    return *this;
  }
  PoolRef& operator=(PoolRef&& o) noexcept {
    if (this != &o) {
      if (p_ != nullptr) pool_release(p_);
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~PoolRef() {
    if (p_ != nullptr) pool_release(p_);
  }

  [[nodiscard]] EventPool* get() const noexcept { return p_; }
  EventPool* operator->() const noexcept { return p_; }
  EventPool& operator*() const noexcept { return *p_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return p_ != nullptr;
  }

 private:
  EventPool* p_ = nullptr;
};
}  // namespace detail

/// Cancellation handle for a scheduled event.  Copyable; cancelling an
/// already-fired or already-cancelled event is a no-op.  Handles reference
/// their event by pool index + generation: once the event fires (or its
/// cancelled slot drains) the generation advances and every outstanding
/// handle for it goes inert, even if the slot is reused.  Handles keep the
/// pool alive, so they stay safe to query after the Simulator is destroyed.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  EventHandle(const detail::PoolRef& pool, std::uint32_t index,
              std::uint32_t generation)
      : pool_(pool), index_(index), generation_(generation) {}

  detail::PoolRef pool_;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  using Callback = InplaceCallback;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(Time t, Callback fn);
  /// Schedule `fn` after delay `dt` (must be >= 0).
  EventHandle schedule_in(Time dt, Callback fn);

  /// Run until the queue is empty or `stop()` is called.
  void run();
  /// Run until simulated time reaches `deadline`; the clock is advanced to
  /// `deadline` even if the queue empties earlier.  `stop()` from inside a
  /// callback halts immediately and leaves the clock at the stop point.
  void run_until(Time deadline);
  /// Execute the single next event.  Returns false if the queue is empty.
  bool step();

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Scheduled events still in the queue, including cancelled ones whose
  /// slots have not yet drained (they drop when the heap reaches them).
  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// Cancelled events removed from the queue without firing (by `step()`
  /// skipping them or by `run_until`'s head drain).
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_; }
  /// Current slab capacity of the event pool (grows on demand, never
  /// shrinks); exposed for pool-growth tests and bench reporting.
  [[nodiscard]] std::size_t event_pool_capacity() const;

  /// Drop the cached observability instrument pointers so the next probe
  /// re-resolves them.  Only needed if the active registry is `clear()`ed
  /// mid-run; context switches and `obs::reset()` are detected
  /// automatically.
  void refresh_obs_cache();

 private:
  detail::PoolRef pool_;
  Time now_{0.0};
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t dropped_ = 0;
  bool stopped_ = false;
};

/// Time-stamped scalar trace (e.g. battery charge over time).  Benches use
/// traces to emit time-series figures.
class Trace {
 public:
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void record(Time t, double value) { points_.push_back({t, value}); }
  /// Pre-size the backing store for `n` points (long recording loops avoid
  /// doubling reallocations).
  void reserve(std::size_t n) { points_.reserve(n); }

  struct Point {
    Time time;
    double value;
  };
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double last() const { return points_.back().value; }

  /// Piecewise-constant (sample-and-hold) time integral of the trace over
  /// [first, last] sample times.
  [[nodiscard]] double integral() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace ambisim::sim
