// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue.  Events are arbitrary
// callables scheduled at absolute or relative simulated times; ties are
// broken by insertion order so runs are fully deterministic.  Handles allow
// cancellation (used by MAC timers and power-manager timeouts).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "ambisim/sim/units.hpp"

namespace ambisim::sim {

using units::Time;

class Simulator;

/// Cancellation handle for a scheduled event.  Copyable; cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(Time t, Callback fn);
  /// Schedule `fn` after delay `dt` (must be >= 0).
  EventHandle schedule_in(Time dt, Callback fn);

  /// Run until the queue is empty or `stop()` is called.
  void run();
  /// Run until simulated time reaches `deadline`; the clock is advanced to
  /// `deadline` even if the queue empties earlier.
  void run_until(Time deadline);
  /// Execute the single next event.  Returns false if the queue is empty.
  bool step();

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_{0.0};
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

/// Time-stamped scalar trace (e.g. battery charge over time).  Benches use
/// traces to emit time-series figures.
class Trace {
 public:
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void record(Time t, double value) { points_.push_back({t, value}); }

  struct Point {
    Time time;
    double value;
  };
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double last() const { return points_.back().value; }

  /// Piecewise-constant (sample-and-hold) time integral of the trace over
  /// [first, last] sample times.
  [[nodiscard]] double integral() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace ambisim::sim
