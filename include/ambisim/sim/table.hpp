// Lightweight result table used by every benchmark binary to print the rows
// and series of a reproduced figure/table in a uniform, parseable format.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ambisim::sim {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  Table(std::string title, std::vector<std::string> columns);

  Table& add_row(std::vector<Cell> cells);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const {
    return rows_.at(i);
  }
  /// Numeric value of a cell (doubles and integers; strings throw).
  [[nodiscard]] double number(std::size_t row, std::size_t col) const;

  /// Aligned human-readable rendering.
  void print(std::ostream& os) const;
  /// Machine-readable CSV rendering (quotes strings containing commas).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace ambisim::sim
