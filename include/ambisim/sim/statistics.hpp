// Streaming and batch statistics used by the benchmark harness and the
// network simulator (latency, energy, lifetime distributions).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ambisim::sim {

/// Welford streaming accumulator: numerically stable mean and variance.
/// Header-only so that layers below the sim library (obs histograms) can use
/// it without a link dependency.
class Accumulator {
 public:
  void add(double x) {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Fold another accumulator into this one (Chan et al. pairwise update):
  /// counts/sums/extrema combine exactly, mean and M2 via the parallel
  /// Welford formula.  Lets per-worker accumulators merge after a join.
  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1).
  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries.  The sorted view is computed
/// once and cached; `add` invalidates it, so interleaved add/percentile
/// sequences stay correct while repeated queries cost one sort total.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_valid_ = false;
  }
  /// Pre-size the backing store for `n` samples; long collection loops
  /// (packet simulations, bench sweeps) avoid doubling reallocations.
  void reserve(std::size_t n) { values_.reserve(n); }
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  [[nodiscard]] const std::vector<double>& sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Least-squares fit y = a + b*x over paired samples; used by tests to check
/// scaling-law slopes (e.g. log-log slopes on the power-information graph).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace ambisim::sim
