// Streaming and batch statistics used by the benchmark harness and the
// network simulator (latency, energy, lifetime distributions).
#pragma once

#include <cstddef>
#include <vector>

namespace ambisim::sim {

/// Welford streaming accumulator: numerically stable mean and variance.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries (copies & sorts on demand).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Least-squares fit y = a + b*x over paired samples; used by tests to check
/// scaling-law slopes (e.g. log-log slopes on the power-information graph).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace ambisim::sim
