// Region partition: spatial assignment of topology nodes to shards.
//
// The sharded engine (shard/engine.hpp) runs one event kernel per region,
// so the partition decides which kernel owns each node's transmitter state
// and which hops become cross-shard boundary messages.  Regions are built
// from the same uniform SpatialGrid that backs neighbor discovery: cells of
// roughly one radio range per side are walked in row-major order and dealt
// to shards as contiguous spans balanced by node count.  Nodes sharing a
// cell always share a shard, so a region is a geometrically compact block
// of the field and most links (which are shorter than the radio range by
// construction) stay internal to one shard.
//
// The partition is a pure function of (positions, shard_count, cell_size):
// no RNG, no iteration-order dependence, so every run of the same topology
// deals the same regions — a precondition for the engine's bit-identity
// contract.  Degenerate inputs produce *empty shards*, not errors: an
// all-coincident cloud collapses to one cell (every node lands in shard 0)
// and asking for more shards than occupied cells leaves the surplus shards
// with zero nodes.  Empty shards run zero events and cost one idle kernel.
#pragma once

#include <cstddef>
#include <vector>

#include "ambisim/net/routing.hpp"
#include "ambisim/net/topology.hpp"

namespace ambisim::shard {

struct RegionPartition {
  int shard_count = 0;
  /// Owning shard per node, in [0, shard_count).
  std::vector<int> owner;
  /// Node ids per shard, ascending within each shard.
  std::vector<std::vector<int>> nodes;

  /// Partition `topo` into `shard_count` regions with grid cells of
  /// `cell_size_m` meters (callers pass the radio range so intra-cell
  /// links can never span shards).  Throws std::invalid_argument on
  /// shard_count < 1 or a non-positive cell size.
  [[nodiscard]] static RegionPartition build(const net::Topology& topo,
                                             int shard_count,
                                             double cell_size_m);

  [[nodiscard]] bool is_cross(int a, int b) const {
    return owner[static_cast<std::size_t>(a)] !=
           owner[static_cast<std::size_t>(b)];
  }
  /// Shards that own zero nodes (degenerate layouts; see file comment).
  [[nodiscard]] int empty_shards() const;
  /// Directed adjacency edges whose endpoints live in different shards —
  /// the traffic that must cross the conservative sync barrier.
  [[nodiscard]] std::size_t cross_edge_count(const net::Adjacency& adj) const;
  /// Routing-tree edges (node -> next_hop) cut by the partition.
  [[nodiscard]] std::size_t cut_tree_edges(const net::RoutingTree& tree) const;
};

}  // namespace ambisim::shard
