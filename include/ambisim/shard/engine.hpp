// Region-sharded packet simulation with conservative time-window sync.
//
// One event kernel owns the whole world in net::simulate_packets; city-scale
// topologies (ROADMAP item 1) need the field split across cores.  This
// engine partitions the topology into spatial regions (shard/partition.hpp),
// runs one sim::Simulator per region on exec::ThreadPool workers, and
// synchronizes with the classic conservative *time-window* protocol
// (Chandy-Misra-Bryant lookahead, windowed): every hop costs at least
// `lookahead = airtime + radio startup` of simulated time, so each shard can
// advance a window [t, t + lookahead) with no input from its peers — any
// packet a neighbor hands over mid-window completes its flight strictly
// after the window ends.  At the window barrier, boundary packets are
// exchanged as (time, flow, dst)-sorted message batches and the next window
// opens.  Zero lookahead (a radio with no airtime and no startup) would
// force zero-width windows; the engine rejects it up front.
//
// Bit-identity contract.  A sharded run at ANY shard count and ANY pool
// size produces a PacketSimResult — and therefore a digest_packets checksum
// — identical to run_serial_oracle on the same config (the tier-1 matrix
// test and bench_city's startup gate both enforce it).  Three disciplines
// make that hold:
//   * Scheduling-free randomness: the per-hop preamble is hashed from
//     (seed, flow, hop) with exec::derive_seed instead of drawn from a
//     shared generator, so consumption order cannot leak into values.
//     Flow ids are (report_index * node_count + origin) — a pure function
//     of the workload, not of event interleaving.
//   * Record-based aggregation: shards append integer-keyed hop / end
//     records; every floating-point reduction (latency samples, ledger
//     sums, mean hops) happens once, at the end, over the records sorted
//     by their unique keys.  No partial sum ever depends on which shard —
//     or which window — computed it.
//   * Per-shard obs shards (obs::ShardSet) merged in shard-index order.
//
// The legacy single-kernel engine draws preambles from a shared rng in
// event order and accumulates results in global event order, so it cannot
// be sharded bit-identically; the sharded engine is therefore an opt-in
// sibling (cfg.shards on PacketSimConfig routes callers here), and its own
// one-shard serial run *is* the oracle.  Fault injection re-converges
// global routing on lifecycle edges — a cross-shard side effect with no
// lookahead — so cfg.faults is rejected; fault studies stay on the legacy
// kernel.
#pragma once

#include <cstdint>

#include "ambisim/net/packet_sim.hpp"

namespace ambisim::obs {
class Profiler;
}  // namespace ambisim::obs

namespace ambisim::shard {

struct ShardRunConfig {
  /// Region count.  1 is legal (and is what the serial smoke compares
  /// against); must be >= 1.
  int shards = 1;
  /// Worker threads for the window barrier's parallel_for; 0 = hardware
  /// concurrency.  Any value yields the same checksum.
  int pool = 0;
  /// Optional wall-clock profiler (pure observer: attaching one never
  /// changes the checksum).  nullptr falls back to the thread-local
  /// obs::current_profiler(); under AMBISIM_OBS_DISABLED the field is
  /// ignored entirely.
  obs::Profiler* profiler = nullptr;
};

struct ShardRunResult {
  net::PacketSimResult packets;
  /// digest_packets(packets): order-sensitive checksum for identity gates.
  std::uint64_t checksum = 0;
  int shard_count = 0;
  /// Conservative windows executed (ceil(duration / lookahead) plus any
  /// drain rounds for messages landing exactly on the horizon).
  long long windows = 0;
  /// Boundary packets exchanged at window barriers over the whole run.
  long long boundary_messages = 0;
  double lookahead_s = 0.0;
  /// Directed adjacency edges cut by the partition (0 when shards == 1).
  std::size_t cross_edges = 0;
  /// Events executed across all shard kernels.
  std::uint64_t events_executed = 0;
};

/// Order-sensitive digest of every deterministic field of a packet-sim
/// result, including each latency / queueing sample in order.  Equal
/// checksums mean bit-identical runs.
[[nodiscard]] std::uint64_t digest_packets(const net::PacketSimResult& res);

/// The single-kernel serial oracle: same workload, same hashed preambles,
/// same record-sorted aggregation, one sim::Simulator, no windows.  Every
/// sharded run must match its checksum exactly.
[[nodiscard]] net::PacketSimResult run_serial_oracle(
    const net::PacketSimConfig& cfg);

/// Run `cfg`'s workload region-sharded.  Ignores cfg.shards (callers that
/// dispatch on it pass the count via `run`); throws std::invalid_argument
/// on run.shards < 1, run.pool < 0, cfg.faults engaged, or zero lookahead.
[[nodiscard]] ShardRunResult simulate_packets_sharded(
    const net::PacketSimConfig& cfg, const ShardRunConfig& run);

}  // namespace ambisim::shard
