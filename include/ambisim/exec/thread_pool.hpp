// Fixed-size worker pool, join handles, and a chunked parallel_for.
//
// The pool is the substrate of ambisim::exec: a fixed set of workers pulls
// type-erased tasks from a single queue.  Determinism is never provided by
// the scheduler — completion order is arbitrary — it is provided by the
// callers, who pre-size result vectors so task `i` writes slot `i` only,
// and by exec::derive_seed, which gives task `i` an RNG substream that does
// not depend on thread count or interleaving.
//
// TaskSet is the future-like join handle: submit closures against a pool,
// then `wait()` blocks until all of them finished and rethrows the first
// captured exception.  Do not submit pool work from inside a pool task of
// the same pool and wait on it — with every worker blocked in `wait()` the
// nested tasks can never run.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ambisim::exec {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task; never blocks, the task may start immediately.
  void submit(std::function<void()> task);

  /// Index of the calling pool worker in [0, size()), or -1 when called
  /// from a thread that does not belong to any ThreadPool.  Runners use it
  /// to address per-worker observability shards.
  [[nodiscard]] static int current_worker_index();

  /// std::thread::hardware_concurrency, clamped to at least 1.
  [[nodiscard]] static unsigned hardware_threads();

 private:
  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Join handle for a batch of tasks submitted to a ThreadPool.
class TaskSet {
 public:
  explicit TaskSet(ThreadPool& pool) : pool_(pool) {}
  /// Blocks until every submitted task finished.  Exceptions captured from
  /// tasks are dropped here — call wait() to observe them.
  ~TaskSet();
  TaskSet(const TaskSet&) = delete;
  TaskSet& operator=(const TaskSet&) = delete;

  void submit(std::function<void()> fn);

  /// Block until all submitted tasks completed, then rethrow the first
  /// exception any of them threw (the remaining tasks still ran to
  /// completion or threw into the void).
  void wait();

  /// Tasks submitted but not yet finished.
  [[nodiscard]] std::size_t pending() const;

 private:
  ThreadPool& pool_;
  mutable std::mutex mu_;
  std::condition_variable done_;
  std::size_t pending_count_ = 0;
  std::exception_ptr first_error_;
};

/// Chunked parallel loop: invokes `fn(i)` for every i in [0, n) on the
/// pool's workers and joins.  `fn` must tolerate concurrent invocation for
/// distinct indices; with slot-per-index writes the outcome is independent
/// of chunking and scheduling.  `grain == 0` picks ~4 chunks per worker so
/// uneven per-index cost still load-balances.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0)
    grain = std::max<std::size_t>(1, n / (std::size_t{pool.size()} * 4));
  TaskSet tasks(pool);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    tasks.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  tasks.wait();
}

}  // namespace ambisim::exec
