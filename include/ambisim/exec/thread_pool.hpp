// Fixed-size worker pool, join handles, and a chunked parallel_for.
//
// The pool is the substrate of ambisim::exec: a fixed set of workers pulls
// type-erased tasks from a single queue.  Determinism is never provided by
// the scheduler — completion order is arbitrary — it is provided by the
// callers, who pre-size result vectors so task `i` writes slot `i` only,
// and by exec::derive_seed, which gives task `i` an RNG substream that does
// not depend on thread count or interleaving.
//
// TaskSet is the future-like join handle: submit closures against a pool,
// then `wait()` blocks until all of them finished and rethrows the first
// captured exception.  Do not submit pool work from inside a pool task of
// the same pool and wait on it — with every worker blocked in `wait()` the
// nested tasks can never run.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ambisim::exec {

class ThreadPool {
 public:
  /// Per-worker wall-clock task accounting, collected while
  /// `set_accounting(true)` is active.  The three time buckets partition a
  /// worker's lifetime since accounting was enabled:
  ///
  ///   * idle_s       — no runnable task existed for the worker,
  ///   * queue_wait_s — a task was enqueued but the worker had not yet
  ///                    dequeued it (queueing delay, charged to the worker
  ///                    that eventually ran the task),
  ///   * run_s        — the worker was executing task bodies.
  ///
  /// queue + run + idle == lifetime by construction when the snapshot is
  /// taken while the pool is quiescent (e.g. after TaskSet::wait()); a
  /// snapshot taken mid-task attributes the open interval to run_s.
  struct WorkerStats {
    std::uint64_t tasks = 0;
    double queue_wait_s = 0.0;
    double run_s = 0.0;
    double idle_s = 0.0;
    double lifetime_s = 0.0;
  };

  /// `threads == 0` selects hardware_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task; never blocks, the task may start immediately.
  void submit(std::function<void()> task);

  /// Enable or disable per-worker accounting.  Enabling (re)zeroes all
  /// worker stats and restarts every worker's lifetime clock; disabling
  /// freezes nothing — stats simply stop accumulating and remain readable.
  /// Costs one bool test per submit/dequeue when off.
  void set_accounting(bool enabled);
  [[nodiscard]] bool accounting_enabled() const;

  /// Snapshot of each worker's accounting (index == worker index).  Exact
  /// bucket partition requires a quiescent pool; see WorkerStats.
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// Index of the calling pool worker in [0, size()), or -1 when called
  /// from a thread that does not belong to any ThreadPool.  Runners use it
  /// to address per-worker observability shards.
  [[nodiscard]] static int current_worker_index();

  /// std::thread::hardware_concurrency, clamped to at least 1.
  [[nodiscard]] static unsigned hardware_threads();

 private:
  using Clock = std::chrono::steady_clock;

  /// Queue element: the closure plus its enqueue stamp (only taken while
  /// accounting is on; a default-constructed stamp means "unstamped" and
  /// the dequeue-side clamp charges the whole wait to idle).
  struct Task {
    std::function<void()> fn;
    Clock::time_point enqueued{};
  };

  /// Accounting slot for one worker.  All fields are guarded by `mu_` —
  /// workers publish transitions under the queue lock they already hold,
  /// so accounting adds no new synchronization.
  struct WorkerSlot {
    WorkerStats stats;
    Clock::time_point anchor{};      ///< lifetime start (set_accounting)
    Clock::time_point last_event{};  ///< end of the last attributed interval
    bool running = false;            ///< inside a task body right now
  };

  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool accounting_ = false;
  std::vector<WorkerSlot> slots_;
};

/// Join handle for a batch of tasks submitted to a ThreadPool.
class TaskSet {
 public:
  explicit TaskSet(ThreadPool& pool) : pool_(pool) {}
  /// Blocks until every submitted task finished.  Exceptions captured from
  /// tasks are dropped here — call wait() to observe them.
  ~TaskSet();
  TaskSet(const TaskSet&) = delete;
  TaskSet& operator=(const TaskSet&) = delete;

  void submit(std::function<void()> fn);

  /// Block until all submitted tasks completed, then rethrow the first
  /// exception any of them threw (the remaining tasks still ran to
  /// completion or threw into the void).
  void wait();

  /// Tasks submitted but not yet finished.
  [[nodiscard]] std::size_t pending() const;

 private:
  ThreadPool& pool_;
  mutable std::mutex mu_;
  std::condition_variable done_;
  std::size_t pending_count_ = 0;
  std::exception_ptr first_error_;
};

/// Chunked parallel loop: invokes `fn(i)` for every i in [0, n) on the
/// pool's workers and joins.  `fn` must tolerate concurrent invocation for
/// distinct indices; with slot-per-index writes the outcome is independent
/// of chunking and scheduling.  `grain == 0` picks ~4 chunks per worker so
/// uneven per-index cost still load-balances.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0)
    grain = std::max<std::size_t>(1, n / (std::size_t{pool.size()} * 4));
  TaskSet tasks(pool);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    tasks.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  tasks.wait();
}

}  // namespace ambisim::exec
