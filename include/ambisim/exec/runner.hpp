// Deterministic parallel runners for design-point sweeps and Monte-Carlo
// replications.
//
// ParallelSweepRunner fans a vector of independent design points across a
// ThreadPool; ReplicationRunner fans N replications of one stochastic
// experiment, handing replication `i` a sim::Rng seeded with
// derive_seed(root_seed, i).  Both collect into pre-sized result vectors —
// task `i` writes slot `i` and nothing else — so for a given input and root
// seed the output is bit-identical for any thread count, chunking, or
// scheduling order.  That is the contract the determinism tier-1 tests
// assert at pool sizes 1, 2, and 8.
//
// Observability: when probes are armed and `shard_obs` is set (the
// default), a run gives each worker its own obs::Context shard and merges
// the shards into the global context after the join, so counters and
// histograms collected inside simulate_* calls stay exact under
// concurrency instead of racing on the global registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "ambisim/exec/seed.hpp"
#include "ambisim/exec/thread_pool.hpp"
#include "ambisim/obs/obs.hpp"
#include "ambisim/sim/random.hpp"

namespace ambisim::exec {

struct ExecConfig {
  unsigned threads = 0;   ///< worker count; 0 -> hardware_threads()
  std::size_t grain = 0;  ///< indices per task; 0 -> ~4 chunks per worker
  bool shard_obs = true;  ///< per-worker obs buffers + post-join merge
};

namespace detail {

/// Owns the per-worker obs shards of one parallel region.  Inert when obs
/// is disarmed or sharding is off; otherwise the destructor merges every
/// shard into the global context in shard order (after the join — declare
/// the guard above the parallel loop).
class ObsShardGuard {
 public:
  ObsShardGuard(bool shard_obs, unsigned workers);
  ~ObsShardGuard();
  ObsShardGuard(const ObsShardGuard&) = delete;
  ObsShardGuard& operator=(const ObsShardGuard&) = delete;

  /// Shard of the calling pool worker, or nullptr when inert / not called
  /// from a pool worker.
  [[nodiscard]] obs::Context* shard_for_current_worker();

 private:
  std::unique_ptr<obs::ShardSet> shards_;
};

template <typename Fn, typename Point>
decltype(auto) invoke_point(Fn& fn, const Point& p, std::size_t i) {
  if constexpr (std::is_invocable_v<Fn&, const Point&, std::size_t>)
    return fn(p, i);
  else
    return fn(p);
}

}  // namespace detail

/// Fans independent design points across a worker pool.
class ParallelSweepRunner {
 public:
  explicit ParallelSweepRunner(ExecConfig cfg = {})
      : cfg_(cfg), pool_(cfg.threads) {}

  [[nodiscard]] unsigned threads() const { return pool_.size(); }
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Evaluate `fn(point)` or `fn(point, index)` for every design point and
  /// return the results in input order.  The result type must be default-
  /// constructible (slots are pre-sized); `fn` must be safe to invoke
  /// concurrently for distinct points.
  template <typename Point, typename Fn>
  auto run(const std::vector<Point>& points, Fn&& fn) {
    using R = std::decay_t<decltype(detail::invoke_point(
        fn, points.front(), std::size_t{0}))>;
    std::vector<R> out(points.size());
    detail::ObsShardGuard shards(cfg_.shard_obs, pool_.size());
    parallel_for(
        pool_, points.size(),
        [&](std::size_t i) {
          obs::ContextBinding bind(shards.shard_for_current_worker());
          out[i] = detail::invoke_point(fn, points[i], i);
          // Each point is its own recording stream: never let on-change
          // dedup span two points that happen to share a worker shard.
          if (obs::enabled()) obs::context().timeline.reset_streams();
        },
        cfg_.grain);
    return out;
  }

 private:
  ExecConfig cfg_;
  ThreadPool pool_;
};

/// Fans Monte-Carlo replications of one experiment across a worker pool.
class ReplicationRunner {
 public:
  explicit ReplicationRunner(ExecConfig cfg = {})
      : cfg_(cfg), pool_(cfg.threads) {}

  [[nodiscard]] unsigned threads() const { return pool_.size(); }

  /// Run `fn(rng, index)` for every replication in [0, replications), each
  /// with its own sim::Rng seeded by derive_seed(root_seed, index), and
  /// return the results in replication order.  Replication `i` sees the
  /// same stream no matter how many workers execute the batch.
  template <typename Fn>
  auto run(std::size_t replications, std::uint64_t root_seed, Fn&& fn) {
    using R = std::decay_t<std::invoke_result_t<Fn&, sim::Rng&, std::size_t>>;
    std::vector<R> out(replications);
    detail::ObsShardGuard shards(cfg_.shard_obs, pool_.size());
    parallel_for(
        pool_, replications,
        [&](std::size_t i) {
          obs::ContextBinding bind(shards.shard_for_current_worker());
          sim::Rng rng(derive_seed(root_seed, i));
          out[i] = fn(rng, i);
          // Replication `i` is one recording stream (see
          // Timeline::reset_streams): dedup must not leak into `i+1`'s
          // samples when both land on the same worker shard, or the
          // merged timeline would depend on the pool size.
          if (obs::enabled()) obs::context().timeline.reset_streams();
        },
        cfg_.grain);
    return out;
  }

 private:
  ExecConfig cfg_;
  ThreadPool pool_;
};

}  // namespace ambisim::exec
