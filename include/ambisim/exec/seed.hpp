// Deterministic per-task seed derivation (SplitMix64).
//
// Parallel sweeps and Monte-Carlo replications must produce bit-identical
// results for any thread count, so per-task randomness can never be drawn
// from a shared generator whose consumption order depends on scheduling.
// Instead task `i` of a run rooted at `root_seed` derives its own seed as
// the i-th output of a SplitMix64 stream: a pure function of
// (root_seed, task_index) that any worker, on any thread, at any time
// computes identically.
//
// SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators", OOPSLA 2014) walks a Weyl sequence with the golden-ratio
// increment and applies a bijective multiply-xorshift finalizer, which is
// the standard construction for decorrelating adjacent indices into
// independent-looking 64-bit seeds (here: mt19937_64 seeds for sim::Rng).
#pragma once

#include <cstdint>

namespace ambisim::exec {

/// Weyl increment of the SplitMix64 stream (2^64 / golden ratio, odd).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ULL;

/// The SplitMix64 output finalizer: bijective avalanche mix of 64 bits.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed for task `task_index` of a run rooted at `root_seed`: the
/// (task_index + 1)-th output of the SplitMix64 stream whose state starts
/// at `root_seed`.  Pure in both arguments, so every scheduling of the same
/// run hands task `i` the same independent substream.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t root_seed, std::uint64_t task_index) noexcept {
  return splitmix64(root_seed + (task_index + 1) * kSplitMix64Gamma);
}

}  // namespace ambisim::exec
