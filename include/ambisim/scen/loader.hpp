// Spec validation: JSON text -> ScenarioSpec or positioned diagnostics.
//
// The loader is strict where the parser is tolerant: every key must be
// known (typos surface as "$.fleet[0]: unknown key ..." instead of being
// ignored), every value is type- and range-checked, and cross-field rules
// (engine composition, energy coupling, assertion applicability) are
// enforced — so anything that loads cleanly also builds and runs.
// Diagnostics carry the JSON path and the source line, and `load_text`
// collects *all* of them rather than stopping at the first, so a spec
// author fixes a file in one pass.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ambisim/scen/spec.hpp"

namespace ambisim::scen {

struct Diagnostic {
  std::string path;     ///< JSON path, e.g. "$.fleet[0].count"
  int line = 0;         ///< 1-based source line; 0 when not tied to a token
  std::string message;

  /// "$.fleet[0].count (line 12): count must be >= 1 (got 0)"
  [[nodiscard]] std::string format() const;
};

struct LoadResult {
  std::optional<ScenarioSpec> spec;  ///< engaged iff no diagnostics
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool ok() const { return spec.has_value(); }
  /// Every diagnostic formatted, one per line.
  [[nodiscard]] std::string format_diagnostics() const;
};

class Loader {
 public:
  /// Parse and validate a spec document.
  [[nodiscard]] LoadResult load_text(std::string_view text) const;
  /// Read `path` and load it; unreadable files become a diagnostic.
  [[nodiscard]] LoadResult load_file(const std::string& path) const;
};

}  // namespace ambisim::scen
