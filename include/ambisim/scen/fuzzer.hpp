// Scenario fuzzing: seed-derived spec generation, invariant checking, and
// greedy shrinking of failures to minimal repro specs.
//
// Generation is a pure function of (root_seed, index) on a private
// SplitMix64 stream (exec::derive_seed) — no wall clock, no entropy, no
// std:: distributions (whose draws are implementation-defined) — so the
// i-th spec is the same bytes on every host and the campaign's generation
// checksum can be a committed golden.  Every generated spec is valid by
// construction and re-validated through the Loader as the first invariant.
//
// check() runs a spec end to end and holds it against the engine's
// conservation and determinism contracts: accounting (delivered + lost <=
// offered, fractions and SoC inside [0, 1]) and bit-identical run
// checksums at worker pools {1, 8}.  A failure carries a one-line reason;
// shrink() then greedily applies spec-reduction edits (drop faults, halve
// the fleet, halve the horizon, ...) while the caller's predicate keeps
// failing, converging on a minimal `.scen.json` repro to commit next to a
// bug report.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ambisim/scen/spec.hpp"

namespace ambisim::scen {

struct FuzzConfig {
  std::uint64_t root_seed = 1;
  int min_sensors = 2;
  int max_sensors = 12;
  double min_duration_s = 60.0;
  double max_duration_s = 300.0;
  int max_replications = 2;
  bool with_faults = true;   ///< allow fault sections in generated specs
  bool with_energy = true;   ///< allow battery/harvester stanzas
  /// Allow wireless-power (aiot) scenarios: a backscatter fleet under a
  /// single Watt gateway.  When off, no generation draw is consumed, so
  /// the remaining stream matches the backscatter-free generator.
  bool with_backscatter = true;
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzConfig cfg = {});

  [[nodiscard]] const FuzzConfig& config() const { return cfg_; }

  /// The index-th spec of this root seed.  Pure: same (config, index) ->
  /// same spec, on any host, in any call order.
  [[nodiscard]] ScenarioSpec generate(std::uint64_t index) const;

  /// Order-sensitive digest over the canonical JSON bytes of specs
  /// [0, count): the committed golden of generation bit-identity.
  [[nodiscard]] std::uint64_t generation_checksum(std::uint64_t count) const;

  struct Verdict {
    bool ok = true;
    std::string failure;  ///< one-line reason when !ok
  };
  /// Validate, run, and hold `spec` against the invariants (see file
  /// comment).  Never throws: engine exceptions become failures.
  [[nodiscard]] Verdict check(const ScenarioSpec& spec) const;

  struct CampaignResult {
    std::uint64_t executed = 0;
    std::uint64_t failures = 0;
    std::uint64_t spec_checksum = 0;  ///< == generation_checksum(executed)
    /// (index, reason) of every failing scenario.
    std::vector<std::pair<std::uint64_t, std::string>> failed;
  };
  /// Generate + check scenarios [0, count).
  [[nodiscard]] CampaignResult run(std::uint64_t count) const;

  /// Greedily minimize `spec` while `still_fails` holds: each pass tries
  /// every reduction edit (replications -> 1, drop faults, halve fleet,
  /// halve duration, drop energy, zero fault knobs, drop assertions) and
  /// keeps those that preserve the failure, until a fixpoint.  The result
  /// still satisfies `still_fails`.
  [[nodiscard]] static ScenarioSpec shrink(
      const ScenarioSpec& spec,
      const std::function<bool(const ScenarioSpec&)>& still_fails);

  /// Serialize `spec` to `path` as canonical JSON; returns false on I/O
  /// failure.  The written file loads back cleanly (repro discipline).
  static bool write_repro(const ScenarioSpec& spec, const std::string& path);

 private:
  FuzzConfig cfg_;
};

}  // namespace ambisim::scen
