// Dependency-free JSON for the scenario language.
//
// The scenario subsystem wants specs to be *data files*, so it carries its
// own small parser instead of importing one: a recursive-descent reader
// that keeps the (line, column) of every value for loader diagnostics, and
// a writer whose doubles go through std::to_chars (shortest round-trip),
// so serializing the same spec always yields the same bytes — the fuzzer's
// generation checksums key on that.
//
// Dialect: strict JSON plus two hand-editing tolerances — `//` and
// `/* */` comments, and trailing commas in arrays and objects.  Everything
// a spec must never smuggle through is rejected with a positioned error:
// duplicate object keys, NaN/Infinity (as literals or by numeric
// overflow), control characters in strings, nesting beyond
// `kMaxNestingDepth`, and any trailing garbage after the root value.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ambisim::scen::json {

/// Parse depth cap: a spec is shallow; anything deeper is hostile input.
inline constexpr int kMaxNestingDepth = 64;

enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

const char* to_string(Kind k);

/// Positioned parse failure; `what()` embeds "line:col: message".
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int col);
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  int line_;
  int col_;
};

/// One JSON value.  Objects preserve insertion order (the serializer is a
/// faithful writer) and reject duplicate keys at parse time.
class Value {
 public:
  using Member = std::pair<std::string, Value>;

  Value() = default;  ///< null

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed access; throws std::runtime_error naming the actual kind on a
  /// mismatch (the loader converts those into positioned diagnostics).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] std::size_t size() const;

  /// Source position of the value's first token (1-based; 0 for built).
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

  // --- builders (for the writer side: spec -> JSON) ---
  static Value null();
  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array();
  static Value object();
  /// Append to an array value (must be an array).
  void push(Value v);
  /// Append a member to an object value (must be an object; key must be new).
  void set(std::string key, Value v);

 private:
  friend class Parser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
  int line_ = 0;
  int col_ = 0;
};

/// Parse `text` as a single JSON document; throws ParseError.
Value parse(std::string_view text);

/// Serialize with `indent` spaces per level (0 = compact one-line).
/// Doubles are written with std::to_chars shortest-round-trip form, so the
/// output is byte-deterministic for a given Value on any host.
std::string dump(const Value& v, int indent = 2);

/// Format a double exactly as the serializer would (exposed for goldens).
std::string format_number(double v);

}  // namespace ambisim::scen::json
