// The declarative scenario spec: plain data, loaded from `.scen.json`.
//
// A spec describes one experiment without naming any C++ type from the
// engines underneath: a `fleet` of device groups (the paper's Watt /
// milliWatt / microWatt classes), a `topology`, a `workload`, optional
// `faults`, a `run` stanza (duration, seed, replications, pool) and a list
// of `assertions` checked against the run's aggregate metrics.  The fleet
// composition picks the engine the spec lowers onto (scen/build.hpp):
//
//  * all-microWatt fleet  -> the packet-level collection network
//    (net::simulate_packets, optionally fault-armed and energy-coupled);
//  * microWatt sensors + one milliWatt personal + one Watt server ->
//    the end-to-end ambient-home scenario (core::run_ami_scenario);
//  * backscatter tags + one Watt gateway -> the battery-free
//    wireless-power field (aiot::simulate_wpt).
//
// `to_json` is the loader's inverse: it serializes a spec back to the
// canonical JSON the fuzzer checksums and the shrinker writes as repros.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ambisim::scen {

/// Backscatter is the paper's fourth device point: battery-free tags that
/// harvest the gateway's carrier and reflect it instead of radiating.
enum class DeviceClass : unsigned char {
  MicroWatt,
  MilliWatt,
  Watt,
  Backscatter,
};
enum class TopologyKind : unsigned char { Random, Grid, Star };
enum class Engine : unsigned char { Net, Ami, Aiot };

const char* to_string(DeviceClass c);
const char* to_string(TopologyKind k);
const char* to_string(Engine e);

/// Per-group storage: one of the named energy::Battery specs plus the
/// brown-out hysteresis band the fault injector arms it with.
struct BatterySpec {
  std::string kind = "coin_cell_cr2032";
  double initial_soc = 1.0;
  double brownout_cutoff_soc = 0.02;
  double brownout_recovery_soc = 0.05;
};

/// Ambient recharge, either given directly or derived from an indoor PV
/// cell (energy::SolarHarvester average power).
struct HarvesterSpec {
  double avg_watt = 0.0;      ///< used when area_cm2 == 0
  double area_cm2 = 0.0;      ///< > 0 selects the indoor-PV model
  double efficiency = 0.15;
};

struct FleetGroup {
  std::string name;
  DeviceClass device_class = DeviceClass::MicroWatt;
  int count = 1;
  std::optional<BatterySpec> battery;
  std::optional<HarvesterSpec> harvester;
  double baseline_watt = 0.0;  ///< constant draw beside the radio traffic
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::Random;
  double field_side_m = 40.0;   ///< random: square field edge
  double pitch_m = 10.0;        ///< grid: node spacing
  double radius_m = 12.0;       ///< star: ring radius
  double radio_range_m = 15.0;
  /// Random placement seed; < 0 ties placement to the run seed (the
  /// engine's own draw order), >= 0 pins the layout independently of it.
  long long seed = -1;
};

struct WorkloadSpec {
  // --- net engine ---
  double report_period_s = 10.0;
  double packet_bits = 512.0;
  double mac_wake_interval_s = 0.5;
  double mac_listen_window_s = 0.005;
  std::string routing = "min_hop";  ///< "min_hop" | "min_energy"
  bool model_link_errors = false;
  /// Opt-in sparse CSR link state (city-scale fleets): only edges within
  /// the radio range are materialized.  Results are bit-identical to the
  /// dense default; effective only with model_link_errors.
  bool sparse_links = false;
  // --- ami engine ---
  double events_per_hour = 12.0;
  double sensor_report_bits = 128.0;
  double context_message_bits = 1024.0;
  std::string technology = "130nm";
  // --- aiot engine (shares report_period_s and packet_bits with net) ---
  double gateway_tx_w = 2.0;   ///< gateway illuminator power
  double tag_loss_db = 15.0;   ///< backscatter reflection loss
};

struct RetrySpec {
  int max_attempts = 4;
  double timeout_s = 0.25;
  double backoff = 2.0;
  double max_backoff_s = 4.0;
};

struct FaultSpec {
  double crash_mttf_s = 0.0;
  double crash_mttr_s = 60.0;
  double reboot_s = 5.0;
  double link_mtbf_s = 0.0;
  double link_mttr_s = 30.0;
  double corruption_rate = 0.0;
  double clock_drift_ppm = 0.0;
  bool sink_immune = true;
  double deadline_s = 30.0;
  RetrySpec retry;
};

struct RunSpec {
  double duration_s = 3600.0;
  std::uint64_t seed = 1;
  int replications = 1;
  /// Worker pool for the replication batch; 0 = hardware threads.  The
  /// result is bit-identical for any value (exec determinism contract).
  int pool = 0;
  /// Region-sharded execution (net engine only): >= 1 runs each
  /// replication on shard::simulate_packets_sharded with that many
  /// regions.  0 keeps the single-kernel engine and is NOT serialized
  /// (canonical JSON is unchanged for specs that never set the key, so
  /// fuzzer goldens hold).  Incompatible with faults and battery-coupled
  /// fleets; the loader rejects those combinations.
  int shards = 0;
};

/// One end-of-run check: `check op value`.  `node` qualifies per-node
/// checks (final_soc); `metric` names the obs counter for check
/// "obs_counter".  Observables are engine-dependent; scen/build.hpp's
/// `assertion_observables()` lists them.
struct AssertionSpec {
  std::string check;
  std::string op = ">=";  ///< ">=", ">", "<=", "<", "==", "!="
  double value = 0.0;
  int node = -1;
  std::string metric;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  std::vector<FleetGroup> fleet;
  TopologySpec topology;
  WorkloadSpec workload;
  std::optional<FaultSpec> faults;
  RunSpec run;
  std::vector<AssertionSpec> assertions;

  /// Engine selected by fleet composition (see file comment).  Valid only
  /// on a loader-validated spec.
  [[nodiscard]] Engine engine() const;
  /// Total sensor count across microWatt groups (net node count excludes
  /// the implicit sink node 0, which the engine always adds).
  [[nodiscard]] int sensor_count() const;
  /// Total tag count across backscatter groups (the aiot engine adds the
  /// gateway as node 0 on top).
  [[nodiscard]] int tag_count() const;
};

/// Canonical serialization: every field written (defaults included), key
/// order fixed, doubles in shortest-round-trip form.  parse -> to_json is
/// a fixpoint: to_json(load(to_json(s))) == to_json(s).
std::string to_json(const ScenarioSpec& spec);

}  // namespace ambisim::scen
