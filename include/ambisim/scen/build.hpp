// Lowering and execution: ScenarioSpec -> engine configs -> RunSummary.
//
// `build_packet_config` / `build_ami_config` translate a validated spec
// into the exact C++ config an example would hand-write — a spec ported
// from an existing example reproduces its numbers bit-for-bit (the build
// tests assert this).  `run_scenario` executes the spec's replication
// batch on exec::ReplicationRunner: replication 0 runs the spec's own
// seed verbatim (so a 1-replication run IS the hand-written example) and
// replication i > 0 draws from derive_seed(run.seed, i), which makes the
// whole summary — including its order-sensitive checksum — bit-identical
// at any pool size.  Assertions are evaluated against the aggregate
// afterwards; "obs_counter" checks read the merged obs metrics registry,
// per-node "final_soc" reads replication 0's battery states.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ambisim/aiot/wpt_sim.hpp"
#include "ambisim/core/scenario.hpp"
#include "ambisim/fault/reliability.hpp"
#include "ambisim/net/packet_sim.hpp"
#include "ambisim/scen/spec.hpp"

namespace ambisim::obs {
class Profiler;
}  // namespace ambisim::obs

namespace ambisim::scen {

/// Spec -> packet-level network config.  Requires engine() == Net;
/// throws std::invalid_argument otherwise.
[[nodiscard]] net::PacketSimConfig build_packet_config(
    const ScenarioSpec& spec);

/// Spec -> ambient-home scenario config.  Requires engine() == Ami.
[[nodiscard]] core::AmiScenarioConfig build_ami_config(
    const ScenarioSpec& spec);

/// Spec -> wireless-power field config (backscatter fleet).  Requires
/// engine() == Aiot.
[[nodiscard]] aiot::WptSimConfig build_wpt_config(const ScenarioSpec& spec);

/// Engine-neutral per-replication summary (unused engine fields stay 0).
/// The aiot engine maps onto the net fields — goodput_fraction carries the
/// coverage fraction, generated/delivered/lost carry report slots offered /
/// bursts sent / slots missed dark, and the latency percentiles are charge
/// latencies — so the digest layout (fold_into) is engine-independent.
struct ReplicationOutcome {
  // net engine
  double delivered_fraction = 0.0;
  double goodput_fraction = 0.0;
  double availability = 1.0;
  double mttf_s = 0.0;
  double mttr_s = 0.0;
  double mean_hops = 0.0;
  long long generated = 0;
  long long delivered = 0;
  long long lost = 0;
  long long delayed = 0;
  double mean_final_soc = -1.0;  ///< -1 when energy coupling is off
  double min_final_soc = -1.0;
  /// Final state of charge per node; -1 marks a batteryless node (the
  /// immune sink).  Empty when energy coupling is off.
  std::vector<double> final_soc;
  // both engines
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  // ami engine
  long long events = 0;
  long long responses = 0;
  double personal_battery_days = 0.0;
  double system_power_w = 0.0;
  double sensor_average_power_w = 0.0;

  void fold_into(fault::Digest& d) const;
};

struct AssertionResult {
  AssertionSpec spec;
  double observed = 0.0;
  bool passed = false;
};

struct RunSummary {
  Engine engine = Engine::Net;
  std::vector<ReplicationOutcome> replications;
  /// Means over replications of the headline observables.
  sim::Accumulator delivered_fraction;
  sim::Accumulator availability;
  sim::Accumulator latency_p95_s;
  sim::Accumulator mean_final_soc;
  /// Order-sensitive digest over every replication outcome: equal
  /// checksums mean bit-identical runs (the pool-determinism tests and the
  /// fuzzer's pool-{1,8} invariant key on this).
  std::uint64_t checksum = 0;
  std::vector<AssertionResult> assertions;
  bool assertions_passed = true;

  /// Observed value an assertion evaluated to (see run_scenario).
  void write_report(std::ostream& os) const;
};

/// Overrides the scenario_runner CLI applies on top of the spec.
struct RunOverrides {
  int replications = 0;  ///< > 0 replaces run.replications
  int pool = -1;         ///< >= 0 replaces run.pool
  int shards = -1;       ///< >= 0 replaces run.shards (net engine only)
  /// Wall-clock profiler attached to replication 0 only — the run that is
  /// the spec verbatim — so profile records never race across pool
  /// workers.  Pure observer: the summary checksum is identical with or
  /// without it.  Ignored under AMBISIM_OBS_DISABLED.
  obs::Profiler* profiler = nullptr;
};

/// Execute the spec end to end and evaluate its assertions.  When any
/// assertion reads obs state ("obs_counter"), the probes are armed and
/// the global context reset for the duration of the call.
[[nodiscard]] RunSummary run_scenario(const ScenarioSpec& spec,
                                      const RunOverrides& overrides = {});

}  // namespace ambisim::scen
