// Uniform-grid spatial index over a set of node positions.
//
// City-scale topologies (10^5-10^6 nodes) cannot afford the O(N^2)
// all-pairs scan that built adjacency lists up to PR 7: at 100k nodes that
// is 5e9 hypot calls per rebuild.  A radio field is geometrically local —
// every link is shorter than the radio range — so neighbor discovery is a
// fixed-radius query, and a uniform grid with cell size ~= the query
// radius answers it by scanning the 3x3 cell neighborhood: O(N) build
// (counting sort into cells), O(neighbors) per query at constant density.
//
// The index is exact, not approximate: candidates from the covering cells
// are filtered with the same `hypot(dx, dy) <= radius` predicate the
// brute-force scan uses, so a query returns the *identical* neighbor set
// (Topology::adjacency stays byte-identical to its pre-grid output, which
// the property tests and bench_city's divergence gate both enforce).
//
// Degenerate inputs stay correct, only slower: an all-coincident cloud
// collapses to a single cell (the scan is then the brute-force loop), and
// a huge extent-to-radius ratio is capped at kMaxCellsPerAxis cells per
// axis so memory stays bounded; queries then cover however many cells the
// disc spans.
#pragma once

#include <cstddef>
#include <vector>

#include "ambisim/net/topology.hpp"

namespace ambisim::net {

class SpatialGrid {
 public:
  /// Cells per axis are capped so the cell directory never dwarfs the
  /// point set, whatever the extent/cell_size ratio.
  static constexpr int kMaxCellsPerAxis = 4096;

  /// Index `points` with cells of roughly `cell_size` meters (clamped so
  /// the directory stays within kMaxCellsPerAxis^2 cells).  The point
  /// vector must outlive the grid; positions are not copied.
  SpatialGrid(const std::vector<Point>& points, double cell_size);

  [[nodiscard]] int size() const { return static_cast<int>(points_->size()); }
  [[nodiscard]] int cells_x() const { return nx_; }
  [[nodiscard]] int cells_y() const { return ny_; }
  [[nodiscard]] int cell_count() const { return nx_ * ny_; }
  /// Row-major cell index of an indexed point, in [0, cell_count()).  The
  /// region partition (ambisim::shard) groups nodes by this value, so every
  /// node of one cell always lands in the same region.
  [[nodiscard]] int cell_of(int point) const;
  /// Directory + bucket memory, for the bytes-per-node accounting.
  [[nodiscard]] std::size_t bytes() const;

  /// Append every point j != `query` with distance(points[query],
  /// points[j]) <= radius to `out` (appended unsorted; callers needing the
  /// brute-force order sort ascending).  `out` is not cleared.
  void neighbors_within(int query, double radius,
                        std::vector<int>& out) const;

  /// Same disc query around an arbitrary position; includes every indexed
  /// point within `radius` (there is no self to exclude).
  void points_within(Point center, double radius,
                     std::vector<int>& out) const;

 private:
  void gather(Point center, double radius, int exclude,
              std::vector<int>& out) const;
  [[nodiscard]] int cell_x(double x) const;
  [[nodiscard]] int cell_y(double y) const;

  const std::vector<Point>* points_;
  double min_x_ = 0.0, min_y_ = 0.0;
  double inv_cell_x_ = 0.0, inv_cell_y_ = 0.0;  ///< 0 when the axis is flat
  int nx_ = 1, ny_ = 1;
  std::vector<int> cell_start_;  ///< CSR offsets over row-major cells
  std::vector<int> cell_items_;  ///< point ids grouped by cell
};

}  // namespace ambisim::net
