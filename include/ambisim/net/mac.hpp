// Medium-access models.
//
// DutyCycledMac captures the dominant energy term of always-available
// low-power networks: periodic short listen windows.  TdmaSchedule builds a
// collision-free slot assignment by greedy coloring of the two-hop
// interference graph — the contention-free access the keynote's
// always-connected device webs need.
#pragma once

#include <vector>

#include "ambisim/radio/transceiver.hpp"

namespace ambisim::net {

namespace u = ambisim::units;

/// Periodic listen/sleep schedule (B-MAC / preamble-sampling flavour).
struct DutyCycledMac {
  u::Time wake_interval;  ///< period between listen windows
  u::Time listen_window;  ///< receiver-on time per period

  [[nodiscard]] double duty() const;
  /// Long-run radio power with no traffic: duty*idle + (1-duty)*sleep.
  [[nodiscard]] u::Power baseline_power(const radio::RadioModel& r) const;
  /// Average cost to *send* one packet: the sender must prepend a preamble
  /// of up to one wake interval so the receiver's window catches it.
  [[nodiscard]] u::Energy tx_packet_energy(const radio::RadioModel& r,
                                           u::Information payload) const;
  /// Receiver-side cost of one packet (payload + half a listen window).
  [[nodiscard]] u::Energy rx_packet_energy(const radio::RadioModel& r,
                                           u::Information payload) const;
  /// Per-hop latency bound: worst-case one wake interval plus airtime.
  [[nodiscard]] u::Time hop_latency(const radio::RadioModel& r,
                                    u::Information payload) const;
};

/// Collision-free TDMA slot assignment.
class TdmaSchedule {
 public:
  /// Greedy coloring of the 2-hop interference graph of `adjacency`.
  static TdmaSchedule build(const std::vector<std::vector<int>>& adjacency);

  [[nodiscard]] int slot_of(int node) const { return slots_.at(node); }
  [[nodiscard]] int frame_slots() const { return frame_slots_; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Verify no node shares a slot with any 1- or 2-hop neighbour.
  [[nodiscard]] bool collision_free(
      const std::vector<std::vector<int>>& adjacency) const;

  /// Channel utilization achievable by each node: 1/frame_slots.
  [[nodiscard]] double per_node_share() const;

 private:
  std::vector<int> slots_;
  int frame_slots_ = 0;
};

}  // namespace ambisim::net
