// Multi-hop routing toward the sink: minimum-hop (BFS) and minimum-energy
// (Dijkstra with a radio-energy link metric  cost = k_elec + k_amp * d^n,
// the classic first-order radio model).  Minimum-energy routing prefers
// several short hops over one long one once the path-loss term dominates.
#pragma once

#include <cstdint>
#include <vector>

#include "ambisim/net/topology.hpp"

namespace ambisim::net {

enum class RoutingPolicy { MinHop, MinEnergy };

struct RoutingTree {
  std::vector<int> next_hop;  ///< next_hop[sink] == sink; -1 if unreachable
  std::vector<double> cost;   ///< accumulated metric to the sink
  std::vector<int> hops;      ///< hop count to the sink; -1 if unreachable

  [[nodiscard]] bool reachable(int node) const {
    return next_hop.at(node) >= 0;
  }
  /// Node sequence from `node` to the sink, inclusive.
  [[nodiscard]] std::vector<int> path_from(int node) const;
  /// Number of descendants routing through each node (its relay load).
  [[nodiscard]] std::vector<int> relay_load() const;
};

/// Link energy metric of the first-order radio model (J per bit).
struct LinkEnergyModel {
  double k_elec = 50e-9;   ///< J/bit electronics (tx+rx)
  double k_amp = 10e-12;   ///< J/bit/m^n amplifier term
  double exponent = 2.0;

  [[nodiscard]] double cost(u::Length d) const;
};

/// BFS minimum-hop tree over links of length <= `range`.
RoutingTree min_hop_routes(const Topology& topo, u::Length range);

/// Dijkstra minimum-energy tree over links of length <= `range`.
RoutingTree min_energy_routes(const Topology& topo, u::Length range,
                              const LinkEnergyModel& model);

/// Rebuild variants that route *around* down nodes: any node with
/// `down[i] != 0` neither relays nor terminates a route (its former subtree
/// re-converges through live neighbours, or becomes unreachable if the
/// crash partitioned it).  An empty mask means every node is up; a down
/// sink makes the whole field unreachable.  The fault injector calls these
/// on every lifecycle transition so traffic is never black-holed through a
/// dead parent.
RoutingTree min_hop_routes(const Topology& topo, u::Length range,
                           const std::vector<std::uint8_t>& down);
RoutingTree min_energy_routes(const Topology& topo, u::Length range,
                              const LinkEnergyModel& model,
                              const std::vector<std::uint8_t>& down);

/// Variants over a precomputed neighbor table (Topology::neighbor_table).
/// The range forms above build one internally and delegate here; callers
/// that reroute repeatedly — the fault injector re-converges on every
/// lifecycle edge — build the table once and filter it through the down
/// mask instead of re-running neighbor discovery per transition.  The
/// min-energy relaxation reads each edge's cached distance rather than
/// recomputing topo.node_distance per relaxation; trees are bit-identical
/// to the range forms (asserted by the routing tests).
RoutingTree min_hop_routes(const Topology& topo, const Adjacency& adj,
                           const std::vector<std::uint8_t>& down = {});
RoutingTree min_energy_routes(const Topology& topo, const Adjacency& adj,
                              const LinkEnergyModel& model,
                              const std::vector<std::uint8_t>& down = {});

/// Energy per bit of covering distance `D` in `k` equal hops:
///   E(k) = k * k_elec + k_amp * k * (D/k)^n.
double multihop_energy(const LinkEnergyModel& model, u::Length total,
                       int hops);

/// Hop count minimizing multihop_energy: the closed-form optimum
/// k* = D * ((n-1) k_amp / k_elec)^{1/n}, clamped to >= 1 and rounded to
/// the better integer neighbour.  Short distances are best crossed in one
/// hop (electronics dominate); long ones in many (path loss dominates).
int optimal_hop_count(const LinkEnergyModel& model, u::Length total);

}  // namespace ambisim::net
