// Sparse CSR link-state table for city-scale topologies.
//
// The dense LinkTable prices every directed (from, to) pair — O(N^2) rows,
// 40 bytes each, whether or not the pair can ever exchange a packet.  At
// 100k nodes that is 400 GB of mostly-unreachable link state.  Radio
// fields are geometrically local: routing only crosses edges within the
// radio range, and the wireless-power uplink only crosses tag<->gateway
// edges.  This table materializes exactly the edge set the caller names
// (a Topology::neighbor_table within max range, or a gateway star) in CSR
// form, struct-of-arrays: one contiguous array per quantity (distance,
// BER, PER, expected ARQ attempts, delivery probability) so the build is
// a sequence of batched passes over flat rows — the evaluation loop the
// compiler can unroll/vectorize, and the layout batch consumers read
// without striding over 40-byte structs.
//
// Bit-identity contract: each quantity is computed by the same function,
// in the same order, on the same double-precision distance the dense path
// uses, so for every edge both tables hold bitwise-equal stats (the
// sparse-vs-dense property tests and bench_city's verification gate
// enforce this).  Sparse is opt-in everywhere; dense stays the default
// and the differential oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ambisim/net/link_table.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/radio/ber.hpp"
#include "ambisim/radio/transceiver.hpp"

namespace ambisim::net {

class SparseLinkTable {
 public:
  SparseLinkTable() = default;

  /// Price exactly the directed edges of `adj` (built over `topo`).  The
  /// cached CSR distances feed the batched BER/PER/ARQ passes directly —
  /// no per-edge hypot, no bounds-checked node lookups.
  SparseLinkTable(const Topology& topo, const Adjacency& adj,
                  const radio::RadioModel& radio, u::Information packet_bits,
                  const radio::ArqModel& arq = radio::ArqModel{},
                  const LinkTableOptions& options = {});

  /// Convenience: materialize every edge within `max_range` via the
  /// spatial grid, then price it.
  SparseLinkTable(const Topology& topo, const radio::RadioModel& radio,
                  u::Information packet_bits, u::Length max_range,
                  const radio::ArqModel& arq = radio::ArqModel{},
                  const LinkTableOptions& options = {});

  /// Gateway star: only hub<->other edges, whatever their length — the
  /// Ambient-IoT uplink shape (every tag talks to node `hub` only).
  /// O(N) rows instead of O(N^2).
  static SparseLinkTable star(const Topology& topo,
                              const radio::RadioModel& radio,
                              u::Information packet_bits,
                              const radio::ArqModel& arq = radio::ArqModel{},
                              const LinkTableOptions& options = {},
                              int hub = 0);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] std::size_t edge_count() const { return to_.size(); }
  /// Heap footprint of the link state, for bytes-per-node accounting.
  [[nodiscard]] std::size_t bytes() const;

  /// Index of directed edge (from, to) in the SoA arrays, or -1 when the
  /// edge was not materialized.  Binary search within the sorted row.
  [[nodiscard]] std::ptrdiff_t find(int from, int to) const;
  /// True when (from, to) was materialized (self-edges never are).
  [[nodiscard]] bool has_edge(int from, int to) const {
    return find(from, to) >= 0;
  }

  /// Assembled stats of a materialized edge.  Self-edges return the same
  /// perfect defaults the dense table keeps; any other absent edge throws
  /// std::out_of_range — sparse callers must never silently read a link
  /// they chose not to materialize.
  [[nodiscard]] LinkStats edge(int from, int to) const;
  [[nodiscard]] double expected_attempts(int from, int to) const {
    return expected_attempts_[checked_index(from, to)];
  }
  [[nodiscard]] double delivery_probability(int from, int to) const {
    return delivery_probability_[checked_index(from, to)];
  }

  /// One CSR row as parallel spans, for batch consumers.
  struct Row {
    const int* to = nullptr;
    const double* distance_m = nullptr;
    const double* ber = nullptr;
    const double* per = nullptr;
    const double* expected_attempts = nullptr;
    const double* delivery_probability = nullptr;
    std::size_t count = 0;
  };
  [[nodiscard]] Row row(int from) const;

 private:
  void build(const radio::RadioModel& radio, u::Information packet_bits,
             const radio::ArqModel& arq, const LinkTableOptions& options);
  [[nodiscard]] std::size_t checked_index(int from, int to) const;

  int n_ = 0;
  std::vector<std::int64_t> offsets_;  ///< n_ + 1 row starts
  // Struct-of-arrays edge state, each parallel to `to_`.
  std::vector<int> to_;
  std::vector<double> distance_m_;
  std::vector<double> ber_;
  std::vector<double> per_;
  std::vector<double> expected_attempts_;
  std::vector<double> delivery_probability_;
};

}  // namespace ambisim::net
