// Packet-level discrete-event simulation of the collection network.
//
// Where network_sim.hpp advances in routing epochs (for multi-year lifetime
// questions), this simulator follows every packet through every hop on the
// event kernel: random preamble alignment per hop, transceiver turnaround,
// and FIFO serialization at busy relays (queueing delay at the hot spots).
// Used to cross-validate the epoch simulator's energy accounting and to
// produce latency *distributions* rather than bounds (ablation A3).
#pragma once

#include <optional>
#include <vector>

#include "ambisim/energy/ledger.hpp"
#include "ambisim/fault/injector.hpp"
#include "ambisim/fault/schedule.hpp"
#include "ambisim/net/link_table.hpp"
#include "ambisim/net/mac.hpp"
#include "ambisim/net/routing.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/radio/ber.hpp"
#include "ambisim/sim/simulator.hpp"
#include "ambisim/sim/statistics.hpp"

namespace ambisim::net {

/// Fault-injection profile for a packet-level run.  When armed the
/// simulator drives every node's lifecycle from the (seed-derived,
/// deterministic) fault schedule — plus per-node battery state when energy
/// coupling is on — retries failed hops under the retry policy's
/// exponential backoff, and re-converges routing around down nodes on
/// every lifecycle transition.
struct PacketFaultConfig {
  /// Fault process parameters.  `node_count` and `horizon_s` are filled in
  /// from the packet-sim config; `seed` is honoured as given.
  fault::FaultScheduleConfig schedule;
  fault::RetryPolicy retry;
  /// Optional energy coupling: per-node batteries with brown-out
  /// hysteresis, so nodes also die (and recover) from energy state.
  std::optional<fault::EnergyCouplingConfig> energy;
  /// Packets delivered later than this after creation count as `delayed`
  /// (still delivered; the goodput fraction excludes them).
  u::Time deadline{30.0};
};

struct PacketSimConfig {
  int node_count = 30;
  u::Length field_side{40.0};
  u::Length radio_range{15.0};
  u::Time report_period{10.0};
  u::Information packet_bits{512.0};
  DutyCycledMac mac{u::Time(0.5), u::Time(0.005)};
  radio::RadioParams radio = radio::ulp_radio();
  RoutingPolicy routing = RoutingPolicy::MinHop;
  u::Time duration{3600.0};
  unsigned seed = 1;
  /// When true, every hop pays the expected stop-and-wait ARQ cost of its
  /// directed edge — airtime, startup, and tx/rx energy scale by the
  /// precomputed expected attempts from the per-topology LinkTable.  The
  /// expected-value model consumes no extra randomness, so runs stay
  /// deterministic; leaving it false reproduces the perfect-link kernel
  /// bit-for-bit.
  bool model_link_errors = false;
  /// ARQ policy evaluated per edge when model_link_errors is set.
  radio::ArqModel arq{};
  /// Opt-in sparse link state: with model_link_errors set, materialize
  /// only the directed edges within the routing range (CSR, struct-of-
  /// arrays) instead of the dense n^2 table.  Routing never crosses a
  /// longer edge, so every hop's stats are present and bitwise equal to
  /// the dense table's — results are bit-identical either way (the sparse
  /// tests assert it); memory drops from O(N^2) to O(edges).  Off by
  /// default: small fleets keep the dense table as the oracle path.
  bool sparse_links = false;
  /// Fault injection; disengaged (std::nullopt) leaves the healthy-network
  /// kernel bit-identical to a build without the fault subsystem.
  std::optional<PacketFaultConfig> faults;
  /// Explicit node placement (sink = node 0).  Disengaged, the simulator
  /// draws a random field from `seed` exactly as before; engaged, the
  /// given topology is used verbatim (scenario specs use this for grid /
  /// star / pinned-seed layouts) and must hold `node_count` nodes.
  std::optional<Topology> placement;
  /// Region-sharded execution (ambisim::shard).  0 = this single-kernel
  /// engine, unchanged.  >= 1 selects the sharded sibling engine with that
  /// many regions — callers that honour the knob (scen, bench) dispatch to
  /// shard::simulate_packets_sharded; simulate_packets itself refuses the
  /// config so a dropped dispatch cannot silently fall back to a kernel
  /// with different (shared-rng) preamble semantics.
  int shards = 0;
};

struct PacketSimResult {
  long long generated = 0;
  long long delivered = 0;
  long long undeliverable = 0;        ///< sources with no route
  sim::Samples end_to_end_latency;    ///< seconds, per delivered packet
  sim::Samples queueing_delay;        ///< seconds waited at busy relays
  double mean_hops = 0.0;
  /// Mean expected ARQ attempts per traversed hop (1.0 exactly when link
  /// errors are not modeled — every edge then costs a single attempt).
  double mean_link_attempts = 1.0;
  energy::EnergyLedger ledger;        ///< radio-tx / radio-rx / listen
  u::Energy energy_per_delivered{0.0};

  // --- fault accounting (all zero / defaulted when faults are off) ---
  long long missed_reports = 0;    ///< source was down at report time
  long long lost_no_route = 0;     ///< no usable route after re-convergence
  long long lost_in_flight = 0;    ///< retries exhausted or relay died
  long long delayed = 0;           ///< delivered past the deadline
  long long retries = 0;           ///< extra hop attempts beyond the first
  long long corrupted_attempts = 0;///< attempts failed by corruption
  long long reroutes = 0;          ///< routing re-convergence passes
  double availability = 1.0;       ///< mean node service availability
  double mttf_s = 0.0;
  double mttr_s = 0.0;
  /// Final state of charge per node when energy coupling is armed; -1.0
  /// marks a batteryless node (the immune sink).  Empty otherwise.
  std::vector<double> final_soc;

  /// Offered reports that never reached the sink, for any fault reason.
  [[nodiscard]] long long lost() const {
    return missed_reports + lost_no_route + lost_in_flight;
  }
  /// Delivered / generated over the *whole* offered load, including
  /// reports a down node failed to produce (the function still asked for
  /// them); the headline reliability figure under faults.
  [[nodiscard]] double delivered_fraction() const {
    return generated > 0 ? static_cast<double>(delivered) / generated : 0.0;
  }
  /// In-deadline delivered fraction: lost *and* late traffic excluded.
  [[nodiscard]] double goodput_fraction() const {
    return generated > 0
               ? static_cast<double>(delivered - delayed) / generated
               : 0.0;
  }

  [[nodiscard]] double delivery_ratio() const {
    return generated > 0 ? static_cast<double>(delivered) / generated : 0.0;
  }
};

PacketSimResult simulate_packets(const PacketSimConfig& cfg);

}  // namespace ambisim::net
