// Node placement and connectivity for networks of ambient devices.
#pragma once

#include <vector>

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::net {

namespace u = ambisim::units;

struct Point {
  double x = 0.0;  ///< meters
  double y = 0.0;
};

u::Length distance(Point a, Point b);

/// A set of node positions.  Node 0 is by convention the sink / gateway.
class Topology {
 public:
  /// `n` nodes uniformly placed in a `side` x `side` field; the sink sits at
  /// the field center.
  static Topology random_field(int n, u::Length side, sim::Rng& rng);
  /// Regular sqrt(n) x sqrt(n) grid with spacing `pitch`; sink at a corner.
  static Topology grid(int n, u::Length pitch);
  /// Star: sink at the origin, `n-1` nodes on a circle of radius `r`.
  static Topology star(int n, u::Length r);

  explicit Topology(std::vector<Point> nodes);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Point& position(int i) const { return nodes_.at(i); }
  [[nodiscard]] const std::vector<Point>& positions() const { return nodes_; }
  [[nodiscard]] int sink() const { return 0; }
  [[nodiscard]] u::Length node_distance(int a, int b) const;

  /// Adjacency lists: i-j connected iff distance <= range (i != j).
  [[nodiscard]] std::vector<std::vector<int>> adjacency(u::Length range) const;

  /// True if every node can reach the sink through links of length <= range.
  [[nodiscard]] bool connected(u::Length range) const;

 private:
  std::vector<Point> nodes_;
};

}  // namespace ambisim::net
