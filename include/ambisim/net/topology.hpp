// Node placement and connectivity for networks of ambient devices.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::net {

namespace u = ambisim::units;

struct Point {
  double x = 0.0;  ///< meters
  double y = 0.0;
};

/// Shared distance kernel (meters).  Every adjacency / link-table path —
/// brute force, spatial grid, CSR build — funnels through this same hypot,
/// so a borderline edge can never be classified differently by two paths.
inline double distance_m(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

u::Length distance(Point a, Point b);

/// CSR adjacency with the edge length cached beside every neighbor.
///
/// Routing relaxes every edge at least once per (re)convergence, and the
/// link metric is a function of distance — recomputing hypot per
/// relaxation was the single hottest line of min_energy_routes.  Storing
/// the distance at build time costs 8 bytes/edge and makes the Dijkstra
/// loop a pure array walk.  Rows are sorted ascending by neighbor id, the
/// exact order Topology::adjacency produces, so algorithms visit edges in
/// the same order whichever form they consume (bit-identical trees).
struct Adjacency {
  std::vector<std::int64_t> offsets;  ///< size() + 1 row starts
  std::vector<int> neighbors;         ///< ascending within each row
  std::vector<double> distance_m;     ///< parallel to `neighbors`

  [[nodiscard]] int size() const {
    return static_cast<int>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  /// Directed edge count (each undirected link appears twice).
  [[nodiscard]] std::size_t edge_count() const { return neighbors.size(); }

  struct Row {
    const int* ids = nullptr;
    const double* dist = nullptr;
    std::size_t count = 0;
  };
  [[nodiscard]] Row row(int i) const {
    const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(i)]);
    const auto hi =
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(i) + 1]);
    return {neighbors.data() + lo, distance_m.data() + lo, hi - lo};
  }
  /// Heap footprint, for the bytes-per-node accounting in bench_city.
  [[nodiscard]] std::size_t bytes() const {
    return offsets.capacity() * sizeof(std::int64_t) +
           neighbors.capacity() * sizeof(int) +
           distance_m.capacity() * sizeof(double);
  }
};

/// A set of node positions.  Node 0 is by convention the sink / gateway.
class Topology {
 public:
  /// `n` nodes uniformly placed in a `side` x `side` field; the sink sits at
  /// the field center.
  static Topology random_field(int n, u::Length side, sim::Rng& rng);
  /// Regular sqrt(n) x sqrt(n) grid with spacing `pitch`; sink at a corner.
  static Topology grid(int n, u::Length pitch);
  /// Star: sink at the origin, `n-1` nodes on a circle of radius `r`.
  static Topology star(int n, u::Length r);

  explicit Topology(std::vector<Point> nodes);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Point& position(int i) const { return nodes_.at(i); }
  [[nodiscard]] const std::vector<Point>& positions() const { return nodes_; }
  [[nodiscard]] int sink() const { return 0; }
  [[nodiscard]] u::Length node_distance(int a, int b) const;

  /// Adjacency lists: i-j connected iff distance <= range (i != j), rows
  /// sorted ascending.  Backed by a uniform-grid spatial index: O(N) build
  /// plus O(neighbors) per node at constant density, byte-identical to
  /// adjacency_bruteforce (the property tests and bench_city gate on it).
  [[nodiscard]] std::vector<std::vector<int>> adjacency(u::Length range) const;

  /// The pre-grid all-pairs scan, kept as the differential oracle for the
  /// spatial index.  O(N^2); do not call on city-scale fields.
  [[nodiscard]] std::vector<std::vector<int>> adjacency_bruteforce(
      u::Length range) const;

  /// CSR adjacency with cached edge distances (see Adjacency).  Same edge
  /// set and row order as adjacency(range).
  [[nodiscard]] Adjacency neighbor_table(u::Length range) const;

  /// True if every node can reach the sink through links of length <= range.
  [[nodiscard]] bool connected(u::Length range) const;
  /// Same question over an adjacency the caller already built (routing and
  /// lifetime studies build one anyway; don't pay for it twice).
  [[nodiscard]] bool connected(const Adjacency& adj) const;

 private:
  /// Unchecked pair distance for internal hot loops; callers validate
  /// indices once up front (the public node_distance keeps the .at()).
  [[nodiscard]] double dist_unchecked(int a, int b) const {
    return distance_m(nodes_[static_cast<std::size_t>(a)],
                      nodes_[static_cast<std::size_t>(b)]);
  }

  std::vector<Point> nodes_;
};

}  // namespace ambisim::net
