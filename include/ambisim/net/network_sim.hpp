// Discrete-event simulation of a multi-hop data-collection network of
// battery/harvester-powered nodes: every node reports periodically toward
// the sink; relays pay reception + retransmission; all nodes pay the MAC's
// baseline listening power.  Produces network-lifetime and hot-spot figures
// (case study 1b of the reproduction).
#pragma once

#include <optional>
#include <vector>

#include "ambisim/energy/battery.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/energy/ledger.hpp"
#include "ambisim/net/mac.hpp"
#include "ambisim/net/routing.hpp"
#include "ambisim/net/topology.hpp"
#include "ambisim/sim/simulator.hpp"
#include "ambisim/sim/statistics.hpp"

namespace ambisim::net {

struct SensorNetworkConfig {
  int node_count = 50;
  u::Length field_side{50.0};
  u::Length radio_range{15.0};
  u::Time report_period{60.0};
  u::Information packet_bits{512.0};
  DutyCycledMac mac{u::Time(1.0), u::Time(0.01)};
  radio::RadioParams radio = radio::ulp_radio();
  energy::Battery::Spec battery = energy::Battery::coin_cell_cr2032();
  u::Power mcu_active{2e-3};        ///< while assembling a report
  u::Power mcu_sleep{1e-6};
  u::Time mcu_active_per_report{5e-3};
  RoutingPolicy routing = RoutingPolicy::MinHop;
  /// In-network aggregation: a relay merges everything it heard in a round
  /// into its own single report (one tx per node per round instead of one
  /// per forwarded packet).
  bool aggregate_at_relays = false;
  /// Optional per-node harvester: when set, batteries recharge continuously
  /// at the harvester's average power.
  std::optional<double> harvest_avg_watt;
  u::Time max_sim_time{0.0};        ///< 0 -> run to 90% node death
  unsigned seed = 1;
  /// Shard the per-epoch relay walk across this many contiguous source
  /// blocks on a worker pool; 0 (and 1) keep the serial walk.  Any value
  /// is bit-identical to serial: relay counts are integral doubles (far
  /// below 2^53), so the per-block partial sums merge exactly whatever the
  /// block boundaries.  This is the epoch simulator's share of the
  /// ambisim::shard work — the event-driven engine sharding lives in
  /// shard/engine.hpp.
  int shards = 0;
};

struct SensorNetworkResult {
  u::Time first_node_death{0.0};
  u::Time half_network_death{0.0};   ///< 0 if never reached
  u::Time simulated{0.0};
  long long packets_generated = 0;
  long long packets_delivered = 0;
  double delivery_ratio = 0.0;
  double mean_hops = 0.0;
  /// Max over nodes of (energy spent / mean energy spent): >1 means hot spot.
  double hotspot_factor = 0.0;
  int unreachable_nodes = 0;
  sim::Samples node_lifetimes;       ///< seconds, one entry per dead node
  std::vector<double> energy_spent;  ///< joules per node
  energy::EnergyLedger ledger;       ///< network-wide component breakdown
};

SensorNetworkResult simulate_sensor_network(const SensorNetworkConfig& cfg);

}  // namespace ambisim::net
