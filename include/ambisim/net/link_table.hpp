// Per-topology cached link quality tables.
//
// Link-level quantities — BER at the edge's distance, packet error rate,
// expected stop-and-wait ARQ attempts and delivery probability — depend
// only on (topology, radio, packet size, ARQ policy), yet deriving them
// through radio::bit_error_rate_at costs an erfc/exp per query.  A packet
// simulation crosses every directed edge thousands of times per simulated
// hour, so LinkTable evaluates the whole chain once per edge at build time
// and the hot path reads a 40-byte row.  Rows are indexed (from, to); the
// AWGN model is symmetric in distance, but the directed API matches how
// routing trees and MAC roles consume the table.
#pragma once

#include <vector>

#include "ambisim/net/topology.hpp"
#include "ambisim/radio/ber.hpp"
#include "ambisim/radio/transceiver.hpp"

namespace ambisim::net {

/// Precomputed quality of one directed link.
struct LinkStats {
  double distance_m = 0.0;
  double ber = 0.0;                   ///< AWGN bit error rate at distance
  double per = 0.0;                   ///< uncoded packet error rate
  double expected_attempts = 1.0;     ///< truncated-geometric ARQ attempts
  double delivery_probability = 1.0;  ///< >= 1 attempt succeeds
};

/// Selects how an edge's BER is priced at build time.
enum class LinkModel : unsigned char {
  /// Conventional active radio: one-way AWGN budget at the edge distance.
  TwoWay,
  /// Monostatic backscatter: the gateway illuminates and listens, so the
  /// edge distance is crossed twice and the tag's reflection loss applies
  /// (radio::backscatter_bit_error_rate_at).  The radio's tx_radiated is
  /// the *gateway* illuminator power, whatever end of the edge transmits.
  MonostaticBackscatter,
};

/// Pricing options beyond the default two-way model.
struct LinkTableOptions {
  LinkModel model = LinkModel::TwoWay;
  double tag_loss_db = 12.0;  ///< backscatter reflection loss (dB)
};

class LinkTable {
 public:
  LinkTable() = default;
  /// Evaluate every directed edge of `topo` for `packet_bits`-sized packets
  /// on `radio` under `arq`.  O(n^2) BER evaluations, paid once per
  /// topology instead of once per hop per packet.
  LinkTable(const Topology& topo, const radio::RadioModel& radio,
            u::Information packet_bits,
            const radio::ArqModel& arq = radio::ArqModel{},
            const LinkTableOptions& options = {});

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] const LinkStats& edge(int from, int to) const {
    return stats_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(to)];
  }

 private:
  int n_ = 0;
  std::vector<LinkStats> stats_;
};

}  // namespace ambisim::net
