// Channel contention in dense device webs: ALOHA and CSMA throughput.
//
// Ambient intelligence puts tens of chattering nodes in one radio cell;
// this module answers how much of the channel they can actually use.
// Analytic forms (Abramson / Kleinrock-Tobagi) are paired with a
// Monte-Carlo simulator over the same assumptions so each validates the
// other (reproduction figure F10).
#pragma once

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::net {

namespace u = ambisim::units;

/// Slotted ALOHA: S = G * e^-G (peak 1/e at G = 1).
double slotted_aloha_throughput(double offered_load);

/// Pure (unslotted) ALOHA: S = G * e^-2G (peak 1/(2e) at G = 0.5).
double pure_aloha_throughput(double offered_load);

/// Non-persistent CSMA with normalized propagation delay `a`
/// (Kleinrock-Tobagi):  S = G e^{-aG} / (G(1 + 2a) + e^{-aG}).
double csma_throughput(double offered_load, double a = 0.01);

/// Offered load maximizing each protocol's throughput (closed form for
/// ALOHA, golden-section search for CSMA).
double optimal_load_slotted_aloha();
double optimal_load_pure_aloha();
double optimal_load_csma(double a = 0.01);

/// Monte-Carlo validation: `nodes` stations each transmit a 1-slot packet
/// per slot with probability p = offered_load / nodes; a slot succeeds iff
/// exactly one station transmits.  Returns measured throughput.
double simulate_slotted_aloha(double offered_load, int nodes, int slots,
                              sim::Rng& rng);

/// Per-node usable report rate in a shared cell: `nodes` stations on a
/// channel of `bit_rate`, packets of `packet_bits`, running slotted ALOHA
/// at its optimal operating point with fair sharing.
u::Frequency max_report_rate_per_node(int nodes, u::BitRate bit_rate,
                                      u::Information packet_bits);

}  // namespace ambisim::net
