// Umbrella header for ambisim::fault — deterministic fault injection and
// reliability analysis:
//
//   * FaultSchedule  — seed-derived, bit-reproducible stream of timed fault
//                      events (crash/reboot, radio outage, clock drift);
//   * FaultInjector  — arms a schedule on a Simulator, drives node
//                      lifecycle (Up/BrownOut/Dead/Rebooting) coupled to
//                      battery/harvester energy state, and keeps the
//                      per-node service timeline;
//   * RetryPolicy    — exponential-backoff retry discipline for faulty hops;
//   * reliability    — availability/MTTF/MTTR digests and the Monte-Carlo
//                      availability study runner on exec::ReplicationRunner.
#pragma once

#include "ambisim/fault/injector.hpp"
#include "ambisim/fault/reliability.hpp"
#include "ambisim/fault/schedule.hpp"
