// Arms a FaultSchedule on a Simulator and drives per-node lifecycle state.
//
// The injector owns the authoritative health picture of every node during a
// run: scripted crashes/reboots and radio outages come from the schedule;
// energy brown-outs come from per-node Battery models (with cutoff/recovery
// hysteresis) fed by the simulation itself via account_energy, so microWatt
// nodes die and recover from *energy*, not just from the script.  Every
// service transition (Up <-> down for any reason) is timestamped into a
// per-node timeline, from which availability, MTTF, and MTTR fall out, and
// is reported to a registered callback — the packet simulator uses that
// hook to re-converge routing around dead nodes.
//
// Determinism: the injector draws no randomness at run time.  Scripted
// events are replayed verbatim; packet corruption is a counter-based hash
// (pure in (seed, from, to, attempt)); energy state advances on fixed-step
// ticks of the deterministic event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ambisim/energy/battery.hpp"
#include "ambisim/fault/schedule.hpp"
#include "ambisim/sim/simulator.hpp"

namespace ambisim::fault {

namespace u = ambisim::units;

/// Node lifecycle.  Dead and Rebooting come from the script, BrownOut from
/// the energy model; a node is in service ("up") only in state Up *and*
/// with its radio link intact.
enum class NodeState : std::uint8_t { Up, BrownOut, Dead, Rebooting };

const char* to_string(NodeState s);

/// Stop-and-wait retry discipline for a faulty hop: exponential backoff
/// from `timeout_s`, capped, for at most `max_attempts` total tries.
struct RetryPolicy {
  int max_attempts = 4;
  double timeout_s = 0.25;
  double backoff = 2.0;
  double max_backoff_s = 4.0;

  /// Delay before attempt `next_attempt` (2 = first retry):
  /// timeout * backoff^(next_attempt - 2), capped at max_backoff_s.
  [[nodiscard]] double backoff_delay(int next_attempt) const;
};

/// Per-node energy model coupled into the lifecycle: a battery with
/// brown-out hysteresis, recharged by a constant-average harvester and
/// drained by a baseline draw plus whatever the simulation charges through
/// account_energy.
struct EnergyCouplingConfig {
  energy::Battery::Spec battery = energy::Battery::coin_cell_cr2032();
  double harvest_avg_watt = 0.0;
  /// Per-node average harvest (watts), indexed by node id.  Empty means
  /// every node harvests `harvest_avg_watt`; non-empty must cover every
  /// node and overrides the uniform figure — this is how a wireless-power
  /// field (distance-dependent rectenna output) reaches the lifecycle.
  std::vector<double> per_node_harvest_watt;
  double baseline_watt = 0.0;
  double initial_soc = 1.0;
  /// Brown-out hysteresis thresholds (state of charge).
  double brownout_cutoff_soc = 0.02;
  double brownout_recovery_soc = 0.05;
  /// Fixed integration step of the energy tick.
  double update_period_s = 1.0;
};

/// Aggregate service-reliability figures over one run.
struct ReliabilityStats {
  double availability = 1.0;  ///< mean over nodes of uptime / horizon
  double mttf_s = 0.0;        ///< total uptime / failures (horizon if none)
  double mttr_s = 0.0;        ///< total downtime / repairs (0 if none)
  std::uint64_t failures = 0;
  std::uint64_t repairs = 0;
  std::vector<double> node_availability;
};

class FaultInjector {
 public:
  using TransitionCallback = std::function<void(
      int node, NodeState prev, NodeState now, double time_s)>;

  explicit FaultInjector(FaultSchedule schedule);

  /// Give every non-immune node a battery + harvester; must precede arm().
  void enable_energy(const EnergyCouplingConfig& cfg);

  /// Called on every change of a node's lifecycle state, after the
  /// injector's own bookkeeping; must precede arm().
  void on_transition(TransitionCallback cb) { callback_ = std::move(cb); }

  /// Schedule the fault script (and the energy tick, if enabled) on `sim`.
  /// `node_count` fixes the health-vector size; call once per run.
  void arm(sim::Simulator& sim, int node_count);

  // --- health queries (valid any time after arm) ---
  [[nodiscard]] NodeState state(int node) const;
  /// Alive: powered and booted (state Up).  An alive node generates
  /// traffic and consumes energy even if its radio is out.
  [[nodiscard]] bool alive(int node) const;
  /// In service: alive with a working radio — can originate, relay, and
  /// receive.  This is the predicate routing and availability accounting
  /// use.
  [[nodiscard]] bool in_service(int node) const;
  [[nodiscard]] bool radio_down(int node) const;
  /// Oscillator multiplier for node-local periods (1.0 + drift ppm * 1e-6).
  [[nodiscard]] double drift_factor(int node) const;
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }

  /// Deterministic per-attempt corruption verdict: a pure hash of
  /// (schedule seed, from, to, attempt) against the configured rate, so
  /// verdicts never consume stream state and replays are exact.
  [[nodiscard]] bool corrupts(int from, int to,
                              std::uint64_t attempt) const;

  /// Charge event energy (a tx or rx) to `node`'s battery; drained at the
  /// next energy tick.  No-op unless energy coupling is enabled.
  void account_energy(int node, u::Energy e);

  /// Battery of `node`, or nullptr when energy coupling is off / immune.
  [[nodiscard]] const energy::Battery* battery(int node) const;

  /// Service-reliability aggregates with every open interval closed at
  /// `horizon_s`.  The sink is excluded when the schedule is sink-immune.
  [[nodiscard]] ReliabilityStats stats(double horizon_s) const;

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  struct Node {
    bool scripted_dead = false;  ///< Dead or Rebooting per the script
    bool rebooting = false;
    bool energy_down = false;    ///< battery brown-out latch
    bool radio_out = false;
    double drift_ppm = 0.0;
    NodeState current = NodeState::Up;
    // Service timeline (in service <-> out of service).
    bool in_service = true;
    double last_change_s = 0.0;
    double uptime_s = 0.0;
    double downtime_s = 0.0;
    std::uint64_t failures = 0;
    std::uint64_t repairs = 0;
  };

  void apply_event(const FaultEvent& ev, double now_s);
  void energy_tick(double now_s, double dt_s);
  /// Recompute node `i`'s effective state; record a timeline edge and fire
  /// the callback if its service status changed.
  void refresh(int i, double now_s);
  [[nodiscard]] NodeState effective_state(const Node& n) const;
  [[nodiscard]] bool immune(int node) const;

  FaultSchedule schedule_;
  TransitionCallback callback_;
  std::vector<Node> nodes_;
  std::optional<EnergyCouplingConfig> energy_cfg_;
  std::vector<energy::Battery> batteries_;   ///< empty unless energy coupled
  std::vector<double> pending_event_joule_;  ///< drained at each tick
  sim::Simulator* sim_ = nullptr;
  bool armed_ = false;
};

}  // namespace ambisim::fault
