// Monte-Carlo availability studies and reliability digests.
//
// A reliability question ("what delivered fraction survives one crash per
// node-hour?") is answered by replicating a faulty simulation across
// independent seed substreams and aggregating.  run_availability_study fans
// the replications over exec::ReplicationRunner, so replication `i` draws
// its fault schedule and workload from derive_seed(root_seed, i) and the
// study result — including its order-sensitive checksum — is bit-identical
// for any worker-pool size.  The experiment body is a callable, which keeps
// this header free of any dependency on the network simulator (net sits
// *above* fault in the layering).
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "ambisim/exec/runner.hpp"
#include "ambisim/sim/statistics.hpp"

namespace ambisim::fault {

/// Order-sensitive digest accumulator (SplitMix64 finalizer chain) used for
/// schedule and study bit-identity checks.
class Digest {
 public:
  void fold(std::uint64_t v) {
    h_ = exec::splitmix64(h_ ^ (v + exec::kSplitMix64Gamma));
  }
  void fold(double v) { fold(std::bit_cast<std::uint64_t>(v)); }
  void fold(long long v) { fold(static_cast<std::uint64_t>(v)); }
  void fold(int v) { fold(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0;
};

/// One replication's outcome, as the study aggregates it.
struct ReliabilitySample {
  double delivered_fraction = 0.0;  ///< delivered / generated
  double goodput_fraction = 0.0;    ///< in-deadline delivered / generated
  double availability = 1.0;
  double mttf_s = 0.0;
  double mttr_s = 0.0;
  long long generated = 0;
  long long delivered = 0;
  long long lost = 0;
  long long delayed = 0;
  long long retries = 0;

  void fold_into(Digest& d) const {
    d.fold(delivered_fraction);
    d.fold(goodput_fraction);
    d.fold(availability);
    d.fold(mttf_s);
    d.fold(mttr_s);
    d.fold(generated);
    d.fold(delivered);
    d.fold(lost);
    d.fold(delayed);
    d.fold(retries);
  }
};

struct AvailabilityStudyResult {
  std::vector<ReliabilitySample> replications;
  sim::Accumulator delivered_fraction;
  sim::Accumulator goodput_fraction;
  sim::Accumulator availability;
  sim::Accumulator mttf_s;
  sim::Accumulator mttr_s;
  /// Folded over every replication in index order: equal checksums mean
  /// bit-identical studies (the pool-size determinism tests assert this).
  std::uint64_t checksum = 0;
};

/// Run `fn(rng, index) -> ReliabilitySample` for every replication on a
/// deterministic worker pool and aggregate.  Replication `i` always sees
/// the rng substream derive_seed(root_seed, i) regardless of pool size.
template <typename Fn>
AvailabilityStudyResult run_availability_study(std::size_t replications,
                                               std::uint64_t root_seed,
                                               Fn&& fn,
                                               exec::ExecConfig exec_cfg = {}) {
  exec::ReplicationRunner runner(exec_cfg);
  AvailabilityStudyResult out;
  out.replications =
      runner.run(replications, root_seed, std::forward<Fn>(fn));
  Digest digest;
  for (const ReliabilitySample& s : out.replications) {
    out.delivered_fraction.add(s.delivered_fraction);
    out.goodput_fraction.add(s.goodput_fraction);
    out.availability.add(s.availability);
    out.mttf_s.add(s.mttf_s);
    out.mttr_s.add(s.mttr_s);
    s.fold_into(digest);
  }
  out.checksum = digest.value();
  return out;
}

}  // namespace ambisim::fault
