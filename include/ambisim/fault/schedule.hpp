// Deterministic fault schedules for reliability studies.
//
// A network of coin-cell and harvester-powered ambient nodes is defined by
// failure: nodes crash and reboot, radio links fade in and out, packets
// corrupt in flight, clocks drift.  A FaultSchedule is the scripted half of
// that story — a seed-derived stream of timed fault events generated as a
// *pure function* of (config, seed): node `i`'s crash and link processes
// each draw from their own SplitMix64-derived substream
// (exec::derive_seed, the same discipline as the parallel runners), so the
// schedule is bit-reproducible for any thread count, generation order, or
// host.  The un-scripted half — energy brown-out — lives in the
// FaultInjector, coupled to energy::Battery hysteresis.
#pragma once

#include <cstdint>
#include <vector>

namespace ambisim::fault {

enum class FaultKind : std::uint8_t {
  NodeCrash,    ///< node powers off (enters Dead); magnitude = outage seconds
  NodeReboot,   ///< node begins its boot sequence (enters Rebooting)
  NodeRecover,  ///< node is back in service (enters Up)
  LinkDown,     ///< node's radio is out (deep fade / antenna detune);
                ///< magnitude = outage seconds
  LinkUp,       ///< node's radio recovers
  ClockDrift,   ///< node's oscillator error; magnitude = signed ppm
};

struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::NodeCrash;
  int node = -1;
  double magnitude = 0.0;
};

struct FaultScheduleConfig {
  std::uint64_t seed = 1;
  double horizon_s = 3600.0;  ///< generate events in [0, horizon)
  int node_count = 0;
  /// Mean time to failure per node (exponential inter-crash gaps); 0
  /// disables crashes.
  double crash_mttf_s = 0.0;
  /// Mean outage per crash (exponential), floored at `reboot_s`.
  double crash_mttr_s = 60.0;
  /// Boot-sequence tail of every outage: the node is Rebooting (still out
  /// of service) for this long before NodeRecover.
  double reboot_s = 5.0;
  /// Mean time between radio-link outages per node; 0 disables them.
  double link_mtbf_s = 0.0;
  /// Mean radio outage duration (exponential).
  double link_mttr_s = 30.0;
  /// Per-attempt probability that a hop's packet arrives corrupted.
  /// Consumed by FaultInjector::corrupts via a counter-based hash, never
  /// from a shared stream.
  double corruption_rate = 0.0;
  /// Max |oscillator error|; each node gets a uniform draw in [-ppm, +ppm]
  /// emitted as a ClockDrift event at t = 0.
  double clock_drift_ppm = 0.0;
  /// Never fault node 0 (the sink/gateway is mains powered and maintained).
  bool sink_immune = true;
};

/// An immutable, time-sorted stream of fault events.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Generate the schedule for `cfg`.  Pure: same config -> same events,
  /// independent of thread count or call site.
  static FaultSchedule generate(const FaultScheduleConfig& cfg);

  [[nodiscard]] const FaultScheduleConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Order-sensitive digest over every event's raw bits; two schedules are
  /// equal iff their checksums match (determinism tests key on this).
  [[nodiscard]] std::uint64_t checksum() const;

 private:
  FaultScheduleConfig cfg_;
  std::vector<FaultEvent> events_;
};

}  // namespace ambisim::fault
