// Bit/packet error rates and retransmission energetics.
//
// The keynote's always-available device web lives on unreliable wireless
// links: this module closes the loop from SNR to *delivered* information —
// BER per modulation (AWGN), packet error rate, expected transmissions
// under ARQ, and the energy per successfully delivered bit, whose cliff at
// the edge of range sets the real usable radius of a node.
#pragma once

#include "ambisim/radio/link.hpp"
#include "ambisim/radio/transceiver.hpp"

namespace ambisim::radio {

/// Gaussian tail function Q(x) = P(N(0,1) > x).
double q_function(double x);

/// AWGN bit error rate of modulation `m` at the given Eb/N0 (linear, not
/// dB).  Coherent PSK/QAM use Q-function expressions; FSK/OOK use the
/// noncoherent forms.
double bit_error_rate(const Modulation& m, double ebn0_linear);

/// BER at distance `d` under a link budget (converts SNR -> Eb/N0 using the
/// modulation's spectral efficiency at symbol rate == bandwidth).
double bit_error_rate_at(const LinkBudget& budget, const Modulation& m,
                         u::Length d);

/// BER of a *monostatic backscatter* link at tag distance `d`.  The reader
/// illuminates the tag and listens to its own reflected carrier, so the
/// signal crosses the channel twice — loss_db(d) is paid out and back —
/// and the tag's modulator reflects only part of the incident wave
/// (`tag_loss_db`: conversion + mismatch loss, ~10-15 dB for a passive
/// tag).  `budget.tx_radiated` is the reader/gateway illuminator power;
/// the SNR -> Eb/N0 conversion matches bit_error_rate_at.
double backscatter_bit_error_rate_at(const LinkBudget& budget,
                                     const Modulation& m, u::Length d,
                                     double tag_loss_db = 12.0);

/// Packet error rate for an uncoded packet of `bits`: 1 - (1-BER)^bits.
double packet_error_rate(double ber, double bits);

/// Stop-and-wait ARQ over a lossy link.
struct ArqModel {
  int max_attempts = 8;       ///< original + retries
  u::Information ack_bits{64.0};

  /// Probability that at least one of max_attempts succeeds.
  [[nodiscard]] double delivery_probability(double per) const;
  /// Expected transmissions until success (counting the failures of lost
  /// packets), truncated at max_attempts.
  [[nodiscard]] double expected_attempts(double per) const;
  /// Expected radio energy (sender tx + receiver rx + ACK both ways) per
  /// *delivered* packet; diverges as PER -> 1 (returns energy of
  /// max_attempts / delivery probability).
  [[nodiscard]] u::Energy energy_per_delivered(const RadioModel& radio,
                                               u::Information payload,
                                               double per) const;
};

/// Energy per *delivered* bit at distance `d`, combining the transceiver
/// energy model, the link's PER and ARQ.
u::EnergyPerBit energy_per_delivered_bit(const RadioModel& radio,
                                         u::Length d,
                                         u::Information payload,
                                         const ArqModel& arq = ArqModel{});

/// Radiated power (swept over [p_min, p_max], `steps` points) minimizing
/// the energy per delivered bit at distance `d`.  Returns the best radiated
/// power; too little power wastes retries, too much wastes PA energy.
u::Power optimal_radiated_power(const RadioParams& params, u::Length d,
                                u::Information payload,
                                u::Power p_min = u::Power(1e-6),
                                u::Power p_max = u::Power(0.2),
                                int steps = 60);

}  // namespace ambisim::radio
