// RF link budget: path loss, noise floor, SNR, modulation requirements and
// Shannon capacity.  Determines whether a transmission at a given radiated
// power closes over a given distance — the communication half of the
// keynote's power-information trade-off.
#pragma once

#include <string>

#include "ambisim/sim/units.hpp"

namespace ambisim::radio {

namespace u = ambisim::units;

/// dBm <-> watt conversions.
double watt_to_dbm(u::Power p);
u::Power dbm_to_watt(double dbm);

/// Log-distance path-loss model: PL(d) = PL(d0) + 10*n*log10(d/d0).
struct PathLossModel {
  double exponent = 2.0;          ///< n: 2 free space, 3-4 indoor
  u::Length ref_distance{1.0};    ///< d0
  double loss_at_ref_db = 40.0;   ///< PL(d0) (40 dB ~ 2.4 GHz at 1 m)

  static PathLossModel free_space();
  static PathLossModel indoor();
  static PathLossModel dense_indoor();

  [[nodiscard]] double loss_db(u::Length distance) const;
};

/// Thermal noise floor: -174 dBm/Hz + 10 log10(B) + NF.
double noise_floor_dbm(u::Frequency bandwidth, double noise_figure_db = 10.0);

struct Modulation {
  std::string name;
  double bits_per_symbol;
  double required_ebn0_db;  ///< for ~1e-3 BER

  static Modulation ook();
  static Modulation fsk();
  static Modulation bpsk();
  static Modulation qpsk();
  static Modulation qam16();
  static Modulation qam64();
  /// Backscatter OOK: the tag modulates its antenna reflection instead of
  /// radiating.  Detection is noncoherent envelope detection like plain
  /// OOK, but the illuminator round trip leaves far less signal, so the
  /// working Eb/N0 requirement is set for the same 1e-3 BER with margin
  /// for the reflection's residual carrier.  Links built on this entry
  /// must be priced with backscatter_bit_error_rate_at (monostatic
  /// round-trip budget), not the one-way bit_error_rate_at.
  static Modulation backscatter();
};

struct LinkBudget {
  u::Power tx_radiated;
  PathLossModel path_loss;
  u::Frequency bandwidth;
  double noise_figure_db = 10.0;

  [[nodiscard]] double received_dbm(u::Length distance) const;
  [[nodiscard]] double snr_db(u::Length distance) const;
  /// SNR needed to receive `m` at symbol rate == bandwidth.
  [[nodiscard]] static double required_snr_db(const Modulation& m);
  [[nodiscard]] bool closes(u::Length distance, const Modulation& m) const;
  /// Largest distance at which the link closes with modulation `m`.
  [[nodiscard]] u::Length max_range(const Modulation& m) const;
  /// Shannon-limit capacity at `distance`.
  [[nodiscard]] u::BitRate shannon_capacity(u::Length distance) const;
  /// Achievable rate with modulation `m` (0 if the link does not close).
  [[nodiscard]] u::BitRate achievable_rate(u::Length distance,
                                           const Modulation& m) const;
};

}  // namespace ambisim::radio
