// Transceiver energy model.
//
// First-order radio: transmitting k bits over distance d costs
//   E_tx = (P_elec_tx + P_radiated/eta_PA) * k / R        (+ startup)
//   E_rx = P_elec_rx * k / R                              (+ startup)
// For short links the electronics dominate (energy/bit is flat in d); the
// radiated term only matters at range — the reason the keynote's microWatt
// nodes communicate over meters, not tens of meters.
#pragma once

#include <string>

#include "ambisim/radio/link.hpp"

namespace ambisim::radio {

enum class RadioState { Sleep, Idle, Rx, Tx };

std::string to_string(RadioState s);

struct RadioParams {
  std::string name;
  u::BitRate bit_rate;
  Modulation modulation;
  u::Frequency bandwidth;
  u::Power tx_electronics;  ///< mixers/synthesizer/baseband while transmitting
  u::Power rx_power;        ///< total receive-chain power
  u::Power idle_power;      ///< listening, carrier sensing
  u::Power sleep_power;     ///< crystal + wake logic
  double pa_efficiency;     ///< radiated / PA-drawn
  u::Power tx_radiated;     ///< default radiated power
  u::Time startup;          ///< sleep -> active turnaround
  PathLossModel environment;
};

/// Presets spanning the three device classes.
RadioParams ulp_radio();        ///< microWatt node: 100 kbps, -6 dBm, meters
RadioParams bluetooth_like();   ///< milliWatt node: 1 Mbps, 0 dBm
RadioParams wlan_80211b();      ///< Watt/static node: 11 Mbps, +20 dBm
RadioParams wlan_80211a();      ///< Watt-node backhaul: 54 Mbps OFDM
/// Battery-free backscatter tag: no PA — the tag modulates its antenna
/// reflection, so `tx_radiated` stands for the *gateway illuminator*
/// power (override it per scenario) and pa_efficiency is 1.  Links built
/// on this preset must be priced monostatically
/// (radio::backscatter_bit_error_rate_at / net::LinkModel).
RadioParams backscatter_tag();  ///< sub-microWatt tag: 64 kbps reflected OOK

class RadioModel {
 public:
  explicit RadioModel(RadioParams params);

  [[nodiscard]] const RadioParams& params() const { return params_; }

  /// Total supply power while transmitting at the default radiated power.
  [[nodiscard]] u::Power tx_power() const;
  [[nodiscard]] u::Power rx_power() const { return params_.rx_power; }
  [[nodiscard]] u::Power idle_power() const { return params_.idle_power; }
  [[nodiscard]] u::Power sleep_power() const { return params_.sleep_power; }
  [[nodiscard]] u::Power power(RadioState s) const;

  [[nodiscard]] u::Time time_on_air(u::Information payload) const;
  [[nodiscard]] u::Energy tx_energy(u::Information payload) const;
  [[nodiscard]] u::Energy rx_energy(u::Information payload) const;
  [[nodiscard]] u::Energy startup_energy() const;

  [[nodiscard]] u::EnergyPerBit energy_per_bit_tx() const;
  [[nodiscard]] u::EnergyPerBit energy_per_bit_rx() const;

  /// Link budget at the default radiated power in the preset environment.
  [[nodiscard]] LinkBudget link_budget() const;
  /// Maximum range with the preset modulation.
  [[nodiscard]] u::Length max_range() const;
  [[nodiscard]] bool reaches(u::Length distance) const;

 private:
  RadioParams params_;
};

}  // namespace ambisim::radio
