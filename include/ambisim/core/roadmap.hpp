// The AmI feasibility roadmap: in which process generation does a function
// (speech front-end, audio decode, video...) first fit each device class?
//
// A function fits a class when the class's canonical compute fabric has the
// capacity for it, its radio can carry the stream, and the resulting
// average power stays inside the class's band.  Technology scaling moves
// functions downward through the classes over the years — the keynote's
// core promise made checkable (reproduction table T3).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ambisim/core/device_class.hpp"
#include "ambisim/tech/technology.hpp"
#include "ambisim/workload/streams.hpp"

namespace ambisim::core {

struct FeasibilityVerdict {
  bool feasible = false;
  bool compute_ok = false;  ///< fabric capacity covers the op rate
  bool radio_ok = false;    ///< class radio carries the stream
  bool power_ok = false;    ///< total power inside the class band
  u::Power power{0.0};      ///< compute + radio average power
  double compute_utilization = 0.0;
};

/// Can `wl` run on the canonical fabric of device class `cls` (MCU at
/// vdd_min / DSP at mid-rail / VLIW at nominal, with the matching ULP /
/// Bluetooth-class / WLAN radio) in technology `node`?
FeasibilityVerdict function_feasibility(const workload::StreamingWorkload& wl,
                                        DeviceClass cls,
                                        const tech::TechnologyNode& node);

struct RoadmapEntry {
  std::string function;
  DeviceClass cls;
  std::optional<int> first_year;      ///< empty if never feasible on the roadmap
  std::string first_node;             ///< "" if never
};

/// For every (function, class) pair, the first roadmap generation where the
/// function fits the class.
std::vector<RoadmapEntry> feasibility_roadmap(
    std::span<const workload::StreamingWorkload> functions,
    const tech::TechnologyLibrary& lib = tech::TechnologyLibrary::standard());

}  // namespace ambisim::core
