// The keynote's device taxonomy.
//
// "Based on the differences in power consumption, three types of devices are
//  introduced: the autonomous or microWatt-node, the personal or
//  milliWatt-node and the static or Watt-node."  (Aarts & Roovers, DATE'03)
//
// Classification is by average power drawn; the class determines the viable
// energy source and hence the entire IC design regime.
#pragma once

#include <string>

#include "ambisim/sim/units.hpp"

namespace ambisim::core {

namespace u = ambisim::units;

enum class DeviceClass {
  MicroWatt,  ///< autonomous node: harvesting / decade-life primary cell
  MilliWatt,  ///< personal node: rechargeable battery, days between charges
  Watt,       ///< static node: mains powered
};

std::string to_string(DeviceClass c);

/// Class membership by average power: [0, 1 mW) -> MicroWatt,
/// [1 mW, 1 W) -> MilliWatt, [1 W, inf) -> Watt.
DeviceClass classify_power(u::Power average);

/// Boundary powers.
inline constexpr double kMicroMilliBoundaryWatt = 1e-3;
inline constexpr double kMilliWattBoundaryWatt = 1.0;

struct DeviceClassProfile {
  DeviceClass cls;
  std::string label;           ///< "autonomous", "personal", "static"
  u::Power budget_low;         ///< lower edge of the class band
  u::Power budget_high;        ///< upper edge
  std::string energy_source;   ///< typical supply
  std::string example_device;  ///< canonical 2003 example
  u::Time expected_autonomy;   ///< unattended operation target
};

/// Canonical characteristics per class (rows of reproduction table T1).
DeviceClassProfile class_profile(DeviceClass c);

}  // namespace ambisim::core
