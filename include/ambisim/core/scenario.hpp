// End-to-end ambient-intelligence scenario: "ambient intelligent functions
// are realized by a network of these devices".
//
// Discrete-event simulation of a home: microWatt sensor nodes detect events
// and report over the low-power network to the milliWatt personal device,
// which preprocesses and forwards context to the Watt-class home server;
// the server runs recognition and streams content back for rendering.
// Produces reproduction figure F8: end-to-end latency distribution, daily
// energy per device class, and the scenario feasibility verdict.
#pragma once

#include <vector>

#include "ambisim/core/device_node.hpp"
#include "ambisim/energy/ledger.hpp"
#include "ambisim/net/mac.hpp"
#include "ambisim/sim/simulator.hpp"
#include "ambisim/sim/statistics.hpp"

namespace ambisim::core {

struct AmiScenarioConfig {
  int sensor_count = 8;
  double events_per_hour = 12.0;     ///< Poisson context events
  u::Time duration{86400.0};         ///< one day
  u::Information sensor_report{128.0};
  u::Information context_message{1024.0};
  double personal_ops_per_event = 3e5;   ///< feature extraction
  double server_ops_per_event = 2e8;     ///< recognition + decision
  u::Time response_stream_length{5.0};   ///< seconds of audio streamed back
  u::BitRate response_stream_rate{128e3};
  net::DutyCycledMac sensor_mac{u::Time(1.0), u::Time(0.01)};
  tech::TechnologyNode technology =
      tech::TechnologyLibrary::standard().node("130nm");
  unsigned seed = 7;
};

struct AmiScenarioResult {
  long long events = 0;
  long long responses_rendered = 0;
  sim::Samples end_to_end_latency;   ///< seconds, event -> render start
  energy::EnergyLedger class_energy; ///< day energy per device class
  energy::EnergyLedger stage_energy; ///< day energy per pipeline stage
  double sensor_average_power = 0.0;  ///< watts per sensor node
  bool sensors_energy_neutral = false;
  double personal_battery_days = 0.0;
  u::Power system_power{0.0};         ///< whole-scenario average power
};

AmiScenarioResult run_ami_scenario(const AmiScenarioConfig& cfg);

}  // namespace ambisim::core
