// A complete ambient device: "computing, communication and interface
// electronics" plus an energy source, composed from the substrate models.
// The node's average power decides its device class; its energy source
// decides whether that power is sustainable (battery life / energy
// neutrality) — the feasibility question each keynote case study asks.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ambisim/arch/processor.hpp"
#include "ambisim/core/device_class.hpp"
#include "ambisim/core/power_info.hpp"
#include "ambisim/energy/battery.hpp"
#include "ambisim/energy/harvester.hpp"
#include "ambisim/energy/ledger.hpp"
#include "ambisim/radio/transceiver.hpp"

namespace ambisim::core {

enum class SupplyKind { Mains, Battery, Harvested };

std::string to_string(SupplyKind k);

struct ComputeConfig {
  arch::ProcessorModel model;
  double utilization = 0.0;   ///< time-average fraction of peak
  double duty = 1.0;          ///< fraction of time powered (else power-gated)
};

struct RadioConfig {
  radio::RadioModel model;
  double tx_duty = 0.0;
  double rx_duty = 0.0;
  double idle_duty = 0.0;     ///< listening; remainder of time is sleep
};

struct InterfaceConfig {
  std::string name;
  u::Power active_power{0.0};
  double duty = 1.0;
  u::Power standby_power{0.0};
  u::BitRate info_rate{0.0};  ///< information produced/consumed while active
};

struct SupplyConfig {
  SupplyKind kind = SupplyKind::Mains;
  std::optional<energy::Battery::Spec> battery;       ///< Battery/Harvested
  std::shared_ptr<const energy::Harvester> harvester; ///< Harvested only
};

class DeviceNode {
 public:
  explicit DeviceNode(std::string name);

  DeviceNode& set_compute(ComputeConfig c);
  DeviceNode& set_radio(RadioConfig r);
  DeviceNode& add_interface(InterfaceConfig i);
  DeviceNode& set_supply(SupplyConfig s);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::optional<ComputeConfig>& compute() const {
    return compute_;
  }
  [[nodiscard]] const std::optional<RadioConfig>& radio() const {
    return radio_;
  }
  [[nodiscard]] const std::vector<InterfaceConfig>& interfaces() const {
    return interfaces_;
  }
  [[nodiscard]] const SupplyConfig& supply() const { return supply_; }

  /// Time-average power of the whole node.
  [[nodiscard]] u::Power average_power() const;
  /// Average-power breakdown by component (watts expressed as J per second).
  [[nodiscard]] std::vector<std::pair<std::string, u::Power>>
  power_breakdown() const;

  /// Information rate handled by the node: communication + interface streams
  /// plus the computation's effective processing rate.
  [[nodiscard]] u::BitRate information_rate() const;

  [[nodiscard]] DeviceClass device_class() const;

  /// Unattended lifetime.  Mains -> "infinite" (1e18 s sentinel); battery ->
  /// battery life at average power; harvested -> infinite if neutral, else
  /// time until the buffer battery is exhausted by the deficit.
  [[nodiscard]] u::Time autonomy() const;
  [[nodiscard]] bool energy_neutral() const;

  [[nodiscard]] PowerInfoPoint to_point() const;

 private:
  std::string name_;
  std::optional<ComputeConfig> compute_;
  std::optional<RadioConfig> radio_;
  std::vector<InterfaceConfig> interfaces_;
  SupplyConfig supply_;
};

/// The three case-study devices, built in the given technology generation.
DeviceNode autonomous_sensor_node(const tech::TechnologyNode& node);
DeviceNode personal_audio_node(const tech::TechnologyNode& node);
DeviceNode home_media_server(const tech::TechnologyNode& node);

}  // namespace ambisim::core
