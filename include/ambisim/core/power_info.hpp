// The power-information graph: the keynote's central analysis instrument.
//
// Every technology (a processor at an operating point, a radio standard, an
// A/D converter, a display) is mapped to a point (information rate, power).
// On the log-log plane, lines of constant energy-per-bit are the diagonals;
// device classes are horizontal bands; technology scaling moves points
// toward the lower-right.
#pragma once

#include <string>
#include <vector>

#include "ambisim/core/device_class.hpp"
#include "ambisim/sim/statistics.hpp"
#include "ambisim/sim/table.hpp"
#include "ambisim/tech/technology.hpp"

namespace ambisim::core {

enum class TechnologyKind { Compute, Communication, Interface, Storage };

std::string to_string(TechnologyKind k);

struct PowerInfoPoint {
  std::string name;     ///< e.g. "risc32@130nm", "wlan-11M"
  TechnologyKind kind;
  std::string process;  ///< technology node or standard generation
  u::Power power;
  u::BitRate info_rate;

  [[nodiscard]] DeviceClass device_class() const;
  [[nodiscard]] u::EnergyPerBit energy_per_bit() const;
};

class PowerInfoGraph {
 public:
  PowerInfoGraph() = default;

  void add(PowerInfoPoint p);

  [[nodiscard]] const std::vector<PowerInfoPoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::vector<PowerInfoPoint> in_class(DeviceClass c) const;
  [[nodiscard]] std::vector<PowerInfoPoint> of_kind(TechnologyKind k) const;

  struct ClusterStats {
    DeviceClass cls;
    int count = 0;
    double mean_log10_power = 0.0;   ///< mean of log10(P/W)
    double mean_log10_rate = 0.0;    ///< mean of log10(R / (bit/s))
    u::EnergyPerBit min_epb{0.0};
    u::EnergyPerBit max_epb{0.0};
  };
  /// Log-domain centroid and energy-per-bit span of one device-class band.
  [[nodiscard]] ClusterStats cluster(DeviceClass c) const;

  /// Log-log regression of power on information rate across all points;
  /// slope ~1 means power is roughly proportional to information rate.
  [[nodiscard]] sim::LinearFit loglog_fit() const;

  /// Rows: name, kind, process, power, rate, J/bit, class.
  [[nodiscard]] sim::Table to_table(const std::string& title) const;

  /// The ~two dozen reference technologies of the reproduction: compute
  /// cores across process generations, radio standards, converters,
  /// displays and memories.
  static PowerInfoGraph standard_catalogue(
      const tech::TechnologyLibrary& lib = tech::TechnologyLibrary::standard());

 private:
  std::vector<PowerInfoPoint> points_;
};

}  // namespace ambisim::core
