// On-chip communication energy: shared bus and a simple mesh NoC hop model.
// Wire energy is C_wire * length * V^2 per toggled bit with ~0.2 pF/mm of
// routed wire — global interconnect is why the keynote's Watt-node SoCs
// spend a growing share of power moving data rather than computing on it.
#pragma once

#include "ambisim/tech/technology.hpp"

namespace ambisim::arch {

namespace u = ambisim::units;

class OnChipBus {
 public:
  /// Bus of `width_bits` lines, `length_mm` long, clocked at `clock` in
  /// technology `node` at supply `v`.
  OnChipBus(const tech::TechnologyNode& node, u::Voltage v, double length_mm,
            double width_bits, u::Frequency clock);

  /// Energy to move `bits` across the bus (0.5 average toggle probability).
  [[nodiscard]] u::Energy transfer_energy(double bits) const;
  /// Peak bandwidth.
  [[nodiscard]] u::BitRate bandwidth() const;
  /// Time to move `bits` at peak bandwidth.
  [[nodiscard]] u::Time transfer_time(double bits) const;
  /// Power while sustaining a payload rate `rate` (must be <= bandwidth()).
  [[nodiscard]] u::Power power_at_rate(u::BitRate rate) const;

  static constexpr double kWireCapPerMm = 0.2e-12;  // farad per mm per line

 private:
  u::Voltage voltage_;
  double length_mm_;
  double width_bits_;
  u::Frequency clock_;
};

class NocLink {
 public:
  /// One mesh hop: router (gate switching) + link wire segment.
  NocLink(const tech::TechnologyNode& node, u::Voltage v, double hop_mm,
          double flit_bits, u::Frequency clock);

  /// Energy to move one flit across one hop (router + wire).
  [[nodiscard]] u::Energy flit_energy() const;
  /// Energy to move `bits` across `hops` hops.
  [[nodiscard]] u::Energy transfer_energy(double bits, int hops) const;
  [[nodiscard]] u::BitRate link_bandwidth() const;

  static constexpr double kRouterGatesPerFlitBit = 12.0;

 private:
  tech::TechnologyNode node_;
  u::Voltage voltage_;
  double hop_mm_;
  double flit_bits_;
  u::Frequency clock_;
};

}  // namespace ambisim::arch
