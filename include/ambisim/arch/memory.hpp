// Analytic cache/memory-hierarchy model.
//
// Hit rates follow the power-law (square-root) rule of thumb: a level of
// capacity C servicing a working set W hits with probability
// min(1, (C/W)^theta).  Each access's energy is the sum of the SRAM levels
// it touches plus, on a full miss, the off-chip pad + DRAM energy.  This is
// the dominant power term of the Watt-node media-SoC case study.
#pragma once

#include <string>
#include <vector>

#include "ambisim/tech/memory_energy.hpp"
#include "ambisim/tech/technology.hpp"

namespace ambisim::arch {

namespace u = ambisim::units;

struct CacheLevelSpec {
  std::string name;       ///< e.g. "L1"
  double capacity_bits;   ///< array size
  double word_bits = 32;  ///< access width
  u::Time latency;        ///< per-access latency
};

struct AccessProfile {
  double accesses;          ///< total reads+writes
  double working_set_bits;  ///< application working set
  double reuse_exponent = 0.5;  ///< theta of the power-law hit model
};

struct MemoryStats {
  u::Energy energy{0.0};
  u::Time total_latency{0.0};
  double offchip_accesses = 0.0;
  std::vector<double> hits_per_level;  ///< absolute hit counts, L1 first

  [[nodiscard]] u::Energy energy_per_access(double accesses) const;
};

class MemoryHierarchy {
 public:
  /// `levels` ordered L1 outward.  If `offchip_backing`, misses from the last
  /// level go to external DRAM at `io_voltage`.
  MemoryHierarchy(const tech::TechnologyNode& node, u::Voltage core_voltage,
                  std::vector<CacheLevelSpec> levels, bool offchip_backing,
                  u::Voltage io_voltage = u::Voltage(2.5));

  [[nodiscard]] const std::vector<CacheLevelSpec>& levels() const {
    return levels_;
  }

  /// Hit rate of level `i` for a given working set (levels filter: level i
  /// sees only the misses of level i-1).
  [[nodiscard]] double hit_rate(std::size_t level, double working_set_bits,
                                double reuse_exponent = 0.5) const;

  /// Expected energy/latency/traffic of an access stream.
  [[nodiscard]] MemoryStats simulate(const AccessProfile& profile) const;

  /// Standby leakage of all SRAM arrays.
  [[nodiscard]] u::Power leakage() const;

 private:
  tech::TechnologyNode node_;
  u::Voltage core_voltage_;
  std::vector<CacheLevelSpec> levels_;
  bool offchip_;
  u::Voltage io_voltage_;
};

}  // namespace ambisim::arch
