// System-on-chip composition: cores + memory hierarchy + interconnect
// evaluated against a steady-state compute demand.  This is the Watt-node
// case-study vehicle: alternative SoCs (single RISC, multi-DSP, VLIW +
// accelerators) are composed and compared on throughput vs power.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ambisim/arch/interconnect.hpp"
#include "ambisim/arch/memory.hpp"
#include "ambisim/arch/processor.hpp"

namespace ambisim::arch {

/// Resource demand of one unit of work (a frame, a sample block, ...).
struct ComputeDemand {
  double ops = 0.0;               ///< operations per work unit
  double mem_accesses = 0.0;      ///< memory references per work unit
  double working_set_bits = 0.0;  ///< application working set
  double bus_bits = 0.0;          ///< data moved across the interconnect
};

class SocModel {
 public:
  SocModel(std::string name, const tech::TechnologyNode& node, u::Voltage v);

  SocModel& add_core(const CoreParams& params);
  SocModel& add_core(const CoreParams& params, u::Frequency clock);
  SocModel& set_memory(std::vector<CacheLevelSpec> levels,
                       bool offchip_backing);
  SocModel& set_bus(double length_mm, double width_bits);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ProcessorModel>& cores() const {
    return cores_;
  }
  /// Aggregate peak operation rate of all cores.
  [[nodiscard]] u::OpRate compute_capacity() const;
  /// Total physical gate count (cores only).
  [[nodiscard]] double total_gates() const;

  struct Evaluation {
    bool feasible = false;
    double compute_utilization = 0.0;  ///< aggregate core load, <= 1 if ok
    double bus_utilization = 0.0;
    u::Power power{0.0};               ///< total power at the given rate
    u::Energy energy_per_unit{0.0};    ///< total energy per work unit
    std::vector<std::pair<std::string, u::Power>> breakdown;
  };

  /// Steady-state evaluation of `demand` executed `rate` times per second.
  /// Work is spread across cores in proportion to their capacity.
  [[nodiscard]] Evaluation evaluate(const ComputeDemand& demand,
                                    u::Frequency rate) const;

  /// Highest sustainable work rate (compute- or bus-limited).
  [[nodiscard]] u::Frequency max_rate(const ComputeDemand& demand) const;

 private:
  std::string name_;
  tech::TechnologyNode node_;
  u::Voltage voltage_;
  std::vector<ProcessorModel> cores_;
  std::optional<MemoryHierarchy> memory_;
  std::optional<OnChipBus> bus_;
};

}  // namespace ambisim::arch
