// "Interface electronics": the keynote's third ingredient of every ambient
// device besides computing and communication.  Models for A/D conversion
// (Walden figure-of-merit), sensor front-ends, displays and audio output.
#pragma once

#include <string>

#include "ambisim/sim/units.hpp"

namespace ambisim::arch {

namespace u = ambisim::units;

/// Nyquist A/D converter: P = FOM * 2^ENOB * f_sample.
class AdcModel {
 public:
  /// `fom` in joule per conversion-step; 2003-era converters sit around
  /// 1-5 pJ/step.
  AdcModel(double enob_bits, u::Frequency sample_rate,
           u::Energy fom = u::Energy(2e-12));

  [[nodiscard]] double enob() const { return enob_; }
  [[nodiscard]] u::Frequency sample_rate() const { return rate_; }
  [[nodiscard]] u::Power power() const;
  [[nodiscard]] u::Energy energy_per_sample() const;
  /// Information rate produced by the converter: enob * f_sample.
  [[nodiscard]] u::BitRate information_rate() const;

 private:
  double enob_;
  u::Frequency rate_;
  u::Energy fom_;
};

/// Analog sensor front-end (bias + amplifier), duty-cyclable.
struct SensorFrontEnd {
  std::string kind;        ///< "temperature", "PIR", "microphone", ...
  u::Power active_power;   ///< bias + amplifier while sampling
  u::Power standby_power;  ///< leakage while off
  u::Time warmup;          ///< settling time before a valid sample

  static SensorFrontEnd temperature();
  static SensorFrontEnd passive_infrared();
  static SensorFrontEnd microphone();
  static SensorFrontEnd image_sensor_qvga();
};

/// Display output: power proportional to pixel rate plus backlight floor.
class DisplayModel {
 public:
  DisplayModel(double pixels, u::Frequency frame_rate, u::Power backlight,
               u::Energy energy_per_pixel = u::Energy(2e-9));

  [[nodiscard]] u::Power power() const;
  [[nodiscard]] u::BitRate information_rate(double bits_per_pixel = 16) const;

  static DisplayModel mobile_lcd();   ///< 176x208 @ 30 Hz, mW-class
  static DisplayModel tv_panel();     ///< 720x576 @ 50 Hz, W-class

 private:
  double pixels_;
  u::Frequency frame_rate_;
  u::Power backlight_;
  u::Energy energy_per_pixel_;
};

/// Audio DAC + amplifier into a speaker or earpiece.
struct AudioOutput {
  u::Power amplifier_power;
  u::Frequency sample_rate;
  double bits_per_sample;

  [[nodiscard]] u::BitRate information_rate() const;
  static AudioOutput earpiece();
  static AudioOutput loudspeaker();
};

}  // namespace ambisim::arch
