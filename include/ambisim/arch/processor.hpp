// Parameterized processor-core energy/performance model.
//
// A core is characterized by its sustained ops/cycle, the effective number
// of switched gate-equivalents per operation (which folds in clock tree and
// datapath wiring), and its total gate count (which determines leakage).
// Combined with a technology node and an operating point this yields the
// core's position on the keynote's power-information graph: throughput
// (ops/s -> information rate) versus power.
//
// Preset cores span the three device classes: an 8-bit microcontroller for
// the microWatt-node, DSP/RISC cores for the milliWatt-node, and
// VLIW/media-accelerator fabric for the Watt-node.
#pragma once

#include <string>

#include "ambisim/tech/technology.hpp"

namespace ambisim::arch {

namespace u = ambisim::units;

enum class CoreStyle {
  Microcontroller,   ///< tiny 8/16-bit control core
  GeneralPurpose,    ///< 32-bit RISC with caches
  Dsp,               ///< dual-MAC signal processor
  Vliw,              ///< 4-issue media VLIW
  Accelerator,       ///< hardwired function unit
};

std::string to_string(CoreStyle s);

struct CoreParams {
  std::string name;
  CoreStyle style;
  double ops_per_cycle;   ///< sustained operations per clock
  double gates_per_op;    ///< switched gate-equivalents per operation
  double total_gates;     ///< physical gates (leakage)
  double logic_depth;     ///< FO4 per pipeline stage (sets max clock)
};

// 2003-flavoured presets.
CoreParams microcontroller_core();  ///< 8-bit MCU, ~30 k gates
CoreParams risc_core();             ///< ARM9-class 32-bit RISC
CoreParams dsp_core();              ///< dual-MAC DSP
CoreParams vliw_core();             ///< 4-issue media VLIW
CoreParams accelerator_core(const std::string& function);  ///< hardwired

class ProcessorModel {
 public:
  /// Core in `node` at supply `v`, clocked at `clock` (must not exceed the
  /// voltage's maximum frequency).
  ProcessorModel(CoreParams params, const tech::TechnologyNode& node,
                 u::Voltage v, u::Frequency clock);

  /// Convenience: run at the voltage's maximum clock.
  static ProcessorModel at_max_clock(CoreParams params,
                                     const tech::TechnologyNode& node,
                                     u::Voltage v);

  [[nodiscard]] const CoreParams& params() const { return params_; }
  [[nodiscard]] const tech::TechnologyNode& node() const { return node_; }
  [[nodiscard]] u::Voltage voltage() const { return voltage_; }
  [[nodiscard]] u::Frequency clock() const { return clock_; }

  /// Peak sustained operation rate at this operating point.
  [[nodiscard]] u::OpRate throughput() const;

  /// Dynamic power at fractional utilization in [0, 1].
  [[nodiscard]] u::Power dynamic_power(double utilization = 1.0) const;
  [[nodiscard]] u::Power leakage_power() const;
  [[nodiscard]] u::Power power(double utilization = 1.0) const;
  /// Power when clock-gated (leakage only).
  [[nodiscard]] u::Power sleep_power() const { return leakage_power(); }

  /// Marginal energy per operation at full utilization (dynamic + leakage
  /// share of one cycle-slice).
  [[nodiscard]] u::Energy energy_per_op() const;

  /// Wall-clock time to execute `ops` operations at full utilization.
  [[nodiscard]] u::Time time_for(double ops) const;
  /// Total energy to execute `ops` operations at full utilization.
  [[nodiscard]] u::Energy energy_for(double ops) const;

  /// Re-derive the model at a new operating point (for DVS sweeps).
  [[nodiscard]] ProcessorModel with_operating_point(u::Voltage v,
                                                    u::Frequency clock) const;

 private:
  CoreParams params_;
  tech::TechnologyNode node_;
  u::Voltage voltage_;
  u::Frequency clock_;
};

}  // namespace ambisim::arch
