// Streaming workload presets with 2003-flavoured compute intensities,
// expressed as a steady rate of work units, each with an arch::ComputeDemand.
// These drive the case studies: audio playback for the milliWatt node,
// SD/HD video for the Watt node, periodic sensing for the microWatt node.
#pragma once

#include <string>

#include "ambisim/arch/soc.hpp"

namespace ambisim::workload {

namespace u = ambisim::units;

struct StreamingWorkload {
  std::string name;
  u::Frequency unit_rate;           ///< work units per second
  arch::ComputeDemand demand;       ///< per work unit
  u::BitRate stream_rate;           ///< information rate of the content

  /// Sustained operation rate required: ops * unit_rate.
  [[nodiscard]] u::OpRate ops_rate() const;
  /// Total operations executed over a duration.
  [[nodiscard]] double ops_over(u::Time t) const;
};

/// MP3-class audio decode, 44.1 kHz stereo, frames of 1152 samples.
StreamingWorkload audio_playback(u::BitRate compressed_rate = u::BitRate(128e3));
/// MPEG-2 standard definition decode (720x576 @ 25 fps).
StreamingWorkload video_decode_sd();
/// High-definition decode (1280x720 @ 30 fps) — the forward-looking
/// Watt-node load.
StreamingWorkload video_decode_hd();
/// Periodic environmental sensing: one 12-bit sample filtered and packed,
/// `rate` samples per second.
StreamingWorkload sensing(u::Frequency rate = u::Frequency(1.0));
/// Speech-recognition front-end (MFCC extraction at 100 frames/s).
StreamingWorkload speech_frontend();

}  // namespace ambisim::workload
