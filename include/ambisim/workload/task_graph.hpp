// Task graphs: DAGs of computation with data-carrying edges, periods and
// deadlines.  Used by the DSE layer for mapping functions onto networks of
// devices and for DVS slack allocation.
#pragma once

#include <string>
#include <vector>

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::workload {

namespace u = ambisim::units;

struct Task {
  std::string name;
  double ops = 0.0;            ///< operations per activation
  double mem_accesses = 0.0;   ///< memory references per activation
  u::Information output_bits{0.0};  ///< data produced per activation
};

struct Edge {
  int from = -1;
  int to = -1;
  u::Information bits{0.0};  ///< data communicated per activation
};

class TaskGraph {
 public:
  explicit TaskGraph(std::string name);

  int add_task(Task t);
  void add_edge(int from, int to, u::Information bits);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int task_count() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const Task& task(int i) const { return tasks_.at(i); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::vector<int> predecessors(int i) const;
  [[nodiscard]] std::vector<int> successors(int i) const;

  /// Throws std::logic_error if the graph has a cycle.
  [[nodiscard]] std::vector<int> topological_order() const;
  [[nodiscard]] bool is_acyclic() const;

  [[nodiscard]] double total_ops() const;
  [[nodiscard]] u::Information total_traffic() const;
  /// Longest path weight with task ops as node weights.
  [[nodiscard]] double critical_path_ops() const;
  /// Tasks not on the critical path have slack exploitable by DVS.
  [[nodiscard]] double slack_ops() const {
    return total_ops() - critical_path_ops();
  }

  void set_period(u::Time p) { period_ = p; }
  void set_deadline(u::Time d) { deadline_ = d; }
  [[nodiscard]] u::Time period() const { return period_; }
  [[nodiscard]] u::Time deadline() const { return deadline_; }

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  u::Time period_{0.0};
  u::Time deadline_{0.0};
};

/// A 6-stage wireless-audio pipeline (radio rx -> depacketize -> decode ->
/// post-process -> volume -> DAC feed): the mW personal-node workload.
TaskGraph audio_pipeline_graph();

/// A sense -> filter -> classify -> report chain: the uW autonomous-node
/// workload.
TaskGraph sensing_pipeline_graph();

/// Layered random DAG for property tests and mapper stress tests.
TaskGraph random_task_graph(sim::Rng& rng, int tasks, int layers,
                            double edge_probability = 0.4);

}  // namespace ambisim::workload
