// Named runtime metrics: counters, gauges, and fixed-bucket histograms.
//
// A MetricsRegistry is the aggregate half of the observability subsystem:
// instrumented layers bump counters ("sim.fired", "net.hops", ...) and feed
// histograms ("sim.callback_s") while a run executes, and benches/examples
// dump the registry afterwards.  Registration is idempotent — asking for a
// name returns the existing instrument — and references stay valid until
// `clear()`, so hot paths may cache them.  Histograms keep Welford moments
// (sim::Accumulator) next to the bucket counts, so mean/stddev are exact
// even where the buckets are coarse.  Not thread-safe, like the simulator
// it measures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ambisim/sim/statistics.hpp"

namespace ambisim::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument (queue depth, frame slots, state of charge, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with exact streaming moments.
///
/// Buckets are defined by ascending upper bounds; values above the last
/// bound land in an implicit overflow bucket.  Quantiles interpolate
/// linearly inside a bucket, which is the usual monitoring-grade accuracy;
/// `moments()` is exact.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  [[nodiscard]] std::uint64_t count() const { return moments_.count(); }
  /// Number of buckets including the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  /// Upper bound of bucket `i`; the overflow bucket reports +infinity.
  [[nodiscard]] double upper_bound(std::size_t i) const;
  /// The finite upper bounds (excludes the implicit overflow bucket).
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const sim::Accumulator& moments() const { return moments_; }
  /// Fold another histogram with identical bounds into this one: bucket
  /// counts add exactly, moments combine via the parallel Welford update.
  /// Throws std::invalid_argument on a bounds mismatch.
  void merge_from(const Histogram& other);
  /// Interpolated quantile, q in [0, 1].  Requires count() > 0.
  [[nodiscard]] double quantile(double q) const;
  void reset();

  /// Log-spaced bounds, `n` per decade, covering [lo, hi].
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                int per_decade = 3);
  /// Default bounds for wall-clock seconds: 10 ns .. 10 s, 3 per decade.
  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow)
  sim::Accumulator moments_;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name.  References remain valid until clear().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is only consulted on first creation; empty selects
  /// Histogram::default_bounds().
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = {});

  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// `metric,kind,field,value` rows: counters (count), gauges (value),
  /// histograms (count/mean/stddev/min/max/p50/p99).  Sorted by name so the
  /// dump is deterministic.
  void write_csv(std::ostream& os) const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,mean,stddev,min,max,p50,p99}}}, each map sorted by name.
  /// `indent` leading spaces per line; the opening brace is not indented
  /// so the object can be embedded after a key.
  void write_json(std::ostream& os, int indent = 0) const;

  /// Fold another registry into this one: counters add, gauges add (the
  /// instruments a parallel run shards are additive in practice), and
  /// histograms merge bucket-by-bucket (absent entries are created with the
  /// source's bounds).  Counter and bucket totals combine exactly; merged
  /// histogram moments are correct but, being floating-point sums taken in
  /// merge order, are only bit-stable when the merge order is fixed — which
  /// is why ShardSet::merge_into folds shards in index order.
  void merge_from(const MetricsRegistry& other);

  /// Zero every instrument but keep the entries (cached references survive).
  void reset_values();
  /// Drop every entry; outstanding references become dangling.
  void clear();

  /// Monotonic counter bumped by clear(): callers that cache instrument
  /// pointers (the sim kernel does) compare epochs to detect that their
  /// references went dangling and must be re-resolved.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  template <class T>
  using Entries = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  Entries<Counter> counters_;
  Entries<Gauge> gauges_;
  Entries<Histogram> histograms_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ambisim::obs
