// Typed event tracing into a preallocated ring buffer.
//
// The Tracer is the timeline half of the observability subsystem: layers
// record instants (event scheduled, packet generated), complete spans
// (packet hop, pipeline stage, kernel callback) and counter samples
// (ledger charges, state of charge) against the simulated clock.  Storage
// is a fixed-capacity ring: recording never allocates, never fails, and
// overwrites the oldest events once full (`dropped()` reports how many).
// Export formats: Chrome `trace_event` JSON — loadable in chrome://tracing
// or https://ui.perfetto.dev — and a flat CSV for scripted analysis.
//
// Names and categories must point at storage that outlives the Tracer
// (string literals in practice); events store the pointers, not copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ambisim::obs {

/// Chrome trace_event phases used by AmbiSim.
enum class Phase : char {
  Instant = 'i',    ///< point event
  Complete = 'X',   ///< span with duration
  Counter = 'C',    ///< sampled numeric series
  FlowStart = 's',  ///< first event of a causal flow (packet generated)
  FlowStep = 't',   ///< intermediate flow event (hop, retry)
  FlowEnd = 'f',    ///< terminal flow event (delivered, lost)
};

/// True for the three flow phases that carry a flow id.
constexpr bool is_flow(Phase p) {
  return p == Phase::FlowStart || p == Phase::FlowStep ||
         p == Phase::FlowEnd;
}

struct TraceEvent {
  const char* name = "";      ///< static-storage string
  const char* category = "";  ///< layer: "kernel", "net", "energy", ...
  Phase phase = Phase::Instant;
  double ts_us = 0.0;   ///< timestamp in microseconds (simulated time)
  double dur_us = 0.0;  ///< Complete spans only
  std::uint32_t tid = 0;  ///< timeline lane (node id, layer id, ...)
  double value = 0.0;     ///< Counter samples and flow payloads
  std::uint64_t flow = 0;  ///< causal chain id (flow phases only)
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void instant(const char* name, const char* category, double ts_us,
               std::uint32_t tid = 0);
  void complete(const char* name, const char* category, double ts_us,
                double dur_us, std::uint32_t tid = 0);
  void counter(const char* name, const char* category, double ts_us,
               double value);
  /// Causal flow event: `flow_id` links every event of one causal chain (a
  /// packet's generation, hops, retries, delivery) across timeline lanes;
  /// `value` carries a small payload (next hop, attempt count, ...).
  void flow(const char* name, const char* category, Phase phase,
            double ts_us, std::uint32_t tid, std::uint64_t flow_id,
            double value = 0.0);

  /// Events currently held (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ - size();
  }
  [[nodiscard]] bool empty() const { return recorded_ == 0; }
  void clear();

  /// Append another tracer's surviving events (oldest first) to this ring.
  /// Used to fold per-worker shards back into the global tracer; merged in
  /// a fixed shard order the result is scheduling-independent up to the
  /// per-shard interleaving, and every event carries its own timestamp.
  void merge_from(const Tracer& other);

  /// Snapshot in recording order, oldest surviving event first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: a plain array of event objects, each with
  /// name/cat/ph/ts/pid/tid (+dur for spans, +args.value for counters,
  /// +id for linked flow events).
  void write_chrome_json(std::ostream& os, int pid = 1) const;
  /// Flat CSV: name,category,phase,ts_us,dur_us,tid,value,flow.
  void write_csv(std::ostream& os) const;
  /// One JSON object per line (JSONL), every field explicit:
  ///   {"type":"event","name":...,"cat":...,"ph":"t","ts_us":...,
  ///    "dur_us":...,"tid":...,"value":...,"flow":...}
  /// The scripted-analysis export: a causal chain is reconstructed by
  /// filtering lines on "flow".
  void write_jsonl(std::ostream& os) const;

 private:
  void push(const TraceEvent& ev);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::uint64_t recorded_ = 0;
};

}  // namespace ambisim::obs
