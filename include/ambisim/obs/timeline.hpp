// Sim-time flight recorder: typed per-node value series.
//
// A Timeline is the third leg of the observability context, next to the
// MetricsRegistry (aggregates) and the Tracer (events): it stores *series*
// — (name, node) keyed sequences of (sim-time, value) samples — so that the
// observables ambient-intelligent networks care about (battery state of
// charge, queue depth, lifecycle state, radio duty cycle, retry counts) can
// be inspected over simulated time and per node after a run, not just as
// end-of-run totals.
//
// Recording modes: `record` appends unconditionally (fixed-cadence
// sampling); `record_change` appends only when the value differs from the
// last admitted sample (lifecycle edges, queue transitions).  Memory is
// bounded per series: once `max_samples` is reached the series halves
// itself — every other sample is dropped — and doubles its admission
// stride, a deterministic decimation that is a pure function of the
// recorded stream (no clocks, no randomness), so two identical runs always
// keep identical samples.
//
// Determinism under parallel merge: exec runners give every worker its own
// Context shard, and ShardSet::merge_into folds shard timelines into the
// global one.  `merge_from` combines series as *sorted multisets* — the
// merged sample sequence is ordered by (time, value bits) — so the result
// depends only on which samples were recorded, not on which worker
// recorded them or in what shard order they were merged.  As long as no
// series decimates *between* merges (capacity is per recording stream),
// the merged timeline is bit-identical at any pool size; the tier-1
// timeline-determinism tests assert this at pools {1, 2, 8}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ambisim::obs {

/// One timeline sample: a value observed at a simulated time.
struct Sample {
  double t_s = 0.0;   ///< simulated seconds
  double value = 0.0;
};

/// Summary statistics of a [t0, t1] window of one series.
struct WindowStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// One (name, node) sample sequence with bounded, deterministic storage.
class Series {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 4096;

  /// `max_samples` of 0 means unbounded; otherwise it is rounded up to an
  /// even floor of 2 so decimation-by-halving stays exact.
  explicit Series(std::size_t max_samples = kDefaultMaxSamples);

  /// Fixed-cadence recording: admit the sample (subject to the current
  /// decimation stride).  Timestamps are expected nondecreasing per
  /// recording stream; an out-of-order append is sorted lazily.
  void record(double t_s, double value);
  /// On-change recording: admit only when `value` differs from the last
  /// admitted sample's value (or the series is empty).
  void record_change(double t_s, double value);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t max_samples() const { return max_samples_; }
  /// Current admission stride: 1 until the first decimation, then doubling.
  [[nodiscard]] std::uint64_t stride() const { return stride_; }
  /// Samples offered past the on-change dedup (admitted or dropped by the
  /// decimation stride; `record_change` drops of an unchanged value do not
  /// count, so dedup cannot shift the stride phase).
  [[nodiscard]] std::uint64_t seen() const { return seen_; }

  /// Samples ordered by (t, value bits).
  [[nodiscard]] const std::vector<Sample>& samples() const;

  /// Most recently admitted sample.  Requires !empty().
  [[nodiscard]] Sample last() const;
  /// Latest sample with t <= t_s, or nullopt-like {false, {}} semantics via
  /// pointer: nullptr when every sample is later than `t_s`.
  [[nodiscard]] const Sample* last_before(double t_s) const;
  /// min/max/mean over samples with t0 <= t <= t1 (count 0 when none).
  [[nodiscard]] WindowStats window(double t0, double t1) const;

  /// Sorted-multiset union with `other`: the result is a pure function of
  /// the combined sample multiset, independent of merge grouping or order.
  /// Merged series are NOT re-decimated (they may exceed max_samples);
  /// call `compact()` explicitly to re-bound a merged series.
  void merge_from(const Series& other);

  /// Deterministically decimate down to at most max_samples (keep every
  /// k-th sample plus the last); a no-op when unbounded or within bounds.
  void compact();

  /// Mark the end of one recording stream: the next `record_change` is
  /// admitted regardless of the last value.  Exec runners call this (via
  /// Timeline::reset_streams) between replications sharing a shard, so the
  /// on-change dedup never spans replication boundaries and the admitted
  /// sample multiset is independent of how replications are grouped onto
  /// workers.
  void reset_stream();

  void clear();

 private:
  void admit(double t_s, double value);
  void ensure_sorted() const;

  mutable std::vector<Sample> samples_;
  mutable bool sorted_ = true;
  std::size_t max_samples_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
  bool has_last_ = false;
  double last_value_ = 0.0;
};

/// The per-node series store of one observability context.
class Timeline {
 public:
  /// Find-or-create the series keyed (name, node).  `max_samples` is only
  /// consulted on first creation.  References stay valid until clear().
  Series& series(std::string_view name, std::uint32_t node,
                 std::size_t max_samples = Series::kDefaultMaxSamples);
  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Series* find(std::string_view name,
                                   std::uint32_t node) const;

  /// Distinct (name, node) series.
  [[nodiscard]] std::size_t series_count() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Total samples held across every series.
  [[nodiscard]] std::size_t sample_count() const;

  struct Entry {
    const std::string* name;
    std::uint32_t node;
    const Series* series;
  };
  /// Every series sorted by (name, node) — the canonical iteration order
  /// used by exports and the digest.
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Fold another timeline in: series are matched by (name, node) and
  /// merged as sorted multisets (see Series::merge_from), absent series
  /// are created.  Deterministic for any merge grouping.
  void merge_from(const Timeline& other);

  /// Order-canonical checksum over every series (SplitMix64 chain folded
  /// in entries() order): equal digests mean bit-identical timelines.
  [[nodiscard]] std::uint64_t digest() const;

  /// `series,node,t_s,value` rows in entries() order.
  void write_csv(std::ostream& os) const;
  /// One JSON object per line:
  ///   {"type":"sample","name":...,"node":N,"t_s":T,"value":V}
  void write_jsonl(std::ostream& os) const;

  /// End the current recording stream of every series (see
  /// Series::reset_stream); samples are kept.
  void reset_streams();

  /// Drop every sample but keep the series entries (references survive).
  void reset_values();
  /// Drop every series; outstanding references become dangling.
  void clear();

 private:
  struct Keyed {
    std::string name;
    std::uint32_t node;
    std::unique_ptr<Series> series;
  };
  // Sorted by (name, node); series() does a binary search + insert.
  std::vector<Keyed> entries_;
};

}  // namespace ambisim::obs
