// RAII profiling probes and the instrumentation macros.
//
// ScopedTimer measures wall-clock time into a registry histogram — the
// profiling primitive for hot paths (event dispatch, routing, export).
// ProbeScope additionally emits a Complete trace span anchored at a
// simulated-time timestamp whose duration is the measured wall time, which
// overlays "where the host cycles went" onto the simulated timeline.
//
// Both are inert unless obs::enabled(): construction then costs one branch
// and no clock read.  The AMBISIM_OBS_* macros wrap the common one-liners
// and compile to nothing when AMBISIM_OBS_DISABLED is defined.
#pragma once

#include <chrono>
#include <cstdint>

#include "ambisim/obs/obs.hpp"

namespace ambisim::obs {

/// Wall-clock RAII timer feeding a histogram of seconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_) start_ = Clock::now();
  }
  /// Resolves `name` in the global registry; inert when obs is disabled.
  explicit ScopedTimer(const char* name)
      : ScopedTimer(enabled() ? &context().metrics.histogram(name)
                              : nullptr) {}
  ~ScopedTimer() {
    if (hist_) hist_->observe(elapsed_seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] bool armed() const { return hist_ != nullptr; }
  [[nodiscard]] double elapsed_seconds() const {
    if (!hist_) return 0.0;
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* hist_;
  Clock::time_point start_;
};

/// RAII trace span: Complete event at sim timestamp `ts_us` whose duration
/// is the wall-clock lifetime of the scope (in microseconds).
class ProbeScope {
 public:
  ProbeScope(const char* name, const char* category, double ts_us,
             std::uint32_t tid = 0)
      : name_(name), category_(category), ts_us_(ts_us), tid_(tid),
        armed_(enabled()) {
    if (armed_) start_ = Clock::now();
  }
  ~ProbeScope() {
    if (!armed_) return;
    const double dur_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start_)
            .count();
    context().tracer.complete(name_, category_, ts_us_, dur_us, tid_);
  }
  ProbeScope(const ProbeScope&) = delete;
  ProbeScope& operator=(const ProbeScope&) = delete;

  [[nodiscard]] bool armed() const { return armed_; }

 private:
  using Clock = std::chrono::steady_clock;
  const char* name_;
  const char* category_;
  double ts_us_;
  std::uint32_t tid_;
  bool armed_;
  Clock::time_point start_;
};

/// Cached handle onto one (name, node) timeline series.  Resolves the
/// series once at construction when probes are armed (and is wholly inert
/// otherwise), so per-sample recording on hot paths skips the registry
/// lookup.  The cached reference is valid until Timeline::clear() on the
/// owning context — rebuild recorders per run, like the sim kernel does
/// with its cached instruments.
class SeriesRecorder {
 public:
  SeriesRecorder(const char* name, std::uint32_t node,
                 std::size_t max_samples = Series::kDefaultMaxSamples)
      : series_(enabled()
                    ? &context().timeline.series(name, node, max_samples)
                    : nullptr) {}

  [[nodiscard]] bool armed() const { return series_ != nullptr; }

  /// Fixed-cadence sample at simulated time `t_s`.
  void record(double t_s, double value) {
    if (series_) series_->record(t_s, value);
  }
  /// On-change sample at simulated time `t_s`.
  void record_change(double t_s, double value) {
    if (series_) series_->record_change(t_s, value);
  }

 private:
  Series* series_;
};

}  // namespace ambisim::obs

#if AMBISIM_OBS_COMPILED

#define AMBISIM_OBS_COUNT(name)                              \
  do {                                                       \
    if (::ambisim::obs::enabled())                           \
      ::ambisim::obs::context().metrics.counter(name).inc(); \
  } while (0)

#define AMBISIM_OBS_COUNT_N(name, n)                          \
  do {                                                        \
    if (::ambisim::obs::enabled())                            \
      ::ambisim::obs::context().metrics.counter(name).inc(n); \
  } while (0)

#define AMBISIM_OBS_GAUGE_SET(name, v)                         \
  do {                                                         \
    if (::ambisim::obs::enabled())                             \
      ::ambisim::obs::context().metrics.gauge(name).set(v);    \
  } while (0)

#define AMBISIM_OBS_OBSERVE(name, v)                               \
  do {                                                             \
    if (::ambisim::obs::enabled())                                 \
      ::ambisim::obs::context().metrics.histogram(name).observe(v); \
  } while (0)

#define AMBISIM_OBS_INSTANT(name, cat, ts_us, tid)                    \
  do {                                                                \
    if (::ambisim::obs::enabled())                                    \
      ::ambisim::obs::context().tracer.instant(name, cat, ts_us, tid); \
  } while (0)

#define AMBISIM_OBS_COMPLETE(name, cat, ts_us, dur_us, tid)       \
  do {                                                            \
    if (::ambisim::obs::enabled())                                \
      ::ambisim::obs::context().tracer.complete(name, cat, ts_us, \
                                                dur_us, tid);     \
  } while (0)

#define AMBISIM_OBS_COUNTER_EVENT(name, cat, ts_us, value)             \
  do {                                                                 \
    if (::ambisim::obs::enabled())                                     \
      ::ambisim::obs::context().tracer.counter(name, cat, ts_us, value); \
  } while (0)

#define AMBISIM_OBS_SERIES(name, node, t_s, v)                       \
  do {                                                               \
    if (::ambisim::obs::enabled())                                   \
      ::ambisim::obs::context().timeline.series(name, node).record(  \
          t_s, v);                                                   \
  } while (0)

#define AMBISIM_OBS_SERIES_CHANGE(name, node, t_s, v)           \
  do {                                                          \
    if (::ambisim::obs::enabled())                              \
      ::ambisim::obs::context()                                 \
          .timeline.series(name, node)                          \
          .record_change(t_s, v);                               \
  } while (0)

#define AMBISIM_OBS_FLOW(name, cat, ph, ts_us, tid, flow_id, v)       \
  do {                                                                \
    if (::ambisim::obs::enabled())                                    \
      ::ambisim::obs::context().tracer.flow(name, cat, ph, ts_us,     \
                                            tid, flow_id, v);         \
  } while (0)

#else  // AMBISIM_OBS_COMPILED

#define AMBISIM_OBS_COUNT(name) ((void)0)
#define AMBISIM_OBS_COUNT_N(name, n) ((void)0)
#define AMBISIM_OBS_GAUGE_SET(name, v) ((void)0)
#define AMBISIM_OBS_OBSERVE(name, v) ((void)0)
#define AMBISIM_OBS_INSTANT(name, cat, ts_us, tid) ((void)0)
#define AMBISIM_OBS_COMPLETE(name, cat, ts_us, dur_us, tid) ((void)0)
#define AMBISIM_OBS_COUNTER_EVENT(name, cat, ts_us, value) ((void)0)
#define AMBISIM_OBS_SERIES(name, node, t_s, v) ((void)0)
#define AMBISIM_OBS_SERIES_CHANGE(name, node, t_s, v) ((void)0)
#define AMBISIM_OBS_FLOW(name, cat, ph, ts_us, tid, flow_id, v) ((void)0)

#endif  // AMBISIM_OBS_COMPILED
