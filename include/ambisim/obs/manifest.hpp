// Run provenance: who produced this artifact, from what source, and how.
//
// A RunManifest stamps every exported artifact (BENCH_*.json, flight
// records, timeline dumps) with enough context to reproduce or reject it:
// the git describe of the source tree, build type and compiler, the root
// seed and a caller-computed config digest, and the worker-pool size.
// `collect()` fills the build-side fields from compile definitions baked
// in by CMake (AMBISIM_GIT_DESCRIBE and friends); run-side fields are
// assigned by the caller before export.
//
// write_flight_jsonl emits the full flight record of one run — manifest
// line, then every timeline sample, then every trace event — one JSON
// object per line, the format examples/timeline_report consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ambisim::obs {

struct Context;

struct RunManifest {
  // --- build provenance (filled by collect()) ---
  std::string git_describe = "unknown";
  std::string build_type = "unknown";
  std::string compiler = "unknown";
  std::string sanitize;        ///< -fsanitize list, empty when none
  bool obs_compiled = false;   ///< probes compiled in?

  // --- run provenance (filled by the caller) ---
  std::string label;           ///< bench / experiment name
  std::uint64_t seed = 0;      ///< root seed of the run
  std::uint64_t config_digest = 0;  ///< caller's fault::Digest over config
  unsigned pool_size = 0;      ///< worker threads (0 = serial / unset)

  /// Manifest with every build-side field resolved.
  static RunManifest collect();

  /// JSON object, pretty-printed with `indent` leading spaces per line
  /// (the opening brace is not indented, so the object can be embedded
  /// after a key).
  void write_json(std::ostream& os, int indent = 0) const;
};

/// Full flight record of `ctx` as JSONL: one manifest line
/// ({"type":"manifest",...}), then timeline samples, then trace events.
void write_flight_jsonl(std::ostream& os, const Context& ctx,
                        const RunManifest& manifest);

}  // namespace ambisim::obs
