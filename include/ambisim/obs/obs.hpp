// Observability context and master switches.
//
// One process-wide Context pairs a MetricsRegistry with a Tracer so that
// instrumentation points deep inside the simulator do not need plumbing.
// Two switches control cost:
//
//  * compile time — defining AMBISIM_OBS_DISABLED (CMake option of the same
//    name) compiles every probe macro in probe.hpp to nothing;
//  * runtime — `set_enabled(true)` arms the probes; the default is off, and
//    a disarmed probe costs a single predictable branch on a global flag,
//    cheap enough to leave compiled into release benches.
//
// Like the simulator itself, the subsystem is single-threaded by design.
#pragma once

#include "ambisim/obs/metrics.hpp"
#include "ambisim/obs/trace.hpp"

#ifdef AMBISIM_OBS_DISABLED
#define AMBISIM_OBS_COMPILED 0
#else
#define AMBISIM_OBS_COMPILED 1
#endif

namespace ambisim::obs {

struct Context {
  MetricsRegistry metrics;
  Tracer tracer;
};

/// The process-wide context (constructed on first use).
Context& context();

namespace detail {
extern bool g_enabled;
}  // namespace detail

/// True when probes are both compiled in and armed at runtime.
inline bool enabled() {
#if AMBISIM_OBS_COMPILED
  return detail::g_enabled;
#else
  return false;
#endif
}

/// Arm or disarm the runtime switch (a no-op when compiled out).
void set_enabled(bool on);

/// Zero all metrics and drop all trace events; the enabled flag and the
/// registered metric entries are preserved.
void reset();

/// Convert simulated seconds to trace-timestamp microseconds.
inline double to_us(double seconds) { return seconds * 1e6; }

}  // namespace ambisim::obs
