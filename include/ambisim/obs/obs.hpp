// Observability context and master switches.
//
// One process-wide Context pairs a MetricsRegistry with a Tracer so that
// instrumentation points deep inside the simulator do not need plumbing.
// Two switches control cost:
//
//  * compile time — defining AMBISIM_OBS_DISABLED (CMake option of the same
//    name) compiles every probe macro in probe.hpp to nothing;
//  * runtime — `set_enabled(true)` arms the probes; the default is off, and
//    a disarmed probe costs a single predictable branch on a global flag,
//    cheap enough to leave compiled into release benches.
//
// Concurrency model: the registry and tracer themselves are unsynchronized,
// but `context()` resolves through a thread-local binding.  Parallel
// sections (ambisim::exec runners) give each worker its own Context shard
// via ShardSet + ContextBinding, so every probe writes thread-private
// storage, and merge the shards into the global context — in shard order,
// so the merged aggregates do not depend on scheduling — after the join.
// `set_enabled` must not race a parallel section; arm the probes before
// fanning work out.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "ambisim/obs/metrics.hpp"
#include "ambisim/obs/timeline.hpp"
#include "ambisim/obs/trace.hpp"

#ifdef AMBISIM_OBS_DISABLED
#define AMBISIM_OBS_COMPILED 0
#else
#define AMBISIM_OBS_COMPILED 1
#endif

namespace ambisim::obs {

struct Context {
  MetricsRegistry metrics;
  Tracer tracer;
  Timeline timeline;  ///< sim-time flight recorder (per-node series)
};

/// The context probes write to: the calling thread's bound shard when one
/// is set (see ContextBinding), else the process-wide context (constructed
/// on first use).
Context& context();

namespace detail {
extern std::atomic<bool> g_enabled;
/// Rebind the calling thread's context; returns the previous binding
/// (nullptr = the global context).
Context* bind_context(Context* ctx);
}  // namespace detail

/// True when probes are both compiled in and armed at runtime.
inline bool enabled() {
#if AMBISIM_OBS_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Arm or disarm the runtime switch (a no-op when compiled out).
void set_enabled(bool on);

/// Zero all metrics, drop all trace events, and drop all timeline samples
/// in the *global* context; the enabled flag and the registered metric /
/// series entries are preserved.
void reset();

/// Convert simulated seconds to trace-timestamp microseconds.
inline double to_us(double seconds) { return seconds * 1e6; }

/// RAII thread-local context binding.  While alive, `context()` on this
/// thread resolves to the given shard; a nullptr binding is a no-op (the
/// thread keeps its previous resolution).
class ContextBinding {
 public:
  explicit ContextBinding(Context* shard)
      : active_(shard != nullptr),
        prev_(active_ ? detail::bind_context(shard) : nullptr) {}
  ~ContextBinding() {
    if (active_) detail::bind_context(prev_);
  }
  ContextBinding(const ContextBinding&) = delete;
  ContextBinding& operator=(const ContextBinding&) = delete;

 private:
  bool active_;
  Context* prev_;
};

/// A fixed set of per-worker Context shards for one parallel section.
/// Workers bind their own shard, record freely without synchronization,
/// and after the join `merge_into` folds every shard into a destination
/// context in shard order — counters and histogram buckets combine
/// exactly; trace events are appended shard by shard.
class ShardSet {
 public:
  explicit ShardSet(std::size_t shards,
                    std::size_t tracer_capacity = Tracer::kDefaultCapacity);

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  [[nodiscard]] Context& shard(std::size_t i) { return *shards_.at(i); }

  /// Fold every shard into `dst` (shard 0 first) and clear the shards.
  void merge_into(Context& dst);

 private:
  std::vector<std::unique_ptr<Context>> shards_;
};

}  // namespace ambisim::obs
