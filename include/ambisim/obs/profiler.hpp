// Wall-clock execution profiler with per-worker / per-shard / per-window
// attribution.
//
// Everything else in the obs stack measures *simulated* time; the Profiler
// measures where the *host's* wall clock goes while the simulator runs —
// the instrument that explains why a sharded run is barrier-bound or a
// serial run is adjacency-bound.  Three record kinds:
//
//  * phases — named serial scopes ("net.adjacency_build", "net.routing_
//    build", "net.link_pricing", "net.event_loop") accumulated by RAII
//    PhaseScope timers, so serial and sharded runs break down over the
//    same vocabulary;
//  * workers — per-worker task accounting imported from
//    exec::ThreadPool::worker_stats(): tasks executed, queue-wait vs run
//    vs idle seconds, lifetime, utilization;
//  * windows × shards — one record per conservative sync window of
//    shard::simulate_packets_sharded: max/mean shard advance wall time,
//    imbalance (max/mean), barrier wall time, boundary messages gathered
//    and rescheduled.  Per-shard advance totals and executed-event counts
//    accumulate beside them.
//
// Discipline: the profiler is a *pure observer*.  It only ever reads the
// steady clock; it never draws randomness, never touches simulation state,
// and is never folded into any gated digest — runs with profiling on, off,
// or compiled out (AMBISIM_OBS_DISABLED) are bit-identical.  Wall-clock
// values exported into BENCH_*.json live under a "profile" key (or end in
// `_wall_s` / `imbalance` / `utilization`) so tools/bench_compare.py
// quarantines them from baseline gating.
//
// Ownership: a Profiler is an explicit object owned by the caller (a
// bench, scenario_runner --profile, a test).  Engines find it either via
// an explicit config pointer (shard::ShardRunConfig::profiler) or via the
// thread-local ProfilerBinding, mirroring obs::ContextBinding; a null
// profiler costs one pointer test per instrumentation site and reads no
// clocks.  The object is not thread-safe: record from one thread at a
// time (the shard engine writes per-shard slots inside the join and
// records windows from the coordinating thread only).
//
// Window records are bounded: past `max_window_records` only the
// aggregates keep accumulating and `windows_total()` keeps counting, so a
// long run cannot grow the profile without bound — and the truncation is
// explicit in the export (windows_total vs windows_recorded), never
// silent.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ambisim/obs/obs.hpp"

namespace ambisim::obs {

class Tracer;
struct RunManifest;

class Profiler {
 public:
  /// Accumulated wall time of one named serial scope.
  struct Phase {
    std::string name;
    std::uint64_t count = 0;     ///< scopes recorded under this name
    double wall_s = 0.0;         ///< total wall seconds across scopes
    double first_start_s = 0.0;  ///< first scope's start, profiler-relative
  };

  /// One ThreadPool worker's task accounting (see exec::ThreadPool::
  /// worker_stats for the bucket definitions; queue + run + idle sums to
  /// lifetime by construction).
  struct Worker {
    int index = 0;
    std::uint64_t tasks = 0;
    double queue_wait_s = 0.0;
    double run_s = 0.0;
    double idle_s = 0.0;
    double lifetime_s = 0.0;
    [[nodiscard]] double utilization() const {
      return lifetime_s > 0.0 ? run_s / lifetime_s : 0.0;
    }
  };

  /// One conservative sync window of the sharded engine.
  struct Window {
    long long index = 0;
    double start_s = 0.0;  ///< window start, profiler-relative wall seconds
    double advance_max_s = 0.0;   ///< slowest shard's advance wall time
    double advance_mean_s = 0.0;  ///< mean shard advance wall time
    double imbalance = 1.0;       ///< max / mean (1 = perfectly balanced)
    double barrier_wall_s = 0.0;  ///< gather + sort + reschedule
    long long gathered = 0;       ///< boundary packets collected at the barrier
    long long rescheduled = 0;    ///< delivered into peer futures (<= gathered)
  };

  /// Per-shard totals across all windows.
  struct Shard {
    int index = 0;
    double advance_wall_s = 0.0;
    std::uint64_t events = 0;  ///< events executed by this shard's kernel
  };

  static constexpr std::size_t kDefaultMaxWindowRecords = 4096;

  Profiler() : epoch_(Clock::now()) {}

  /// Wall seconds since this profiler was constructed (or clear()ed).
  /// Const and side-effect free, so worker threads may call it to stamp
  /// their own slots.
  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  // --- phases ---

  /// Accumulate `wall_s` seconds under `name` (find-or-create).
  void add_phase(std::string_view name, double start_s, double wall_s);

  /// Null-safe RAII phase timer: inert (no clock read) when `prof` is
  /// nullptr.  `name` should be a string literal; it is copied, but trace
  /// export hands the stored copy's pointer to the Tracer, so write traces
  /// before mutating the profiler.
  class PhaseScope {
   public:
    PhaseScope(Profiler* prof, const char* name) : prof_(prof), name_(name) {
      if (prof_ != nullptr) start_ = prof_->now_s();
    }
    ~PhaseScope() {
      if (prof_ != nullptr)
        prof_->add_phase(name_, start_, prof_->now_s() - start_);
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Profiler* prof_;
    const char* name_;
    double start_ = 0.0;
  };

  /// Run `fn()` under a PhaseScope and return its result — the idiom for
  /// timing a const initializer without restructuring the caller.
  template <typename Fn>
  static auto timed(Profiler* prof, const char* name, Fn&& fn) {
    PhaseScope scope(prof, name);
    return std::forward<Fn>(fn)();
  }

  // --- windows / shards ---

  /// Reset window/shard state for a run over `shard_count` regions.
  void begin_windows(int shard_count,
                     std::size_t max_records = kDefaultMaxWindowRecords);

  /// Record one window: `advance_s[i]` is shard i's advance wall time.
  /// Aggregates (totals, per-shard advance sums) always accumulate; the
  /// per-window record itself is kept only while under the record cap.
  void record_window(double start_s, const std::vector<double>& advance_s,
                     double barrier_wall_s, long long gathered,
                     long long rescheduled);

  /// Attach the executed-event count of one shard's kernel.
  void set_shard_events(int shard, std::uint64_t events);

  // --- workers ---

  void set_workers(std::vector<Worker> workers);

  // --- accessors ---

  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }
  [[nodiscard]] const Phase* find_phase(std::string_view name) const;
  [[nodiscard]] const std::vector<Worker>& workers() const {
    return workers_;
  }
  [[nodiscard]] const std::vector<Window>& windows() const {
    return windows_;
  }
  [[nodiscard]] const std::vector<Shard>& shards() const { return shards_; }

  /// Windows recorded vs windows seen (they differ once the cap bites).
  [[nodiscard]] long long windows_total() const { return windows_total_; }
  [[nodiscard]] long long windows_dropped() const {
    return windows_total_ - static_cast<long long>(windows_.size());
  }
  [[nodiscard]] long long boundary_gathered() const { return gathered_; }
  [[nodiscard]] long long boundary_rescheduled() const {
    return rescheduled_;
  }

  /// Total wall seconds shards spent advancing (sum over shards).
  [[nodiscard]] double advance_wall_s() const;
  /// Total wall seconds spent in window barriers.
  [[nodiscard]] double barrier_wall_s() const { return barrier_total_s_; }
  /// Time-weighted imbalance across all windows: sum of per-window max
  /// advance over sum of per-window mean advance (1 = balanced).
  [[nodiscard]] double aggregate_imbalance() const;

  [[nodiscard]] bool empty() const {
    return phases_.empty() && workers_.empty() && windows_total_ == 0;
  }

  /// Drop everything and restart the wall-clock epoch.
  void clear();

  // --- export ---

  /// One JSON object: manifest (when given), total_wall_s, phases,
  /// workers, shards, window aggregates, then the per-window records.
  /// `indent` leading spaces per nesting level; the opening brace is not
  /// indented so the object can be embedded after a key (bench_util::
  /// profile_field does exactly that).
  void write_json(std::ostream& os, int indent = 0,
                  const RunManifest* manifest = nullptr) const;

  /// Chrome trace_event spans into `tracer` (category "prof"), timestamps
  /// in wall microseconds since the profiler epoch: each phase as one
  /// Complete span on tid 0, each recorded window as an "window.advance"
  /// span (tid 1, duration = max advance) followed by a "window.barrier"
  /// span (tid 0).  Profiles therefore open in the same viewer as flight
  /// records.  Phase-name pointers reference this profiler's storage —
  /// export the tracer before mutating or destroying the profiler.
  void export_trace(Tracer& tracer) const;

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point epoch_;
  std::vector<Phase> phases_;
  std::vector<Worker> workers_;
  std::vector<Window> windows_;
  std::vector<Shard> shards_;
  std::size_t max_window_records_ = kDefaultMaxWindowRecords;
  long long windows_total_ = 0;
  long long gathered_ = 0;
  long long rescheduled_ = 0;
  double barrier_total_s_ = 0.0;
  double advance_max_total_s_ = 0.0;
  double advance_mean_total_s_ = 0.0;
};

namespace detail {
/// Rebind the calling thread's profiler; returns the previous binding.
Profiler* bind_profiler(Profiler* prof);
/// The calling thread's bound profiler (nullptr when none).
Profiler* bound_profiler();
}  // namespace detail

/// The profiler instrumentation sites should record into, or nullptr when
/// none is bound (or observability is compiled out — the whole profiling
/// layer then folds to nothing).
inline Profiler* current_profiler() {
#if AMBISIM_OBS_COMPILED
  return detail::bound_profiler();
#else
  return nullptr;
#endif
}

/// RAII thread-local profiler binding, mirroring ContextBinding: while
/// alive, current_profiler() on this thread resolves to `prof`; a nullptr
/// binding is a no-op (the thread keeps its previous resolution).
class ProfilerBinding {
 public:
  explicit ProfilerBinding(Profiler* prof)
#if AMBISIM_OBS_COMPILED
      : active_(prof != nullptr),
        prev_(active_ ? detail::bind_profiler(prof) : nullptr) {
  }
  ~ProfilerBinding() {
    if (active_) detail::bind_profiler(prev_);
  }
#else
  {
    (void)prof;
  }
  ~ProfilerBinding() = default;
#endif
  ProfilerBinding(const ProfilerBinding&) = delete;
  ProfilerBinding& operator=(const ProfilerBinding&) = delete;

#if AMBISIM_OBS_COMPILED
 private:
  bool active_;
  Profiler* prev_;
#endif
};

}  // namespace ambisim::obs
