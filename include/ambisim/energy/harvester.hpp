// Ambient-energy harvesters for the autonomous microWatt-node: photovoltaic,
// vibration and thermoelectric scavengers, with 2003-era power densities
// (solar ~10 uW/cm^2 indoor / ~10 mW/cm^2 outdoor peak; vibration
// ~10-200 uW/cm^3; thermoelectric ~ tens of uW/cm^2/K).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ambisim/sim/units.hpp"

namespace ambisim::energy {

namespace u = ambisim::units;

class Harvester {
 public:
  virtual ~Harvester() = default;

  /// Instantaneous harvested power at absolute simulated time `t`.
  [[nodiscard]] virtual u::Power power_at(u::Time t) const = 0;
  /// Long-run average power.
  [[nodiscard]] virtual u::Power average_power() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Trapezoidal numeric integral of power over [t0, t1].
  [[nodiscard]] u::Energy energy_between(u::Time t0, u::Time t1,
                                         int steps = 512) const;
};

/// Photovoltaic cell.  Outdoor mode follows a half-sine diurnal irradiance
/// profile (zero at night); indoor mode is constant office lighting.
class SolarHarvester final : public Harvester {
 public:
  SolarHarvester(u::Area area, double efficiency, bool indoor);

  [[nodiscard]] u::Power power_at(u::Time t) const override;
  [[nodiscard]] u::Power average_power() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] u::Area area() const { return area_; }

  static constexpr double kOutdoorPeakIrradiance = 100.0;  // W/m^2 on cell
  static constexpr double kIndoorIrradiance = 1.0;         // W/m^2

 private:
  u::Area area_;
  double efficiency_;
  bool indoor_;
};

/// Electromechanical vibration scavenger: constant power per volume.
class VibrationHarvester final : public Harvester {
 public:
  /// `volume_cm3` of transducer; `density` defaults to 100 uW/cm^3.
  explicit VibrationHarvester(double volume_cm3,
                              u::Power density_per_cm3 = u::Power(100e-6));

  [[nodiscard]] u::Power power_at(u::Time t) const override;
  [[nodiscard]] u::Power average_power() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double volume_cm3_;
  u::Power density_per_cm3_;
};

/// Thermoelectric generator across a temperature difference.
class ThermalHarvester final : public Harvester {
 public:
  /// P = k * A * dT^2 with k ~ 25 uW / (cm^2 K^2) for 2003-era TEGs.
  ThermalHarvester(u::Area area, double delta_t_kelvin,
                   double k_uw_per_cm2_k2 = 25.0);

  [[nodiscard]] u::Power power_at(u::Time t) const override;
  [[nodiscard]] u::Power average_power() const override;
  [[nodiscard]] std::string name() const override;

 private:
  u::Area area_;
  double delta_t_;
  double k_;
};

/// Harvests from an incident power-density field (W/m^2) through a fixed
/// collection aperture and conversion efficiency: P(t) = S(t) * A * eta.
/// The profile is a piecewise-constant step function of time — sample k
/// holds from its timestamp until the next sample (the last one holds
/// forever, and the first one also covers any earlier time).  A rectenna
/// under an RF field, a PV cell under a measured irradiance trace, and the
/// aiot wireless-power network all feed this seam.
class PowerDensityHarvester final : public Harvester {
 public:
  /// One (time, density) breakpoint of the profile.
  using Sample = std::pair<u::Time, u::PowerDensity>;

  /// `profile` must be non-empty, time-sorted, with non-negative densities;
  /// `aperture` > 0 and `efficiency` in (0, 1].
  PowerDensityHarvester(std::vector<Sample> profile, u::Area aperture,
                        double efficiency, std::string name = "power-density");

  /// Constant-field convenience: a one-sample profile.
  PowerDensityHarvester(u::PowerDensity density, u::Area aperture,
                        double efficiency, std::string name = "power-density");

  [[nodiscard]] u::Power power_at(u::Time t) const override;
  /// Time-weighted mean over the profile span (last sample weightless on
  /// its own: a single-sample profile is just the constant field).
  [[nodiscard]] u::Power average_power() const override;
  [[nodiscard]] std::string name() const override;

  /// Incident density at `t` before the aperture/efficiency chain.
  [[nodiscard]] u::PowerDensity density_at(u::Time t) const;
  [[nodiscard]] u::Area aperture() const { return aperture_; }
  [[nodiscard]] double efficiency() const { return efficiency_; }

 private:
  std::vector<Sample> profile_;
  u::Area aperture_;
  double efficiency_;
  std::string name_;
};

/// Fixed-power source (mains supply for the Watt-node, or a test stub).
class ConstantSource final : public Harvester {
 public:
  explicit ConstantSource(u::Power p, std::string name = "constant");
  [[nodiscard]] u::Power power_at(u::Time t) const override;
  [[nodiscard]] u::Power average_power() const override;
  [[nodiscard]] std::string name() const override;

 private:
  u::Power power_;
  std::string name_;
};

}  // namespace ambisim::energy
