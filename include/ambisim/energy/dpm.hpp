// Dynamic power management: when should a device component sleep?
//
// A PowerStateMachine models a component (radio, core, display) with
// Active/Idle/Sleep states, wake-up latency and energy.  Sleeping only
// pays off for idle periods longer than the break-even time; the classic
// results compared here: the oracle policy (sleep iff the coming idle
// period exceeds break-even) is optimal, and a timeout policy with
// timeout == break-even is 2-competitive.  Ablation A2 of the
// reproduction; the mechanism behind every duty-cycled node in the
// keynote's device web.
#pragma once

#include <vector>

#include "ambisim/sim/random.hpp"
#include "ambisim/sim/units.hpp"

namespace ambisim::energy {

namespace u = ambisim::units;

struct PowerStateSpec {
  u::Power active{0.0};
  u::Power idle{0.0};
  u::Power sleep{0.0};
  u::Time wake_latency{0.0};   ///< sleep -> active transition time
  u::Energy wake_energy{0.0};  ///< energy of that transition

  /// Idle duration above which entering sleep saves energy:
  ///   T_be = (E_wake + P_sleep * t_wake) / (P_idle - P_sleep)
  /// (the wake transition also costs its latency at effectively idle-level
  /// power, folded into wake_energy by convention here).
  [[nodiscard]] u::Time break_even() const;

  /// Presets for the three node classes' radios.
  static PowerStateSpec ulp_radio();
  static PowerStateSpec bluetooth_radio();
  static PowerStateSpec wlan_radio();
};

/// Outcome of running a policy over a trace of idle-period lengths.  Busy
/// periods are identical across policies and excluded from the figures.
struct DpmResult {
  u::Energy energy{0.0};       ///< total idle-time energy
  u::Time added_latency{0.0};  ///< wake-up delay suffered by requests
  int sleep_transitions = 0;

  [[nodiscard]] double energy_ratio_vs(const DpmResult& baseline) const;
};

/// Never sleeps: every idle period at idle power.
DpmResult dpm_always_on(const PowerStateSpec& spec,
                        const std::vector<double>& idle_seconds);

/// Sleeps after `timeout` of idleness; wakes (paying latency + energy) at
/// the end of every slept period.
DpmResult dpm_timeout(const PowerStateSpec& spec,
                      const std::vector<double>& idle_seconds,
                      u::Time timeout);

/// Clairvoyant optimum: sleeps immediately iff the period exceeds
/// break-even, pays no added latency (wakes just in time).
DpmResult dpm_oracle(const PowerStateSpec& spec,
                     const std::vector<double>& idle_seconds);

/// Idle-period generators: exponential (memoryless traffic) and Pareto
/// (bursty ambient traffic, alpha ~ 1.5-2.5).
std::vector<double> exponential_idle_trace(sim::Rng& rng, int periods,
                                           double mean_seconds);
std::vector<double> pareto_idle_trace(sim::Rng& rng, int periods,
                                      double min_seconds, double alpha);

}  // namespace ambisim::energy
