// Per-component energy accounting.  Every simulated subsystem (CPU, radio,
// memory, sensor interface, ...) charges its consumption to a named ledger
// entry; benches print the resulting breakdowns (e.g. compute-vs-radio split
// of the milliWatt-node case study).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ambisim/sim/units.hpp"

namespace ambisim::energy {

namespace u = ambisim::units;

class EnergyLedger {
 public:
  /// Add `e` joules to component `name` (creates the entry on first use).
  void charge(const std::string& name, u::Energy e);

  [[nodiscard]] u::Energy total() const;
  /// Energy of one component; zero if the component never charged anything.
  [[nodiscard]] u::Energy of(const std::string& name) const;
  /// Fraction of total attributed to `name` (0 if total is zero).
  [[nodiscard]] double share(const std::string& name) const;

  /// (component, energy) pairs sorted by descending energy.
  [[nodiscard]] std::vector<std::pair<std::string, u::Energy>> breakdown()
      const;

  void merge(const EnergyLedger& other);
  void clear();
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, u::Energy>> entries_;
};

/// A periodic duty-cycled load: `active_power` for `active_time` out of
/// every `period`, `sleep_power` otherwise.
struct DutyCycleLoad {
  u::Power active_power;
  u::Power sleep_power;
  u::Time period;
  u::Time active_time;

  [[nodiscard]] double duty() const;
  [[nodiscard]] u::Power average_power() const;
};

/// Largest duty cycle for which a duty-cycled load is energy-neutral under a
/// harvester delivering `harvest_avg` on average.  Returns 0 if even pure
/// sleep exceeds the harvest, and 1 if always-on is sustainable.
double max_neutral_duty(u::Power harvest_avg, u::Power active_power,
                        u::Power sleep_power);

}  // namespace ambisim::energy
